"""Gifford/Lucassen effect inference over TML terms (paper section 2.3).

The primitive registry declares one :class:`EffectClass` per primitive (item
4 of section 2.3, worst-case defaults).  This module propagates those classes
*through* terms, bottom-up, so whole procedures get an effect class too:

* the effect of a value is the *latent* effect of invoking it — ``PURE`` for
  literals, the body effect for abstractions, the bound latent for variables;
* a direct application ``((λ(p..) body) a..)`` binds each argument's latent
  to its parameter and takes the body's effect — this is exactly where the
  reduction rules operate, so the inference is precise exactly where the
  checked pipeline needs it;
* a call through an unknown (free, value-sorted) variable is ``UNKNOWN`` —
  the worst-case default.  Calls through continuation *parameters* are
  ``PURE``: a continuation is the caller's rest-of-computation, not an effect
  of the procedure under analysis;
* a primitive application joins the primitive's declared class with the
  latent effects of every continuation and abstraction argument (those the
  primitive may invoke: branch continuations, query predicates);
* ``Y`` fixpoints are solved by monotone iteration over the member latents.

The Gifford/Lucassen classes form a partial order; for inference we use a
conservative *linearization* (``EFFECT_RANK``): joining READ and ALLOC to
READ loses the distinction but never under-approximates, which is the
direction that matters for the checked pipeline's "effects never increase"
invariant and for fold legality.

Thanks to unique binding (constraint 4) the environment needs no scoping: a
single mutable ``Name -> EffectClass`` map serves the whole term.
"""

from __future__ import annotations

import sys
from typing import TYPE_CHECKING

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.core.names import Name
from repro.core.syntax import Abs, App, Lit, PrimApp, Term, Var
from repro.primitives.effects import EffectClass, is_discardable, may_commute

if TYPE_CHECKING:  # pragma: no cover
    from repro.primitives.registry import PrimitiveRegistry

__all__ = [
    "EFFECT_RANK",
    "effect_join",
    "effect_le",
    "infer_effect",
    "lint_registry",
]

#: Conservative linearization of the Gifford/Lucassen lattice: a class never
#: ranks below one it could stand in for.  UNKNOWN is top (worst case).
EFFECT_RANK: dict[EffectClass, int] = {
    EffectClass.PURE: 0,
    EffectClass.ALLOC: 1,
    EffectClass.READ: 2,
    EffectClass.WRITE: 3,
    EffectClass.IO: 4,
    EffectClass.CONTROL: 5,
    EffectClass.UNKNOWN: 6,
}

_BY_RANK = sorted(EFFECT_RANK, key=EFFECT_RANK.get)

#: Bound on Y fixpoint iterations: the rank chain has 7 levels, so a monotone
#: iteration is stable after at most 7 rounds per group.
_MAX_FIX_ROUNDS = 8


def effect_join(first: EffectClass, second: EffectClass) -> EffectClass:
    """Least upper bound under the rank linearization."""
    return first if EFFECT_RANK[first] >= EFFECT_RANK[second] else second


def effect_le(first: EffectClass, second: EffectClass) -> bool:
    """``first`` is no worse than ``second``."""
    return EFFECT_RANK[first] <= EFFECT_RANK[second]


def infer_effect(term: Term, registry: "PrimitiveRegistry") -> EffectClass:
    """Infer the effect class of ``term``.

    For a value, the latent effect of invoking it; for an application, the
    effect of executing it.  The result is conservative: it never
    under-reports relative to the registry's declarations, except that
    procedures only reachable through value-sorted variables the primitive
    layer never invokes are assumed to be data (documented imprecision).
    """
    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old_limit, 100_000))
    try:
        return _Inference(registry).latent(term)
    finally:
        sys.setrecursionlimit(old_limit)


class _Inference:
    __slots__ = ("registry", "env")

    def __init__(self, registry: "PrimitiveRegistry"):
        self.registry = registry
        #: latent effect of the procedure/continuation bound to each name;
        #: flat thanks to unique binding
        self.env: dict[Name, EffectClass] = {}

    # ------------------------------------------------------------- values

    def latent(self, term: Term) -> EffectClass:
        if isinstance(term, Lit):
            return EffectClass.PURE
        if isinstance(term, Var):
            bound = self.env.get(term.name)
            if bound is not None:
                return bound
            # a free continuation is the caller's rest-of-computation; a free
            # value variable is an unknown procedure (worst case if invoked)
            return EffectClass.PURE if term.name.is_cont else EffectClass.UNKNOWN
        if isinstance(term, Abs):
            return self.execute(term.body)
        # applications handed in directly (lint over a stored body)
        return self.execute(term)

    # ------------------------------------------------------- applications

    def execute(self, node: Term) -> EffectClass:
        if isinstance(node, App):
            fn = node.fn
            if isinstance(fn, Abs):
                if fn.arity != len(node.args):
                    return EffectClass.UNKNOWN  # ill-formed; worst case
                for param, arg in zip(fn.params, node.args):
                    self.env[param] = self.latent(arg)
                return self.execute(fn.body)
            effect = self.latent(fn)
            return self._join_invocable_args(effect, node.args)
        if isinstance(node, PrimApp):
            if node.prim == "Y":
                return self._execute_y(node)
            prim = self.registry.get(node.prim)
            effect = prim.attrs.effect if prim is not None else EffectClass.UNKNOWN
            return self._join_invocable_args(effect, node.args)
        return self.latent(node)

    def _join_invocable_args(self, effect: EffectClass, args) -> EffectClass:
        """Join latents of arguments the callee may invoke.

        Abstractions and continuation-sorted variables are treated as
        invocable (branch continuations, inlined predicates); value-sorted
        variables are assumed to be data.
        """
        for arg in args:
            if isinstance(arg, Abs) or (isinstance(arg, Var) and arg.name.is_cont):
                effect = effect_join(effect, self.latent(arg))
        return effect

    def _execute_y(self, node: PrimApp) -> EffectClass:
        """Monotone fixpoint iteration over a Y group's member latents."""
        if len(node.args) != 1 or not isinstance(node.args[0], Abs):
            return EffectClass.UNKNOWN
        fixfun = node.args[0]
        if len(fixfun.params) < 2:
            return EffectClass.UNKNOWN
        names = fixfun.params[1:-1]
        members = self._y_members(fixfun, len(names))
        if members is None:
            for name in names:
                self.env[name] = EffectClass.UNKNOWN
            return self.execute(fixfun.body)
        for name in names:
            self.env.setdefault(name, EffectClass.PURE)
        for _ in range(_MAX_FIX_ROUNDS):
            changed = False
            for name, member in zip(names, members):
                updated = effect_join(self.env[name], self.latent(member))
                if updated is not self.env[name]:
                    self.env[name] = updated
                    changed = True
            if not changed:
                break
        return self.execute(fixfun.body)

    @staticmethod
    def _y_members(fixfun: Abs, count: int):
        """The member abstractions of ``λ(c0 v1..vn c)(c entry m1..mn)``."""
        body = fixfun.body
        if (
            isinstance(body, App)
            and isinstance(body.fn, Var)
            and body.fn.name == fixfun.params[-1]
            and len(body.args) == count + 1
        ):
            return body.args[1:]
        return None


# ---------------------------------------------------------------------------
# registry lint: fold/reorder preconditions (section 2.3)
# ---------------------------------------------------------------------------


def lint_registry(registry: "PrimitiveRegistry") -> list[Diagnostic]:
    """Flag registry entries whose attributes violate rewrite preconditions.

    The ``fold`` rule replaces a primitive call by an invocation of its
    continuation on the meta-evaluated result — sound only when discarding
    the call is unobservable (:func:`is_discardable`).  A fold function on a
    WRITE/IO/CONTROL/UNKNOWN primitive is therefore an error before any term
    is ever rewritten; the checked pipeline additionally catches it
    dynamically (``TML043``).
    """
    found: list[Diagnostic] = []
    for prim in registry:
        attrs = prim.attrs
        if prim.fold is not None and attrs.fold_enabled and not is_discardable(
            attrs.effect
        ):
            found.append(
                Diagnostic(
                    code="TML030",
                    severity=Severity.ERROR,
                    message=f"primitive {prim.name!r} has effect class "
                    f"{attrs.effect.value!r} but registers a fold function: "
                    "meta-evaluation would discard its effect",
                    path=f"registry[{prim.name!r}]",
                    subject=prim.name,
                    hint="drop the fold or set fold_enabled=False "
                    "(Attributes, section 2.3 item 4)",
                    data={"prim": prim.name, "effect": attrs.effect.value},
                )
            )
        if attrs.commutative and not may_commute(attrs.effect, attrs.effect):
            found.append(
                Diagnostic(
                    code="TML031",
                    severity=Severity.WARNING,
                    message=f"primitive {prim.name!r} is declared commutative "
                    f"but its effect class {attrs.effect.value!r} forbids "
                    "reordering two of its calls",
                    path=f"registry[{prim.name!r}]",
                    subject=prim.name,
                    hint="commutativity should only be declared for "
                    "primitives whose calls may be swapped",
                    data={"prim": prim.name, "effect": attrs.effect.value},
                )
            )
    return found
