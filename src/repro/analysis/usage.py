"""Dead-binding and unused-parameter detection.

Two consumers:

* the ``repro lint`` CLI reports the findings as warnings/info
  (``TML020``/``TML021``/``TML022``);
* the expansion pass's savings heuristic
  (:func:`repro.rewrite.cost.site_decision`) credits arguments bound to
  parameters the body never uses — after inlining, the ``remove`` reduction
  rule deletes those bindings outright, so the argument's materialization
  cost is recovered for free.  :func:`unused_param_indices` is the feed.

Occurrence counting is the census of :mod:`repro.core.occurrences`; thanks to
the unique-binding invariant (constraint 4) a whole-tree census doubles as a
per-scope one.
"""

from __future__ import annotations

from repro.analysis.dataflow import iter_with_paths
from repro.analysis.diagnostics import Diagnostic, Severity, format_path
from repro.core.occurrences import count_all, count_many
from repro.core.syntax import Abs, App, Term

__all__ = ["unused_param_indices", "analyze"]


def unused_param_indices(abs_node: Abs) -> tuple[int, ...]:
    """Indices of parameters with zero occurrences in the body."""
    counts = count_many(abs_node.body, abs_node.params)
    return tuple(
        index for index, param in enumerate(abs_node.params) if counts[param] == 0
    )


def analyze(term: Term) -> list[Diagnostic]:
    """Usage diagnostics: unused parameters and dead direct bindings."""
    found: list[Diagnostic] = []
    census = count_all(term)
    for node, path in iter_with_paths(term):
        if isinstance(node, Abs):
            for index, param in enumerate(node.params):
                if census.get(param, 0) != 0:
                    continue
                if not param.is_cont:
                    # "_"/"u" are the CPS converter's discard binders for
                    # sequencing — intentionally unused, so informational
                    deliberate = param.base in ("_", "u")
                    found.append(
                        Diagnostic(
                            code="TML020",
                            severity=Severity.INFO if deliberate else Severity.WARNING,
                            message=f"parameter {param} is never used",
                            path=format_path(path),
                            subject=param,
                            hint="the expansion pass credits call sites for "
                            "arguments bound here; consider dropping the "
                            "parameter at the source level",
                        )
                    )
                elif node.is_proc_abs and param == node.params[-1]:
                    # the normal continuation: a procedure that never invokes
                    # it cannot return normally
                    found.append(
                        Diagnostic(
                            code="TML022",
                            severity=Severity.WARNING,
                            message=f"normal continuation {param} is never "
                            "invoked: the procedure cannot return normally",
                            path=format_path(path),
                            subject=param,
                            hint="expected only for procedures that always "
                            "raise or loop",
                        )
                    )
                else:
                    # an unused exception continuation is the common case for
                    # code that cannot trap — informational only
                    found.append(
                        Diagnostic(
                            code="TML020",
                            severity=Severity.INFO,
                            message=f"continuation parameter {param} is never "
                            "used",
                            path=format_path(path),
                            subject=param,
                        )
                    )
        elif isinstance(node, App):
            fn = node.fn
            if isinstance(fn, Abs) and fn.arity == len(node.args):
                for index in unused_param_indices(fn):
                    found.append(
                        Diagnostic(
                            code="TML021",
                            severity=Severity.INFO,
                            message=f"binding of {fn.params[index]} is dead: "
                            "the body ignores this argument",
                            path=format_path(path + (("args", index),)),
                            subject=node.args[index],
                            hint="the reduction pass's remove rule deletes "
                            "dead bindings of value arguments",
                        )
                    )
    return found
