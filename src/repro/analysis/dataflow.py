"""Bottom-up dataflow framework over TML terms.

Two building blocks shared by the analyses in this package:

* :func:`iter_with_paths` — preorder traversal yielding ``(node, path)`` where
  ``path`` is the tuple of attribute steps from the root (the shape
  :func:`repro.analysis.diagnostics.format_path` renders).  Like every core
  traversal it is explicit-stack based: CPS chains are one application deep
  per source statement and routinely exceed Python's recursion limit.

* :class:`BottomUpAnalysis` — an iterative postorder fold.  Subclasses
  override one hook per node kind; each hook receives the already-computed
  results of the children, so an analysis is written as a local transfer
  function and the framework supplies the (stack-safe) scheduling.  This is
  the TML analogue of a classic bottom-up attribute evaluation; the usage
  and size analyses here are built on it, and it is the intended extension
  point for future analyses (escape, sharing, strictness...).
"""

from __future__ import annotations

from typing import Any, Generic, Iterator, TypeVar

from repro.core.syntax import Abs, App, Lit, PrimApp, Term, Var

__all__ = ["Path", "iter_with_paths", "BottomUpAnalysis"]

#: A path is a tuple of steps: attribute names ("fn", "body") or
#: ("args", index) pairs; see diagnostics.format_path.
Path = tuple

R = TypeVar("R")


def iter_with_paths(term: Term) -> Iterator[tuple[Term, Path]]:
    """Yield ``(node, path)`` for ``term`` and every subterm, preorder."""
    stack: list[tuple[Term, Path]] = [(term, ())]
    while stack:
        node, path = stack.pop()
        yield node, path
        if isinstance(node, Abs):
            stack.append((node.body, path + ("body",)))
        elif isinstance(node, App):
            for index in range(len(node.args) - 1, -1, -1):
                stack.append((node.args[index], path + (("args", index),)))
            stack.append((node.fn, path + ("fn",)))
        elif isinstance(node, PrimApp):
            for index in range(len(node.args) - 1, -1, -1):
                stack.append((node.args[index], path + (("args", index),)))


class BottomUpAnalysis(Generic[R]):
    """Iterative postorder fold over a TML tree.

    ``run`` visits children before parents and hands each hook the child
    results.  Hooks default to :meth:`default`, so a concrete analysis only
    overrides the node kinds it cares about.
    """

    def run(self, term: Term) -> R:
        EXPAND, BUILD = 0, 1
        work: list[tuple[Term, Path, int]] = [(term, (), EXPAND)]
        results: list[R] = []
        while work:
            node, path, phase = work.pop()
            if phase == EXPAND:
                if isinstance(node, Lit):
                    results.append(self.lit(node, path))
                elif isinstance(node, Var):
                    results.append(self.var(node, path))
                elif isinstance(node, Abs):
                    work.append((node, path, BUILD))
                    work.append((node.body, path + ("body",), EXPAND))
                elif isinstance(node, App):
                    work.append((node, path, BUILD))
                    for index in range(len(node.args) - 1, -1, -1):
                        work.append(
                            (node.args[index], path + (("args", index),), EXPAND)
                        )
                    work.append((node.fn, path + ("fn",), EXPAND))
                else:  # PrimApp
                    work.append((node, path, BUILD))
                    for index in range(len(node.args) - 1, -1, -1):
                        work.append(
                            (node.args[index], path + (("args", index),), EXPAND)
                        )
            else:  # BUILD
                if isinstance(node, Abs):
                    body = results.pop()
                    results.append(self.abs(node, body, path))
                elif isinstance(node, App):
                    count = 1 + len(node.args)
                    parts = results[-count:]
                    del results[-count:]
                    results.append(self.app(node, parts[0], parts[1:], path))
                else:  # PrimApp
                    count = len(node.args)
                    args = list(results[-count:]) if count else []
                    if count:
                        del results[-count:]
                    results.append(self.prim(node, args, path))
        assert len(results) == 1
        return results[0]

    # ------------------------------------------------------------- hooks

    def default(self, node: Term, path: Path) -> R:
        raise NotImplementedError(
            f"{type(self).__name__} does not handle {type(node).__name__}"
        )

    def lit(self, node: Lit, path: Path) -> R:
        return self.default(node, path)

    def var(self, node: Var, path: Path) -> R:
        return self.default(node, path)

    def abs(self, node: Abs, body: R, path: Path) -> R:
        return self.default(node, path)

    def app(self, node: App, fn: R, args: list[R], path: Path) -> R:
        return self.default(node, path)

    def prim(self, node: PrimApp, args: list[R], path: Path) -> R:
        return self.default(node, path)
