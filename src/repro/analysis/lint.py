"""Front door of the analysis suite: lint a term and/or its compiled code.

Used by ``python -m repro lint`` and by the golden differential test; the
individual analyses stay importable on their own.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.analysis import effects, linearity, usage
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.verify_tam import verify_code
from repro.core.syntax import Term
from repro.machine.isa import CodeObject

if TYPE_CHECKING:  # pragma: no cover
    from repro.primitives.registry import PrimitiveRegistry

__all__ = ["lint_term", "lint_code", "lint_function"]


def lint_term(
    term: Term,
    registry: "PrimitiveRegistry | None" = None,
    include_usage: bool = True,
) -> list[Diagnostic]:
    """All term-level diagnostics: constraints 1-5 plus usage findings."""
    found = linearity.analyze(term, registry)
    if include_usage:
        found.extend(usage.analyze(term))
    return found


def lint_code(
    code: CodeObject,
    name: str | None = None,
    registry: "PrimitiveRegistry | None" = None,
) -> list[Diagnostic]:
    """All bytecode-level diagnostics for a code object tree.

    Structural verification first; when it finds no errors, the abstract
    interpreter (:mod:`repro.analysis.absint`) runs over the family with
    worst-case free-variable bindings and contributes the TAM1xx findings
    (guaranteed-trap sites, arity mismatches).  Interprocedural precision —
    resolved callees, effect conformance, reachability — needs the whole
    image and lives in ``python -m repro audit``.
    """
    found = verify_code(code, name=name)
    if not any(d.is_error for d in found):
        from repro.analysis.absint import analyze_code

        analysis = analyze_code(code, name=name or code.name, registry=registry)
        # verify_code already reported the handler-depth findings
        found.extend(d for d in analysis.diagnostics if d.code != "TAM020")
    return found


def lint_function(
    term: Term | None,
    code: CodeObject | None,
    registry: "PrimitiveRegistry | None" = None,
    include_usage: bool = True,
) -> list[Diagnostic]:
    """Lint a compiled function: its TML term and its TAM code together."""
    found: list[Diagnostic] = []
    if term is not None:
        found.extend(lint_term(term, registry, include_usage=include_usage))
    if code is not None:
        found.extend(lint_code(code))
    return found


def lint_registry(registry: "PrimitiveRegistry") -> list[Diagnostic]:
    """Registry attribute lint (fold/commutativity preconditions)."""
    return effects.lint_registry(registry)
