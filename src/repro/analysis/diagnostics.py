"""Diagnostics shared by every static analysis in :mod:`repro.analysis`.

A :class:`Diagnostic` is one finding: a stable code (``TML...`` for term-level
analyses, ``TAM...`` for the bytecode verifier), a severity, a human message,
the *path* from the analyzed root to the offending node, and — where we can
offer one — a fix hint.  Paths follow attribute access on the syntax tree
(``body.args[2].fn``), so a diagnostic can be replayed against a pretty-printed
term by hand.

The analyses return plain ``list[Diagnostic]``; callers that want exceptions
use :func:`raise_on_error` (the checked pipeline, the module compiler) while
callers that want reports keep the list (the ``repro lint`` CLI, the golden
regression test).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

__all__ = [
    "Severity",
    "Diagnostic",
    "AnalysisError",
    "format_path",
    "format_diagnostics",
    "has_errors",
    "error_count",
    "severity_counts",
    "raise_on_error",
    "DIAGNOSTIC_CODES",
]


class Severity(enum.IntEnum):
    """Severity levels, ordered so ``max()`` picks the worst."""

    INFO = 0
    WARNING = 1
    ERROR = 2

    def __str__(self) -> str:  # "error", not "Severity.ERROR"
        return self.name.lower()


#: Path step: an attribute name ("body", "fn") or an ("args", index) pair.
PathStep = Any


def format_path(steps: Sequence[PathStep]) -> str:
    """Render a path tuple as ``body.args[2].fn`` (empty path: ``<root>``)."""
    if not steps:
        return "<root>"
    parts: list[str] = []
    for step in steps:
        if isinstance(step, tuple):
            attr, index = step
            parts.append(f"{attr}[{index}]")
        else:
            parts.append(str(step))
    return ".".join(parts)


@dataclass(frozen=True, slots=True)
class Diagnostic:
    """One analysis finding, precise enough to act on."""

    code: str
    severity: Severity
    message: str
    #: dotted path from the analysis root to the offending node
    path: str = "<root>"
    #: the offending node (a Term, Name, CodeObject, instruction pc, ...)
    subject: Any = None
    #: how to fix it, when the analysis knows
    hint: str = ""
    #: extra structured context (rule name, primitive name, pc, ...)
    data: dict = field(default_factory=dict, compare=False)

    def __str__(self) -> str:
        text = f"{self.severity}[{self.code}] {self.path}: {self.message}"
        if self.hint:
            text += f" (hint: {self.hint})"
        return text

    @property
    def is_error(self) -> bool:
        return self.severity is Severity.ERROR


class AnalysisError(ValueError):
    """Raised when an analysis run is asked to treat errors as fatal."""

    def __init__(self, diagnostics: list[Diagnostic], context: str = ""):
        self.diagnostics = diagnostics
        lines = "\n  ".join(str(d) for d in diagnostics)
        prefix = f"{context}: " if context else ""
        super().__init__(f"{prefix}analysis found errors:\n  {lines}")


def has_errors(diagnostics: Iterable[Diagnostic]) -> bool:
    return any(d.is_error for d in diagnostics)


def error_count(diagnostics: Iterable[Diagnostic]) -> int:
    return sum(1 for d in diagnostics if d.is_error)


def severity_counts(diagnostics: Iterable[Diagnostic]) -> dict[str, int]:
    """Counts keyed by severity name — the shape of the golden file."""
    counts = {"error": 0, "warning": 0, "info": 0}
    for d in diagnostics:
        counts[str(d.severity)] += 1
    return counts


def raise_on_error(diagnostics: list[Diagnostic], context: str = "") -> list[Diagnostic]:
    """Raise :class:`AnalysisError` when any diagnostic is an error."""
    errors = [d for d in diagnostics if d.is_error]
    if errors:
        raise AnalysisError(errors, context)
    return diagnostics


def format_diagnostics(diagnostics: Iterable[Diagnostic], label: str = "") -> str:
    """Multi-line report, worst findings first."""
    ordered = sorted(diagnostics, key=lambda d: (-int(d.severity), d.code, d.path))
    prefix = f"{label}: " if label else ""
    return "\n".join(f"{prefix}{d}" for d in ordered)


#: Registry of every diagnostic code, for docs and the CLI.  Codes are stable:
#: tests and golden files reference them.
DIAGNOSTIC_CODES: dict[str, str] = {
    # --- TML structural constraints (paper section 2.2, constraints 1-5) ---
    "TML001": "duplicate binding: identifier bound more than once (constraint 4)",
    "TML002": "direct application arity mismatch (constraint 1)",
    "TML003": "continuation escapes into a value position (constraint 3)",
    "TML004": "value/literal argument follows a continuation argument (constraint 1)",
    "TML005": "unknown primitive (constraint 2)",
    "TML006": "primitive called against its signature (constraint 2)",
    "TML007": "procedure abstraction with wrong continuation-parameter count (constraint 5)",
    "TML008": "continuation parameters are not a parameter-list suffix (constraint 5)",
    "TML009": "Y fixpoint function does not have shape λ(c0 v1..vn c) (constraint 5)",
    "TML010": "foreign object in the syntax tree",
    # --- usage analyses (feed the optimizer; warnings) ---
    "TML020": "unused parameter",
    "TML021": "dead binding: directly-applied abstraction ignores its argument",
    "TML022": "normal continuation never invoked",
    # --- effect analyses ---
    "TML030": "fold function registered on a non-discardable primitive",
    "TML031": "commutativity declared on a primitive whose effects forbid reordering",
    # --- checked-pipeline findings ---
    "TML040": "rewrite pass broke well-formedness",
    "TML041": "reduction pass did not strictly decrease term size",
    "TML042": "rewrite pass increased the inferred effect class",
    "TML043": "fold discarded a non-discardable primitive application",
    "TML044": "fold result did not strictly decrease term size",
    # --- TAM bytecode verifier ---
    "TAM001": "unknown opcode",
    "TAM002": "wrong operand count for opcode",
    "TAM003": "operand has the wrong kind",
    "TAM004": "register index out of range",
    "TAM005": "constant-pool index out of range",
    "TAM006": "nested-code index out of range",
    "TAM007": "jump target out of range",
    "TAM008": "closure capture plan does not match the child code's free slots",
    "TAM009": "control can fall off the end of the instruction stream",
    "TAM010": "register read before any definition reaches it",
    "TAM011": "code object metadata inconsistent (params vs nregs)",
    "TAM020": "popHandler provably executable at handler depth <= 0: it pops "
    "a handler installed by a caller",
    # --- abstract interpretation (repro.analysis.absint) ---
    "TAM101": "instruction applied to a value of a provably wrong kind: "
    "guaranteed trap if it executes",
    "TAM102": "call to a resolved function with the wrong argument count: "
    "guaranteed arityError",
    # --- whole-image audit (repro.analysis.audit) ---
    "TAM105": "stored code's effect class exceeds what its persistent TML "
    "admits: the code does not implement its own source",
    "TAM110": "stored function unreachable from every module's export surface",
    "TAM111": "frozen external reference into a stored module that does not "
    "define the member: linking fails",
    "TAM112": "stale analysis fact dropped: a dependency's PTML hash moved",
}
