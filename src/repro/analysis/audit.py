"""Whole-image audit: verify + abstractly interpret every stored code object.

``python -m repro audit IMAGE`` is the static-analysis counterpart of
``fsck``: where fsck proves the *storage* layer intact (headers, checksums,
reachability), audit proves the *code* layer coherent — every stored
function structurally verifies, abstract interpretation finds no guaranteed
trap sites, every frozen inter-module binding resolves, and each function's
bytecode-level effect stays within the effect its persistent TML admits.

Findings (beyond everything :func:`repro.analysis.verify_tam.verify_code`
and :mod:`repro.analysis.absint` already report):

========  =======  ==========================================================
TAM105    ERROR    code effect exceeds the effect inferred from its PTML
TAM110    WARNING  function unreachable from any module's export surface
TAM111    ERROR    external reference into a stored module lacking the member
TAM112    INFO     stale analysis fact dropped (dependency hash moved)
========  =======  ==========================================================

The audit is incremental: valid records in the persisted fact cache
(:mod:`repro.analysis.facts`, root ``analysis:facts``) are trusted — their
functions are neither re-verified nor re-analyzed — so a warm audit after a
partial redefinition re-analyzes exactly the invalidated slice of the call
graph.  Freshly computed facts for *clean* functions are installed back
into the image (suppress with ``update_facts=False`` or ``--no-update``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.analysis.absint import Summary, analyze_code, summarize_graph
from repro.analysis.callgraph import ImageGraph
from repro.analysis.diagnostics import Diagnostic, Severity, severity_counts
from repro.analysis.effects import EFFECT_RANK, infer_effect
from repro.analysis.facts import FactRecord, FactStore
from repro.analysis.verify_tam import verify_code
from repro.primitives.effects import EffectClass
from repro.store.ptml import decode_ptml
from repro.store.serialize import Blob

__all__ = ["AuditReport", "audit_image", "audit_heap"]


@dataclass
class AuditReport:
    """Everything one audit pass found."""

    modules: int = 0
    functions: int = 0
    #: functions freshly analyzed this pass
    analyzed: int = 0
    #: functions whose cached facts were still valid (verify+absint skipped)
    reused: int = 0
    #: orphan code objects audited out of ``server:code-cache``
    cache_codes: int = 0
    #: stale fact records dropped before analysis (TAM112)
    pruned: tuple = ()
    diagnostics: list[Diagnostic] = field(default_factory=list)
    #: qualified -> Summary for every function in the image
    summaries: dict = field(default_factory=dict)
    wall_s: float = 0.0

    @property
    def counts(self) -> dict:
        return severity_counts(self.diagnostics)

    @property
    def errors(self) -> int:
        return self.counts.get("error", 0)

    @property
    def ok(self) -> bool:
        return self.errors == 0

    def as_dict(self) -> dict:
        return {
            "schema": "repro.audit/v1",
            "ok": self.ok,
            "modules": self.modules,
            "functions": self.functions,
            "analyzed": self.analyzed,
            "reused": self.reused,
            "cache_codes": self.cache_codes,
            "pruned": list(self.pruned),
            "counts": self.counts,
            "findings": [
                {
                    "code": d.code,
                    "severity": d.severity.name.lower(),
                    "path": d.path,
                    "message": d.message,
                }
                for d in self.diagnostics
            ],
            "summaries": {
                q: summary.as_dict() for q, summary in sorted(self.summaries.items())
            },
            "wall_s": round(self.wall_s, 6),
        }


def audit_image(path: str, registry=None, update_facts: bool = True) -> AuditReport:
    """Audit the image file at ``path`` (commits fresh facts back into it)."""
    from repro.store.heap import ObjectHeap

    heap = ObjectHeap(path)
    report = audit_heap(heap, registry=registry, update_facts=update_facts)
    if update_facts:
        heap.commit()
    return report


def audit_heap(
    heap,
    registry=None,
    update_facts: bool = True,
    facts: FactStore | None = None,
) -> AuditReport:
    """Audit every stored code object reachable through ``module:*`` roots.

    With ``update_facts`` the freshly-computed facts of *clean* functions
    (no error findings) are installed into ``facts`` and flushed to the
    heap; the caller owns the commit.  A shared :class:`FactStore` (e.g.
    the daemon's) may be passed in; otherwise a private one is attached.
    """
    start = time.perf_counter()
    report = AuditReport()
    if registry is None:
        from repro.primitives.registry import default_registry

        registry = default_registry()

    if facts is None:
        facts = FactStore()
        facts.attach(heap)

    graph = ImageGraph.from_heap(heap)
    current = graph.current_hashes()
    report.modules = len(graph.exports)
    report.functions = len(graph.nodes)

    # ---- stale facts out first (TAM112), then seed from the valid rest
    report.pruned = tuple(sorted(set(facts.prune(current))))
    for name in report.pruned:
        report.diagnostics.append(Diagnostic(
            code="TAM112",
            severity=Severity.INFO,
            message="stale analysis fact dropped: a dependency's PTML moved",
            subject=name,
        ))

    seeded: dict[str, Summary] = {}
    cached_verified: set[str] = set()
    for qualified, node in graph.nodes.items():
        if node.ptml_hash is None:
            continue
        record = facts.lookup(node.ptml_hash, current)
        if record is not None:
            seeded[qualified] = record.summary
            report.summaries[qualified] = record.summary
            if record.verified:
                cached_verified.add(qualified)
    report.reused = len(seeded)

    # ---- broken frozen bindings (TAM111) — linking these functions fails
    for qualified, free_name, target in sorted(graph.broken):
        report.diagnostics.append(Diagnostic(
            code="TAM111",
            severity=Severity.ERROR,
            message=(
                f"external reference {free_name!r} resolves to {target!r}, "
                "which the stored target module does not define"
            ),
            subject=qualified,
        ))

    # ---- structural verification (skipped for cached-verified functions)
    clean: set[str] = set(cached_verified)
    for qualified, node in sorted(graph.nodes.items()):
        if qualified in cached_verified:
            continue
        found = verify_code(node.code, name=qualified)
        report.diagnostics.extend(found)
        if not any(d.severity is Severity.ERROR for d in found):
            clean.add(qualified)

    # ---- interprocedural abstract interpretation over the rest
    analyses = summarize_graph(graph, registry=registry, seeded=seeded)
    report.analyzed = len(analyses)
    for qualified, fa in sorted(analyses.items()):
        report.summaries[qualified] = fa.summary
        report.diagnostics.extend(fa.diagnostics)
        if any(d.severity is Severity.ERROR for d in fa.diagnostics):
            clean.discard(qualified)

    # ---- effect-class conformance (TAM105): code effect <= PTML effect
    for qualified, fa in sorted(analyses.items()):
        node = graph.nodes[qualified]
        term_effect = _ptml_effect(heap, node.code, registry)
        if term_effect is None:
            continue
        code_effect = EffectClass(fa.summary.effect)
        if EFFECT_RANK[code_effect] > EFFECT_RANK[term_effect]:
            clean.discard(qualified)
            report.diagnostics.append(Diagnostic(
                code="TAM105",
                severity=Severity.ERROR,
                message=(
                    f"stored code has effect class {code_effect.value!r} but "
                    f"its persistent TML admits at most {term_effect.value!r}: "
                    "the code does not implement its own source"
                ),
                subject=qualified,
                data={"code": code_effect.value, "term": term_effect.value},
            ))

    # ---- reachability from the export surface (TAM110)
    reachable = graph.reachable_from_exports()
    for qualified in sorted(set(graph.nodes) - reachable):
        report.diagnostics.append(Diagnostic(
            code="TAM110",
            severity=Severity.WARNING,
            message=(
                "stored function is unreachable from every module's export "
                "surface: dead code in the image"
            ),
            subject=qualified,
        ))

    # ---- orphan entries in the server's compiled-code cache
    report.cache_codes = _audit_code_cache(heap, current, registry, report)

    # ---- install fresh facts for clean functions, then flush
    if update_facts:
        transitive = _transitive_deps(graph)
        for qualified, fa in analyses.items():
            node = graph.nodes[qualified]
            if node.ptml_hash is None or qualified not in clean:
                continue
            deps = tuple(
                (dep, current.get(dep))
                for dep in sorted(transitive.get(qualified, ()))
                if dep != qualified
            )
            facts.install(FactRecord(
                key=node.ptml_hash,
                name=qualified,
                summary=fa.summary,
                verified=True,
                deps=deps,
            ))
        facts.flush(heap)

    report.wall_s = time.perf_counter() - start
    return report


def _ptml_effect(heap, code, registry) -> EffectClass | None:
    """Effect class admitted by a code object's persistent TML, if loadable."""
    ref = code.ptml_ref
    if ref is None:
        return None
    if not isinstance(ref, Blob):
        try:
            ref = heap.load(ref)
        except Exception:
            return None
        if not isinstance(ref, Blob):
            return None
    try:
        decoded = decode_ptml(ref)
        return infer_effect(decoded.term, registry)
    except Exception:
        return None


def _transitive_deps(graph: ImageGraph) -> dict[str, set[str]]:
    """qualified -> every function its summary may depend on (transitively)."""
    # plain fixpoint: correct through cycles, and image graphs are small
    closure: dict[str, set[str]] = {
        q: set(graph.edges.get(q, ())) for q in graph.nodes
    }
    changed = True
    while changed:
        changed = False
        for q, deps in closure.items():
            grown = set(deps)
            for callee in graph.edges.get(q, ()):
                grown |= closure.get(callee, set())
            if grown != deps:
                closure[q] = grown
                changed = True
    return closure


def _audit_code_cache(heap, current, registry, report) -> int:
    """Verify + analyze cache codes whose hash no stored module carries."""
    from repro.server.codecache import CACHE_ROOT

    oid = heap.root(CACHE_ROOT)
    if oid is None:
        return 0
    try:
        stored = heap.load(oid)
    except Exception:
        return 0
    if not isinstance(stored, dict):
        return 0
    live_hashes = set(current.values())
    audited = 0
    for key, code in sorted(stored.items()):
        if not isinstance(key, str) or key in live_hashes:
            continue
        audited += 1
        label = f"code-cache:{key[:12]}"
        found = verify_code(code, name=label)
        report.diagnostics.extend(found)
        if not any(d.severity is Severity.ERROR for d in found):
            fa = analyze_code(code, name=label, registry=registry)
            report.diagnostics.extend(fa.diagnostics)
    return audited
