"""Fixpoint abstract interpretation over TAM code (value kinds + effects).

The paper's §6 concession — dynamic binding of library code defeats *local*
optimization — is what this module beats: with every code object resident in
the store, analysis does not stop at a function's free variables.  A
*family* (one materialized root code object plus its nested continuation
codes) is interpreted abstractly over a value-kind lattice, and calls
through statically-frozen bindings are resolved against interprocedural
:class:`Summary` facts, iterated to a fixpoint over the image call graph
(:mod:`repro.analysis.callgraph`).

The value lattice::

        int  float  str  bool  char  nil  cons  array  closure/k
          \\____\\_____\\____|_____/_____/_____/_____|______/
                              TOP            closure/k <= closure/? <= TOP
                 (BOT below everything: unreachable)

Abstract values additionally carry *provenance*: the root procedure's two
top continuations (``cc``/``ce``, mirroring how :meth:`VM.call` appends the
``_TopCont`` sentinels), locally-created closures (so a continuation
materialized into its own code object is analyzed with the register kinds
live at its creation site), resolved call-graph callees, and the set of
captured free slots a value derives from (escape analysis).

Soundness contract (pinned by the differential property suite): for any
terminating VM run of a procedure, the kind of the observed result value is
``<=`` the analysis' predicted ``result ⊔ halts`` lattice value.

The handler-depth half of the state is a small-set lattice (possible depths
relative to function entry, widened to ⊤): it both powers the precise
``TAM020`` check in :mod:`repro.analysis.verify_tam` and yields the
``handler-depth delta`` component of summaries.  Unknown callees are
assumed handler-depth neutral (they invoke the continuations they were
passed at the depth of the call site); resolved callees use their
summarized delta.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.effects import effect_join as _effect_join
from repro.core.names import Name
from repro.core.syntax import Char, Oid, Unit
from repro.machine.isa import CodeObject
from repro.primitives.effects import EffectClass

__all__ = [
    "Kind",
    "AbsVal",
    "Summary",
    "FunctionAnalysis",
    "BOT",
    "TOP",
    "INT",
    "FLOAT",
    "STR",
    "BOOL",
    "CHAR",
    "NIL",
    "CONS",
    "ARRAY",
    "closure_kind",
    "join_kind",
    "kind_le",
    "kind_of_value",
    "kind_from_token",
    "analyze_code",
    "handler_diagnostics",
    "summarize_graph",
]

# ---------------------------------------------------------------------------
# the value-kind lattice
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class Kind:
    """One element of the value-kind lattice.

    ``arity`` is set only for ``closure`` kinds: ``closure/3`` is a closure
    of exactly three parameters, ``closure/?`` (arity None) a closure of
    unknown arity.
    """

    tag: str
    arity: int | None = None

    @property
    def token(self) -> str:
        """Stable string form, used by persisted facts (``closure/3``)."""
        if self.tag == "closure" and self.arity is not None:
            return f"closure/{self.arity}"
        return self.tag

    def __str__(self) -> str:
        return self.token


BOT = Kind("bot")
INT = Kind("int")
FLOAT = Kind("float")
STR = Kind("str")
BOOL = Kind("bool")
CHAR = Kind("char")
NIL = Kind("nil")  # the unit value
CONS = Kind("cons")  # foreign pair/sequence values
ARRAY = Kind("array")  # TmlArray / TmlVector / TmlByteArray
TOP = Kind("top")

_ATOMS = {k.tag: k for k in (INT, FLOAT, STR, BOOL, CHAR, NIL, CONS, ARRAY)}


def closure_kind(arity: int | None = None) -> Kind:
    return Kind("closure", arity)


def join_kind(a: Kind, b: Kind) -> Kind:
    if a == b:
        return a
    if a.tag == "bot":
        return b
    if b.tag == "bot":
        return a
    if a.tag == "closure" and b.tag == "closure":
        return closure_kind(None)
    return TOP


def kind_le(a: Kind, b: Kind) -> bool:
    """``a`` is at or below ``b`` in the lattice."""
    if a == b or a.tag == "bot" or b.tag == "top":
        return True
    if a.tag == "closure" and b.tag == "closure":
        return b.arity is None
    return False


def kind_from_token(token: str) -> Kind:
    if token.startswith("closure"):
        _, _, arity = token.partition("/")
        return closure_kind(int(arity) if arity else None)
    if token == "bot":
        return BOT
    if token == "top":
        return TOP
    kind = _ATOMS.get(token)
    if kind is None:
        return TOP  # facts written by a newer schema: degrade soundly
    return kind


def kind_of_value(value) -> Kind:
    """Classify a concrete runtime value (the VM side of the soundness bet)."""
    # bool first: Python bools are ints, TAM booleans are not
    if value is True or value is False:
        return BOOL
    if type(value) is int:
        return INT
    if isinstance(value, float):
        return FLOAT
    if isinstance(value, str):
        return STR
    if isinstance(value, Char):
        return CHAR
    if isinstance(value, Unit):
        return NIL
    if isinstance(value, (tuple, list)):
        return CONS
    type_name = type(value).__name__
    if type_name in ("TmlArray", "TmlVector", "TmlByteArray"):
        return ARRAY
    if type_name == "VMClosure":
        return closure_kind(len(value.code.params))
    if isinstance(value, Oid):
        return TOP  # a store reference: loaded lazily, kind unknown
    return TOP


# ---------------------------------------------------------------------------
# abstract values
# ---------------------------------------------------------------------------

_EMPTY = frozenset()


@dataclass(frozen=True, slots=True)
class AbsVal:
    """A lattice value plus provenance the interprocedural layer exploits."""

    kind: Kind
    #: "normal" / "exc" when this is the root procedure's top continuation
    cont: str | None = None
    #: family index of a locally-created closure's code object
    code: int | None = None
    #: qualified name of a call-graph-resolved function binding
    callee: str | None = None
    #: root free slots this value (may) derive from — escape analysis
    slots: frozenset = _EMPTY


def _joinv(a: AbsVal, b: AbsVal) -> AbsVal:
    if a == b:
        return a
    if a.kind.tag == "bot" and not (a.cont or a.code is not None or a.callee):
        return replace(b, slots=a.slots | b.slots) if a.slots else b
    if b.kind.tag == "bot" and not (b.cont or b.code is not None or b.callee):
        return replace(a, slots=a.slots | b.slots) if b.slots else a
    slots = a.slots | b.slots
    if a.cont == b.cont and a.code == b.code and a.callee == b.callee:
        return AbsVal(
            join_kind(a.kind, b.kind), cont=a.cont, code=a.code,
            callee=a.callee, slots=slots,
        )
    # differing provenance: drop it, keep the kind join
    return AbsVal(join_kind(a.kind, b.kind), slots=slots)


_BOTV = AbsVal(BOT)
_TOPV = AbsVal(TOP)


# ---------------------------------------------------------------------------
# handler-depth lattice: small sets of possible depths, widened to ⊤
# ---------------------------------------------------------------------------

_DTOP = "⊤"  # unknown / unbounded depth
_DEPTH_LIMIT = 8


def _join_depths(a, b):
    if a is _DTOP or b is _DTOP:
        return _DTOP
    joined = a | b
    if len(joined) > _DEPTH_LIMIT or any(abs(d) > 64 for d in joined):
        return _DTOP
    return joined


def _shift_depths(depths, delta: int):
    if depths is _DTOP:
        return _DTOP
    return frozenset(d + delta for d in depths)


# ---------------------------------------------------------------------------
# summaries
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Summary:
    """Per-closure analysis facts, serializable for the persisted fact cache.

    Kinds are stored as tokens (``int``, ``closure/3``, ``top``) so records
    survive in the image without custom codecs.  ``ret_deltas`` is the set
    of possible net handler-depth changes observed at result delivery
    (``None`` = unknown); ``escapes`` lists captured free-slot indices that
    may leak out of the closure (stored into arrays, raised, passed to
    unresolved callees).
    """

    name: str
    arity: int
    is_proc: bool
    result: str = "top"
    halts: str = "bot"
    raises: str = "top"
    effect: str = EffectClass.UNKNOWN.value
    ret_deltas: tuple[int, ...] | None = None
    escapes: tuple[int, ...] = ()

    @property
    def observable(self) -> Kind:
        """What a top-level caller can see: result via cc or a halt."""
        return join_kind(kind_from_token(self.result), kind_from_token(self.halts))

    @staticmethod
    def top(name: str, arity: int, is_proc: bool = True) -> "Summary":
        return Summary(name=name, arity=arity, is_proc=is_proc)

    @staticmethod
    def bottom(name: str, arity: int, is_proc: bool = True) -> "Summary":
        return Summary(
            name=name, arity=arity, is_proc=is_proc,
            result="bot", halts="bot", raises="bot",
            effect=EffectClass.PURE.value, ret_deltas=(), escapes=(),
        )

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "arity": self.arity,
            "is_proc": self.is_proc,
            "result": self.result,
            "halts": self.halts,
            "raises": self.raises,
            "effect": self.effect,
            "ret_deltas": self.ret_deltas,
            "escapes": self.escapes,
        }

    @staticmethod
    def from_dict(data: dict) -> "Summary":
        deltas = data.get("ret_deltas")
        return Summary(
            name=str(data.get("name", "?")),
            arity=int(data.get("arity", 0)),
            is_proc=bool(data.get("is_proc", True)),
            result=str(data.get("result", "top")),
            halts=str(data.get("halts", "top")),
            raises=str(data.get("raises", "top")),
            effect=str(data.get("effect", EffectClass.UNKNOWN.value)),
            ret_deltas=tuple(int(d) for d in deltas) if deltas is not None else None,
            escapes=tuple(int(i) for i in data.get("escapes", ())),
        )


@dataclass
class FunctionAnalysis:
    """Everything one family analysis produced."""

    summary: Summary
    diagnostics: list[Diagnostic] = field(default_factory=list)
    #: qualified names of call-graph bindings the summary may depend on
    deps: tuple[str, ...] = ()


# ---------------------------------------------------------------------------
# per-opcode effect contribution — deliberately mirrors the *registry's*
# declared effect of the primitive each opcode implements (Fig. 2 parity), so
# honestly-compiled code never exceeds its term's inferred effect (TAM105)
# ---------------------------------------------------------------------------

_OP_EFFECTS: dict[str, EffectClass] = {
    "arr": EffectClass.ALLOC,
    "vec": EffectClass.ALLOC,
    "anew": EffectClass.ALLOC,
    "bnew": EffectClass.ALLOC,
    "aget": EffectClass.READ,
    "bget": EffectClass.READ,
    "asize": EffectClass.READ,
    "aset": EffectClass.WRITE,
    "bset": EffectClass.WRITE,
    "amove": EffectClass.WRITE,
    "bmove": EffectClass.WRITE,
    "print": EffectClass.IO,
    "pushh": EffectClass.CONTROL,
    "poph": EffectClass.CONTROL,
    "raise": EffectClass.CONTROL,
    "trapc": EffectClass.CONTROL,
    "halt": EffectClass.CONTROL,
    "ccall": EffectClass.UNKNOWN,
}

#: severity of the precise handler-depth finding (satellite of PR 6: TAM020
#: went from best-effort INFO to a per-path proof, so a report now means a
#: ``poph`` provably reachable at depth <= 0 from function entry)
HANDLER_SEVERITY = Severity.WARNING

#: arithmetic / comparison / bit opcodes requiring int operands
_INT_OPS = {
    "add", "sub", "mul", "div", "rem", "lt", "gt", "le", "ge",
    "band", "bor", "bxor", "shl", "shr",
}


class _Family:
    """Abstract interpretation of one root code object and its nested codes."""

    def __init__(
        self,
        root: CodeObject,
        name: str,
        bindings: dict[Name, AbsVal] | None,
        summaries: dict[str, Summary] | None,
        registry=None,
        arg_kinds: tuple[Kind, ...] | None = None,
    ):
        self.root = root
        self.name = name
        self.bindings = bindings or {}
        self.summaries = summaries or {}
        self.registry = registry
        self.arg_kinds = arg_kinds
        # family codes by identity, preorder, with verifier-style paths
        self.codes: list[CodeObject] = []
        self.paths: list[str] = []
        self.index: dict[int, int] = {}
        stack: list[tuple[CodeObject, str]] = [(root, self.name)]
        while stack:
            code, path = stack.pop()
            self.index[id(code)] = len(self.codes)
            self.codes.append(code)
            self.paths.append(path)
            for child_index in range(len(code.codes) - 1, -1, -1):
                stack.append(
                    (code.codes[child_index], f"{path}.codes[{child_index}]")
                )
        n = len(self.codes)
        self.entry_params: list[list[AbsVal] | None] = [None] * n
        self.entry_free: list[list[AbsVal] | None] = [None] * n
        self.entry_depths: list[object | None] = [None] * n
        #: per family code: per-pc (regs, depths) fixpoint state
        self.states: list[list[tuple[list[AbsVal], object] | None]] = [
            [None] * len(code.instrs) for code in self.codes
        ]
        self.result = BOT
        self.halts = BOT
        self.raises = BOT
        self.effect = EffectClass.PURE
        self.ret_deltas: object = frozenset()  # joined depth sets at cc calls
        self.escapes: set[int] = set()
        self.diagnostics: list[Diagnostic] = []
        self._reported: set[tuple[int, int, str]] = set()
        self.worklist: list[int] = []
        self._queued: set[int] = set()

    # ------------------------------------------------------------- plumbing

    def _warn(self, idx: int, pc: int, code: str, message: str,
              severity: Severity = Severity.ERROR, **data) -> None:
        key = (idx, pc, code)
        if key in self._reported:
            return
        self._reported.add(key)
        data.setdefault("pc", pc)
        self.diagnostics.append(Diagnostic(
            code=code, severity=severity, message=message,
            path=f"{self.paths[idx]}.instrs[{pc}]", data=data,
        ))

    def _enqueue(self, idx: int) -> None:
        if idx not in self._queued:
            self._queued.add(idx)
            self.worklist.append(idx)

    def _escape(self, val: AbsVal) -> None:
        if val.slots:
            self.escapes.update(val.slots)

    # -------------------------------------------------------------- running

    def run(self) -> None:
        root = self.root
        params: list[AbsVal] = []
        user_count = len(root.params) - 2 if root.is_proc else len(root.params)
        for position in range(len(root.params)):
            if root.is_proc and position == len(root.params) - 2:
                params.append(AbsVal(closure_kind(1), cont="exc"))
            elif root.is_proc and position == len(root.params) - 1:
                params.append(AbsVal(closure_kind(1), cont="normal"))
            elif self.arg_kinds is not None and position < len(self.arg_kinds):
                params.append(AbsVal(self.arg_kinds[position]))
            else:
                params.append(_TOPV)
        del user_count
        free: list[AbsVal] = []
        for slot, fname in enumerate(root.free_names):
            bound = self.bindings.get(fname, _TOPV)
            free.append(replace(bound, slots=bound.slots | {slot}))
        self.entry_params[0] = params
        self.entry_free[0] = free
        self.entry_depths[0] = frozenset({0})
        self._enqueue(0)
        guard = 0
        while self.worklist:
            guard += 1
            if guard > 200 * len(self.codes):  # widening safety net
                self.result = TOP
                self.halts = TOP
                self.raises = TOP
                self.effect = EffectClass.UNKNOWN
                self.ret_deltas = _DTOP
                break
            idx = self.worklist.pop()
            self._queued.discard(idx)
            self._analyze_one(idx)

    def _analyze_one(self, idx: int) -> None:
        code = self.codes[idx]
        if not code.instrs:
            return
        params = self.entry_params[idx] or []
        frees = self.entry_free[idx] or [_TOPV] * len(code.free_names)
        regs = [_BOTV] * code.nregs
        for position, val in enumerate(params[: code.nregs]):
            regs[position] = val
        entry = (regs, self.entry_depths[idx] if self.entry_depths[idx] is not None
                 else frozenset({0}))
        states = self.states[idx]
        self._join_into(states, 0, entry)
        # re-step every reachable pc: captured-free refinements reach `free`
        # instructions directly, without flowing through predecessor states
        pending = [pc for pc in range(len(code.instrs)) if states[pc] is not None]
        while pending:
            pc = pending.pop()
            state = states[pc]
            if state is None:
                continue
            for target, new_state in self._step(idx, code, pc, state, frees):
                if 0 <= target < len(code.instrs) and self._join_into(
                    states, target, new_state
                ):
                    pending.append(target)

    @staticmethod
    def _join_into(states, pc: int, incoming) -> bool:
        regs, depths = incoming
        existing = states[pc]
        if existing is None:
            states[pc] = (list(regs), depths)
            return True
        old_regs, old_depths = existing
        changed = False
        merged = list(old_regs)
        for position, val in enumerate(regs):
            joined = _joinv(old_regs[position], val)
            if joined != old_regs[position]:
                merged[position] = joined
                changed = True
        new_depths = _join_depths(old_depths, depths)
        if new_depths != old_depths:
            changed = True
        if changed:
            states[pc] = (merged, new_depths)
        return changed

    # ------------------------------------------------------------ transfer

    def _kind_ok(self, val: AbsVal, wanted: Kind) -> str:
        """'yes' definitely right, 'no' definitely wrong, 'maybe' otherwise."""
        tag = val.kind.tag
        if tag in ("top", "bot"):
            return "maybe"
        if wanted.tag == "closure":
            return "yes" if tag == "closure" else "no"
        return "yes" if tag == wanted.tag else "no"

    def _require(self, idx, pc, op, vals, wanted: Kind) -> bool:
        """False when the instruction provably traps (path dies here)."""
        for val in vals:
            if self._kind_ok(val, wanted) == "no":
                self._warn(
                    idx, pc, "TAM101",
                    f"opcode {op!r} applied to a value of kind "
                    f"{val.kind.token!r} (needs {wanted.token!r}): guaranteed "
                    "trap if this instruction executes",
                    op=op, found=val.kind.token, wanted=wanted.token,
                )
                self.raises = join_kind(self.raises, STR)
                return False
        return True

    def _step(self, idx, code, pc, state, frees):
        """Successor states of one instruction; records facts on the way."""
        regs, depths = state
        instr = code.instrs[pc]
        op = instr[0]
        contributed = _OP_EFFECTS.get(op)
        if contributed is not None:
            self.effect = _effect_join(self.effect, contributed)
        out: list[tuple[int, tuple[list[AbsVal], object]]] = []

        def fall(new_regs, new_depths=depths):
            out.append((pc + 1, (new_regs, new_depths)))

        def write(dst, val):
            new = list(regs)
            new[dst] = val
            return new

        if op == "const":
            # malformed operands are the structural verifier's diagnostics;
            # stay total here so audit can run both analyses over bad code
            if 0 <= instr[2] < len(code.consts):
                fall(write(instr[1], AbsVal(kind_of_value(code.consts[instr[2]]))))
            else:
                fall(write(instr[1], _TOPV))
        elif op == "move":
            fall(write(instr[1], regs[instr[2]]))
        elif op == "free":
            fall(write(instr[1], frees[instr[2]]))
        elif op == "closure":
            _, dst, child, plan = instr
            child_idx = self.index[id(code.codes[child])]
            captured = [
                regs[i] if kind == "r" else frees[i] for kind, i in plan
            ]
            self._record_creation(child_idx, captured)
            fall(write(dst, AbsVal(
                closure_kind(len(code.codes[child].params)), code=child_idx,
            )))
        elif op == "fix":
            new = list(regs)
            group = instr[1]
            for dst, child, _plan in group:
                child_idx = self.index[id(code.codes[child])]
                new[dst] = AbsVal(
                    closure_kind(len(code.codes[child].params)), code=child_idx
                )
            for _dst, child, plan in group:
                child_idx = self.index[id(code.codes[child])]
                captured = [
                    new[i] if kind == "r" else frees[i] for kind, i in plan
                ]
                self._record_creation(child_idx, captured)
            fall(new)
        elif op == "jump":
            out.append((instr[1], (list(regs), depths)))
        elif op in ("add", "sub", "mul", "div", "rem"):
            _, dst, ra, rb, epc, ed = instr
            if self._require(idx, pc, op, (regs[ra], regs[rb]), INT):
                fall(write(dst, AbsVal(INT)))
                out.append((epc, (write(ed, AbsVal(STR)), depths)))
        elif op in ("lt", "gt", "le", "ge"):
            _, ra, rb, else_pc = instr
            if self._require(idx, pc, op, (regs[ra], regs[rb]), INT):
                fall(list(regs))
                out.append((else_pc, (list(regs), depths)))
        elif op in ("band", "bor", "bxor", "shl", "shr"):
            _, dst, ra, rb = instr
            if self._require(idx, pc, op, (regs[ra], regs[rb]), INT):
                fall(write(dst, AbsVal(INT)))
        elif op == "bnot":
            if self._require(idx, pc, op, (regs[instr[2]],), INT):
                fall(write(instr[1], AbsVal(INT)))
        elif op == "c2i":
            if self._require(idx, pc, op, (regs[instr[2]],), CHAR):
                fall(write(instr[1], AbsVal(INT)))
        elif op == "i2c":
            if self._require(idx, pc, op, (regs[instr[2]],), INT):
                fall(write(instr[1], AbsVal(CHAR)))
        elif op in ("arr", "vec"):
            for i in instr[2]:
                self._escape(regs[i])
                self._maybe_escape_closure(regs[i])
            fall(write(instr[1], AbsVal(ARRAY)))
        elif op == "anew":
            if self._require(idx, pc, op, (regs[instr[2]],), INT):
                self._escape(regs[instr[3]])
                self._maybe_escape_closure(regs[instr[3]])
                fall(write(instr[1], AbsVal(ARRAY)))
        elif op == "bnew":
            if self._require(idx, pc, op, (regs[instr[2]], regs[instr[3]]), INT):
                fall(write(instr[1], AbsVal(ARRAY)))
        elif op == "aget":
            if self._require(idx, pc, op, (regs[instr[2]],), ARRAY) and \
               self._require(idx, pc, op, (regs[instr[3]],), INT):
                fall(write(instr[1], _TOPV))
        elif op == "aset":
            ok = self._require(idx, pc, op, (regs[instr[1]],), ARRAY) and \
                self._require(idx, pc, op, (regs[instr[2]],), INT)
            if ok:
                self._escape(regs[instr[3]])
                self._maybe_escape_closure(regs[instr[3]])
                fall(list(regs))
        elif op == "bget":
            if self._require(idx, pc, op, (regs[instr[2]],), ARRAY) and \
               self._require(idx, pc, op, (regs[instr[3]],), INT):
                fall(write(instr[1], AbsVal(INT)))
        elif op == "bset":
            if self._require(idx, pc, op, (regs[instr[1]],), ARRAY) and \
               self._require(idx, pc, op, (regs[instr[2]], regs[instr[3]]), INT):
                fall(list(regs))
        elif op == "asize":
            if self._require(idx, pc, op, (regs[instr[2]],), ARRAY):
                fall(write(instr[1], AbsVal(INT)))
        elif op in ("amove", "bmove"):
            arrays = (regs[instr[1]], regs[instr[3]])
            indexes = (regs[instr[2]], regs[instr[4]], regs[instr[5]])
            if self._require(idx, pc, op, arrays, ARRAY) and \
               self._require(idx, pc, op, indexes, INT):
                fall(list(regs))
        elif op == "case":
            _, _rs, _tags, pcs, else_pc = instr
            for target in pcs:
                out.append((target, (list(regs), depths)))
            if else_pc is not None:
                out.append((else_pc, (list(regs), depths)))
            else:
                self.raises = join_kind(self.raises, STR)
        elif op == "tailcall":
            self._tailcall(idx, pc, regs[instr[1]],
                           [regs[i] for i in instr[2]], depths)
        elif op == "pushh":
            handler = regs[instr[1]]
            self._escape(handler)
            # the handler runs only once it is back on top of the stack:
            # entry depth = depth before this push
            self._invoke(handler, [_TOPV], depths)
            fall(list(regs), _shift_depths(depths, 1))
        elif op == "poph":
            fall(list(regs), _shift_depths(depths, -1))
        elif op == "raise":
            self._escape(regs[instr[1]])
            self.raises = join_kind(self.raises, regs[instr[1]].kind)
        elif op == "ccall":
            _, dst, rf, rv, epc, ed = instr
            self._escape(regs[rv])
            fall(write(dst, _TOPV))
            out.append((epc, (write(ed, AbsVal(STR)), depths)))
        elif op == "extcall":
            _, ext_name, dst, arg_regs, epc, ed = instr
            for i in arg_regs:
                self._escape(regs[i])
                self._maybe_escape_closure(regs[i])
            ext_effect = EffectClass.UNKNOWN
            if self.registry is not None:
                prim = self.registry.get(ext_name)
                if prim is not None:
                    ext_effect = prim.attrs.effect
            self.effect = _effect_join(self.effect, ext_effect)
            fall(write(dst, _TOPV))
            if epc is not None:
                out.append((epc, (write(ed, _TOPV), depths)))
        elif op == "print":
            self._escape(regs[instr[1]])
            fall(list(regs))
        elif op == "halt":
            self.halts = join_kind(self.halts, regs[instr[1]].kind)
        elif op == "trapc":
            self.raises = join_kind(self.raises, kind_of_value(code.consts[instr[1]]))
        else:  # unknown opcode: the structural verifier reports it
            pass
        return out

    # ----------------------------------------------------------- call logic

    def _record_creation(self, child_idx: int, captured: list[AbsVal]) -> None:
        existing = self.entry_free[child_idx]
        if existing is None:
            self.entry_free[child_idx] = list(captured)
            return
        changed = False
        for slot, val in enumerate(captured):
            joined = _joinv(existing[slot], val)
            if joined != existing[slot]:
                existing[slot] = joined
                changed = True
        if changed and self.entry_params[child_idx] is not None:
            self._enqueue(child_idx)

    def _invoke(self, target: AbsVal, args: list[AbsVal], depths) -> None:
        """Record that ``target`` may be entered with ``args`` at ``depths``."""
        if target.cont == "normal":
            if args:
                self.result = join_kind(self.result, args[0].kind)
                for val in args:
                    self._escape(val)
            self.ret_deltas = _join_depths(self.ret_deltas, depths)
            return
        if target.cont == "exc":
            if args:
                self.raises = join_kind(self.raises, args[0].kind)
                for val in args:
                    self._escape(val)
            return
        if target.code is not None:
            child_idx = target.code
            code = self.codes[child_idx]
            if len(args) != len(code.params):
                return  # arityError at runtime; nothing propagates
            existing = self.entry_params[child_idx]
            changed = False
            if existing is None:
                self.entry_params[child_idx] = list(args)
                changed = True
            else:
                for slot, val in enumerate(args):
                    joined = _joinv(existing[slot], val)
                    if joined != existing[slot]:
                        existing[slot] = joined
                        changed = True
            old_depths = self.entry_depths[child_idx]
            new_depths = depths if old_depths is None else _join_depths(old_depths, depths)
            if new_depths != old_depths:
                self.entry_depths[child_idx] = new_depths
                changed = True
            if self.entry_free[child_idx] is None:
                self.entry_free[child_idx] = [_TOPV] * len(code.free_names)
            if changed:
                self._enqueue(child_idx)
            return
        if target.callee is not None:
            summary = self.summaries.get(target.callee)
            if summary is not None:
                self._apply_summary(target.callee, summary, args, depths)
                return
        # unknown callee: worst case for kinds, handler-depth neutral
        self._apply_unknown(args, depths)

    def _maybe_escape_closure(self, val: AbsVal) -> None:
        """A closure leaking into data may later be entered with anything."""
        if val.code is not None:
            code = self.codes[val.code]
            self._invoke(
                replace(val, slots=_EMPTY),
                [_TOPV] * len(code.params),
                _DTOP,
            )
        elif val.cont == "normal":
            self.result = TOP
            self.ret_deltas = _DTOP
        elif val.cont == "exc":
            self.raises = TOP

    def _apply_summary(self, callee: str, summary: Summary,
                       args: list[AbsVal], depths) -> None:
        if len(args) != summary.arity:
            self._warn(
                0, -1, "TAM102",
                f"call to {callee} with {len(args)} argument(s); its code "
                f"takes {summary.arity}: guaranteed arityError",
                callee=callee, got=len(args), wanted=summary.arity,
            )
            return
        self.effect = _effect_join(self.effect, EffectClass(summary.effect))
        self.halts = join_kind(self.halts, kind_from_token(summary.halts))
        if not summary.is_proc or len(args) < 2:
            self._apply_unknown(args, depths)
            return
        if summary.ret_deltas is None:
            ret_depths = _DTOP
        elif depths is _DTOP:
            ret_depths = _DTOP
        else:
            ret_depths = frozenset(
                d + delta for d in depths for delta in summary.ret_deltas
            )
            if len(ret_depths) > _DEPTH_LIMIT:
                ret_depths = _DTOP
        for val in args[:-2]:
            self._escape(val)
            self._maybe_escape_closure(val)
        self._invoke(args[-1], [AbsVal(kind_from_token(summary.result))], ret_depths)
        self._invoke(args[-2], [AbsVal(kind_from_token(summary.raises))], ret_depths)

    def _apply_unknown(self, args: list[AbsVal], depths) -> None:
        """Calling through an unresolved binding: havoc, but CPS-shaped.

        The callee is assumed to follow the calling convention (it enters
        the last two arguments as its continuations, handler-depth
        neutrally) and may do anything else: every other argument escapes
        and may be entered with arbitrary values at arbitrary depth.
        """
        self.effect = _effect_join(self.effect, EffectClass.UNKNOWN)
        for position, val in enumerate(args):
            self._escape(val)
            if len(args) >= 2 and position >= len(args) - 2:
                self._invoke(val, [_TOPV], depths)
            else:
                self._maybe_escape_closure(val)

    def _tailcall(self, idx, pc, target: AbsVal, args: list[AbsVal], depths) -> None:
        tag = target.kind.tag
        if tag not in ("closure", "top", "bot"):
            self._warn(
                idx, pc, "TAM101",
                f"tailcall enters a value of kind {target.kind.token!r}: "
                "guaranteed typeError if this instruction executes",
                op="tailcall", found=target.kind.token, wanted="closure",
            )
            self.raises = join_kind(self.raises, STR)
            return
        self._invoke(target, args, depths)

    # ------------------------------------------------------------- results

    def summary(self) -> Summary:
        deltas: tuple[int, ...] | None
        if self.ret_deltas is _DTOP:
            deltas = None
        else:
            deltas = tuple(sorted(self.ret_deltas))
        return Summary(
            name=self.name,
            arity=len(self.root.params),
            is_proc=bool(self.root.is_proc),
            result=self.result.token,
            halts=self.halts.token,
            raises=self.raises.token,
            effect=self.effect.value,
            ret_deltas=deltas,
            escapes=tuple(sorted(self.escapes)),
        )

    def handler_findings(self) -> list[Diagnostic]:
        """Precise TAM020: a ``poph`` provably reachable at depth <= 0."""
        found: list[Diagnostic] = []
        for idx, code in enumerate(self.codes):
            states = self.states[idx]
            for pc, instr in enumerate(code.instrs):
                if instr[0] != "poph":
                    continue
                state = states[pc]
                if state is None:
                    continue  # unreachable
                depths = state[1]
                if depths is _DTOP:
                    continue  # an escaped continuation: cannot prove anything
                bad = min(depths)
                if bad <= 0:
                    prefix = self.paths[idx]
                    found.append(Diagnostic(
                        code="TAM020",
                        severity=HANDLER_SEVERITY,
                        message=(
                            "popHandler can execute at handler depth "
                            f"{bad} relative to function entry: it pops a "
                            "handler installed by a caller"
                        ),
                        path=f"{prefix}.instrs[{pc}]",
                        data={"pc": pc, "depth": bad},
                    ))
        return found


# ---------------------------------------------------------------------------
# public API
# ---------------------------------------------------------------------------


def analyze_code(
    root: CodeObject,
    name: str | None = None,
    bindings: dict[Name, AbsVal] | None = None,
    summaries: dict[str, Summary] | None = None,
    registry=None,
    arg_kinds: tuple[Kind, ...] | None = None,
) -> FunctionAnalysis:
    """Abstractly interpret one code-object family.

    ``bindings`` maps the root's free names to abstract values (the call
    graph supplies resolved function references and constant kinds);
    ``summaries`` supplies interprocedural facts for those references;
    ``arg_kinds`` optionally specializes the root's user-parameter kinds
    (the "argument kinds → result kind" direction of a summary).
    """
    family = _Family(
        root, name or root.name, bindings, summaries, registry, arg_kinds
    )
    family.run()
    diagnostics = list(family.diagnostics)
    diagnostics.extend(family.handler_findings())
    deps = tuple(sorted({
        val.callee for val in (bindings or {}).values() if val.callee
    }))
    return FunctionAnalysis(
        summary=family.summary(), diagnostics=diagnostics, deps=deps
    )


def handler_diagnostics(root: CodeObject, path: str | None = None) -> list[Diagnostic]:
    """The handler-depth findings alone (used by the bytecode verifier)."""
    family = _Family(root, path or root.name, None, None, None, None)
    family.run()
    return family.handler_findings()


def summarize_graph(
    graph,
    registry=None,
    seeded: dict[str, Summary] | None = None,
) -> dict[str, FunctionAnalysis]:
    """Interprocedural fixpoint over an :class:`ImageGraph`.

    ``seeded`` summaries (e.g. valid cached facts) are taken as final and
    never recomputed; everything else starts at bottom and rises
    monotonically until stable.  Returns analyses for the non-seeded nodes.
    """
    seeded = seeded or {}
    summaries: dict[str, Summary] = dict(seeded)
    analyses: dict[str, FunctionAnalysis] = {}
    todo = [q for q in graph.nodes if q not in seeded]
    for q in todo:
        node = graph.nodes[q]
        summaries[q] = Summary.bottom(
            q, len(node.code.params), bool(node.code.is_proc)
        )
    reverse: dict[str, set[str]] = {q: set() for q in graph.nodes}
    for src, dsts in graph.edges.items():
        for dst in dsts:
            reverse.setdefault(dst, set()).add(src)
    pending = list(todo)
    queued = set(pending)
    rounds = 0
    limit = 50 * max(1, len(todo))
    while pending:
        rounds += 1
        q = pending.pop()
        queued.discard(q)
        node = graph.nodes[q]
        if rounds > limit:  # safety: widen instead of spinning
            analyses[q] = FunctionAnalysis(
                summary=Summary.top(q, len(node.code.params),
                                    bool(node.code.is_proc))
            )
            summaries[q] = analyses[q].summary
            continue
        fa = analyze_code(
            node.code,
            name=q,
            bindings=graph.bindings_for(q),
            summaries=summaries,
            registry=registry,
        )
        analyses[q] = fa
        if fa.summary != summaries.get(q):
            summaries[q] = fa.summary
            for dependent in reverse.get(q, ()):
                if dependent not in seeded and dependent not in queued:
                    queued.add(dependent)
                    pending.append(dependent)
    return analyses
