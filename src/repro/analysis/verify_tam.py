"""TAM bytecode verifier: abstract interpretation over :mod:`repro.machine.isa`.

Stored code outlives the compiler that produced it (the central risk of a
persistent code representation), so the linker verifies every code object
before it is persisted, loaded or executed.  Three phases per code object,
applied recursively to nested codes:

1. **structural** — every instruction is a known opcode with the right
   operand count and kinds; register / constant-pool / nested-code / jump
   operands are in range; closure capture plans match the child code's free
   slot count (``TAM001`` – ``TAM008``, ``TAM011``);
2. **control** — execution cannot fall off the end of the instruction
   stream: every path ends in a control transfer (``TAM009``);
3. **dataflow** — forward definite-assignment analysis over the CFG: a
   register read must be dominated by a definition (parameters define the
   leading registers; the exception edges of arithmetic, ``ccall`` and
   ``extcall`` define their error register on the branch target).  Reads of
   possibly-undefined registers are ``TAM010``.  A best-effort handler-depth
   analysis reports ``popHandler`` without a local ``pushHandler`` as INFO
   (``TAM020`` — legitimate when a continuation was materialized into its
   own closure).

The verifier accepts exactly what :mod:`repro.machine.codegen` emits and what
:mod:`repro.machine.vm` executes; the property suite pins both directions.
"""

from __future__ import annotations

from repro.analysis.absint import handler_diagnostics
from repro.analysis.diagnostics import (
    AnalysisError,
    Diagnostic,
    Severity,
)
from repro.machine.isa import CodeObject

__all__ = ["verify_code", "assert_verified", "TamVerificationError"]


class TamVerificationError(AnalysisError):
    """A code object failed bytecode verification."""


def assert_verified(root: CodeObject, name: str | None = None) -> CodeObject:
    """Verify ``root`` (and nested codes); raise on any error diagnostic."""
    found = verify_code(root, name=name)
    errors = [d for d in found if d.is_error]
    if errors:
        raise TamVerificationError(errors, context=name or root.name)
    return root


def verify_code(root: CodeObject, name: str | None = None) -> list[Diagnostic]:
    """All verifier diagnostics for ``root`` and its nested code objects."""
    found: list[Diagnostic] = []
    _verify_one(root, name or root.name, found)
    if not any(d.is_error for d in found):
        # handler-depth discipline (TAM020) is a *family-level* property:
        # a continuation materialized into its own code object legitimately
        # pops a handler its parent pushed, so per-code-object counting
        # cannot be precise.  The abstract interpreter tracks depth across
        # closure creation and continuation invocation and reports only
        # provable underflows (structurally-broken code is skipped — the
        # errors above already gate linking).
        found.extend(handler_diagnostics(root, name or root.name))
    return found


# ---------------------------------------------------------------------------
# per-opcode operand specifications
# ---------------------------------------------------------------------------

#: kinds: w=register write, r=register read, c=const index, k=code index,
#: pc=jump target, pc?=jump target or None, rs=tuple of register reads,
#: plan=closure capture plan, group=fix group, name=string, ew=register
#: written on the exception edge, ew?=the same but unused when pc? is None.
_SPECS: dict[str, tuple[str, ...]] = {
    "const": ("w", "c"),
    "move": ("w", "r"),
    "free": ("w", "f"),
    "closure": ("w", "k", "plan"),
    "fix": ("group",),
    "jump": ("pc",),
    "add": ("w", "r", "r", "pc", "ew"),
    "sub": ("w", "r", "r", "pc", "ew"),
    "mul": ("w", "r", "r", "pc", "ew"),
    "div": ("w", "r", "r", "pc", "ew"),
    "rem": ("w", "r", "r", "pc", "ew"),
    "lt": ("r", "r", "pc"),
    "gt": ("r", "r", "pc"),
    "le": ("r", "r", "pc"),
    "ge": ("r", "r", "pc"),
    "band": ("w", "r", "r"),
    "bor": ("w", "r", "r"),
    "bxor": ("w", "r", "r"),
    "shl": ("w", "r", "r"),
    "shr": ("w", "r", "r"),
    "bnot": ("w", "r"),
    "c2i": ("w", "r"),
    "i2c": ("w", "r"),
    "arr": ("w", "rs"),
    "vec": ("w", "rs"),
    "anew": ("w", "r", "r"),
    "bnew": ("w", "r", "r"),
    "aget": ("w", "r", "r"),
    "aset": ("r", "r", "r"),
    "bget": ("w", "r", "r"),
    "bset": ("r", "r", "r"),
    "asize": ("w", "r"),
    "amove": ("r", "r", "r", "r", "r"),
    "bmove": ("r", "r", "r", "r", "r"),
    "case": ("r", "rs", "pcs", "pc?"),
    "tailcall": ("r", "rs"),
    "pushh": ("r",),
    "poph": (),
    "raise": ("r",),
    "ccall": ("w", "r", "r", "pc", "ew"),
    "extcall": ("name", "w", "rs", "pc?", "ew?"),
    "print": ("r",),
    "halt": ("r",),
    "trapc": ("c",),
}

#: opcodes after which control never falls through to pc+1
_TERMINAL = {"jump", "case", "tailcall", "raise", "halt", "trapc"}


def _verify_one(code: CodeObject, path: str, found: list[Diagnostic]) -> None:
    before = len(found)
    _check_metadata(code, path, found)
    structural_ok = _check_instructions(code, path, found) and len(found) == before
    if structural_ok:
        _check_dataflow(code, path, found)
    for index, nested in enumerate(code.codes):
        _verify_one(nested, f"{path}.codes[{index}]", found)


def _err(
    found: list[Diagnostic],
    code: str,
    message: str,
    path: str,
    pc: int | None = None,
    severity: Severity = Severity.ERROR,
    **data,
) -> None:
    where = path if pc is None else f"{path}.instrs[{pc}]"
    if pc is not None:
        data.setdefault("pc", pc)
    found.append(
        Diagnostic(
            code=code, severity=severity, message=message, path=where, data=data
        )
    )


def _check_metadata(code: CodeObject, path: str, found: list[Diagnostic]) -> None:
    if code.nregs < len(code.params):
        _err(
            found,
            "TAM011",
            f"{code.nregs} registers cannot hold {len(code.params)} parameters",
            path,
        )
    if not code.instrs:
        _err(found, "TAM009", "empty instruction stream", path)


def _check_instructions(code: CodeObject, path: str, found: list[Diagnostic]) -> bool:
    """Structural phase; returns False when later phases would be unsafe."""
    ok = True
    nregs = code.nregs
    limit = len(code.instrs)
    for pc, instr in enumerate(code.instrs):
        if not isinstance(instr, tuple) or not instr:
            _err(found, "TAM001", f"not an instruction tuple: {instr!r}", path, pc)
            ok = False
            continue
        op = instr[0]
        spec = _SPECS.get(op)
        if spec is None:
            _err(found, "TAM001", f"unknown opcode {op!r}", path, pc, op=str(op))
            ok = False
            continue
        operands = instr[1:]
        if len(operands) != len(spec):
            _err(
                found,
                "TAM002",
                f"opcode {op!r} takes {len(spec)} operand(s), got {len(operands)}",
                path,
                pc,
                op=op,
            )
            ok = False
            continue
        for position, (kind, operand) in enumerate(zip(spec, operands)):
            if not _check_operand(
                kind, operand, position, op, code, nregs, limit, path, pc, found
            ):
                ok = False
    return ok


def _check_reg(value, what, op, nregs, path, pc, found) -> bool:
    if type(value) is not int:
        _err(
            found,
            "TAM003",
            f"opcode {op!r}: {what} must be a register index, got {value!r}",
            path,
            pc,
            op=op,
        )
        return False
    if not 0 <= value < nregs:
        _err(
            found,
            "TAM004",
            f"opcode {op!r}: register {value} out of range (nregs={nregs})",
            path,
            pc,
            op=op,
        )
        return False
    return True


def _check_pc(value, op, limit, path, pc, found) -> bool:
    if type(value) is not int:
        _err(
            found,
            "TAM003",
            f"opcode {op!r}: jump target must be an int, got {value!r}",
            path,
            pc,
            op=op,
        )
        return False
    if not 0 <= value < limit:
        _err(
            found,
            "TAM007",
            f"opcode {op!r}: jump target {value} out of range "
            f"({limit} instruction(s))",
            path,
            pc,
            op=op,
        )
        return False
    return True


def _check_plan(plan, child_index, op, code, path, pc, found) -> bool:
    """A capture plan: ((kind, index), ...) matching the child's free slots."""
    if not isinstance(plan, tuple):
        _err(found, "TAM003", f"opcode {op!r}: capture plan must be a tuple", path, pc)
        return False
    child = code.codes[child_index]
    if len(plan) != len(child.free_names):
        _err(
            found,
            "TAM008",
            f"opcode {op!r}: capture plan has {len(plan)} entries; child "
            f"{child.name!r} has {len(child.free_names)} free slot(s)",
            path,
            pc,
            op=op,
        )
        return False
    ok = True
    for entry in plan:
        if (
            not isinstance(entry, tuple)
            or len(entry) != 2
            or entry[0] not in ("r", "f")
        ):
            _err(
                found,
                "TAM008",
                f"opcode {op!r}: malformed capture-plan entry {entry!r}",
                path,
                pc,
                op=op,
            )
            ok = False
            continue
        kind, index = entry
        if kind == "r":
            ok = _check_reg(index, "capture source", op, code.nregs, path, pc, found) and ok
        elif type(index) is not int or not 0 <= index < len(code.free_names):
            _err(
                found,
                "TAM008",
                f"opcode {op!r}: capture plan reads free slot {index!r}; this "
                f"code has {len(code.free_names)} free slot(s)",
                path,
                pc,
                op=op,
            )
            ok = False
    return ok


def _check_operand(
    kind, operand, position, op, code, nregs, limit, path, pc, found
) -> bool:
    if kind in ("w", "r", "ew"):
        return _check_reg(operand, f"operand {position}", op, nregs, path, pc, found)
    if kind == "ew?":
        if operand is None:
            return True
        return _check_reg(operand, f"operand {position}", op, nregs, path, pc, found)
    if kind == "c":
        if type(operand) is not int or not 0 <= operand < len(code.consts):
            _err(
                found,
                "TAM005",
                f"opcode {op!r}: constant index {operand!r} out of range "
                f"({len(code.consts)} constant(s))",
                path,
                pc,
                op=op,
            )
            return False
        return True
    if kind == "k":
        if type(operand) is not int or not 0 <= operand < len(code.codes):
            _err(
                found,
                "TAM006",
                f"opcode {op!r}: nested-code index {operand!r} out of range "
                f"({len(code.codes)} nested code(s))",
                path,
                pc,
                op=op,
            )
            return False
        return True
    if kind == "f":
        if type(operand) is not int or not 0 <= operand < len(code.free_names):
            _err(
                found,
                "TAM004",
                f"opcode {op!r}: free slot {operand!r} out of range "
                f"({len(code.free_names)} free slot(s))",
                path,
                pc,
                op=op,
            )
            return False
        return True
    if kind == "pc":
        return _check_pc(operand, op, limit, path, pc, found)
    if kind == "pc?":
        if operand is None:
            return True
        return _check_pc(operand, op, limit, path, pc, found)
    if kind == "rs":
        if not isinstance(operand, tuple):
            _err(
                found,
                "TAM003",
                f"opcode {op!r}: operand {position} must be a register tuple",
                path,
                pc,
                op=op,
            )
            return False
        return all(
            _check_reg(r, "tuple element", op, nregs, path, pc, found)
            for r in operand
        )
    if kind == "pcs":
        if not isinstance(operand, tuple):
            _err(
                found,
                "TAM003",
                f"opcode {op!r}: operand {position} must be a pc tuple",
                path,
                pc,
                op=op,
            )
            return False
        return all(_check_pc(target, op, limit, path, pc, found) for target in operand)
    if kind == "plan":
        # the code index was validated just before (spec order: w, k, plan)
        child_index = None
        if op == "closure":
            child_index = code.instrs[pc][2]
            if type(child_index) is not int or not 0 <= child_index < len(code.codes):
                return False  # already reported by the k operand
        return _check_plan(operand, child_index, op, code, path, pc, found)
    if kind == "group":
        if not isinstance(operand, tuple) or not operand:
            _err(
                found,
                "TAM003",
                "opcode 'fix': group must be a non-empty tuple",
                path,
                pc,
                op=op,
            )
            return False
        ok = True
        for descriptor in operand:
            if not isinstance(descriptor, tuple) or len(descriptor) != 3:
                _err(
                    found,
                    "TAM003",
                    f"opcode 'fix': malformed group descriptor {descriptor!r}",
                    path,
                    pc,
                    op=op,
                )
                ok = False
                continue
            dst, child_index, plan = descriptor
            ok = _check_reg(dst, "fix target", op, nregs, path, pc, found) and ok
            if type(child_index) is not int or not 0 <= child_index < len(code.codes):
                _err(
                    found,
                    "TAM006",
                    f"opcode 'fix': nested-code index {child_index!r} out of "
                    f"range ({len(code.codes)} nested code(s))",
                    path,
                    pc,
                    op=op,
                )
                ok = False
                continue
            ok = _check_plan(plan, child_index, op, code, path, pc, found) and ok
        return ok
    if kind == "name":
        if not isinstance(operand, str) or not operand:
            _err(
                found,
                "TAM003",
                f"opcode {op!r}: extension name must be a non-empty string",
                path,
                pc,
                op=op,
            )
            return False
        return True
    raise AssertionError(f"unhandled operand kind {kind!r}")  # pragma: no cover


# ---------------------------------------------------------------------------
# control flow + definite assignment
# ---------------------------------------------------------------------------


def _instr_flow(instr: tuple) -> tuple[set, set, list, bool]:
    """``(uses, fallthrough_defs, branch_edges, falls_through)`` for one instr.

    ``branch_edges`` is a list of ``(target_pc, defs_on_edge)``.
    """
    op = instr[0]
    spec = _SPECS[op]
    uses: set[int] = set()
    defs: set[int] = set()
    branches: list[tuple[int, frozenset]] = []

    if op == "closure":
        uses = {i for kind, i in instr[3] if kind == "r"}
        defs = {instr[1]}
    elif op == "fix":
        group = instr[1]
        defs = {dst for dst, _k, _plan in group}
        # plan registers are read after all group targets are assigned, so
        # self-references are fine: treat the targets as defined first
        uses = {
            i
            for _dst, _k, plan in group
            for kind, i in plan
            if kind == "r" and i not in defs
        }
    elif op == "case":
        uses = {instr[1], *instr[2]}
        branches = [(target, frozenset()) for target in instr[3]]
        if instr[4] is not None:
            branches.append((instr[4], frozenset()))
    elif op == "tailcall":
        uses = {instr[1], *instr[2]}
    elif op == "extcall":
        uses = set(instr[3])
        defs = {instr[2]}
        if instr[4] is not None:
            branches = [(instr[4], frozenset({instr[5]}))]
    elif op == "jump":
        branches = [(instr[1], frozenset())]
    else:
        for kind, operand in zip(spec, instr[1:]):
            if kind == "r":
                uses.add(operand)
            elif kind == "w":
                defs.add(operand)
            elif kind == "rs":
                uses.update(operand)
        if "pc" in spec and "ew" in spec:  # arith / ccall exception edge
            epc = instr[1 + spec.index("pc")]
            ed = instr[1 + spec.index("ew")]
            branches = [(epc, frozenset({ed}))]
        elif "pc" in spec:  # comparisons: plain two-way branch
            branches = [(instr[1 + spec.index("pc")], frozenset())]

    falls_through = op not in _TERMINAL
    return uses, defs, branches, falls_through


def _check_dataflow(code: CodeObject, path: str, found: list[Diagnostic]) -> None:
    limit = len(code.instrs)
    flows = [_instr_flow(instr) for instr in code.instrs]

    # forward definite-assignment: IN[pc] = intersection over predecessors
    entry = frozenset(range(len(code.params)))
    defined_in: list[frozenset | None] = [None] * limit
    defined_in[0] = entry
    worklist = [0]
    while worklist:
        pc = worklist.pop()
        current = defined_in[pc]
        _uses, defs, branches, falls_through = flows[pc]
        # the regular destination register is written on the fallthrough path
        # only; exception edges carry just their own error-register def
        targets = [(target, current | edge_defs) for target, edge_defs in branches]
        if falls_through and pc + 1 < limit:
            targets.append((pc + 1, current | defs))
        for target, reaching in targets:
            existing = defined_in[target]
            updated = reaching if existing is None else existing & reaching
            if updated != existing:
                defined_in[target] = updated
                worklist.append(target)

    for pc, (uses, _defs, _branches, falls_through) in enumerate(flows):
        reached = defined_in[pc]
        if reached is None:
            continue  # unreachable; nothing to prove
        if falls_through and pc + 1 == limit:
            _err(
                found,
                "TAM009",
                f"control falls off the end after {code.instrs[pc][0]!r}",
                path,
                pc,
            )
        undefined = sorted(uses - reached)
        if undefined:
            _err(
                found,
                "TAM010",
                f"opcode {code.instrs[pc][0]!r} reads register(s) "
                f"{undefined} before any definition reaches them",
                path,
                pc,
                registers=tuple(undefined),
            )


