"""Fusion-safety certification for VM superinstruction candidates.

The profiler's dynamic pair counts (:class:`~repro.obs.profile.VMProfiler`,
``pairs``) say which *adjacent* opcode pairs dominate execution; this module
says which of them a tiering VM may legally fuse into one superinstruction.
The certificate is derived from the per-opcode trait table the VM itself is
checked against (:data:`repro.machine.isa.OPCODE_TRAITS`), and the claim is
deliberately strong — a certified pair ``(a, b)`` satisfies:

* **no observable intermediate state** — after ``a`` and before ``b`` there
  is nothing another observer could see: ``a`` neither writes memory, nor
  emits output, nor traps into a handler.  A fused implementation is free
  to reorder or combine the two register writes;
* **no error edge in the middle** — ``a`` cannot leave the instruction
  stream (no trap, no branch target, not terminal), so the fused opcode has
  exactly ``b``'s error behavior and ``b``'s successor set;
* **handler-depth neutral** — neither half touches the handler stack, so
  fusing cannot move a push/pop across an instruction boundary where a trap
  could unwind to the wrong handler.

That leaves ``const/move/free/closure/fix/arr/vec`` as legal first halves —
exactly the register-shuffling prefixes that dominate CPS bytecode — and
any known opcode as the second half (the pair inherits its behavior).

The empirical half of the contract lives in the fusion test suite: every
safety-relevant trait the certificate relies on is re-derived there by
running single instructions on a live VM and observing traps, output and
handler-stack movement.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.machine.isa import OPCODE_TRAITS

__all__ = [
    "CertifiedPair",
    "RejectedPair",
    "FusionReport",
    "certify_pair",
    "certify_pairs",
    "certify_profile",
]


@dataclass(frozen=True, slots=True)
class CertifiedPair:
    """A provably fusable adjacent opcode pair, with its dynamic weight."""

    first: str
    second: str
    count: int

    @property
    def name(self) -> str:
        return f"{self.first}+{self.second}"


@dataclass(frozen=True, slots=True)
class RejectedPair:
    first: str
    second: str
    count: int
    reason: str


@dataclass
class FusionReport:
    """Certification verdicts over one profile's hot pairs."""

    certified: list[CertifiedPair] = field(default_factory=list)
    rejected: list[RejectedPair] = field(default_factory=list)

    def as_dict(self) -> dict:
        return {
            "certified": [
                {"pair": [p.first, p.second], "count": p.count}
                for p in self.certified
            ],
            "rejected": [
                {"pair": [p.first, p.second], "count": p.count, "reason": p.reason}
                for p in self.rejected
            ],
        }


def certify_pair(first: str, second: str) -> str | None:
    """Why ``(first, second)`` may NOT fuse, or None when it is safe."""
    t1 = OPCODE_TRAITS.get(first)
    t2 = OPCODE_TRAITS.get(second)
    if t1 is None:
        return f"unknown opcode {first!r}"
    if t2 is None:
        return f"unknown opcode {second!r}"
    if t1.terminal:
        return "first op is terminal: control leaves the pair"
    if t1.branches:
        return "first op may branch: second op is not its unique successor"
    if t1.can_trap:
        return "first op may trap: error edge inside the pair"
    if t1.observable:
        return "first op emits observable output: intermediate state is visible"
    if t1.writes_memory:
        return "first op writes memory: intermediate state is visible"
    if t1.handler_delta != 0 or t2.handler_delta != 0:
        return "pair is not handler-depth neutral"
    return None


def certify_pairs(pairs: dict, top: int | None = None) -> FusionReport:
    """Certify ``{(first, second): count}`` pairs, hottest first."""
    report = FusionReport()
    ranked = sorted(pairs.items(), key=lambda item: (-item[1], item[0]))
    if top is not None:
        ranked = ranked[:top]
    for (first, second), count in ranked:
        reason = certify_pair(first, second)
        if reason is None:
            report.certified.append(CertifiedPair(first, second, int(count)))
        else:
            report.rejected.append(RejectedPair(first, second, int(count), reason))
    return report


def certify_profile(profiler, top: int = 16) -> FusionReport:
    """Certify a live profiler's hottest adjacent pairs."""
    pairs = getattr(profiler, "pairs", None) or {}
    return certify_pairs(dict(pairs), top=top)
