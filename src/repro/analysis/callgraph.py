"""The image-wide call graph over persistently stored TAM code.

Section 6 of the paper notes that dynamically-bound library code defeats
compile-time interprocedural analysis; the open-database answer is that the
bindings are *in the image*: every stored module records, per function, an
:class:`~repro.lang.cps.ExternalRef` for each captured free variable —
``sibling`` (same module) or ``import`` (another stored module's export).
Those references are frozen at store time, so the whole-image call graph is
static and exact, and interprocedural summaries
(:func:`repro.analysis.absint.summarize_graph`) can flow along it.

Nodes are qualified ``module.function`` names.  Exported constants become
typed value bindings; imports of modules absent from the image (data
modules registered at runtime, unlinked holes) are recorded as *unresolved*
and analyzed as ⊤.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.absint import AbsVal, Kind, closure_kind, kind_of_value
from repro.core.names import Name
from repro.machine.isa import CodeObject
from repro.store.ptml import ptml_key

__all__ = ["FunctionNode", "ImageGraph", "MODULE_ROOT_PREFIX"]

MODULE_ROOT_PREFIX = "module:"


@dataclass
class FunctionNode:
    """One stored function: its code plus frozen external bindings."""

    qualified: str
    module: str
    function: str
    code: CodeObject
    #: free Name -> ExternalRef (kind "sibling" | "import")
    externals: dict
    exported: bool = False
    #: sha256 of the function's PTML blob (None when none attached)
    ptml_hash: str | None = None


@dataclass
class ImageGraph:
    """Call graph of every function stored in one image."""

    nodes: dict[str, FunctionNode] = field(default_factory=dict)
    #: qualified constant name -> (value kind, value)
    constants: dict[str, Kind] = field(default_factory=dict)
    #: caller qualified -> set of callee qualified
    edges: dict[str, set[str]] = field(default_factory=dict)
    #: (caller qualified, free name string) pairs whose target module is not
    #: in the image at all (runtime data modules, unlinked holes) — analyzed ⊤
    unresolved: set = field(default_factory=set)
    #: (caller qualified, free name string, target qualified) refs into a
    #: stored module that has no such member: linking this function FAILS
    broken: set = field(default_factory=set)
    #: module -> tuple of exported member names (may include type names,
    #: which have no runtime artifact)
    exports: dict[str, tuple[str, ...]] = field(default_factory=dict)

    # ------------------------------------------------------------ builders

    @staticmethod
    def from_heap(heap) -> "ImageGraph":
        """Build the graph from every ``module:*`` root in an image."""
        from repro.lang.modules import StoredModule

        modules: dict[str, object] = {}
        for root_name in heap.root_names():
            if not root_name.startswith(MODULE_ROOT_PREFIX):
                continue
            try:
                stored = heap.load_root(root_name)
            except Exception:
                continue
            if isinstance(stored, StoredModule):
                modules[stored.name] = stored
        return ImageGraph.from_modules(modules, heap=heap)

    @staticmethod
    def from_system(system) -> "ImageGraph":
        """Build the graph from a live :class:`TycoonSystem`'s image."""
        return ImageGraph.from_heap(system.heap)

    @staticmethod
    def from_modules(modules: dict, heap=None) -> "ImageGraph":
        """Build from module objects (stored or freshly compiled).

        Accepts :class:`~repro.lang.modules.StoredModule` (functions as
        ``(name, code, externals)`` tuples) and
        :class:`~repro.lang.modules.CompiledModule` (functions as a dict of
        :class:`CompiledFunction`), mixed freely.
        """
        graph = ImageGraph()
        for module_name, module in modules.items():
            exports = tuple(getattr(module, "exports", ()) or ())
            graph.exports[module_name] = exports
            exported = set(exports)
            for fn_name, code, externals in _functions_of(module):
                qualified = f"{module_name}.{fn_name}"
                graph.nodes[qualified] = FunctionNode(
                    qualified=qualified,
                    module=module_name,
                    function=fn_name,
                    code=code,
                    externals=dict(externals),
                    exported=fn_name in exported,
                    ptml_hash=ptml_key(code, heap),
                )
            for const_name, value in getattr(module, "constants", {}).items():
                graph.constants[f"{module_name}.{const_name}"] = kind_of_value(value)
        graph._resolve_edges()
        return graph

    def _resolve_edges(self) -> None:
        stored_modules = {node.module for node in self.nodes.values()}
        stored_modules.update(q.rsplit(".", 1)[0] for q in self.constants)
        stored_modules.update(self.exports)
        for qualified, node in self.nodes.items():
            targets: set[str] = set()
            for free_name, ref in node.externals.items():
                resolved = self._resolve_ref(node.module, ref)
                if resolved is None:
                    self.unresolved.add((qualified, str(free_name)))
                elif resolved in self.nodes:
                    targets.add(resolved)
                elif resolved in self.constants:
                    pass
                else:
                    target_module = resolved.rsplit(".", 1)[0]
                    if ref.kind == "sibling" or target_module in stored_modules:
                        self.broken.add((qualified, str(free_name), resolved))
                    else:
                        self.unresolved.add((qualified, str(free_name)))
            self.edges[qualified] = targets

    def _resolve_ref(self, module: str, ref) -> str | None:
        if ref is None:
            return None
        if ref.kind == "sibling":
            return f"{module}.{ref.member}"
        return f"{ref.module}.{ref.member}"

    # ------------------------------------------------------------- queries

    def bindings_for(self, qualified: str) -> dict[Name, AbsVal]:
        """Abstract values for one node's free names, call-graph resolved."""
        node = self.nodes[qualified]
        bindings: dict[Name, AbsVal] = {}
        for free_name, ref in node.externals.items():
            resolved = self._resolve_ref(node.module, ref)
            if resolved is not None:
                target = self.nodes.get(resolved)
                if target is not None:
                    bindings[free_name] = AbsVal(
                        closure_kind(len(target.code.params)), callee=resolved
                    )
                    continue
                const_kind = self.constants.get(resolved)
                if const_kind is not None:
                    bindings[free_name] = AbsVal(const_kind)
                    continue
            # unresolved import: worst case
        return bindings

    def reachable_from_exports(self) -> set[str]:
        """Qualified names reachable from any module's export surface."""
        seen: set[str] = set()
        stack = [q for q, node in self.nodes.items() if node.exported]
        while stack:
            q = stack.pop()
            if q in seen:
                continue
            seen.add(q)
            stack.extend(self.edges.get(q, ()))
        return seen

    def dangling_exports(self) -> list[tuple[str, str]]:
        """(module, member) exports that resolve to no function or constant."""
        missing: list[tuple[str, str]] = []
        for module, members in self.exports.items():
            for member in members:
                qualified = f"{module}.{member}"
                if qualified not in self.nodes and qualified not in self.constants:
                    missing.append((module, member))
        return missing

    def current_hashes(self) -> dict[str, str]:
        """qualified -> PTML hash, for nodes that have one."""
        return {
            q: node.ptml_hash
            for q, node in self.nodes.items()
            if node.ptml_hash is not None
        }

    def __len__(self) -> int:
        return len(self.nodes)


def _functions_of(module):
    """Normalize the two module shapes to (name, code, externals) triples."""
    functions = getattr(module, "functions", None)
    if isinstance(functions, dict):  # CompiledModule
        for fn_name, fn in functions.items():
            yield fn_name, fn.code, fn.externals
    elif functions is not None:  # StoredModule
        for fn_name, code, externals in functions:
            yield fn_name, code, externals
