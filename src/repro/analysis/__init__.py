"""Static verification layer for TML terms and TAM bytecode.

The paper states its invariants (section 2.2 constraints 1-5, section 2.3
effect classes, section 3 strict size decrease) but never enforces them
mechanically; this package does:

* :mod:`repro.analysis.diagnostics` — the shared :class:`Diagnostic` record,
  severities, stable ``TML``/``TAM`` codes;
* :mod:`repro.analysis.dataflow` — path-carrying traversals and a bottom-up
  analysis framework over TML trees;
* :mod:`repro.analysis.linearity` — continuation-linearity and arity
  analysis (constraints 1-5), the engine behind
  :mod:`repro.core.wellformed`;
* :mod:`repro.analysis.effects` — Gifford/Lucassen effect inference and
  registry attribute lint;
* :mod:`repro.analysis.usage` — dead bindings and unused parameters, feeding
  the expansion pass's savings estimate;
* :mod:`repro.analysis.verify_tam` — the TAM bytecode verifier run by the
  linker before code is persisted or executed;
* :mod:`repro.analysis.checked` — invariant re-verification after every
  optimizer pass (``optimize(..., check=True)``);
* :mod:`repro.analysis.lint` — the aggregate entry point behind
  ``python -m repro lint``;
* :mod:`repro.analysis.absint` — fixpoint abstract interpretation over TAM
  code families (value kinds, effects, handler depth, escapes);
* :mod:`repro.analysis.callgraph` — the image-wide call graph over frozen
  inter-module bindings;
* :mod:`repro.analysis.facts` — the persisted analysis-fact cache under
  heap root ``analysis:facts``;
* :mod:`repro.analysis.audit` — the whole-image audit behind
  ``python -m repro audit``;
* :mod:`repro.analysis.fusion` — the fusion-safety certifier for VM
  superinstruction candidates.
"""

from repro.analysis.absint import (
    AbsVal,
    FunctionAnalysis,
    Kind,
    Summary,
    analyze_code,
    handler_diagnostics,
    kind_of_value,
    summarize_graph,
)
from repro.analysis.audit import AuditReport, audit_heap, audit_image
from repro.analysis.callgraph import FunctionNode, ImageGraph
from repro.analysis.facts import FACTS_ROOT, FactRecord, FactStore
from repro.analysis.fusion import (
    FusionReport,
    certify_pair,
    certify_pairs,
    certify_profile,
)

from repro.analysis.diagnostics import (
    AnalysisError,
    Diagnostic,
    DIAGNOSTIC_CODES,
    Severity,
    format_diagnostics,
    format_path,
    has_errors,
    severity_counts,
)
from repro.analysis.effects import effect_join, effect_le, infer_effect
from repro.analysis.lint import lint_code, lint_function, lint_registry, lint_term
from repro.analysis.verify_tam import (
    TamVerificationError,
    assert_verified,
    verify_code,
)

__all__ = [
    "AnalysisError",
    "Diagnostic",
    "DIAGNOSTIC_CODES",
    "Severity",
    "TamVerificationError",
    "assert_verified",
    "effect_join",
    "effect_le",
    "format_diagnostics",
    "format_path",
    "has_errors",
    "infer_effect",
    "lint_code",
    "lint_function",
    "lint_registry",
    "lint_term",
    "severity_counts",
    "verify_code",
    # image-wide analysis (absint / callgraph / facts / audit / fusion)
    "AbsVal",
    "AuditReport",
    "FACTS_ROOT",
    "FactRecord",
    "FactStore",
    "FunctionAnalysis",
    "FunctionNode",
    "FusionReport",
    "ImageGraph",
    "Kind",
    "Summary",
    "analyze_code",
    "audit_heap",
    "audit_image",
    "certify_pair",
    "certify_pairs",
    "certify_profile",
    "handler_diagnostics",
    "kind_of_value",
    "summarize_graph",
]
