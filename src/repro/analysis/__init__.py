"""Static verification layer for TML terms and TAM bytecode.

The paper states its invariants (section 2.2 constraints 1-5, section 2.3
effect classes, section 3 strict size decrease) but never enforces them
mechanically; this package does:

* :mod:`repro.analysis.diagnostics` — the shared :class:`Diagnostic` record,
  severities, stable ``TML``/``TAM`` codes;
* :mod:`repro.analysis.dataflow` — path-carrying traversals and a bottom-up
  analysis framework over TML trees;
* :mod:`repro.analysis.linearity` — continuation-linearity and arity
  analysis (constraints 1-5), the engine behind
  :mod:`repro.core.wellformed`;
* :mod:`repro.analysis.effects` — Gifford/Lucassen effect inference and
  registry attribute lint;
* :mod:`repro.analysis.usage` — dead bindings and unused parameters, feeding
  the expansion pass's savings estimate;
* :mod:`repro.analysis.verify_tam` — the TAM bytecode verifier run by the
  linker before code is persisted or executed;
* :mod:`repro.analysis.checked` — invariant re-verification after every
  optimizer pass (``optimize(..., check=True)``);
* :mod:`repro.analysis.lint` — the aggregate entry point behind
  ``python -m repro lint``.
"""

from repro.analysis.diagnostics import (
    AnalysisError,
    Diagnostic,
    DIAGNOSTIC_CODES,
    Severity,
    format_diagnostics,
    format_path,
    has_errors,
    severity_counts,
)
from repro.analysis.effects import effect_join, effect_le, infer_effect
from repro.analysis.lint import lint_code, lint_function, lint_registry, lint_term
from repro.analysis.verify_tam import (
    TamVerificationError,
    assert_verified,
    verify_code,
)

__all__ = [
    "AnalysisError",
    "Diagnostic",
    "DIAGNOSTIC_CODES",
    "Severity",
    "TamVerificationError",
    "assert_verified",
    "effect_join",
    "effect_le",
    "format_diagnostics",
    "format_path",
    "has_errors",
    "infer_effect",
    "lint_code",
    "lint_function",
    "lint_registry",
    "lint_term",
    "severity_counts",
    "verify_code",
]
