"""Continuation-linearity and arity analysis (paper section 2.2, constraints 1-5).

The authoritative implementation of the five TML well-formedness constraints,
reported as path-carrying :class:`~repro.analysis.diagnostics.Diagnostic`
objects.  :mod:`repro.core.wellformed` is rebased on this module: it maps the
structural diagnostics back to its historical ``Violation`` records (keyed by
constraint number), so both APIs see exactly the same findings.

Constraint recap:

1. direct applications match the abstraction's arity, and continuation
   arguments form the suffix of a call;
2. primitive applications obey the registry's calling conventions;
3. continuations are second-class — they never escape into value positions;
4. unique binding across the whole tree;
5. abstractions used as values take exactly two continuation parameters
   (exception, normal) as a parameter-list suffix; the function handed to the
   ``Y`` fixpoint combinator is the sanctioned exception, ``λ(c0 v1..vn c)``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.analysis.dataflow import Path
from repro.analysis.diagnostics import Diagnostic, Severity, format_path
from repro.core.names import Name
from repro.core.syntax import Abs, App, Lit, PrimApp, Term, Var

if TYPE_CHECKING:  # pragma: no cover
    from repro.primitives.registry import PrimitiveRegistry

__all__ = ["analyze", "CONSTRAINT_OF_CODE", "Y_PRIM"]

Y_PRIM = "Y"

#: Paper constraint number behind each structural diagnostic code — the
#: bridge to repro.core.wellformed's Violation API.
CONSTRAINT_OF_CODE: dict[str, int] = {
    "TML001": 4,
    "TML002": 1,
    "TML003": 3,
    "TML004": 1,
    "TML005": 2,
    "TML006": 2,
    "TML007": 5,
    "TML008": 5,
    "TML009": 5,
    "TML010": 1,
}

#: Context flags describing how a node is used by its parent.
_CTX_ROOT = "root"
_CTX_FN = "fn"  # functional position of an App
_CTX_VALUE_ARG = "value-arg"  # argument position expecting a value
_CTX_CONT_ARG = "cont-arg"  # argument position expecting a continuation
_CTX_Y_FN = "y-fn"  # the abstraction argument of the Y primitive
_CTX_BODY = "body"  # body of an abstraction


def analyze(
    term: Term, registry: "PrimitiveRegistry | None" = None
) -> list[Diagnostic]:
    """All constraint 1-5 diagnostics for ``term`` (empty list: well-formed)."""
    found: list[Diagnostic] = []
    _check_unique_binding(term, found)
    _check_structure(term, registry, found)
    return found


def _diag(
    found: list[Diagnostic],
    code: str,
    message: str,
    path: Path,
    subject,
    hint: str = "",
    **data,
) -> None:
    found.append(
        Diagnostic(
            code=code,
            severity=Severity.ERROR,
            message=message,
            path=format_path(path),
            subject=subject,
            hint=hint,
            data={"constraint": CONSTRAINT_OF_CODE[code], **data},
        )
    )


# ---------------------------------------------------------------------------
# Constraint 4 — unique binding
# ---------------------------------------------------------------------------


def _check_unique_binding(term: Term, found: list[Diagnostic]) -> None:
    seen: dict[Name, Path] = {}
    stack: list[tuple[Term, Path]] = [(term, ())]
    while stack:
        node, path = stack.pop()
        if isinstance(node, Abs):
            for param in node.params:
                first = seen.get(param)
                if first is not None:
                    _diag(
                        found,
                        "TML001",
                        f"identifier {param} bound more than once "
                        f"(first binding at {format_path(first)})",
                        path,
                        param,
                        hint="alpha-rename the copy with a fresh NameSupply "
                        "(repro.core.substitution.alpha_rename)",
                    )
                else:
                    seen[param] = path
            stack.append((node.body, path + ("body",)))
        elif isinstance(node, App):
            stack.append((node.fn, path + ("fn",)))
            for index, arg in enumerate(node.args):
                stack.append((arg, path + (("args", index),)))
        elif isinstance(node, PrimApp):
            for index, arg in enumerate(node.args):
                stack.append((arg, path + (("args", index),)))


# ---------------------------------------------------------------------------
# Constraints 1, 2, 3, 5 — one context-aware walk
# ---------------------------------------------------------------------------


def _is_cont_value(node: Term) -> bool:
    """Continuation-sorted variable or continuation abstraction."""
    if isinstance(node, Var):
        return node.name.is_cont
    if isinstance(node, Abs):
        return node.is_cont_abs
    return False


def _check_structure(term, registry, found: list[Diagnostic]) -> None:
    stack: list[tuple[Term, str, Path]] = [(term, _CTX_ROOT, ())]
    while stack:
        node, ctx, path = stack.pop()

        if isinstance(node, Var):
            if node.name.is_cont and ctx == _CTX_VALUE_ARG:
                _diag(
                    found,
                    "TML003",
                    f"continuation variable {node.name} escapes into a "
                    "value position",
                    path,
                    node,
                    hint="continuations are second-class (constraint 3): pass "
                    "them only where a continuation is expected",
                )
        elif isinstance(node, Abs):
            _check_abs_shape(node, ctx, path, found)
            stack.append((node.body, _CTX_BODY, path + ("body",)))
        elif isinstance(node, App):
            if isinstance(node.fn, Abs) and node.fn.arity != len(node.args):
                _diag(
                    found,
                    "TML002",
                    f"direct application of a {node.fn.arity}-ary abstraction "
                    f"to {len(node.args)} arguments",
                    path,
                    node,
                    hint="supply one argument per parameter; the front end "
                    "guarantees this for typed calls",
                )
            stack.append((node.fn, _CTX_FN, path + ("fn",)))
            for index, arg in enumerate(node.args):
                # For a user application the callee's signature is unknown at
                # the IR level (the typed front end guarantees it); we accept
                # continuation values in any argument position but still
                # require continuation *suffix* discipline below.
                ctx_arg = _CTX_CONT_ARG if _is_cont_value(arg) else _CTX_VALUE_ARG
                stack.append((arg, ctx_arg, path + (("args", index),)))
            _check_cont_suffix(node.args, path, found)
        elif isinstance(node, PrimApp):
            cont_positions = _prim_cont_positions(node, registry, path, found)
            for index, arg in enumerate(node.args):
                if cont_positions is None:
                    ctx_arg = _CTX_CONT_ARG if _is_cont_value(arg) else _CTX_VALUE_ARG
                elif index in cont_positions:
                    ctx_arg = _CTX_CONT_ARG
                    if not _is_cont_value(arg) and not isinstance(arg, Var):
                        _diag(
                            found,
                            "TML006",
                            f"primitive {node.prim!r} expects a continuation "
                            f"at argument {index}",
                            path,
                            node,
                            hint="pass a continuation abstraction or a "
                            "continuation-sorted variable",
                            prim=node.prim,
                        )
                else:
                    ctx_arg = _CTX_VALUE_ARG
                if node.prim == Y_PRIM and index == 0:
                    ctx_arg = _CTX_Y_FN
                stack.append((arg, ctx_arg, path + (("args", index),)))
        elif isinstance(node, Lit):
            pass
        else:  # pragma: no cover - defensive
            _diag(found, "TML010", f"foreign object in tree: {node!r}", path, node)


def _check_abs_shape(node: Abs, ctx: str, path: Path, found: list[Diagnostic]) -> None:
    """Constraint 5 (proc shape); cont params may not be stored (constraint 3)."""
    cont_params = node.cont_params
    if not cont_params:
        return  # a continuation abstraction; any value parameters are fine

    if ctx == _CTX_Y_FN:
        # λ(c0 v1..vn c): leading and trailing continuation params.
        if not (node.params[0].is_cont and node.params[-1].is_cont):
            _diag(
                found,
                "TML009",
                "Y fixpoint function must have shape λ(c0 v1..vn c)",
                path,
                node,
                hint="first and last parameters must be continuation-sorted",
            )
        # The middle parameters v1..vn name the recursive bindings; the Y
        # combinator binds "procedures and/or continuations" (section 2.3) —
        # a while-loop binds a nullary continuation, for example — so any
        # sort is legal there.
        return

    # Constraint 5 restricts abstractions *used as values* ("not as
    # continuations and not in functional position of applications"): those
    # must take exactly two continuation parameters, exception then normal,
    # as the parameter-list suffix.  A λ in functional position of a direct
    # application may bind any mix (e.g. binding a handler continuation).
    exempt = ctx in (_CTX_FN, _CTX_BODY, _CTX_ROOT)
    if len(cont_params) != 2 and not exempt:
        _diag(
            found,
            "TML007",
            f"procedure abstraction takes {len(cont_params)} continuation "
            "parameters; exactly 2 (exception, normal) are required",
            path,
            node,
            hint="value procedures end in (ce cc): exception continuation, "
            "then normal continuation",
        )
    if not exempt and any(
        p.is_cont for p in node.params[: len(node.params) - len(cont_params)]
    ):
        _diag(
            found,
            "TML008",
            "continuation parameters must form the suffix of a procedure's "
            "parameter list",
            path,
            node,
            hint="move the continuation parameters to the end of the "
            "parameter list",
        )


def _check_cont_suffix(args, path: Path, found: list[Diagnostic]) -> None:
    """Continuation arguments of a user application must be a suffix.

    This is the tree-level shadow of constraint 1: the typed front end
    arranges calls as ``(f v1..vn ce cc)``.  A value argument following a
    continuation argument indicates a mangled call.
    """
    seen_cont = False
    for index, arg in enumerate(args):
        if _is_cont_value(arg):
            seen_cont = True
        elif seen_cont and not isinstance(arg, Var):
            # Abs values after a continuation are definitely mangled; plain
            # value vars after a cont var cannot occur for sorted names, and
            # literals cannot be continuations.
            kind = "literal" if isinstance(arg, Lit) else "value"
            _diag(
                found,
                "TML004",
                f"{kind} argument follows a continuation argument in an "
                "application",
                path + (("args", index),),
                arg,
                hint="reorder the call so continuations form the suffix "
                "(f v1..vn ce cc)",
            )


def _prim_cont_positions(node: PrimApp, registry, path: Path, found):
    """Return the set of continuation argument indices for this primitive call.

    ``None`` when no registry is supplied (positions unknown).  Also emits
    constraint-2 signature diagnostics.
    """
    if registry is None:
        return None
    try:
        prim = registry.lookup(node.prim)
    except KeyError:
        _diag(
            found,
            "TML005",
            f"unknown primitive {node.prim!r}",
            path,
            node,
            hint="register the primitive, or analyze against the registry "
            "the term was built for (e.g. query_registry())",
            prim=node.prim,
        )
        return None
    sig = prim.signature
    if not sig.accepts_arity(len(node.args)):
        _diag(
            found,
            "TML006",
            f"primitive {node.prim!r} called with {len(node.args)} arguments; "
            f"signature is {sig.describe()}",
            path,
            node,
            prim=node.prim,
        )
        return None
    return sig.cont_positions(len(node.args))
