"""The dynamically bound standard library.

Paper section 6: "even operations on integers and arrays are factored out
into dynamically bound libraries and therefore not amenable to local
optimization.  However, a move to dynamic (link-time or runtime)
optimization more than doubles the execution speed."

This module is that design decision: TL's arithmetic, comparison, array and
I/O operations compile to *calls* of the library procedures defined here —
tiny TML wrappers around the corresponding primitives.  At static compile
time the wrappers are free variables (the module binding is an abstraction
barrier); only the reflective runtime optimizer can inline them, which is
exactly the E1/E2 experiment.

Library procedures are built directly as TML terms, compiled like any other
code, and carry PTML so the runtime optimizer can splice their bodies.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.builder import TmlBuilder
from repro.core.names import NameSupply
from repro.core.syntax import Abs, App, Lit, PrimApp, Var
from repro.lang.types import BOOL, CHAR, FunSig, INT, ModuleInterface, UNIT, UNKNOWN

__all__ = [
    "StdFunction",
    "StdModuleDef",
    "build_stdlib",
    "stdlib_interfaces",
    "OP_FUNS",
    "BUILTIN_FUNS",
    "STDLIB_MODULE_NAMES",
]

#: TL operator → (stdlib module, function).  Every user-visible operator is a
#: dynamically bound library call (section 6).
OP_FUNS: dict[str, tuple[str, str]] = {
    "+": ("int", "add"),
    "-": ("int", "sub"),
    "*": ("int", "mul"),
    "/": ("int", "div"),
    "%": ("int", "mod"),
    "<": ("int", "lt"),
    ">": ("int", "gt"),
    "<=": ("int", "le"),
    ">=": ("int", "ge"),
    "==": ("int", "eq"),
    "!=": ("int", "ne"),
}

#: TL builtin identifier → (stdlib module, function, arity).
BUILTIN_FUNS: dict[str, tuple[str, str, int]] = {
    "array": ("arraylib", "new", 2),
    "size": ("arraylib", "size", 1),
    "copy": ("arraylib", "copy", 5),
    "print": ("io", "print", 1),
    "sqrt": ("math", "sqrt", 1),
    "ord": ("charlib", "ord", 1),
    "chr": ("charlib", "chr", 1),
    "neg": ("int", "neg", 1),
    "min": ("int", "min", 2),
    "max": ("int", "max", 2),
}

STDLIB_MODULE_NAMES = ("int", "arraylib", "io", "math", "charlib", "bits")


@dataclass(frozen=True)
class StdFunction:
    """One library procedure: its TML definition and interface signature."""

    name: str
    term: Abs
    sig: FunSig


@dataclass(frozen=True)
class StdModuleDef:
    name: str
    functions: tuple[StdFunction, ...]

    def interface(self) -> ModuleInterface:
        return ModuleInterface(
            name=self.name,
            functions={f.name: f.sig for f in self.functions},
        )


def _binop_prim(b: TmlBuilder, prim: str) -> Abs:
    """proc(a b ce cc)(prim a b ce cc) — arithmetic with exception cont."""
    a, v = b.val_name("a"), b.val_name("b")
    ce, cc = b.cont_name("ce"), b.cont_name("cc")
    return Abs((a, v, ce, cc), PrimApp(prim, (Var(a), Var(v), Var(ce), Var(cc))))


def _cmp_prim(b: TmlBuilder, prim: str) -> Abs:
    """proc(a b ce cc) — branch primitive reified into a boolean result."""
    a, v = b.val_name("a"), b.val_name("b")
    ce, cc = b.cont_name("ce"), b.cont_name("cc")
    then_c = Abs((), App(Var(cc), (Lit(True),)))
    else_c = Abs((), App(Var(cc), (Lit(False),)))
    return Abs((a, v, ce, cc), PrimApp(prim, (Var(a), Var(v), then_c, else_c)))


def _eq_fn(b: TmlBuilder, negate: bool) -> Abs:
    a, v = b.val_name("a"), b.val_name("b")
    ce, cc = b.cont_name("ce"), b.cont_name("cc")
    hit = Abs((), App(Var(cc), (Lit(not negate),)))
    miss = Abs((), App(Var(cc), (Lit(negate),)))
    return Abs((a, v, ce, cc), PrimApp("==", (Var(a), Var(v), hit, miss)))


def _neg_fn(b: TmlBuilder) -> Abs:
    a = b.val_name("a")
    ce, cc = b.cont_name("ce"), b.cont_name("cc")
    return Abs((a, ce, cc), PrimApp("-", (Lit(0), Var(a), Var(ce), Var(cc))))


def _minmax_fn(b: TmlBuilder, want_min: bool) -> Abs:
    a, v = b.val_name("a"), b.val_name("b")
    ce, cc = b.cont_name("ce"), b.cont_name("cc")
    first = Abs((), App(Var(cc), (Var(a),)))
    second = Abs((), App(Var(cc), (Var(v),)))
    prim = "<=" if want_min else ">="
    return Abs((a, v, ce, cc), PrimApp(prim, (Var(a), Var(v), first, second)))


def _wrap_simple(b: TmlBuilder, prim: str, nargs: int) -> Abs:
    """proc(v1..vn ce cc)(prim v1..vn cc) — single-continuation primitives."""
    values = [b.val_name(f"v{i}") for i in range(nargs)]
    ce, cc = b.cont_name("ce"), b.cont_name("cc")
    args = tuple(Var(v) for v in values) + (Var(cc),)
    return Abs(tuple(values) + (ce, cc), PrimApp(prim, args))


def _sqrt_fn(b: TmlBuilder) -> Abs:
    """Integer square root through the foreign world (``ccall "isqrt"``).

    The paper's abs example uses sqrt; Fig. 2 has no such primitive, so the
    library routes it through ``ccall`` like the original system routed
    libm.
    """
    a = b.val_name("a")
    ce, cc = b.cont_name("ce"), b.cont_name("cc")
    vec = b.val_name("vec")
    inner = PrimApp("ccall", (Lit("isqrt"), Var(vec), Var(ce), Var(cc)))
    return Abs((a, ce, cc), PrimApp("vector", (Var(a), Abs((vec,), inner))))


def build_stdlib(supply: NameSupply | None = None) -> dict[str, StdModuleDef]:
    """Construct fresh TML definitions for every stdlib module.

    A fresh supply per call keeps name uids disjoint from any user module
    compiled with its own supply in the same image? No — disjointness across
    compilation units is *not* required (each function term is a separate
    tree); the reflective optimizer alpha-renames on splice.
    """
    b = TmlBuilder(supply or NameSupply())
    int_t = (INT, INT)

    int_mod = StdModuleDef(
        "int",
        (
            StdFunction("add", _binop_prim(b, "+"), FunSig("add", int_t, INT)),
            StdFunction("sub", _binop_prim(b, "-"), FunSig("sub", int_t, INT)),
            StdFunction("mul", _binop_prim(b, "*"), FunSig("mul", int_t, INT)),
            StdFunction("div", _binop_prim(b, "/"), FunSig("div", int_t, INT)),
            StdFunction("mod", _binop_prim(b, "%"), FunSig("mod", int_t, INT)),
            StdFunction("lt", _cmp_prim(b, "<"), FunSig("lt", int_t, BOOL)),
            StdFunction("gt", _cmp_prim(b, ">"), FunSig("gt", int_t, BOOL)),
            StdFunction("le", _cmp_prim(b, "<="), FunSig("le", int_t, BOOL)),
            StdFunction("ge", _cmp_prim(b, ">="), FunSig("ge", int_t, BOOL)),
            StdFunction("eq", _eq_fn(b, False), FunSig("eq", (UNKNOWN, UNKNOWN), BOOL)),
            StdFunction("ne", _eq_fn(b, True), FunSig("ne", (UNKNOWN, UNKNOWN), BOOL)),
            StdFunction("neg", _neg_fn(b), FunSig("neg", (INT,), INT)),
            StdFunction("min", _minmax_fn(b, True), FunSig("min", int_t, INT)),
            StdFunction("max", _minmax_fn(b, False), FunSig("max", int_t, INT)),
        ),
    )

    array_mod = StdModuleDef(
        "arraylib",
        (
            StdFunction(
                "new", _wrap_simple(b, "new", 2), FunSig("new", (INT, UNKNOWN), UNKNOWN)
            ),
            StdFunction(
                "get",
                _wrap_simple(b, "[]", 2),
                FunSig("get", (UNKNOWN, INT), UNKNOWN),
            ),
            StdFunction(
                "set",
                _wrap_simple(b, "[]:=", 3),
                FunSig("set", (UNKNOWN, INT, UNKNOWN), UNIT),
            ),
            StdFunction(
                "size", _wrap_simple(b, "size", 1), FunSig("size", (UNKNOWN,), INT)
            ),
            StdFunction(
                "copy",
                _wrap_simple(b, "move", 5),
                FunSig("copy", (UNKNOWN, INT, UNKNOWN, INT, INT), UNIT),
            ),
        ),
    )

    io_mod = StdModuleDef(
        "io",
        (
            StdFunction(
                "print", _wrap_simple(b, "print", 1), FunSig("print", (UNKNOWN,), UNIT)
            ),
        ),
    )

    math_mod = StdModuleDef(
        "math",
        (StdFunction("sqrt", _sqrt_fn(b), FunSig("sqrt", (INT,), INT)),),
    )

    char_mod = StdModuleDef(
        "charlib",
        (
            StdFunction(
                "ord", _wrap_simple(b, "char2int", 1), FunSig("ord", (CHAR,), INT)
            ),
            StdFunction(
                "chr", _wrap_simple(b, "int2char", 1), FunSig("chr", (INT,), CHAR)
            ),
        ),
    )

    bits_mod = StdModuleDef(
        "bits",
        tuple(
            StdFunction(
                name, _wrap_simple(b, prim, 2), FunSig(name, int_t, INT)
            )
            for name, prim in (
                ("band", "band"),
                ("bor", "bor"),
                ("bxor", "bxor"),
                ("shl", "shl"),
                ("shr", "shr"),
            )
        )
        + (
            StdFunction(
                "bnot", _wrap_simple(b, "bnot", 1), FunSig("bnot", (INT,), INT)
            ),
        ),
    )

    return {
        m.name: m for m in (int_mod, array_mod, io_mod, math_mod, char_mod, bits_mod)
    }


_interfaces_cache: dict[str, ModuleInterface] | None = None


def stdlib_interfaces() -> dict[str, ModuleInterface]:
    """Compile-time interfaces of the standard library (cached)."""
    global _interfaces_cache
    if _interfaces_cache is None:
        _interfaces_cache = {
            name: definition.interface()
            for name, definition in build_stdlib().items()
        }
    return _interfaces_cache
