"""Abstract syntax of TL.

Declarations build modules; expressions are uniformly value-producing (TL is
expression-oriented: statements are expressions of type Unit, sequencing is
``begin e; e end``).  Every node carries a source position for diagnostics.

Type expressions are *annotations*: the checker uses them to resolve record
field accesses (the paper's ``complex.x`` example relies on the declared
``Tuple x,y`` type) and to sanity-check arities; they impose no further
static discipline — the TML level is untyped, as in the paper, where the
typed front end guarantees well-formedness.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "Position",
    "TypeExpr",
    "NamedType",
    "ArrayType",
    "RecordType",
    "FieldDecl",
    "Param",
    "Decl",
    "ImportDecl",
    "TypeDecl",
    "LetFun",
    "LetVal",
    "Module",
    "Expr",
    "IntLit",
    "BoolLit",
    "CharLit",
    "StrLit",
    "UnitLit",
    "Ident",
    "ModuleRef",
    "BinOp",
    "UnOp",
    "Call",
    "Index",
    "FieldAccess",
    "TupleLit",
    "If",
    "Seq",
    "LetIn",
    "VarIn",
    "Assign",
    "While",
    "ForLoop",
    "Lambda",
    "TryCatch",
    "Raise",
    "SelectExpr",
    "ExistsExpr",
]


@dataclass(frozen=True, slots=True)
class Position:
    line: int = 0
    column: int = 0


# ---------------------------------------------------------------------------
# types (annotations)
# ---------------------------------------------------------------------------


class TypeExpr:
    """Base of type annotations."""


@dataclass(frozen=True, slots=True)
class NamedType(TypeExpr):
    """``Int``, ``T`` or ``module.T``."""

    module: str | None
    name: str

    def __str__(self) -> str:
        return f"{self.module}.{self.name}" if self.module else self.name


@dataclass(frozen=True, slots=True)
class ArrayType(TypeExpr):
    element: TypeExpr

    def __str__(self) -> str:
        return f"Array({self.element})"


@dataclass(frozen=True, slots=True)
class FieldDecl:
    name: str
    type: TypeExpr | None


@dataclass(frozen=True, slots=True)
class RecordType(TypeExpr):
    """``tuple x: Int, y: Int end`` — a structural record type."""

    fields: tuple[FieldDecl, ...]

    @property
    def field_names(self) -> tuple[str, ...]:
        return tuple(f.name for f in self.fields)

    def index_of(self, name: str) -> int | None:
        for index, field_decl in enumerate(self.fields):
            if field_decl.name == name:
                return index
        return None

    def __str__(self) -> str:
        inner = ", ".join(f.name for f in self.fields)
        return f"tuple {inner} end"


# ---------------------------------------------------------------------------
# declarations
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class Param:
    name: str
    type: TypeExpr | None
    pos: Position = field(default_factory=Position)


class Decl:
    """Base of module-level declarations."""


@dataclass(frozen=True, slots=True)
class ImportDecl(Decl):
    modules: tuple[str, ...]
    pos: Position = field(default_factory=Position)


@dataclass(frozen=True, slots=True)
class TypeDecl(Decl):
    name: str
    type: TypeExpr
    pos: Position = field(default_factory=Position)


@dataclass(frozen=True, slots=True)
class LetFun(Decl):
    name: str
    params: tuple[Param, ...]
    return_type: TypeExpr | None
    body: "Expr"
    pos: Position = field(default_factory=Position)


@dataclass(frozen=True, slots=True)
class LetVal(Decl):
    """A module-level constant: ``let pi = 3``; the value must be a literal."""

    name: str
    type: TypeExpr | None
    value: "Expr"
    pos: Position = field(default_factory=Position)


@dataclass(frozen=True, slots=True)
class Module:
    name: str
    exports: tuple[str, ...]
    decls: tuple[Decl, ...]
    pos: Position = field(default_factory=Position)

    def functions(self) -> list[LetFun]:
        return [d for d in self.decls if isinstance(d, LetFun)]

    def imports(self) -> list[str]:
        out: list[str] = []
        for decl in self.decls:
            if isinstance(decl, ImportDecl):
                out.extend(decl.modules)
        return out


# ---------------------------------------------------------------------------
# expressions
# ---------------------------------------------------------------------------


class Expr:
    """Base of expressions."""


@dataclass(frozen=True, slots=True)
class IntLit(Expr):
    value: int
    pos: Position = field(default_factory=Position)


@dataclass(frozen=True, slots=True)
class BoolLit(Expr):
    value: bool
    pos: Position = field(default_factory=Position)


@dataclass(frozen=True, slots=True)
class CharLit(Expr):
    value: str
    pos: Position = field(default_factory=Position)


@dataclass(frozen=True, slots=True)
class StrLit(Expr):
    value: str
    pos: Position = field(default_factory=Position)


@dataclass(frozen=True, slots=True)
class UnitLit(Expr):
    pos: Position = field(default_factory=Position)


@dataclass(frozen=True, slots=True)
class Ident(Expr):
    name: str
    pos: Position = field(default_factory=Position)


@dataclass(frozen=True, slots=True)
class ModuleRef(Expr):
    """``module.member`` — resolved against the import list."""

    module: str
    member: str
    pos: Position = field(default_factory=Position)


@dataclass(frozen=True, slots=True)
class BinOp(Expr):
    op: str  # + - * / % == != < > <= >= and or
    left: Expr
    right: Expr
    pos: Position = field(default_factory=Position)


@dataclass(frozen=True, slots=True)
class UnOp(Expr):
    op: str  # - not
    operand: Expr
    pos: Position = field(default_factory=Position)


@dataclass(frozen=True, slots=True)
class Call(Expr):
    fn: Expr
    args: tuple[Expr, ...]
    pos: Position = field(default_factory=Position)


@dataclass(frozen=True, slots=True)
class Index(Expr):
    target: Expr
    index: Expr
    pos: Position = field(default_factory=Position)


@dataclass(frozen=True, slots=True)
class FieldAccess(Expr):
    target: Expr
    field: str
    pos: Position = field(default_factory=Position)


@dataclass(frozen=True, slots=True)
class TupleLit(Expr):
    """``tuple x = e, y = e end`` — a record literal (compiled to a vector)."""

    fields: tuple[tuple[str, Expr], ...]
    pos: Position = field(default_factory=Position)

    @property
    def field_names(self) -> tuple[str, ...]:
        return tuple(name for name, _ in self.fields)


@dataclass(frozen=True, slots=True)
class If(Expr):
    condition: Expr
    then_branch: Expr
    else_branch: Expr | None
    pos: Position = field(default_factory=Position)


@dataclass(frozen=True, slots=True)
class Seq(Expr):
    """``begin e1; e2; ... end`` — value of the last expression."""

    exprs: tuple[Expr, ...]
    pos: Position = field(default_factory=Position)


@dataclass(frozen=True, slots=True)
class LetIn(Expr):
    name: str
    type: TypeExpr | None
    value: Expr
    body: Expr
    pos: Position = field(default_factory=Position)


@dataclass(frozen=True, slots=True)
class VarIn(Expr):
    """``var x := e in body`` — a mutable local (compiled to a 1-slot box)."""

    name: str
    value: Expr
    body: Expr
    pos: Position = field(default_factory=Position)


@dataclass(frozen=True, slots=True)
class Assign(Expr):
    """``x := e`` (mutable local) or ``a[i] := e`` (array update)."""

    target: Expr  # Ident or Index
    value: Expr
    pos: Position = field(default_factory=Position)


@dataclass(frozen=True, slots=True)
class While(Expr):
    condition: Expr
    body: Expr
    pos: Position = field(default_factory=Position)


@dataclass(frozen=True, slots=True)
class ForLoop(Expr):
    var: str
    start: Expr
    stop: Expr
    body: Expr
    downto: bool = False
    pos: Position = field(default_factory=Position)


@dataclass(frozen=True, slots=True)
class Lambda(Expr):
    """``fn(x, y) => e`` — a first-class function."""

    params: tuple[Param, ...]
    body: Expr
    pos: Position = field(default_factory=Position)


@dataclass(frozen=True, slots=True)
class TryCatch(Expr):
    """``try e catch(x) h end`` — catches raises and runtime traps."""

    body: Expr
    exc_name: str
    handler: Expr
    pos: Position = field(default_factory=Position)


@dataclass(frozen=True, slots=True)
class Raise(Expr):
    value: Expr
    pos: Position = field(default_factory=Position)


@dataclass(frozen=True, slots=True)
class SelectExpr(Expr):
    """``select target from source as x [: T] [where pred] end``.

    The embedded declarative query of paper section 4.2: programming-language
    expressions may appear in the target and where clauses, referencing the
    correlation variable ``x`` (optionally annotated with its record type so
    field accesses resolve).
    """

    target: Expr
    source: Expr
    var: str
    var_type: TypeExpr | None
    where: Expr | None
    pos: Position = field(default_factory=Position)


@dataclass(frozen=True, slots=True)
class ExistsExpr(Expr):
    """``exists x [: T] in source : pred`` — existential quantification."""

    var: str
    var_type: TypeExpr | None
    source: Expr
    pred: Expr
    pos: Position = field(default_factory=Position)
