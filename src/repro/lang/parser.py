"""Recursive-descent parser for TL.

Produces :mod:`repro.lang.ast` trees.  ``module.member`` is parsed as a
:class:`FieldAccess` and disambiguated by the checker (the parser does not
know the import list).
"""

from __future__ import annotations

from repro.lang import ast
from repro.lang.errors import TLSyntaxError
from repro.lang.lexer import Token, tokenize

__all__ = ["parse_module", "parse_modules", "parse_expression"]

_CMP_OPS = frozenset(["==", "!=", "<", ">", "<=", ">="])
_ADD_OPS = frozenset(["+", "-"])
_MUL_OPS = frozenset(["*", "/", "%"])

#: keywords that terminate an export-name list / begin a declaration
_DECL_STARTERS = frozenset(["import", "type", "let", "var", "end"])


class _Parser:
    def __init__(self, source: str):
        self.tokens = tokenize(source)
        self.index = 0

    # ------------------------------------------------------------- stream

    def peek(self, offset: int = 0) -> Token:
        index = min(self.index + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        token = self.tokens[self.index]
        if token.kind != "eof":
            self.index += 1
        return token

    def at_keyword(self, *words: str) -> bool:
        token = self.peek()
        return token.kind == "keyword" and token.text in words

    def at_op(self, *ops: str) -> bool:
        token = self.peek()
        return token.kind == "op" and token.text in ops

    def expect_keyword(self, word: str) -> Token:
        token = self.advance()
        if token.kind != "keyword" or token.text != word:
            raise TLSyntaxError(
                f"expected {word!r}, found {token.text!r}", token.line, token.column
            )
        return token

    def expect_op(self, op: str) -> Token:
        token = self.advance()
        if token.kind != "op" or token.text != op:
            raise TLSyntaxError(
                f"expected {op!r}, found {token.text!r}", token.line, token.column
            )
        return token

    def expect_ident(self) -> Token:
        token = self.advance()
        if token.kind != "ident":
            raise TLSyntaxError(
                f"expected identifier, found {token.text!r}", token.line, token.column
            )
        return token

    def pos(self) -> ast.Position:
        token = self.peek()
        return ast.Position(token.line, token.column)

    # ------------------------------------------------------------- modules

    def module(self) -> ast.Module:
        pos = self.pos()
        self.expect_keyword("module")
        name = self.expect_ident().text
        self.expect_keyword("export")
        exports: list[str] = []
        while self.peek().kind == "ident":
            exports.append(self.advance().text)
            if self.at_op(","):
                self.advance()
        decls: list[ast.Decl] = []
        while not self.at_keyword("end"):
            decls.append(self.declaration())
        self.expect_keyword("end")
        return ast.Module(name, tuple(exports), tuple(decls), pos)

    def declaration(self) -> ast.Decl:
        pos = self.pos()
        if self.at_keyword("import"):
            self.advance()
            modules = [self.expect_ident().text]
            while self.at_op(","):
                self.advance()
                modules.append(self.expect_ident().text)
            return ast.ImportDecl(tuple(modules), pos)
        if self.at_keyword("type"):
            self.advance()
            name = self.expect_ident().text
            self.expect_op("=")
            return ast.TypeDecl(name, self.type_expr(), pos)
        if self.at_keyword("let"):
            self.advance()
            if self.at_keyword("rec"):
                self.advance()  # all module functions are mutually recursive
            name = self.expect_ident().text
            if self.at_op("("):
                params = self.param_list()
                return_type = None
                if self.at_op(":"):
                    self.advance()
                    return_type = self.type_expr()
                self.expect_op("=")
                return ast.LetFun(name, params, return_type, self.expression(), pos)
            annotation = None
            if self.at_op(":"):
                self.advance()
                annotation = self.type_expr()
            self.expect_op("=")
            return ast.LetVal(name, annotation, self.expression(), pos)
        token = self.peek()
        raise TLSyntaxError(
            f"expected declaration, found {token.text!r}", token.line, token.column
        )

    def param_list(self) -> tuple[ast.Param, ...]:
        self.expect_op("(")
        params: list[ast.Param] = []
        while not self.at_op(")"):
            pos = self.pos()
            name = self.expect_ident().text
            annotation = None
            if self.at_op(":"):
                self.advance()
                annotation = self.type_expr()
            params.append(ast.Param(name, annotation, pos))
            if self.at_op(","):
                self.advance()
        self.expect_op(")")
        return tuple(params)

    # ----------------------------------------------------------------- types

    def type_expr(self) -> ast.TypeExpr:
        if self.at_keyword("tuple"):
            self.advance()
            fields: list[ast.FieldDecl] = []
            while not self.at_keyword("end"):
                name = self.expect_ident().text
                annotation = None
                if self.at_op(":"):
                    self.advance()
                    annotation = self.type_expr()
                fields.append(ast.FieldDecl(name, annotation))
                if self.at_op(","):
                    self.advance()
            self.expect_keyword("end")
            return ast.RecordType(tuple(fields))
        token = self.expect_ident()
        if token.text == "Array" and self.at_op("("):
            self.advance()
            element = self.type_expr()
            self.expect_op(")")
            return ast.ArrayType(element)
        if self.at_op(".") and self.peek(1).kind == "ident":
            self.advance()
            member = self.expect_ident().text
            return ast.NamedType(token.text, member)
        return ast.NamedType(None, token.text)

    # ------------------------------------------------------------ expressions

    def expression(self) -> ast.Expr:
        pos = self.pos()
        left = self.or_level()
        if self.at_op(":="):
            self.advance()
            if not isinstance(left, (ast.Ident, ast.Index)):
                raise TLSyntaxError(
                    "assignment target must be a variable or an array element",
                    pos.line,
                    pos.column,
                )
            return ast.Assign(left, self.expression(), pos)
        return left

    def or_level(self) -> ast.Expr:
        left = self.and_level()
        while self.at_keyword("or"):
            pos = self.pos()
            self.advance()
            left = ast.BinOp("or", left, self.and_level(), pos)
        return left

    def and_level(self) -> ast.Expr:
        left = self.not_level()
        while self.at_keyword("and"):
            pos = self.pos()
            self.advance()
            left = ast.BinOp("and", left, self.not_level(), pos)
        return left

    def not_level(self) -> ast.Expr:
        if self.at_keyword("not"):
            pos = self.pos()
            self.advance()
            return ast.UnOp("not", self.not_level(), pos)
        return self.compare_level()

    def compare_level(self) -> ast.Expr:
        left = self.add_level()
        if self.peek().kind == "op" and self.peek().text in _CMP_OPS:
            pos = self.pos()
            op = self.advance().text
            return ast.BinOp(op, left, self.add_level(), pos)
        return left

    def add_level(self) -> ast.Expr:
        left = self.mul_level()
        while self.peek().kind == "op" and self.peek().text in _ADD_OPS:
            pos = self.pos()
            op = self.advance().text
            left = ast.BinOp(op, left, self.mul_level(), pos)
        return left

    def mul_level(self) -> ast.Expr:
        left = self.unary_level()
        while self.peek().kind == "op" and self.peek().text in _MUL_OPS:
            pos = self.pos()
            op = self.advance().text
            left = ast.BinOp(op, left, self.unary_level(), pos)
        return left

    def unary_level(self) -> ast.Expr:
        if self.at_op("-"):
            pos = self.pos()
            self.advance()
            return ast.UnOp("-", self.unary_level(), pos)
        return self.postfix_level()

    def postfix_level(self) -> ast.Expr:
        expr = self.primary()
        while True:
            if self.at_op("("):
                pos = self.pos()
                self.advance()
                args: list[ast.Expr] = []
                while not self.at_op(")"):
                    args.append(self.expression())
                    if self.at_op(","):
                        self.advance()
                self.expect_op(")")
                expr = ast.Call(expr, tuple(args), pos)
            elif self.at_op("["):
                pos = self.pos()
                self.advance()
                index = self.expression()
                self.expect_op("]")
                expr = ast.Index(expr, index, pos)
            elif self.at_op(".") and self.peek(1).kind == "ident":
                pos = self.pos()
                self.advance()
                member = self.expect_ident().text
                expr = ast.FieldAccess(expr, member, pos)
            else:
                return expr

    def primary(self) -> ast.Expr:
        token = self.peek()
        pos = ast.Position(token.line, token.column)
        if token.kind == "int":
            self.advance()
            return ast.IntLit(int(token.text), pos)
        if token.kind == "char":
            self.advance()
            return ast.CharLit(token.text, pos)
        if token.kind == "string":
            self.advance()
            return ast.StrLit(token.text, pos)
        if token.kind == "ident":
            self.advance()
            return ast.Ident(token.text, pos)
        if token.kind == "op" and token.text == "(":
            self.advance()
            inner = self.expression()
            self.expect_op(")")
            return inner
        if token.kind == "keyword":
            return self.keyword_expr(token, pos)
        raise TLSyntaxError(
            f"unexpected token {token.text!r}", token.line, token.column
        )

    def keyword_expr(self, token: Token, pos: ast.Position) -> ast.Expr:
        word = token.text
        if word == "true":
            self.advance()
            return ast.BoolLit(True, pos)
        if word == "false":
            self.advance()
            return ast.BoolLit(False, pos)
        if word == "unit":
            self.advance()
            return ast.UnitLit(pos)
        if word == "if":
            return self.if_expr(pos)
        if word == "begin":
            self.advance()
            body = self.sequence(("end",))
            self.expect_keyword("end")
            return body
        if word == "while":
            self.advance()
            condition = self.expression()
            self.expect_keyword("do")
            body = self.sequence(("end",))
            self.expect_keyword("end")
            return ast.While(condition, body, pos)
        if word == "for":
            self.advance()
            var = self.expect_ident().text
            self.expect_op("=")
            start = self.expression()
            if self.at_keyword("upto"):
                self.advance()
                downto = False
            elif self.at_keyword("downto"):
                self.advance()
                downto = True
            else:
                bad = self.peek()
                raise TLSyntaxError(
                    f"expected 'upto' or 'downto', found {bad.text!r}",
                    bad.line,
                    bad.column,
                )
            stop = self.expression()
            self.expect_keyword("do")
            body = self.sequence(("end",))
            self.expect_keyword("end")
            return ast.ForLoop(var, start, stop, body, downto, pos)
        if word == "let":
            self.advance()
            name = self.expect_ident().text
            annotation = None
            if self.at_op(":"):
                self.advance()
                annotation = self.type_expr()
            self.expect_op("=")
            value = self.expression()
            self.expect_keyword("in")
            return ast.LetIn(name, annotation, value, self.expression(), pos)
        if word == "var":
            self.advance()
            name = self.expect_ident().text
            self.expect_op(":=")
            value = self.expression()
            self.expect_keyword("in")
            return ast.VarIn(name, value, self.expression(), pos)
        if word == "fn":
            self.advance()
            params = self.param_list()
            self.expect_op("=>")
            return ast.Lambda(params, self.expression(), pos)
        if word == "tuple":
            self.advance()
            fields: list[tuple[str, ast.Expr]] = []
            while not self.at_keyword("end"):
                field_name = self.expect_ident().text
                self.expect_op("=")
                fields.append((field_name, self.expression()))
                if self.at_op(","):
                    self.advance()
            self.expect_keyword("end")
            return ast.TupleLit(tuple(fields), pos)
        if word == "try":
            self.advance()
            body = self.sequence(("catch",))
            self.expect_keyword("catch")
            self.expect_op("(")
            exc_name = self.expect_ident().text
            self.expect_op(")")
            handler = self.sequence(("end",))
            self.expect_keyword("end")
            return ast.TryCatch(body, exc_name, handler, pos)
        if word == "raise":
            self.advance()
            return ast.Raise(self.or_level(), pos)
        if word == "select":
            self.advance()
            target = self.expression()
            self.expect_keyword("from")
            source = self.expression()
            self.expect_keyword("as")
            var = self.expect_ident().text
            var_type = None
            if self.at_op(":"):
                self.advance()
                var_type = self.type_expr()
            where = None
            if self.at_keyword("where"):
                self.advance()
                where = self.expression()
            self.expect_keyword("end")
            return ast.SelectExpr(target, source, var, var_type, where, pos)
        if word == "exists":
            self.advance()
            var = self.expect_ident().text
            var_type = None
            if self.at_op(":"):
                self.advance()
                var_type = self.type_expr()
            self.expect_keyword("in")
            source = self.expression()
            self.expect_op(":")
            return ast.ExistsExpr(var, var_type, source, self.or_level(), pos)
        raise TLSyntaxError(f"unexpected keyword {word!r}", token.line, token.column)

    def if_expr(self, pos: ast.Position) -> ast.Expr:
        self.expect_keyword("if")
        condition = self.expression()
        self.expect_keyword("then")
        then_branch = self.sequence(("elif", "else", "end"))
        if self.at_keyword("elif"):
            elif_pos = self.pos()
            else_branch: ast.Expr | None = self.if_expr_tail(elif_pos)
            return ast.If(condition, then_branch, else_branch, pos)
        if self.at_keyword("else"):
            self.advance()
            else_branch = self.sequence(("end",))
            self.expect_keyword("end")
            return ast.If(condition, then_branch, else_branch, pos)
        self.expect_keyword("end")
        return ast.If(condition, then_branch, None, pos)

    def if_expr_tail(self, pos: ast.Position) -> ast.Expr:
        """An ``elif`` chain parsed as a nested If sharing the final ``end``."""
        self.expect_keyword("elif")
        condition = self.expression()
        self.expect_keyword("then")
        then_branch = self.sequence(("elif", "else", "end"))
        if self.at_keyword("elif"):
            return ast.If(condition, then_branch, self.if_expr_tail(self.pos()), pos)
        if self.at_keyword("else"):
            self.advance()
            else_branch = self.sequence(("end",))
            self.expect_keyword("end")
            return ast.If(condition, then_branch, else_branch, pos)
        self.expect_keyword("end")
        return ast.If(condition, then_branch, None, pos)

    def sequence(self, terminators: tuple[str, ...]) -> ast.Expr:
        """``e1; e2; ...`` — with ``let``/``var`` binding the rest of the block."""
        pos = self.pos()
        if self.at_keyword("let") and not self._let_is_expression():
            self.advance()
            name = self.expect_ident().text
            annotation = None
            if self.at_op(":"):
                self.advance()
                annotation = self.type_expr()
            self.expect_op("=")
            value = self.expression()
            self.expect_op(";")
            body = self.sequence(terminators)
            return ast.LetIn(name, annotation, value, body, pos)
        if self.at_keyword("var") and not self._var_is_expression():
            self.advance()
            name = self.expect_ident().text
            self.expect_op(":=")
            value = self.expression()
            self.expect_op(";")
            body = self.sequence(terminators)
            return ast.VarIn(name, value, body, pos)

        exprs = [self.expression()]
        while self.at_op(";"):
            self.advance()
            if self.at_keyword(*terminators):
                break  # tolerate a trailing semicolon
            exprs.append(self._sequence_step(terminators))
        if len(exprs) == 1:
            return exprs[0]
        return ast.Seq(tuple(exprs), pos)

    def _sequence_step(self, terminators: tuple[str, ...]) -> ast.Expr:
        # a let/var after a ';' scopes over the remainder of the block
        if (self.at_keyword("let") and not self._let_is_expression()) or (
            self.at_keyword("var") and not self._var_is_expression()
        ):
            return self.sequence(terminators)
        return self.expression()

    def _binding_has_in(self) -> bool:
        """Scan ahead: does this let/var use the ``... in body`` form?"""
        depth = 0
        offset = 1
        while True:
            token = self.peek(offset)
            if token.kind == "eof":
                return False
            if token.kind == "op" and token.text in "([":
                depth += 1
            elif token.kind == "op" and token.text in ")]":
                depth -= 1
            elif depth == 0 and token.kind == "op" and token.text == ";":
                return False
            elif depth == 0 and token.kind == "keyword" and token.text == "in":
                return True
            elif depth == 0 and token.kind == "keyword" and token.text in (
                "end",
                "catch",
                "elif",
                "else",
            ):
                return False
            offset += 1

    def _let_is_expression(self) -> bool:
        return self._binding_has_in()

    def _var_is_expression(self) -> bool:
        return self._binding_has_in()

    # -------------------------------------------------------------- entries

    def parse_single_module(self) -> ast.Module:
        result = self.module()
        self._expect_eof()
        return result

    def parse_many_modules(self) -> list[ast.Module]:
        modules = [self.module()]
        while self.at_keyword("module"):
            modules.append(self.module())
        self._expect_eof()
        return modules

    def parse_expression_entry(self) -> ast.Expr:
        result = self.sequence(())
        self._expect_eof()
        return result

    def _expect_eof(self) -> None:
        token = self.peek()
        if token.kind != "eof":
            raise TLSyntaxError(
                f"trailing input {token.text!r}", token.line, token.column
            )


def parse_module(source: str) -> ast.Module:
    """Parse one ``module ... end``."""
    return _Parser(source).parse_single_module()


def parse_modules(source: str) -> list[ast.Module]:
    """Parse a file containing several modules."""
    return _Parser(source).parse_many_modules()


def parse_expression(source: str) -> ast.Expr:
    """Parse a bare expression (used by tests and the quick-eval helper)."""
    return _Parser(source).parse_expression_entry()
