"""Default foreign functions for the ``ccall`` primitive.

The original Tycoon system called into C libraries; this reproduction's
foreign world is a small table of Python callables with the same contract
(opaque, may fail, unknown effects to the optimizer).
"""

from __future__ import annotations

import math

from repro.machine.runtime import ForeignTable

__all__ = ["default_foreign"]


def _isqrt(value: int) -> int:
    if value < 0:
        raise ValueError("isqrt of negative number")
    return math.isqrt(value)


def default_foreign() -> ForeignTable:
    """The foreign functions TL's standard library relies on."""
    table = ForeignTable()
    table.register("isqrt", _isqrt)
    return table
