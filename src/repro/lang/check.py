"""The TL checker: binding resolution, arity checking, record-shape typing.

Performs the front-end duties the paper assumes (section 2.2: constraints 1
and 2 "statically enforced by the compiler front end which performs the
necessary type checking on the input to the TML code generator"):

* resolves every identifier — local, module-level function/constant,
  imported member, or implicit library builtin;
* rewrites ``m.f`` field accesses into module references when ``m`` names an
  import;
* resolves record field accesses to positional indices using declared
  record types (annotations on parameters/lets, exactly the paper's
  ``complex.x`` pattern);
* checks arities of statically known callees.

The result is a :class:`CheckedModule`: the AST plus a resolution table the
CPS converter consults (keyed by node identity).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.lang import ast
from repro.lang.errors import TLCheckError
from repro.lang.stdlib import BUILTIN_FUNS, stdlib_interfaces
from repro.lang.types import (
    BOOL,
    CHAR,
    FunSig,
    INT,
    ModuleInterface,
    STRING,
    TArray,
    TFun,
    TRecord,
    TUnknown,
    Type,
    UNIT,
    UNKNOWN,
    resolve_type,
)

__all__ = ["Resolution", "CheckedModule", "check_module", "build_interface"]


@dataclass(frozen=True)
class Resolution:
    """How an identifier / access node resolves.

    ``kind`` is one of ``local``, ``boxed`` (mutable local), ``modfun``
    (sibling function), ``modval`` (sibling constant), ``import`` (imported
    member), ``builtin`` (implicit library function), ``field`` (record
    access, with positional ``index``), ``module_ref``.
    """

    kind: str
    module: str | None = None
    member: str | None = None
    index: int | None = None


@dataclass
class CheckedModule:
    """A checked module: AST + resolution table + exported interface."""

    module: ast.Module
    interface: ModuleInterface
    resolutions: dict[int, Resolution]
    imports: dict[str, ModuleInterface]
    local_types: dict[str, TRecord]
    #: constants: name -> literal AST node
    constants: dict[str, ast.Expr]

    def resolution(self, node: Any) -> Resolution | None:
        return self.resolutions.get(id(node))


def build_interface(
    module: ast.Module, imports: dict[str, ModuleInterface]
) -> tuple[ModuleInterface, dict[str, TRecord]]:
    """Compute a module's exported interface and its local type table."""
    local_types: dict[str, TRecord] = {}
    for decl in module.decls:
        if isinstance(decl, ast.TypeDecl):
            resolved = resolve_type(decl.type, local_types, imports, decl.pos)
            if not isinstance(resolved, TRecord):
                raise TLCheckError(
                    f"type {decl.name!r} must be a record type",
                    decl.pos.line,
                    decl.pos.column,
                )
            local_types[decl.name] = resolved

    interface = ModuleInterface(name=module.name)
    exported = set(module.exports)
    for decl in module.decls:
        if isinstance(decl, ast.TypeDecl) and decl.name in exported:
            interface.types[decl.name] = local_types[decl.name]
        elif isinstance(decl, ast.LetFun):
            params = tuple(
                resolve_type(p.type, local_types, imports, p.pos) for p in decl.params
            )
            result = resolve_type(decl.return_type, local_types, imports, decl.pos)
            if decl.name in exported:
                interface.functions[decl.name] = FunSig(decl.name, params, result)
        elif isinstance(decl, ast.LetVal) and decl.name in exported:
            interface.values[decl.name] = _literal_type(decl.value)
    return interface, local_types


def _literal_type(expr: ast.Expr) -> Type:
    if isinstance(expr, ast.IntLit):
        return INT
    if isinstance(expr, ast.BoolLit):
        return BOOL
    if isinstance(expr, ast.CharLit):
        return CHAR
    if isinstance(expr, ast.StrLit):
        return STRING
    if isinstance(expr, (ast.UnitLit,)):
        return UNIT
    return UNKNOWN


class _Scope:
    """Lexical scope: name -> (kind, type); kinds ``local`` / ``boxed``."""

    def __init__(self, parent: "_Scope | None" = None):
        self.bindings: dict[str, tuple[str, Type]] = {}
        self.parent = parent

    def lookup(self, name: str) -> tuple[str, Type] | None:
        scope: _Scope | None = self
        while scope is not None:
            if name in scope.bindings:
                return scope.bindings[name]
            scope = scope.parent
        return None

    def child(self) -> "_Scope":
        return _Scope(self)


class _Checker:
    def __init__(
        self,
        module: ast.Module,
        imports: dict[str, ModuleInterface],
        interface: ModuleInterface,
        local_types: dict[str, TRecord],
    ):
        self.module = module
        self.imports = imports
        self.interface = interface
        self.local_types = local_types
        self.resolutions: dict[int, Resolution] = {}
        self.functions: dict[str, FunSig] = {}
        self.constants: dict[str, ast.Expr] = {}

        for decl in module.decls:
            if isinstance(decl, ast.LetFun):
                params = tuple(
                    resolve_type(p.type, local_types, imports, p.pos)
                    for p in decl.params
                )
                result = resolve_type(decl.return_type, local_types, imports, decl.pos)
                self.functions[decl.name] = FunSig(decl.name, params, result)
            elif isinstance(decl, ast.LetVal):
                if not isinstance(
                    decl.value,
                    (ast.IntLit, ast.BoolLit, ast.CharLit, ast.StrLit, ast.UnitLit),
                ):
                    raise TLCheckError(
                        f"module-level constant {decl.name!r} must be a literal",
                        decl.pos.line,
                        decl.pos.column,
                    )
                self.constants[decl.name] = decl.value

    # ------------------------------------------------------------- driver

    def run(self) -> None:
        for name in self.module.exports:
            if (
                name not in self.functions
                and name not in self.constants
                and name not in self.local_types
            ):
                raise TLCheckError(
                    f"module {self.module.name!r} exports undefined name {name!r}"
                )
        for decl in self.module.decls:
            if isinstance(decl, ast.LetFun):
                scope = _Scope()
                for param in decl.params:
                    annotation = resolve_type(
                        param.type, self.local_types, self.imports, param.pos
                    )
                    scope.bindings[param.name] = ("local", annotation)
                self.infer(decl.body, scope)

    # ------------------------------------------------------------ inference

    def infer(self, expr: ast.Expr, scope: _Scope) -> Type:
        method = getattr(self, f"_infer_{type(expr).__name__}", None)
        if method is None:  # pragma: no cover - defensive
            raise TLCheckError(f"checker cannot handle {type(expr).__name__}")
        return method(expr, scope)

    def _infer_IntLit(self, expr, scope) -> Type:
        return INT

    def _infer_BoolLit(self, expr, scope) -> Type:
        return BOOL

    def _infer_CharLit(self, expr, scope) -> Type:
        return CHAR

    def _infer_StrLit(self, expr, scope) -> Type:
        return STRING

    def _infer_UnitLit(self, expr, scope) -> Type:
        return UNIT

    def _infer_Ident(self, expr: ast.Ident, scope: _Scope) -> Type:
        bound = scope.lookup(expr.name)
        if bound is not None:
            kind, ty = bound
            self.resolutions[id(expr)] = Resolution(kind)
            return ty
        if expr.name in self.functions:
            self.resolutions[id(expr)] = Resolution("modfun", member=expr.name)
            sig = self.functions[expr.name]
            return TFun(sig.params, sig.result)
        if expr.name in self.constants:
            self.resolutions[id(expr)] = Resolution("modval", member=expr.name)
            return _literal_type(self.constants[expr.name])
        if expr.name in BUILTIN_FUNS:
            module, member, arity = BUILTIN_FUNS[expr.name]
            self.resolutions[id(expr)] = Resolution(
                "builtin", module=module, member=member
            )
            sig = stdlib_interfaces()[module].functions[member]
            return TFun(sig.params, sig.result)
        raise TLCheckError(
            f"unbound identifier {expr.name!r}", expr.pos.line, expr.pos.column
        )

    def _infer_FieldAccess(self, expr: ast.FieldAccess, scope: _Scope) -> Type:
        # m.f where m names an import and is not shadowed: a module reference
        if isinstance(expr.target, ast.Ident) and scope.lookup(expr.target.name) is None:
            interface = self.imports.get(expr.target.name)
            if interface is not None:
                if not interface.has_member(expr.field):
                    raise TLCheckError(
                        f"module {expr.target.name!r} has no export {expr.field!r}",
                        expr.pos.line,
                        expr.pos.column,
                    )
                self.resolutions[id(expr)] = Resolution(
                    "module_ref", module=expr.target.name, member=expr.field
                )
                return interface.member_type(expr.field)

        target_type = self.infer(expr.target, scope)
        if not isinstance(target_type, TRecord):
            raise TLCheckError(
                f"field access .{expr.field} on a value of unknown record shape — "
                "annotate the expression with its record type",
                expr.pos.line,
                expr.pos.column,
            )
        index = target_type.index_of(expr.field)
        if index is None:
            raise TLCheckError(
                f"record {target_type.describe()} has no field {expr.field!r}",
                expr.pos.line,
                expr.pos.column,
            )
        self.resolutions[id(expr)] = Resolution("field", index=index)
        return target_type.field_type(expr.field)

    def _infer_BinOp(self, expr: ast.BinOp, scope: _Scope) -> Type:
        self.infer(expr.left, scope)
        self.infer(expr.right, scope)
        if expr.op in ("and", "or"):
            return BOOL
        if expr.op in ("==", "!=", "<", ">", "<=", ">="):
            return BOOL
        return INT

    def _infer_UnOp(self, expr: ast.UnOp, scope: _Scope) -> Type:
        self.infer(expr.operand, scope)
        return BOOL if expr.op == "not" else INT

    def _infer_Call(self, expr: ast.Call, scope: _Scope) -> Type:
        fn_type = self.infer(expr.fn, scope)
        for arg in expr.args:
            self.infer(arg, scope)
        if isinstance(fn_type, TFun):
            if fn_type.arity != len(expr.args):
                raise TLCheckError(
                    f"call supplies {len(expr.args)} argument(s); callee takes "
                    f"{fn_type.arity}",
                    expr.pos.line,
                    expr.pos.column,
                )
            return fn_type.result
        if isinstance(fn_type, TUnknown):
            return UNKNOWN
        raise TLCheckError(
            f"cannot call a value of type {fn_type.describe()}",
            expr.pos.line,
            expr.pos.column,
        )

    def _infer_Index(self, expr: ast.Index, scope: _Scope) -> Type:
        target = self.infer(expr.target, scope)
        self.infer(expr.index, scope)
        if isinstance(target, TArray):
            return target.element
        return UNKNOWN

    def _infer_TupleLit(self, expr: ast.TupleLit, scope: _Scope) -> Type:
        fields = tuple(
            (name, self.infer(value, scope)) for name, value in expr.fields
        )
        seen = set()
        for name, _ in fields:
            if name in seen:
                raise TLCheckError(
                    f"duplicate record field {name!r}", expr.pos.line, expr.pos.column
                )
            seen.add(name)
        return TRecord(fields)

    def _infer_If(self, expr: ast.If, scope: _Scope) -> Type:
        self.infer(expr.condition, scope)
        then_type = self.infer(expr.then_branch, scope.child())
        if expr.else_branch is None:
            return UNIT
        else_type = self.infer(expr.else_branch, scope.child())
        if type(then_type) is type(else_type):
            return then_type
        return UNKNOWN

    def _infer_Seq(self, expr: ast.Seq, scope: _Scope) -> Type:
        result: Type = UNIT
        for item in expr.exprs:
            result = self.infer(item, scope)
        return result

    def _infer_LetIn(self, expr: ast.LetIn, scope: _Scope) -> Type:
        value_type = self.infer(expr.value, scope)
        if expr.type is not None:
            annotated = resolve_type(expr.type, self.local_types, self.imports, expr.pos)
            if not isinstance(annotated, TUnknown):
                value_type = annotated
        inner = scope.child()
        inner.bindings[expr.name] = ("local", value_type)
        return self.infer(expr.body, inner)

    def _infer_VarIn(self, expr: ast.VarIn, scope: _Scope) -> Type:
        value_type = self.infer(expr.value, scope)
        inner = scope.child()
        inner.bindings[expr.name] = ("boxed", value_type)
        return self.infer(expr.body, inner)

    def _infer_Assign(self, expr: ast.Assign, scope: _Scope) -> Type:
        self.infer(expr.value, scope)
        if isinstance(expr.target, ast.Ident):
            bound = scope.lookup(expr.target.name)
            if bound is None or bound[0] != "boxed":
                raise TLCheckError(
                    f"{expr.target.name!r} is not a mutable variable "
                    "(declare it with 'var')",
                    expr.pos.line,
                    expr.pos.column,
                )
            self.resolutions[id(expr.target)] = Resolution("boxed")
        else:
            assert isinstance(expr.target, ast.Index)
            self.infer(expr.target.target, scope)
            self.infer(expr.target.index, scope)
        return UNIT

    def _infer_While(self, expr: ast.While, scope: _Scope) -> Type:
        self.infer(expr.condition, scope)
        self.infer(expr.body, scope.child())
        return UNIT

    def _infer_ForLoop(self, expr: ast.ForLoop, scope: _Scope) -> Type:
        self.infer(expr.start, scope)
        self.infer(expr.stop, scope)
        inner = scope.child()
        inner.bindings[expr.var] = ("local", INT)
        self.infer(expr.body, inner)
        return UNIT

    def _infer_Lambda(self, expr: ast.Lambda, scope: _Scope) -> Type:
        inner = scope.child()
        param_types = []
        for param in expr.params:
            annotation = resolve_type(
                param.type, self.local_types, self.imports, param.pos
            )
            inner.bindings[param.name] = ("local", annotation)
            param_types.append(annotation)
        result = self.infer(expr.body, inner)
        return TFun(tuple(param_types), result)

    def _infer_TryCatch(self, expr: ast.TryCatch, scope: _Scope) -> Type:
        body_type = self.infer(expr.body, scope.child())
        inner = scope.child()
        inner.bindings[expr.exc_name] = ("local", UNKNOWN)
        handler_type = self.infer(expr.handler, inner)
        if type(body_type) is type(handler_type):
            return body_type
        return UNKNOWN

    def _infer_Raise(self, expr: ast.Raise, scope: _Scope) -> Type:
        self.infer(expr.value, scope)
        return UNKNOWN

    def _infer_SelectExpr(self, expr: ast.SelectExpr, scope: _Scope) -> Type:
        self.infer(expr.source, scope)
        inner = scope.child()
        var_type = resolve_type(expr.var_type, self.local_types, self.imports, expr.pos)
        inner.bindings[expr.var] = ("local", var_type)
        if expr.where is not None:
            self.infer(expr.where, inner)
        self.infer(expr.target, inner)
        return UNKNOWN  # a relation value

    def _infer_ExistsExpr(self, expr: ast.ExistsExpr, scope: _Scope) -> Type:
        self.infer(expr.source, scope)
        inner = scope.child()
        var_type = resolve_type(expr.var_type, self.local_types, self.imports, expr.pos)
        inner.bindings[expr.var] = ("local", var_type)
        self.infer(expr.pred, inner)
        return BOOL

    def _infer_ModuleRef(self, expr: ast.ModuleRef, scope: _Scope) -> Type:
        interface = self.imports.get(expr.module)
        if interface is None or not interface.has_member(expr.member):
            raise TLCheckError(
                f"unknown module member {expr.module}.{expr.member}",
                expr.pos.line,
                expr.pos.column,
            )
        self.resolutions[id(expr)] = Resolution(
            "module_ref", module=expr.module, member=expr.member
        )
        return interface.member_type(expr.member)


def check_module(
    module: ast.Module,
    available: dict[str, ModuleInterface] | None = None,
) -> CheckedModule:
    """Check one module against the interfaces of its imports.

    ``available`` maps module names to interfaces; the standard library is
    always available.
    """
    interfaces = dict(stdlib_interfaces())
    if available:
        interfaces.update(available)
    imports: dict[str, ModuleInterface] = {}
    for name in module.imports():
        interface = interfaces.get(name)
        if interface is None:
            raise TLCheckError(f"import of unknown module {name!r}")
        imports[name] = interface

    interface, local_types = build_interface(module, imports)
    checker = _Checker(module, imports, interface, local_types)
    checker.run()
    return CheckedModule(
        module=module,
        interface=interface,
        resolutions=checker.resolutions,
        imports=imports,
        local_types=local_types,
        constants=checker.constants,
    )
