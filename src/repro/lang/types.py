"""Checked types and module interfaces for TL.

The TL front end performs the role the paper assigns it: it guarantees that
generated TML satisfies the well-formedness constraints (binding, arity,
calling conventions).  Types here are *shape* information — their load-
bearing job is resolving record field accesses to positional indices (the
``complex.x`` pattern of section 4.1) and checking call arities; everything
else degrades gracefully to ``TUnknown``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lang import ast
from repro.lang.errors import TLCheckError

__all__ = [
    "Type",
    "TInt",
    "TBool",
    "TChar",
    "TStr",
    "TUnit",
    "TUnknown",
    "TArray",
    "TRecord",
    "TFun",
    "INT",
    "BOOL",
    "CHAR",
    "STRING",
    "UNIT",
    "UNKNOWN",
    "FunSig",
    "ModuleInterface",
    "resolve_type",
]


class Type:
    """Base of checked types."""

    def describe(self) -> str:
        return type(self).__name__[1:]


class TInt(Type):
    pass


class TBool(Type):
    pass


class TChar(Type):
    pass


class TStr(Type):
    pass


class TUnit(Type):
    pass


class TUnknown(Type):
    """No information; compatible with everything."""


@dataclass(frozen=True)
class TArray(Type):
    element: Type

    def describe(self) -> str:
        return f"Array({self.element.describe()})"


@dataclass(frozen=True)
class TRecord(Type):
    """A structural record: ordered (field, type) pairs."""

    fields: tuple[tuple[str, Type], ...]

    def index_of(self, name: str) -> int | None:
        for index, (field_name, _) in enumerate(self.fields):
            if field_name == name:
                return index
        return None

    def field_type(self, name: str) -> Type:
        for field_name, field_ty in self.fields:
            if field_name == name:
                return field_ty
        return UNKNOWN

    def describe(self) -> str:
        inner = ", ".join(name for name, _ in self.fields)
        return f"tuple {inner} end"


@dataclass(frozen=True)
class TFun(Type):
    """A function: parameter types and result (arity is load-bearing)."""

    params: tuple[Type, ...]
    result: Type

    @property
    def arity(self) -> int:
        return len(self.params)

    def describe(self) -> str:
        inner = ", ".join(p.describe() for p in self.params)
        return f"Fun({inner}) -> {self.result.describe()}"


INT = TInt()
BOOL = TBool()
CHAR = TChar()
STRING = TStr()
UNIT = TUnit()
UNKNOWN = TUnknown()

_BASE_TYPES: dict[str, Type] = {
    "Int": INT,
    "Bool": BOOL,
    "Char": CHAR,
    "String": STRING,
    "Unit": UNIT,
    # the paper's examples use Real; this reproduction is integer-only
    # (Fig. 2 has no floating primitives), so Real aliases Int.
    "Real": INT,
}


@dataclass(frozen=True)
class FunSig:
    """Interface entry for an exported function."""

    name: str
    params: tuple[Type, ...]
    result: Type

    @property
    def arity(self) -> int:
        return len(self.params)


@dataclass
class ModuleInterface:
    """The statically visible surface of a module.

    What an importing compilation unit may know at compile time — exported
    types and function signatures.  Implementation bindings stay unavailable
    until link/run time (the abstraction barrier of section 4.1).
    """

    name: str
    types: dict[str, TRecord] = field(default_factory=dict)
    functions: dict[str, FunSig] = field(default_factory=dict)
    values: dict[str, Type] = field(default_factory=dict)

    def has_member(self, member: str) -> bool:
        return member in self.functions or member in self.values

    def member_type(self, member: str) -> Type:
        sig = self.functions.get(member)
        if sig is not None:
            return TFun(sig.params, sig.result)
        return self.values.get(member, UNKNOWN)


def resolve_type(
    expr: ast.TypeExpr | None,
    local_types: dict[str, TRecord],
    imports: dict[str, ModuleInterface],
    pos: ast.Position | None = None,
) -> Type:
    """Resolve a syntactic annotation to a checked type.

    Unknown names resolve to :data:`UNKNOWN` (annotations are permissive);
    only malformed module-qualified references raise.
    """
    if expr is None:
        return UNKNOWN
    if isinstance(expr, ast.NamedType):
        if expr.module is not None:
            interface = imports.get(expr.module)
            if interface is None:
                raise TLCheckError(
                    f"type reference to unimported module {expr.module!r}",
                    pos.line if pos else 0,
                    pos.column if pos else 0,
                )
            found = interface.types.get(expr.name)
            return found if found is not None else UNKNOWN
        base = _BASE_TYPES.get(expr.name)
        if base is not None:
            return base
        local = local_types.get(expr.name)
        return local if local is not None else UNKNOWN
    if isinstance(expr, ast.ArrayType):
        return TArray(resolve_type(expr.element, local_types, imports, pos))
    if isinstance(expr, ast.RecordType):
        fields = tuple(
            (f.name, resolve_type(f.type, local_types, imports, pos))
            for f in expr.fields
        )
        return TRecord(fields)
    raise TLCheckError(f"unsupported type annotation {expr!r}")
