"""The running Tycoon-style system image: compiler + store + VM in one place.

The paper's architecture (Fig. 3) keeps the compiler, optimizer and
evaluator inside one persistent programming environment, so code can be
compiled, persisted, re-optimized and executed without leaving the system.
:class:`TycoonSystem` is that environment:

>>> system = TycoonSystem()
>>> _ = system.compile('''
... module demo export double
... let double(x: Int): Int = x + x
... end
... ''')
>>> system.call("demo", "double", [21]).value
42
"""

from __future__ import annotations

from typing import Any

from repro.lang.errors import TLError
from repro.lang.foreign import default_foreign
from repro.lang.modules import (
    CompileOptions,
    CompiledModule,
    ModuleValue,
    compile_module,
    link_module,
    link_stdlib,
    load_module,
    store_module,
)
from repro.lang.stdlib import STDLIB_MODULE_NAMES, stdlib_interfaces
from repro.lang.types import ModuleInterface, UNKNOWN as _UNKNOWN_TYPE
from repro.machine.isa import VMClosure
from repro.machine.vm import VM, VMResult
from repro.primitives.registry import PrimitiveRegistry
from repro.store.heap import ObjectHeap

__all__ = ["TycoonSystem"]


class TycoonSystem:
    """One system image: compiled modules, linked values, store, VM factory."""

    def __init__(
        self,
        heap: ObjectHeap | None = None,
        options: CompileOptions | None = None,
        registry: PrimitiveRegistry | None = None,
        persist_stdlib: bool = True,
    ):
        self.options = options or CompileOptions()
        if registry is None:
            registry = self.options.registry
        if registry is None:
            # the full system registry: Fig. 2 primitives plus the relational
            # algebra extensions (embedded queries are part of TL)
            from repro.query.algebra import query_registry

            registry = query_registry()
        self.registry = registry
        if self.options.registry is not self.registry:
            from dataclasses import replace

            self.options = replace(self.options, registry=self.registry)
        self.heap = heap if heap is not None else ObjectHeap()
        self.foreign = default_foreign()
        self.interfaces: dict[str, ModuleInterface] = dict(stdlib_interfaces())
        self.compiled: dict[str, CompiledModule] = {}
        # persist_stdlib=False links the stdlib purely in memory — replica
        # daemons must not write locally (their heap state mirrors the
        # primary's, object for object), so they skip the boot-time store
        self.linked: dict[str, ModuleValue] = link_stdlib(
            self.options,
            heap=self.heap if heap is not None and persist_stdlib else None,
        )

    # ----------------------------------------------------------- data modules

    def register_data_module(self, name: str, values: dict[str, Any]) -> ModuleValue:
        """Expose store objects (relations, constants) as a linked module.

        TL code may then ``import name`` and reference ``name.member``.  The
        members become link-time R-value bindings; when a member is a stored
        heap object the reflective optimizer sees it as an OID literal —
        enabling runtime query optimization against actual indexes (§4.2).
        """
        interface = ModuleInterface(name=name)
        for member in values:
            interface.values[member] = _UNKNOWN_TYPE
        self.interfaces[name] = interface
        module_value = ModuleValue(name, dict(values))
        self.linked[name] = module_value
        return module_value

    # ------------------------------------------------------------- compile

    def compile(self, source) -> CompiledModule:
        """Compile a TL module (source text or parsed AST) and register its
        interface for later imports."""
        module = compile_module(source, self.interfaces, self.options)
        self.compiled[module.name] = module
        self.interfaces[module.name] = module.interface
        self.linked.pop(module.name, None)  # invalidate stale link
        return module

    def compile_ast(self, module_ast) -> CompiledModule:
        """Compile an already-parsed :class:`repro.lang.ast.Module`."""
        return self.compile(module_ast)

    def persist(self, name: str) -> Any:
        """Store a compiled module (and its PTML blobs) in the heap."""
        return store_module(self.heap, self._compiled(name))

    def load(self, name: str, facts=None) -> CompiledModule:
        """Load a previously persisted module from the heap.

        ``facts`` (a :class:`~repro.analysis.facts.FactStore`) lets code
        whose PTML hash carries a verified analysis fact skip the load-time
        bytecode re-verification.
        """
        module = load_module(self.heap, name, facts=facts)
        self.compiled[name] = module
        return module

    # --------------------------------------------------------------- link

    def link(self, name: str) -> ModuleValue:
        """Link a module, recursively linking its imports first."""
        linked = self.linked.get(name)
        if linked is not None:
            return linked
        compiled = self._compiled(name)
        environment: dict[str, ModuleValue] = {}
        for fn in compiled.functions.values():
            for ref in fn.externals.values():
                if ref.kind == "import" and ref.module not in environment:
                    environment[ref.module] = self.link(ref.module)
        linked = link_module(compiled, environment)
        self.linked[name] = linked
        return linked

    def _compiled(self, name: str) -> CompiledModule:
        module = self.compiled.get(name)
        if module is None:
            if name in STDLIB_MODULE_NAMES:
                raise TLError(f"{name!r} is a library module; it is always linked")
            raise TLError(f"module {name!r} has not been compiled")
        return module

    # ---------------------------------------------------------------- run

    def vm(self, step_limit: int | None = None) -> VM:
        return VM(store=self.heap, foreign=self.foreign, step_limit=step_limit)

    def closure(self, module: str, function: str) -> VMClosure:
        linked = self.link(module)
        value = linked.member(function)
        if not isinstance(value, VMClosure):
            raise TLError(f"{module}.{function} is not a function")
        return value

    def call(
        self,
        module: str,
        function: str,
        args: list[Any] | None = None,
        step_limit: int | None = None,
    ) -> VMResult:
        """Link (if needed) and call an exported function on a fresh VM."""
        closure = self.closure(module, function)
        return self.vm(step_limit).call(closure, list(args or []))

    def commit(self) -> None:
        self.heap.commit()
