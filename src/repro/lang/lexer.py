"""Lexer for TL, the Tycoon-style source language of this reproduction.

TL is the high-level language whose compilation exercises TML: an
expression-oriented, module-structured language with records, arrays,
first-class functions, loops and exceptions — a faithful miniature of the
Tycoon language TL of [Matthes and Schmidt 1992] as used in the paper's
examples (modules with export lists, ``let`` function definitions, record
types, ``for i = 1 upto 10 do ... end`` loops).
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.lang.errors import TLSyntaxError

__all__ = ["Token", "tokenize", "KEYWORDS"]

KEYWORDS = frozenset(
    [
        "module",
        "export",
        "import",
        "type",
        "let",
        "var",
        "in",
        "fn",
        "if",
        "then",
        "elif",
        "else",
        "end",
        "begin",
        "while",
        "do",
        "for",
        "upto",
        "downto",
        "tuple",
        "try",
        "catch",
        "raise",
        "and",
        "or",
        "not",
        "true",
        "false",
        "unit",
        "rec",
        # embedded query syntax (paper section 4.2)
        "select",
        "from",
        "where",
        "as",
        "exists",
    ]
)

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>[ \t\r]+)
  | (?P<comment>--[^\n]*|//[^\n]*)
  | (?P<newline>\n)
  | (?P<int>\d+)
  | (?P<char>'(?:\\.|[^'\\])')
  | (?P<string>"(?:\\.|[^"\\])*")
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<op>:=|=>|==|!=|<=|>=|[-+*/%<>=().,:;\[\]])
    """,
    re.VERBOSE,
)

_ESCAPES = {"\\n": "\n", "\\t": "\t", "\\'": "'", '\\"': '"', "\\\\": "\\"}


@dataclass(frozen=True, slots=True)
class Token:
    """One lexical token with source position (1-based)."""

    kind: str  # int | char | string | ident | keyword | op | eof
    text: str
    line: int
    column: int

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.text!r}, {self.line}:{self.column})"


def tokenize(source: str) -> list[Token]:
    """Tokenize TL source; comments run to end of line (``--`` or ``//``)."""
    tokens: list[Token] = []
    position = 0
    line = 1
    line_start = 0
    while position < len(source):
        match = _TOKEN_RE.match(source, position)
        if match is None:
            raise TLSyntaxError(
                f"unexpected character {source[position]!r}",
                line,
                position - line_start + 1,
            )
        kind = match.lastgroup
        text = match.group()
        column = match.start() - line_start + 1
        position = match.end()
        if kind == "newline":
            line += 1
            line_start = position
            continue
        if kind in ("ws", "comment"):
            continue
        if kind == "ident" and text in KEYWORDS:
            kind = "keyword"
        if kind == "char":
            inner = text[1:-1]
            if inner.startswith("\\"):
                inner = _ESCAPES.get(inner, inner[1])
            text = inner
        elif kind == "string":
            body = text[1:-1]
            for escape, actual in _ESCAPES.items():
                body = body.replace(escape, actual)
            text = body
            # count newlines inside string literals for position tracking
        tokens.append(Token(kind, text, line, column))
    tokens.append(Token("eof", "", line, position - line_start + 1))
    return tokens
