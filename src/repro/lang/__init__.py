"""TL: the Tycoon-style source language front end.

Lexer → parser → checker → CPS conversion to TML → static optimizer →
TAM code generation, plus first-class modules with link-time binding and a
dynamically bound standard library (the abstraction barriers of sections
4.1 and 6).
"""

from repro.lang.check import CheckedModule, check_module
from repro.lang.errors import TLCheckError, TLError, TLSyntaxError
from repro.lang.modules import (
    CompileOptions,
    CompiledFunction,
    CompiledModule,
    ModuleValue,
    compile_module,
    compile_stdlib,
    link_module,
    link_stdlib,
    load_module,
    store_module,
)
from repro.lang.parser import parse_expression, parse_module, parse_modules
from repro.lang.system import TycoonSystem

__all__ = [
    "CheckedModule",
    "check_module",
    "TLCheckError",
    "TLError",
    "TLSyntaxError",
    "CompileOptions",
    "CompiledFunction",
    "CompiledModule",
    "ModuleValue",
    "compile_module",
    "compile_stdlib",
    "link_module",
    "link_stdlib",
    "load_module",
    "store_module",
    "parse_expression",
    "parse_module",
    "parse_modules",
    "TycoonSystem",
]
