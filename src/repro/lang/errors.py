"""Front-end diagnostics for the TL compiler."""

from __future__ import annotations

__all__ = ["TLError", "TLSyntaxError", "TLCheckError"]


class TLError(Exception):
    """Base class of all TL front-end errors."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        location = f" at line {line}, column {column}" if line else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class TLSyntaxError(TLError):
    """Lexical or grammatical error in TL source."""


class TLCheckError(TLError):
    """Binding, arity or record-shape error found by the checker."""
