"""Compilation units, linking and persistence of TL modules.

The lifecycle (paper Fig. 3):

1. :func:`compile_module` — parse/check, CPS-convert each function, run the
   *static, local* optimizer (per-function; imported bindings stay free —
   the abstraction barrier), generate TAM code, and attach PTML.
2. :func:`link_module` — instantiate closures, binding each function's free
   variables to sibling closures (backpatched for mutual recursion),
   imported module members and constants.  Linking yields a
   :class:`ModuleValue`, the runtime first-class module.
3. :func:`store_module` / :func:`load_module` — persist a compiled module
   (code objects + PTML blobs + interface) into the object heap and recover
   it in a later session.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.analysis.verify_tam import assert_verified
from repro.core.names import Name, NameSupply
from repro.core.syntax import Abs, Char, UNIT
from repro.core.wellformed import check as check_wf
from repro.lang import ast
from repro.lang.check import CheckedModule, check_module
from repro.lang.cps import CpsConverter, ExternalRef
from repro.lang.errors import TLCheckError, TLError
from repro.lang.parser import parse_module
from repro.lang.stdlib import build_stdlib
from repro.lang.types import FunSig, ModuleInterface, UNKNOWN
from repro.machine.codegen import compile_function
from repro.machine.isa import CodeObject, VMClosure
from repro.primitives.registry import PrimitiveRegistry, default_registry
from repro.rewrite.pipeline import OptimizerConfig, optimize
from repro.store.heap import ObjectHeap
from repro.store.ptml import encode_ptml
from repro.store.serialize import Blob, register_codec

__all__ = [
    "CompileOptions",
    "CompiledFunction",
    "CompiledModule",
    "ModuleValue",
    "compile_module",
    "compile_stdlib",
    "link_module",
    "link_stdlib",
    "store_module",
    "load_module",
]


@dataclass(frozen=True)
class CompileOptions:
    """Knobs of the compilation pipeline.

    ``optimizer``: the static (local) optimizer configuration, or None to
    skip static optimization entirely (the E1 baseline).
    ``attach_ptml``: encode each function's TML and attach it to the code —
    the space cost measured by E3, and the enabler of runtime optimization.
    ``library_ops``: route operators/builtins through the dynamically bound
    library (section 6); ``False`` open-codes primitives (ablation).
    ``verify_code``: run the TAM bytecode verifier
    (:func:`repro.analysis.verify_tam.assert_verified`) over every generated
    code object before it is linked or persisted.
    """

    optimizer: OptimizerConfig | None = field(
        default_factory=OptimizerConfig.reduction_only
    )
    attach_ptml: bool = True
    library_ops: bool = True
    check_wellformed: bool = True
    verify_code: bool = True
    registry: PrimitiveRegistry | None = None


@dataclass
class CompiledFunction:
    """One compiled TL function: optimized TML + TAM code + metadata."""

    name: str
    term: Abs
    code: CodeObject
    externals: dict[Name, ExternalRef]
    sig: FunSig


@dataclass
class CompiledModule:
    """A compiled, not-yet-linked module (the unit the store persists)."""

    name: str
    interface: ModuleInterface
    functions: dict[str, CompiledFunction]
    constants: dict[str, Any]
    exports: tuple[str, ...]


class ModuleValue:
    """A linked, runtime first-class module: name plus export bindings."""

    def __init__(self, name: str, exports: dict[str, Any]):
        self.name = name
        self.exports = exports

    def member(self, name: str) -> Any:
        try:
            return self.exports[name]
        except KeyError:
            raise TLError(f"module {self.name!r} has no member {name!r}") from None

    def __repr__(self) -> str:
        return f"<module {self.name}: {sorted(self.exports)}>"


# ---------------------------------------------------------------------------
# compilation
# ---------------------------------------------------------------------------


def _eta_expand(value, original: Abs, supply: NameSupply) -> Abs:
    """Rebuild ``proc(p1..pk ce cc)(value p1..pk ce cc)`` after root η."""
    from repro.core.syntax import App, Var, max_uid

    if not isinstance(original, Abs):
        raise TLCheckError("optimizer produced a non-abstraction for a function")
    supply = NameSupply(start=max(max_uid(original), max_uid(value)) + 1)
    params = tuple(supply.fresh_like(p) for p in original.params)
    return Abs(params, App(value, tuple(Var(p) for p in params)))


def _literal_value(expr: ast.Expr) -> Any:
    if isinstance(expr, ast.IntLit):
        return expr.value
    if isinstance(expr, ast.BoolLit):
        return expr.value
    if isinstance(expr, ast.CharLit):
        return Char(expr.value)
    if isinstance(expr, ast.StrLit):
        return expr.value
    if isinstance(expr, ast.UnitLit):
        return UNIT
    raise TLCheckError(f"not a literal constant: {expr!r}")


def compile_module(
    source: str | ast.Module | CheckedModule,
    interfaces: dict[str, ModuleInterface] | None = None,
    options: CompileOptions | None = None,
) -> CompiledModule:
    """Compile TL source (or a parsed/checked module) to TAM code + PTML."""
    options = options or CompileOptions()
    registry = options.registry or default_registry()

    if isinstance(source, str):
        checked = check_module(parse_module(source), interfaces)
    elif isinstance(source, ast.Module):
        checked = check_module(source, interfaces)
    else:
        checked = source

    converter = CpsConverter(checked, NameSupply(), library_ops=options.library_ops)
    functions: dict[str, CompiledFunction] = {}

    for decl in checked.module.functions():
        term = converter.convert_function(decl)
        if options.check_wellformed:
            check_wf(term, registry)
        if options.optimizer is not None:
            original = term
            term = optimize(term, registry, options.optimizer).term
            if not isinstance(term, Abs):
                # the optimizer η-reduced a pure forwarder (run(n) = f(n)) to
                # the target value itself; re-expand so it stays compilable
                term = _eta_expand(term, original, NameSupply(start=0))
            if options.check_wellformed:
                check_wf(term, registry)
        code = compile_function(term, registry, name=f"{checked.module.name}.{decl.name}")
        if options.verify_code:
            assert_verified(code, name=f"{checked.module.name}.{decl.name}")
        if options.attach_ptml:
            code.ptml_ref = encode_ptml(term)
        sig = checked.interface.functions.get(decl.name) or FunSig(
            decl.name,
            tuple(UNKNOWN for _ in decl.params),
            UNKNOWN,
        )
        functions[decl.name] = CompiledFunction(
            name=decl.name,
            term=term,
            code=code,
            externals={
                name: ref
                for name, ref in converter.external_refs.items()
                if name in code.free_names
            },
            sig=sig,
        )

    constants = {
        name: _literal_value(expr) for name, expr in checked.constants.items()
    }
    return CompiledModule(
        name=checked.module.name,
        interface=checked.interface,
        functions=functions,
        constants=constants,
        exports=checked.module.exports,
    )


def compile_stdlib(
    options: CompileOptions | None = None,
    registry: PrimitiveRegistry | None = None,
) -> dict[str, CompiledModule]:
    """Compile the standard library definitions to code objects + PTML."""
    options = options or CompileOptions()
    registry = registry or options.registry or default_registry()
    compiled: dict[str, CompiledModule] = {}
    for name, definition in build_stdlib().items():
        functions: dict[str, CompiledFunction] = {}
        for std_fn in definition.functions:
            term = std_fn.term
            if options.optimizer is not None:
                term = optimize(term, registry, options.optimizer).term
                assert isinstance(term, Abs)
            code = compile_function(term, registry, name=f"{name}.{std_fn.name}")
            if options.verify_code:
                assert_verified(code, name=f"{name}.{std_fn.name}")
            if options.attach_ptml:
                code.ptml_ref = encode_ptml(term)
            functions[std_fn.name] = CompiledFunction(
                name=std_fn.name,
                term=term,
                code=code,
                externals={},
                sig=std_fn.sig,
            )
        compiled[name] = CompiledModule(
            name=name,
            interface=definition.interface(),
            functions=functions,
            constants={},
            exports=tuple(functions),
        )
    return compiled


# ---------------------------------------------------------------------------
# linking
# ---------------------------------------------------------------------------


def link_module(
    compiled: CompiledModule,
    environment: dict[str, ModuleValue],
) -> ModuleValue:
    """Instantiate a compiled module against its imported module values.

    Sibling references are backpatched after all closures exist, giving
    mutual recursion across functions of one module.
    """
    closures: dict[str, VMClosure] = {
        name: VMClosure(fn.code, [None] * len(fn.code.free_names))
        for name, fn in compiled.functions.items()
    }
    for name, fn in compiled.functions.items():
        closure = closures[name]
        for slot, free_name in enumerate(fn.code.free_names):
            ref = fn.externals.get(free_name)
            if ref is None:
                raise TLError(
                    f"{compiled.name}.{name}: free variable {free_name} has no "
                    "external binding"
                )
            if ref.kind == "sibling":
                target = closures.get(ref.member)
                if target is None:
                    raise TLError(
                        f"{compiled.name}.{name}: unknown sibling {ref.member!r}"
                    )
                closure.free[slot] = target
            else:  # import
                module_value = environment.get(ref.module)
                if module_value is None:
                    raise TLError(
                        f"{compiled.name}.{name}: import {ref.module!r} not linked"
                    )
                closure.free[slot] = module_value.member(ref.member)

    exports: dict[str, Any] = {}
    for export in compiled.exports:
        if export in closures:
            exports[export] = closures[export]
        elif export in compiled.constants:
            exports[export] = compiled.constants[export]
        # exported types have no runtime representation
    return ModuleValue(compiled.name, exports)


def link_stdlib(
    options: CompileOptions | None = None,
    heap: ObjectHeap | None = None,
) -> dict[str, ModuleValue]:
    """Compile and link the whole standard library.

    With a heap, every library function's PTML blob is stored and the code's
    ``ptml_ref`` becomes an OID — the persistent system state of section 4.1.
    """
    compiled = compile_stdlib(options)
    if heap is not None:
        for module in compiled.values():
            store_module(heap, module)
    return {name: link_module(module, {}) for name, module in compiled.items()}


# ---------------------------------------------------------------------------
# persistence
# ---------------------------------------------------------------------------


def _encode_module(module: "StoredModule", enc) -> None:
    enc.value(module.name)
    enc.value(tuple(module.exports))
    enc.value(dict(module.constants))
    enc.uvarint(len(module.functions))
    for fn_name, code, externals in module.functions:
        enc.value(fn_name)
        enc.value(code)
        enc.uvarint(len(externals))
        for name, ref in externals.items():
            enc.value(name)
            enc.value(ref.kind)
            enc.value(ref.module)
            enc.value(ref.member)


def _decode_module(dec) -> "StoredModule":
    name = dec.value()
    exports = dec.value()
    constants = dec.value()
    functions = []
    for _ in range(dec.uvarint()):
        fn_name = dec.value()
        code = dec.value()
        externals = {}
        for _ in range(dec.uvarint()):
            free_name = dec.value()
            kind = dec.value()
            module = dec.value()
            member = dec.value()
            externals[free_name] = ExternalRef(kind, module, member)
        functions.append((fn_name, code, externals))
    return StoredModule(name, exports, constants, functions)


@dataclass
class StoredModule:
    """The persisted form of a compiled module (codes reference PTML OIDs)."""

    name: str
    exports: tuple[str, ...]
    constants: dict[str, Any]
    functions: list[tuple[str, CodeObject, dict[Name, ExternalRef]]]


register_codec("tl-module", StoredModule, _encode_module, _decode_module)


def store_module(heap: ObjectHeap, compiled: CompiledModule) -> Any:
    """Persist a compiled module; PTML blobs become separate store objects.

    Returns the module's OID and registers it under root ``module:<name>``.
    """
    for fn in compiled.functions.values():
        _store_ptml_refs(heap, fn.code)
    stored = StoredModule(
        name=compiled.name,
        exports=tuple(compiled.exports),
        constants=dict(compiled.constants),
        functions=[
            (fn.name, fn.code, dict(fn.externals))
            for fn in compiled.functions.values()
        ],
    )
    oid = heap.store(stored)
    heap.set_root(f"module:{compiled.name}", oid)
    return oid


def _fact_verified(heap: ObjectHeap, code: CodeObject, facts) -> bool:
    """True when a verified analysis fact vouches for this code's PTML."""
    if facts is None:
        return False
    from repro.store.ptml import ptml_key

    key = ptml_key(code, heap)
    if key is None:
        return False
    record = facts.lookup(key)
    return record is not None and record.verified


def _store_ptml_refs(heap: ObjectHeap, code: CodeObject) -> None:
    if isinstance(code.ptml_ref, Blob):
        code.ptml_ref = heap.store(code.ptml_ref)
    for nested in code.codes:
        _store_ptml_refs(heap, nested)


def load_module(
    heap: ObjectHeap,
    name: str,
    verify: bool = True,
    facts=None,
) -> CompiledModule:
    """Recover a compiled module from the store (interface is signature-less).

    Stored bytecode is untrusted — it may come from an older writer or a
    corrupted heap — so each code object is re-verified before it can be
    linked (``verify=False`` opts out, e.g. for forensic inspection).  A
    :class:`~repro.analysis.facts.FactStore` passed as ``facts`` lets a
    code object whose PTML hash carries a ``verified`` analysis fact skip
    re-verification: byte-identical PTML means the verdict transfers.
    """
    stored = heap.load_root(f"module:{name}")
    if not isinstance(stored, StoredModule):
        raise TLError(f"root module:{name} is not a stored module")
    functions: dict[str, CompiledFunction] = {}
    for fn_name, code, externals in stored.functions:
        if verify and not _fact_verified(heap, code, facts):
            assert_verified(code, name=f"{name}.{fn_name}")
        functions[fn_name] = CompiledFunction(
            name=fn_name,
            term=None,  # recoverable from PTML on demand
            code=code,
            externals=externals,
            sig=FunSig(fn_name, tuple(UNKNOWN for _ in code.params[:-2]), UNKNOWN),
        )
    interface = ModuleInterface(name=stored.name)
    return CompiledModule(
        name=stored.name,
        interface=interface,
        functions=functions,
        constants=dict(stored.constants),
        exports=tuple(stored.exports),
    )
