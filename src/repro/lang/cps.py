"""TL → TML continuation-passing-style conversion.

Every TL construct becomes TML applications:

* control structures (if, loops, and/or, exceptions) become continuations —
  loops via the Y fixpoint combinator exactly as the paper's
  ``for i = 1 upto 10`` example (section 2.3);
* user-visible operators and builtins become *calls to dynamically bound
  library procedures* (free variables bound at link time — section 6);
  compiler-internal machinery (loop control, record vectors, mutable-local
  boxes, branching on booleans) uses primitives directly, as the paper's own
  loop example does;
* ``try/catch`` installs a handler continuation for runtime traps *and*
  threads a new exception continuation for explicit raises, making all
  exception control flow explicit (section 2.3).

Invariants maintained: the exception continuation ``ce`` passed into
:meth:`CpsConverter.convert` is always a ``Var`` (it may be referenced any
number of times); the normal continuation ``cc`` may be an abstraction but
is placed in the output exactly once.  Whenever a construct needs to
reference a continuation from several branches it λ-binds it first (a join
point).
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.core.builder import TmlBuilder
from repro.core.names import Name, NameSupply
from repro.core.syntax import Abs, App, Application, Char, Lit, PrimApp, UNIT, Value, Var
from repro.lang import ast
from repro.lang.check import CheckedModule
from repro.lang.errors import TLCheckError
from repro.lang.stdlib import OP_FUNS

__all__ = ["ExternalRef", "CpsConverter"]


class ExternalRef:
    """What a free variable of a converted function denotes.

    ``kind``: ``import`` (a member of another module, including all library
    functions) or ``sibling`` (another function of the same module).
    """

    __slots__ = ("kind", "module", "member")

    def __init__(self, kind: str, module: str | None, member: str):
        self.kind = kind
        self.module = module
        self.member = member

    def key(self) -> tuple:
        return (self.kind, self.module, self.member)

    def __repr__(self) -> str:
        if self.kind == "import":
            return f"<import {self.module}.{self.member}>"
        return f"<sibling {self.member}>"


_SIMPLE = (ast.IntLit, ast.BoolLit, ast.CharLit, ast.StrLit, ast.UnitLit)


class CpsConverter:
    """Converts the functions of one checked module to TML."""

    def __init__(
        self,
        checked: CheckedModule,
        supply: NameSupply | None = None,
        library_ops: bool = True,
    ):
        self.checked = checked
        self.b = TmlBuilder(supply or NameSupply())
        self.library_ops = library_ops
        #: external key -> the shared free Name used across this module
        self.externals: dict[tuple, Name] = {}
        #: free Name -> ExternalRef (consumed by the linker)
        self.external_refs: dict[Name, ExternalRef] = {}

    # ------------------------------------------------------------ externals

    def external(self, kind: str, module: str | None, member: str) -> Var:
        ref = ExternalRef(kind, module, member)
        name = self.externals.get(ref.key())
        if name is None:
            base = member if module is None else f"{module}.{member}"
            name = self.b.val_name(base)
            self.externals[ref.key()] = name
            self.external_refs[name] = ref
        return Var(name)

    def _op_fun(self, op: str) -> Var:
        module, member = OP_FUNS[op]
        return self.external("import", module, member)

    # ------------------------------------------------------------ functions

    def convert_function(self, fn: ast.LetFun) -> Abs:
        """Compile one module-level function to a TML proc abstraction."""
        env: dict[str, tuple[str, Name]] = {}
        params: list[Name] = []
        for param in fn.params:
            name = self.b.val_name(param.name)
            env[param.name] = ("plain", name)
            params.append(name)
        ce = self.b.cont_name("ce")
        cc = self.b.cont_name("cc")
        body = self.convert(fn.body, env, Var(ce), Var(cc))
        return Abs(tuple(params) + (ce, cc), body)

    def convert_lambda(
        self, fn: ast.Lambda, env: dict[str, tuple[str, Name]]
    ) -> Abs:
        inner = dict(env)
        params: list[Name] = []
        for param in fn.params:
            name = self.b.val_name(param.name)
            inner[param.name] = ("plain", name)
            params.append(name)
        ce = self.b.cont_name("ce")
        cc = self.b.cont_name("cc")
        body = self.convert(fn.body, inner, Var(ce), Var(cc))
        return Abs(tuple(params) + (ce, cc), body)

    # ----------------------------------------------------------- plumbing

    def _join(
        self, conts: Sequence[Value], build: Callable[..., Application]
    ) -> Application:
        """λ-bind abstraction continuations so branches may share them."""
        params: list[Name] = []
        args: list[Value] = []
        final: list[Value] = []
        for cont in conts:
            if isinstance(cont, Abs):
                name = self.b.cont_name("j")
                params.append(name)
                args.append(cont)
                final.append(Var(name))
            else:
                final.append(cont)
        body = build(*final)
        if params:
            return App(Abs(tuple(params), body), tuple(args))
        return body

    def _simple_value(
        self, expr: ast.Expr, env: dict[str, tuple[str, Name]]
    ) -> Value | None:
        """A TML value for trivially-convertible expressions, else None."""
        if isinstance(expr, ast.IntLit):
            return Lit(expr.value)
        if isinstance(expr, ast.BoolLit):
            return Lit(expr.value)
        if isinstance(expr, ast.CharLit):
            return Lit(Char(expr.value))
        if isinstance(expr, ast.StrLit):
            return Lit(expr.value)
        if isinstance(expr, ast.UnitLit):
            return Lit(UNIT)
        if isinstance(expr, ast.Ident):
            resolution = self.checked.resolution(expr)
            if resolution is None:
                raise TLCheckError(f"unresolved identifier {expr.name!r}")
            if resolution.kind == "local":
                return Var(env[expr.name][1])
            if resolution.kind == "modfun":
                return self.external("sibling", None, resolution.member)
            if resolution.kind == "modval":
                literal = self.checked.constants[resolution.member]
                return self._simple_value(literal, env)
            if resolution.kind == "builtin":
                return self.external("import", resolution.module, resolution.member)
            return None  # boxed locals need a primitive load
        if isinstance(expr, ast.FieldAccess):
            resolution = self.checked.resolution(expr)
            if resolution is not None and resolution.kind == "module_ref":
                return self.external("import", resolution.module, resolution.member)
            return None
        return None

    def _convert_values(
        self,
        exprs: Sequence[ast.Expr],
        env: dict[str, tuple[str, Name]],
        ce: Value,
        build: Callable[[list[Value]], Application],
    ) -> Application:
        """Evaluate expressions left-to-right, then build with their values."""

        def step(index: int, acc: list[Value]) -> Application:
            if index == len(exprs):
                return build(acc)
            simple = self._simple_value(exprs[index], env)
            if simple is not None:
                return step(index + 1, acc + [simple])
            name = self.b.val_name("t")
            rest = step(index + 1, acc + [Var(name)])
            return self.convert(exprs[index], env, ce, Abs((name,), rest))

        return step(0, [])

    # ------------------------------------------------------------- convert

    def convert(
        self,
        expr: ast.Expr,
        env: dict[str, tuple[str, Name]],
        ce: Value,
        cc: Value,
    ) -> Application:
        """CPS-convert ``expr``; the result value flows into ``cc``."""
        if not isinstance(ce, Var):
            raise TLCheckError("internal: exception continuation must be a variable")

        simple = self._simple_value(expr, env)
        if simple is not None:
            return App(cc, (simple,))

        method = getattr(self, f"_convert_{type(expr).__name__}", None)
        if method is None:  # pragma: no cover - defensive
            raise TLCheckError(f"cannot CPS-convert {type(expr).__name__}")
        return method(expr, env, ce, cc)

    def _convert_Ident(self, expr: ast.Ident, env, ce, cc) -> Application:
        resolution = self.checked.resolution(expr)
        if resolution is not None and resolution.kind == "boxed":
            box = env[expr.name][1]
            return PrimApp("[]", (Var(box), Lit(0), cc))
        raise TLCheckError(f"unresolved identifier {expr.name!r}")

    def _convert_FieldAccess(self, expr: ast.FieldAccess, env, ce, cc) -> Application:
        resolution = self.checked.resolution(expr)
        if resolution is None:
            raise TLCheckError(f"unresolved field access .{expr.field}")
        if resolution.kind == "module_ref":
            return App(cc, (self.external("import", resolution.module, resolution.member),))
        assert resolution.kind == "field"
        index = resolution.index

        def build(values: list[Value]) -> Application:
            return PrimApp("[]", (values[0], Lit(index), cc))

        return self._convert_values([expr.target], env, ce, build)

    def _convert_BinOp(self, expr: ast.BinOp, env, ce, cc) -> Application:
        if expr.op in ("and", "or"):
            return self._convert_shortcircuit(expr, env, ce, cc)

        if self.library_ops:
            fn = self._op_fun(expr.op)

            def build(values: list[Value]) -> Application:
                return App(fn, (values[0], values[1], ce, cc))

            return self._convert_values([expr.left, expr.right], env, ce, build)
        return self._convert_open_coded(expr, env, ce, cc)

    def _convert_open_coded(self, expr: ast.BinOp, env, ce, cc) -> Application:
        """Direct-primitive operators (the open-coding ablation of E1/E2)."""
        op = expr.op
        if op in ("+", "-", "*", "/", "%"):

            def build(values: list[Value]) -> Application:
                return PrimApp(op, (values[0], values[1], ce, cc))

            return self._convert_values([expr.left, expr.right], env, ce, build)
        if op in ("<", ">", "<=", ">="):

            def build_cmp(values: list[Value]) -> Application:
                def branch(ccv: Value) -> Application:
                    hit = Abs((), App(ccv, (Lit(True),)))
                    miss = Abs((), App(ccv, (Lit(False),)))
                    return PrimApp(op, (values[0], values[1], hit, miss))

                return self._join([cc], branch)

            return self._convert_values([expr.left, expr.right], env, ce, build_cmp)
        assert op in ("==", "!=")
        hit_value, miss_value = (True, False) if op == "==" else (False, True)

        def build_eq(values: list[Value]) -> Application:
            def branch(ccv: Value) -> Application:
                hit = Abs((), App(ccv, (Lit(hit_value),)))
                miss = Abs((), App(ccv, (Lit(miss_value),)))
                return PrimApp("==", (values[0], values[1], hit, miss))

            return self._join([cc], branch)

        return self._convert_values([expr.left, expr.right], env, ce, build_eq)

    def _convert_shortcircuit(self, expr: ast.BinOp, env, ce, cc) -> Application:
        def build(ccv: Value) -> Application:
            if expr.op == "and":
                on_true = Abs((), self.convert(expr.right, env, ce, ccv))
                on_false = Abs((), App(ccv, (Lit(False),)))
            else:
                on_true = Abs((), App(ccv, (Lit(True),)))
                on_false = Abs((), self.convert(expr.right, env, ce, ccv))

            def test(values: list[Value]) -> Application:
                return PrimApp("==", (values[0], Lit(True), on_true, on_false))

            return self._convert_values([expr.left], env, ce, test)

        return self._join([cc], build)

    def _convert_UnOp(self, expr: ast.UnOp, env, ce, cc) -> Application:
        if expr.op == "-":
            if self.library_ops:
                fn = self.external("import", "int", "neg")

                def build(values: list[Value]) -> Application:
                    return App(fn, (values[0], ce, cc))

                return self._convert_values([expr.operand], env, ce, build)

            def build_neg(values: list[Value]) -> Application:
                return PrimApp("-", (Lit(0), values[0], ce, cc))

            return self._convert_values([expr.operand], env, ce, build_neg)

        assert expr.op == "not"

        def build_not(ccv: Value) -> Application:
            def test(values: list[Value]) -> Application:
                hit = Abs((), App(ccv, (Lit(False),)))
                miss = Abs((), App(ccv, (Lit(True),)))
                return PrimApp("==", (values[0], Lit(True), hit, miss))

            return self._convert_values([expr.operand], env, ce, test)

        return self._join([cc], build_not)

    def _convert_Call(self, expr: ast.Call, env, ce, cc) -> Application:
        def build(values: list[Value]) -> Application:
            fn, *args = values
            return App(fn, tuple(args) + (ce, cc))

        return self._convert_values([expr.fn, *expr.args], env, ce, build)

    def _convert_Index(self, expr: ast.Index, env, ce, cc) -> Application:
        fn = self.external("import", "arraylib", "get")

        def build(values: list[Value]) -> Application:
            return App(fn, (values[0], values[1], ce, cc))

        return self._convert_values([expr.target, expr.index], env, ce, build)

    def _convert_TupleLit(self, expr: ast.TupleLit, env, ce, cc) -> Application:
        def build(values: list[Value]) -> Application:
            return PrimApp("vector", tuple(values) + (cc,))

        return self._convert_values([value for _, value in expr.fields], env, ce, build)

    def _convert_If(self, expr: ast.If, env, ce, cc) -> Application:
        def build(ccv: Value) -> Application:
            then_c = Abs((), self.convert(expr.then_branch, env, ce, ccv))
            if expr.else_branch is not None:
                else_c = Abs((), self.convert(expr.else_branch, env, ce, ccv))
            else:
                else_c = Abs((), App(ccv, (Lit(UNIT),)))

            def test(values: list[Value]) -> Application:
                return PrimApp("==", (values[0], Lit(True), then_c, else_c))

            return self._convert_values([expr.condition], env, ce, test)

        return self._join([cc], build)

    def _convert_Seq(self, expr: ast.Seq, env, ce, cc) -> Application:
        def chain(index: int) -> Application:
            if index == len(expr.exprs) - 1:
                return self.convert(expr.exprs[index], env, ce, cc)
            ignored = self.b.val_name("_")
            rest = chain(index + 1)
            return self.convert(expr.exprs[index], env, ce, Abs((ignored,), rest))

        return chain(0)

    def _convert_LetIn(self, expr: ast.LetIn, env, ce, cc) -> Application:
        name = self.b.val_name(expr.name)
        inner = dict(env)
        inner[expr.name] = ("plain", name)
        body = self.convert(expr.body, inner, ce, cc)
        return self.convert(expr.value, env, ce, Abs((name,), body))

    def _convert_VarIn(self, expr: ast.VarIn, env, ce, cc) -> Application:
        box = self.b.val_name(expr.name)
        inner = dict(env)
        inner[expr.name] = ("boxed", box)
        body = self.convert(expr.body, inner, ce, cc)

        def build(values: list[Value]) -> Application:
            return PrimApp("new", (Lit(1), values[0], Abs((box,), body)))

        return self._convert_values([expr.value], env, ce, build)

    def _convert_Assign(self, expr: ast.Assign, env, ce, cc) -> Application:
        if isinstance(expr.target, ast.Ident):
            box = env[expr.target.name][1]

            def build(values: list[Value]) -> Application:
                unit_name = self.b.val_name("u")
                done = Abs((unit_name,), App(cc, (Var(unit_name),)))
                return PrimApp("[]:=", (Var(box), Lit(0), values[0], done))

            return self._convert_values([expr.value], env, ce, build)

        assert isinstance(expr.target, ast.Index)
        fn = self.external("import", "arraylib", "set")

        def build_set(values: list[Value]) -> Application:
            return App(fn, (values[0], values[1], values[2], ce, cc))

        return self._convert_values(
            [expr.target.target, expr.target.index, expr.value], env, ce, build_set
        )

    def _convert_While(self, expr: ast.While, env, ce, cc) -> Application:
        def build(ccv: Value) -> Application:
            loop = self.b.cont_name("loop")
            body_app = self.convert(
                expr.body,
                env,
                ce,
                Abs((self.b.val_name("_"),), App(Var(loop), ())),
            )
            exit_c = Abs((), App(ccv, (Lit(UNIT),)))
            cond_app = self._while_cond(expr.condition, env, ce, body_app, exit_c)
            loop_body = Abs((), cond_app)
            entry = Abs((), App(Var(loop), ()))
            return self.b.fix(entry, [(loop, loop_body)])

        return self._join([cc], build)

    def _while_cond(
        self, condition: ast.Expr, env, ce, body_app: Application, exit_c: Abs
    ) -> Application:
        cv = self.b.val_name("cv")
        test = PrimApp("==", (Var(cv), Lit(True), Abs((), body_app), exit_c))
        return self.convert(condition, env, ce, Abs((cv,), test))

    def _convert_ForLoop(self, expr: ast.ForLoop, env, ce, cc) -> Application:
        def build(ccv: Value) -> Application:
            def with_bounds(values: list[Value]) -> Application:
                start_v, stop_v = values
                loop = self.b.cont_name("for")
                ivar = self.b.val_name(expr.var)
                inner = dict(env)
                inner[expr.var] = ("plain", ivar)
                step_prim = "-" if expr.downto else "+"
                cmp_prim = ">=" if expr.downto else "<="
                next_i = self.b.val_name("i'")
                advance = PrimApp(
                    step_prim,
                    (Var(ivar), Lit(1), ce, Abs((next_i,), App(Var(loop), (Var(next_i),)))),
                )
                body_app = self.convert(
                    expr.body, inner, ce, Abs((self.b.val_name("_"),), advance)
                )
                exit_c = Abs((), App(ccv, (Lit(UNIT),)))
                head = Abs(
                    (ivar,),
                    PrimApp(cmp_prim, (Var(ivar), stop_v, Abs((), body_app), exit_c)),
                )
                entry = Abs((), App(Var(loop), (start_v,)))
                return self.b.fix(entry, [(loop, head)])

            return self._convert_values([expr.start, expr.stop], env, ce, with_bounds)

        return self._join([cc], build)

    def _convert_Lambda(self, expr: ast.Lambda, env, ce, cc) -> Application:
        return App(cc, (self.convert_lambda(expr, env),))

    def _convert_TryCatch(self, expr: ast.TryCatch, env, ce, cc) -> Application:
        def build(ccv: Value) -> Application:
            exc_name = self.b.val_name(expr.exc_name)
            inner = dict(env)
            inner[expr.exc_name] = ("plain", exc_name)
            handler = Abs((exc_name,), self.convert(expr.handler, inner, ce, ccv))

            hn = self.b.cont_name("h")
            ev = self.b.val_name("ev")
            rv = self.b.val_name("rv")
            # on explicit raise inside the body: uninstall the trap handler,
            # then enter the same handler continuation
            ce2 = Abs(
                (ev,),
                PrimApp("popHandler", (Abs((), App(Var(hn), (Var(ev),))),)),
            )
            # on normal completion: uninstall, then continue (ccv is a join
            # variable, so referencing it here and in the handler is fine)
            cc2 = Abs(
                (rv,),
                PrimApp("popHandler", (Abs((), App(ccv, (Var(rv),))),)),
            )

            ce2n = self.b.cont_name("ce'")
            cc2n = self.b.cont_name("cc'")
            body_app = self.convert(expr.body, env, Var(ce2n), Var(cc2n))
            protected = PrimApp("pushHandler", (Var(hn), Abs((), body_app)))
            inner_bind = App(Abs((ce2n, cc2n), protected), (ce2, cc2))
            return App(Abs((hn,), inner_bind), (handler,))

        return self._join([cc], build)

    def _convert_Raise(self, expr: ast.Raise, env, ce, cc) -> Application:
        def build(values: list[Value]) -> Application:
            return App(ce, (values[0],))

        return self._convert_values([expr.value], env, ce, build)

    def _convert_ModuleRef(self, expr: ast.ModuleRef, env, ce, cc) -> Application:
        return App(cc, (self.external("import", expr.module, expr.member),))

    # ------------------------------------------------- embedded queries (§4.2)

    def _query_proc(
        self, var: str, body: ast.Expr, env: dict[str, tuple[str, Name]]
    ) -> Abs:
        """A user-level procedure over the correlation variable.

        The scope of the SQL correlation variable is captured by a
        λ-abstraction binding it alongside the two continuation variables —
        the paper's representation of ``Pred``/``Target``.
        """
        x = self.b.val_name(var)
        inner = dict(env)
        inner[var] = ("plain", x)
        ce = self.b.cont_name("ce")
        cc = self.b.cont_name("cc")
        return Abs((x, ce, cc), self.convert(body, inner, Var(ce), Var(cc)))

    def _is_identity_target(self, expr: ast.SelectExpr) -> bool:
        return (
            isinstance(expr.target, ast.Ident) and expr.target.name == expr.var
        )

    def _convert_SelectExpr(self, expr: ast.SelectExpr, env, ce, cc) -> Application:
        """The paper's translation template::

            (select λ(x ce cc)(Pred x ...) Rel ce
               cont(tempRel)
                 (project λ(x ce cc)(Target x ...) tempRel ce cc))
        """
        identity = self._is_identity_target(expr)

        def build(values: list[Value]) -> Application:
            rel_v = values[0]
            if expr.where is None and identity:
                return App(cc, (rel_v,))
            if expr.where is None:
                target = self._query_proc(expr.var, expr.target, env)
                return PrimApp("project", (target, rel_v, ce, cc))
            pred = self._query_proc(expr.var, expr.where, env)
            if identity:
                return PrimApp("select", (pred, rel_v, ce, cc))
            target = self._query_proc(expr.var, expr.target, env)
            temp = self.b.val_name("tempRel")
            projection = PrimApp("project", (target, Var(temp), ce, cc))
            return PrimApp("select", (pred, rel_v, ce, Abs((temp,), projection)))

        return self._convert_values([expr.source], env, ce, build)

    def _convert_ExistsExpr(self, expr: ast.ExistsExpr, env, ce, cc) -> Application:
        pred = self._query_proc(expr.var, expr.pred, env)

        def build(values: list[Value]) -> Application:
            return PrimApp("exists", (pred, values[0], ce, cc))

        return self._convert_values([expr.source], env, ce, build)
