"""Persistent derived attributes of optimized code (paper section 4.1).

"To speed up repeated optimizations of (shared) functions, the optimizer
attaches several derived attributes (costs, savings, ...) to the generated
code which also become part of the persistent system state."

The cache lives in the object heap under the root ``reflect:attributes``:
a dict keyed by ``function name @ optimizer fingerprint`` holding the cost
before/after, entity count and code size of the last reflective
optimization.  :func:`cached_optimize` consults it to skip re-optimizing a
procedure whose inputs have not changed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machine.isa import VMClosure
from repro.rewrite.pipeline import OptimizerConfig
from repro.reflect.optimize import DYNAMIC_CONFIG, ReflectResult, optimize_closure
from repro.store.heap import ObjectHeap

__all__ = ["DerivedAttributes", "attributes_root", "load_attributes", "record_attributes", "cached_optimize"]

ATTRIBUTES_ROOT = "reflect:attributes"


@dataclass(frozen=True)
class DerivedAttributes:
    """Costs and savings attached to one optimized procedure."""

    function: str
    fingerprint: str
    cost_before: int
    cost_after: int
    entities: int
    code_size: int

    @property
    def savings(self) -> int:
        return max(0, self.cost_before - self.cost_after)

    def as_dict(self) -> dict:
        return {
            "function": self.function,
            "fingerprint": self.fingerprint,
            "cost_before": self.cost_before,
            "cost_after": self.cost_after,
            "entities": self.entities,
            "code_size": self.code_size,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "DerivedAttributes":
        return cls(
            function=data["function"],
            fingerprint=data["fingerprint"],
            cost_before=data["cost_before"],
            cost_after=data["cost_after"],
            entities=data["entities"],
            code_size=data["code_size"],
        )


def config_fingerprint(config: OptimizerConfig) -> str:
    """A stable identifier for an optimizer configuration."""
    rules = ",".join(sorted(config.rules.enabled))
    return (
        f"rules={rules};growth={config.expansion.growth_budget};"
        f"unroll={config.expansion.unroll_recursive};"
        f"penalty={config.penalty_limit};expand={config.expansion_enabled}"
    )


def attributes_root(heap: ObjectHeap) -> dict:
    """The mutable attribute table stored in the heap (created on demand)."""
    oid = heap.root(ATTRIBUTES_ROOT)
    if oid is None:
        table: dict = {}
        heap.set_root(ATTRIBUTES_ROOT, heap.store(table))
        return table
    return heap.load(oid)


def load_attributes(heap: ObjectHeap, function: str, config: OptimizerConfig) -> DerivedAttributes | None:
    table = attributes_root(heap)
    entry = table.get(f"{function}@{config_fingerprint(config)}")
    return DerivedAttributes.from_dict(entry) if entry is not None else None


def record_attributes(
    heap: ObjectHeap, function: str, config: OptimizerConfig, result: ReflectResult
) -> DerivedAttributes:
    attrs = DerivedAttributes(
        function=function,
        fingerprint=config_fingerprint(config),
        cost_before=result.cost_before,
        cost_after=result.cost_after,
        entities=result.entities,
        code_size=result.code_size,
    )
    table = attributes_root(heap)
    table[f"{function}@{attrs.fingerprint}"] = attrs.as_dict()
    oid = heap.root(ATTRIBUTES_ROOT)
    assert oid is not None
    heap.update(oid, table)
    return attrs


def cached_optimize(
    heap: ObjectHeap,
    closure: VMClosure,
    registry=None,
    config: OptimizerConfig | None = None,
    _cache: dict = {},
) -> ReflectResult:
    """Reflectively optimize with an in-session result cache plus persisted
    derived attributes.

    The session cache is keyed by closure identity and fingerprint (the same
    running procedure optimized twice under the same configuration is free);
    the persistent attribute table survives restarts and lets tools inspect
    historical costs/savings without re-running the optimizer.
    """
    config = config or DYNAMIC_CONFIG
    key = (id(closure), config_fingerprint(config))
    hit = _cache.get(key)
    if hit is not None:
        return hit
    result = optimize_closure(closure, heap=heap, registry=registry, config=config)
    record_attributes(heap, closure.code.name, config, result)
    _cache[key] = result
    return result
