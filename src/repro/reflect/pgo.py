"""Profile-guided reflective optimization: close the paper's runtime loop.

Section 4.1 makes optimization a *runtime* activity; this module supplies
the missing decision input: measured behavior.  A
:class:`repro.obs.profile.VMProfiler` says which procedures actually ran
hot (invocation and instruction counts per code object); ``optimize_hot``
selects the hottest compiled functions by that evidence, runs
``reflect.optimize`` on each, and links the regenerated closures back into
the running image so subsequent calls use the optimized code.

>>> from repro.lang import TycoonSystem
>>> from repro.obs import profile_call
>>> from repro.reflect.pgo import optimize_hot
>>> system = TycoonSystem()
>>> _ = system.compile('''
... module m export work idle
... let idle(x: Int): Int = x
... let work(n: Int): Int =
...   var s := 0 in var i := 0 in
...   begin while i < n do begin s := s + i; i := i + 1 end end; s end
... end''')
>>> _, prof = profile_call(system, "m", "work", [50])
>>> report = optimize_hot(system, prof, top=1)
>>> [c.function for c in report.selected]
['work']
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.profile import VMProfiler
from repro.obs.trace import TRACER
from repro.reflect.optimize import DYNAMIC_CONFIG, ReflectResult

__all__ = ["HotCandidate", "PgoReport", "rank_hot", "optimize_hot"]


@dataclass(slots=True)
class HotCandidate:
    """One compiled function with its measured execution totals."""

    module: str
    function: str
    invocations: int
    instructions: int

    @property
    def qualified(self) -> str:
        return f"{self.module}.{self.function}"


@dataclass
class PgoReport:
    """Outcome of one profile-guided optimization round."""

    #: candidates that were selected and re-optimized, hottest first
    selected: list[HotCandidate] = field(default_factory=list)
    #: qualified name → the reflective-optimization diagnostics
    results: dict[str, ReflectResult] = field(default_factory=dict)
    #: every measured candidate, hottest first (selection context)
    ranking: list[HotCandidate] = field(default_factory=list)

    def closure(self, module: str, function: str):
        return self.results[f"{module}.{function}"].closure


def rank_hot(
    system,
    profiler: VMProfiler,
    modules=None,
    key: str = "instructions",
) -> list[HotCandidate]:
    """Rank the system's compiled functions by measured execution totals.

    Only *exported* functions that actually appeared in the profile are
    returned (profiles key closures by qualified code-object name,
    ``module.function``; exports are the procedures reflect can look up and
    relink — a hot internal helper is reached through its exported caller's
    combined scope instead).  ``key`` is ``"instructions"`` (default —
    where the time went) or ``"invocations"`` (what was called most).
    """
    if key not in ("instructions", "invocations"):
        raise ValueError(f"unknown profile key {key!r}")
    wanted = set(modules) if modules is not None else None
    candidates: list[HotCandidate] = []
    for module_name, module in system.compiled.items():
        if wanted is not None and module_name not in wanted:
            continue
        for fn_name in module.exports:
            fn = module.functions.get(fn_name)
            if fn is None:  # exported constant, not a procedure
                continue
            stats = profiler.closures.get(f"{module_name}.{fn.name}")
            if stats is None:
                continue
            candidates.append(
                HotCandidate(
                    module=module_name,
                    function=fn.name,
                    invocations=stats.invocations,
                    instructions=stats.instructions,
                )
            )
    candidates.sort(key=lambda c: (-getattr(c, key), c.qualified))
    return candidates


def optimize_hot(
    system,
    profiler: VMProfiler,
    top: int = 1,
    modules=None,
    key: str = "instructions",
    min_instructions: int = 0,
    config=None,
    relink: bool = True,
    facts=None,
) -> PgoReport:
    """Reflectively re-optimize the measured-hottest compiled functions.

    Selection is purely evidence-driven: the ``top`` functions by profiled
    ``key`` (with at least ``min_instructions`` executed) are passed through
    :func:`repro.reflect.optimize_result`.  With ``relink=True`` (default)
    each regenerated closure replaces the export binding in the running
    image, so later ``system.call``/``system.closure`` lookups — though not
    closures other modules captured earlier — use the optimized code.

    ``facts`` (a :class:`~repro.analysis.facts.FactStore`) closes the loop
    with the whole-image analysis: the candidate's stored summary (effect
    class, result kind) is consulted and attached to the trace evidence,
    and the rewritten function's *old* PTML hash is invalidated so the next
    audit recomputes facts only for the regenerated slice of the graph.
    """
    from repro.reflect import optimize_result  # lazy: avoid import cycle

    ranking = rank_hot(system, profiler, modules=modules, key=key)
    report = PgoReport(ranking=ranking)
    for candidate in ranking[:top]:
        if candidate.instructions < min_instructions:
            continue
        old_fact = _candidate_fact(system, candidate, facts)
        result = optimize_result(
            system, candidate.module, candidate.function, config or DYNAMIC_CONFIG
        )
        report.selected.append(candidate)
        report.results[candidate.qualified] = result
        if relink:
            system.link(candidate.module).exports[candidate.function] = result.closure
            if facts is not None and old_fact is not None:
                # the binding moved to new code: the old hash's fact is
                # about a function the image no longer serves
                facts.invalidate(old_fact.key)
        TRACER.event(
            "reflect.pgo",
            function=candidate.qualified,
            invocations=candidate.invocations,
            instructions=candidate.instructions,
            cost_before=result.cost_before,
            cost_after=result.cost_after,
            estimated_speedup=result.estimated_speedup,
            relinked=relink,
            effect=None if old_fact is None else old_fact.summary.effect,
            result_kind=None if old_fact is None else old_fact.summary.result,
        )
    return report


def _candidate_fact(system, candidate: HotCandidate, facts):
    """The stored analysis fact for a candidate's current code, if any."""
    if facts is None:
        return None
    from repro.store.ptml import ptml_key

    try:
        closure = system.closure(candidate.module, candidate.function)
    except Exception:
        return None
    key = ptml_key(closure.code, getattr(system, "heap", None))
    if key is None:
        return None
    return facts.lookup(key)
