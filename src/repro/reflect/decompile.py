"""Reconstructing TML from executable code (paper section 6, future work).

"We are currently investigating techniques to reconstruct a TML
representation by examining the persistent executable code representation of
a procedure, effectively inverting the target machine code generation
process.  In general, the TML tree reconstructed this way will not be
isomorphic to the original TML tree which we currently encode in PTML.  The
interesting question is whether this has an impact on the possible
optimizations."

This module implements that inversion for TAM code: every instruction maps
back to the primitive application that emitted it; basic blocks become
continuation abstractions; ``fix`` groups become Y applications; nested code
objects become abstractions with their captures re-established.

As the paper anticipates, the result is *not* isomorphic to the original
term — blocks reachable from several branches are duplicated per use site
(the code generator's jumps cannot be shared as trees) — but it is
semantically equivalent and well-formed, so the whole optimizer applies to
it.  Experiment-grade answer to the paper's "interesting question": the
rewrite rules fire on reconstructed terms exactly as on originals (see
``tests/reflect/test_decompile.py``); only sharing-sensitive size metrics
differ.
"""

from __future__ import annotations

from repro.core.names import Name, NameSupply
from repro.core.syntax import Abs, App, Application, Lit, PrimApp, Value, Var
from repro.machine.isa import CodeObject
from repro.reflect.reach import ReflectError

__all__ = ["decompile_code"]

#: opcode -> (primitive, has exception continuation) for the regular
#: result-producing instructions
_SIMPLE_PRIMS = {
    "add": ("+", True),
    "sub": ("-", True),
    "mul": ("*", True),
    "div": ("/", True),
    "rem": ("%", True),
    "band": ("band", False),
    "bor": ("bor", False),
    "bxor": ("bxor", False),
    "shl": ("shl", False),
    "shr": ("shr", False),
    "bnot": ("bnot", False),
    "c2i": ("char2int", False),
    "i2c": ("int2char", False),
}

_CMP_PRIMS = {"lt": "<", "gt": ">", "le": "<=", "ge": ">="}


def decompile_code(code: CodeObject, supply: NameSupply | None = None) -> Abs:
    """Invert code generation: rebuild a TML abstraction from TAM code.

    The result is alpha-fresh (all binders from ``supply``), well-formed,
    and semantically equivalent to the code; free variables are exactly
    ``code.free_names``.
    """
    if supply is None:
        top = max(
            [n.uid for n in code.params]
            + [n.uid for n in code.free_names]
            + [_max_code_uid(code)],
            default=-1,
        )
        supply = NameSupply(start=top + 1)
    return _Decompiler(code, supply).build()


def _max_code_uid(code: CodeObject) -> int:
    top = -1
    stack = [code]
    while stack:
        current = stack.pop()
        for name in tuple(current.params) + tuple(current.free_names):
            top = max(top, name.uid)
        stack.extend(current.codes)
    return top


class _Decompiler:
    def __init__(self, code: CodeObject, supply: NameSupply):
        self.code = code
        self.supply = supply

    def build(self) -> Abs:
        regs: dict[int, Value] = {
            index: Var(param) for index, param in enumerate(self.code.params)
        }
        body = self._block(0, regs)
        return Abs(tuple(self.code.params), body)

    # ------------------------------------------------------------- helpers

    def _const(self, index: int) -> Lit:
        return Lit(self.code.consts[index])

    def _free_var(self, index: int) -> Var:
        return Var(self.code.free_names[index])

    def _nested(self, code_index: int, plan, regs: dict[int, Value]) -> Abs:
        """Rebuild a nested closure as an abstraction with captures bound."""
        from repro.core.substitution import alpha_rename, substitute_many

        nested = self.code.codes[code_index]
        # blocks reachable from several branches are decompiled per use site,
        # so any closure inside may be rebuilt more than once: alpha-rename
        # each copy to keep the unique binding rule intact
        inner = alpha_rename(decompile_code(nested, self.supply), self.supply)
        sources = []
        for kind, index in plan:
            sources.append(regs[index] if kind == "r" else self._free_var(index))
        substitution = dict(zip(nested.free_names, sources))
        rebuilt = substitute_many(inner, substitution)
        assert isinstance(rebuilt, Abs)
        return rebuilt

    def _cont_for(self, pc: int, regs: dict[int, Value], result_reg: int | None,
                  base: str = "t") -> Abs:
        """A continuation abstraction resuming at ``pc``.

        ``result_reg`` receives the continuation's parameter (None for a
        nullary branch continuation).
        """
        if result_reg is None:
            return Abs((), self._block(pc, dict(regs)))
        param = self.supply.fresh_val(base)
        inner = dict(regs)
        inner[result_reg] = Var(param)
        return Abs((param,), self._block(pc, inner))

    # --------------------------------------------------------------- blocks

    def _block(self, pc: int, regs: dict[int, Value]) -> Application:
        """Decompile straight-line code from ``pc`` to a transfer of control."""
        instrs = self.code.instrs
        while True:
            if pc >= len(instrs):
                raise ReflectError(f"code {self.code.name}: fell off the end")
            instr = instrs[pc]
            op = instr[0]

            # -- register moves: no TML node, just environment updates
            if op == "const":
                regs[instr[1]] = self._const(instr[2])
            elif op == "move":
                regs[instr[1]] = regs[instr[2]]
            elif op == "free":
                regs[instr[1]] = self._free_var(instr[2])
            elif op == "closure":
                _, dst, code_index, plan = instr
                regs[dst] = self._nested(code_index, plan, regs)
            elif op == "jump":
                pc = instr[1]
                continue
            elif op == "pushh":
                return PrimApp(
                    "pushHandler",
                    (regs[instr[1]], self._cont_for(pc + 1, regs, None)),
                )
            elif op == "poph":
                return PrimApp("popHandler", (self._cont_for(pc + 1, regs, None),))
            elif op == "raise":
                return PrimApp("raise", (regs[instr[1]],))
            elif op == "print":
                return PrimApp(
                    "print",
                    (regs[instr[1]], self._unit_cont(pc + 1, regs)),
                )
            elif op == "halt":
                return PrimApp("halt", (regs[instr[1]],))
            elif op == "trapc":
                return PrimApp("raise", (self._const(instr[1]),))
            elif op == "tailcall":
                fn = regs[instr[1]]
                args = tuple(regs[i] for i in instr[2])
                if isinstance(fn, Lit):
                    raise ReflectError("tailcall through a literal")
                return App(fn, args)
            elif op in _SIMPLE_PRIMS:
                prim, has_exc = _SIMPLE_PRIMS[op]
                if has_exc:
                    _, dst, ra, rb, epc, ed = instr
                    exc = self._cont_for(epc, regs, ed, base="e")
                    normal = self._cont_for(pc + 1, regs, dst)
                    return PrimApp(prim, (regs[ra], regs[rb], exc, normal))
                if op in ("bnot", "c2i", "i2c"):
                    _, dst, ra = instr
                    return PrimApp(
                        prim, (regs[ra], self._cont_for(pc + 1, regs, dst))
                    )
                _, dst, ra, rb = instr
                return PrimApp(
                    prim, (regs[ra], regs[rb], self._cont_for(pc + 1, regs, dst))
                )
            elif op in _CMP_PRIMS:
                _, ra, rb, else_pc = instr
                then_c = self._cont_for(pc + 1, regs, None)
                else_c = self._cont_for(else_pc, regs, None)
                return PrimApp(_CMP_PRIMS[op], (regs[ra], regs[rb], then_c, else_c))
            elif op == "case":
                _, rs, tag_regs, pcs, else_pc = instr
                tags = tuple(regs[i] for i in tag_regs)
                branches = tuple(self._cont_for(p, regs, None) for p in pcs)
                args: tuple[Value, ...] = (regs[rs],) + tags + branches
                if else_pc is not None:
                    args += (self._cont_for(else_pc, regs, None),)
                return PrimApp("==", args)
            elif op == "arr":
                _, dst, arg_regs = instr
                return PrimApp(
                    "array",
                    tuple(regs[i] for i in arg_regs)
                    + (self._cont_for(pc + 1, regs, dst),),
                )
            elif op == "vec":
                _, dst, arg_regs = instr
                return PrimApp(
                    "vector",
                    tuple(regs[i] for i in arg_regs)
                    + (self._cont_for(pc + 1, regs, dst),),
                )
            elif op == "anew":
                _, dst, rn, ri = instr
                return PrimApp(
                    "new", (regs[rn], regs[ri], self._cont_for(pc + 1, regs, dst))
                )
            elif op == "bnew":
                _, dst, rn, ri = instr
                return PrimApp(
                    "$new", (regs[rn], regs[ri], self._cont_for(pc + 1, regs, dst))
                )
            elif op == "aget":
                _, dst, ra, ri = instr
                return PrimApp(
                    "[]", (regs[ra], regs[ri], self._cont_for(pc + 1, regs, dst))
                )
            elif op == "bget":
                _, dst, ra, ri = instr
                return PrimApp(
                    "$[]", (regs[ra], regs[ri], self._cont_for(pc + 1, regs, dst))
                )
            elif op == "aset":
                _, ra, ri, rv = instr
                return PrimApp(
                    "[]:=",
                    (regs[ra], regs[ri], regs[rv], self._unit_cont(pc + 1, regs)),
                )
            elif op == "bset":
                _, ra, ri, rv = instr
                return PrimApp(
                    "$[]:=",
                    (regs[ra], regs[ri], regs[rv], self._unit_cont(pc + 1, regs)),
                )
            elif op == "asize":
                _, dst, ra = instr
                return PrimApp("size", (regs[ra], self._cont_for(pc + 1, regs, dst)))
            elif op == "amove":
                values = tuple(regs[i] for i in instr[1:6])
                return PrimApp("move", values + (self._unit_cont(pc + 1, regs),))
            elif op == "bmove":
                values = tuple(regs[i] for i in instr[1:6])
                return PrimApp("$move", values + (self._unit_cont(pc + 1, regs),))
            elif op == "ccall":
                _, dst, rf, rv, epc, ed = instr
                exc = self._cont_for(epc, regs, ed, base="e")
                normal = self._cont_for(pc + 1, regs, dst)
                return PrimApp("ccall", (regs[rf], regs[rv], exc, normal))
            elif op == "extcall":
                _, name, dst, arg_regs, epc, ed = instr
                values = tuple(regs[i] for i in arg_regs)
                if epc is None:
                    return PrimApp(
                        name, values + (self._cont_for(pc + 1, regs, dst),)
                    )
                exc = self._cont_for(epc, regs, ed, base="e")
                normal = self._cont_for(pc + 1, regs, dst)
                return PrimApp(name, values + (exc, normal))
            elif op == "fix":
                return self._fix(instr[1], pc + 1, regs)
            else:  # pragma: no cover - defensive
                raise ReflectError(f"cannot decompile opcode {op!r}")
            pc += 1

    def _unit_cont(self, pc: int, regs: dict[int, Value]) -> Abs:
        """A 1-ary continuation that ignores the unit result."""
        param = self.supply.fresh_val("u")
        return Abs((param,), self._block(pc, dict(regs)))

    def _fix(self, group, next_pc: int, regs: dict[int, Value]) -> PrimApp:
        """Rebuild a recursive closure group as a Y application."""
        from repro.core.substitution import substitute_many

        # bind a fresh recursive name per member, visible to every member
        member_names: list[Name] = []
        inner_regs = dict(regs)
        for dst, code_index, _plan in group:
            nested = self.code.codes[code_index]
            sort = "cont" if not nested.is_proc else "val"
            name = self.supply.fresh(nested.name if nested.name != "anon" else "rec", sort)
            member_names.append(name)
            inner_regs[dst] = Var(name)

        members: list[Abs] = []
        for (dst, code_index, plan), name in zip(group, member_names):
            nested = self.code.codes[code_index]
            from repro.core.substitution import alpha_rename

            inner = alpha_rename(decompile_code(nested, self.supply), self.supply)
            sources = []
            for kind, index in plan:
                sources.append(
                    inner_regs[index] if kind == "r" else self._free_var(index)
                )
            rebuilt = substitute_many(inner, dict(zip(nested.free_names, sources)))
            assert isinstance(rebuilt, Abs)
            members.append(rebuilt)

        entry = Abs((), self._block(next_pc, inner_regs))
        c0 = self.supply.fresh_cont("c0")
        c = self.supply.fresh_cont("c")
        fixfun = Abs(
            (c0,) + tuple(member_names) + (c,),
            App(Var(c), (entry,) + tuple(members)),
        )
        return PrimApp("Y", (fixfun,))
