"""The reflective runtime optimizer (paper section 4.1).

``reflect.optimize(f)``: take a *running* procedure, map its persistent TML
back from PTML, re-establish the R-value bindings of its global variables
from the closure record, collect every contributing declaration into one
scope, re-run the TML optimizer across the now-dissolved abstraction
barriers, regenerate code and link it back into the running image.

The combined scope is built exactly the way the paper prescribes: non-
recursive declarations become λ-bindings, recursive groups become
applications of the ``Y`` fixpoint combinator ("recursive declarations of
functions, values, or queries are represented uniformly through applications
of the fixpoint combinator Y and do not lead to repeated traversals").
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.core.names import Name
from repro.core.substitution import alpha_rename, substitute_many
from repro.core.syntax import Abs, App, Lit, PrimApp, Term, Value, Var
from repro.machine.codegen import compile_function
from repro.machine.isa import VMClosure, code_size
from repro.machine.vm import instantiate
from repro.primitives.registry import PrimitiveRegistry, default_registry
from repro.rewrite.cost import term_cost
from repro.rewrite.pipeline import OptimizerConfig, optimize
from repro.rewrite.stats import RewriteStats
from repro.reflect.reach import EntityGraph, ReflectError, collect_entities
from repro.store.ptml import encode_ptml

__all__ = ["ReflectResult", "optimize_closure", "DYNAMIC_CONFIG"]

#: Default optimizer configuration for runtime optimization: same rules as
#: the static optimizer, expansion enabled with a budget generous enough to
#: swallow library leaf functions.
DYNAMIC_CONFIG = OptimizerConfig()


@dataclass
class ReflectResult:
    """Outcome of one reflective optimization."""

    closure: VMClosure
    term: Term
    stats: RewriteStats
    entities: int
    holes: int
    cost_before: int
    cost_after: int
    code_size: int
    #: per-rule counts from the query rewriter, when the integrated
    #: program/query pipeline was used (Fig. 4)
    query_stats: object | None = None

    @property
    def estimated_speedup(self) -> float:
        if self.cost_after <= 0:
            return float("inf")
        return self.cost_before / self.cost_after


def optimize_closure(
    closure: VMClosure,
    heap=None,
    registry: PrimitiveRegistry | None = None,
    config: OptimizerConfig | None = None,
    name: str | None = None,
    pipeline=None,
) -> ReflectResult:
    """Reflectively optimize a running procedure across abstraction barriers.

    ``pipeline`` overrides the optimizer invoked on the combined scope; the
    query subsystem passes its integrated program/query optimizer here
    (Fig. 4) so embedded queries are rewritten against runtime bindings.
    The callable receives ``(term, registry, config)`` and returns an object
    with ``.term`` and ``.stats``.
    """
    registry = registry or default_registry()
    config = config or DYNAMIC_CONFIG
    graph = collect_entities(closure, heap)
    combined, _ = _combine(graph)

    cost_before = _combined_cost(graph, registry)
    run = pipeline if pipeline is not None else optimize
    result = run(combined, registry, config)
    optimized = result.term
    if not isinstance(optimized, Abs):
        # the optimizer η-reduced the wrapper to an existing procedure value;
        # re-wrap so we can still generate code for it
        raise ReflectError("combined term did not optimize to an abstraction")

    new_name = name or f"{closure.code.name}'"
    code = compile_function(optimized, registry, name=new_name)
    blob = encode_ptml(optimized)
    if heap is not None:
        code.ptml_ref = heap.store(blob)
    else:
        code.ptml_ref = blob

    bindings = {hole: value for hole, value in graph.holes.items()}
    new_closure = instantiate(code, bindings)
    return ReflectResult(
        closure=new_closure,
        term=optimized,
        stats=result.stats,
        entities=len(graph.entities),
        holes=len(graph.holes),
        cost_before=cost_before,
        cost_after=term_cost(optimized, registry),
        code_size=code_size(code),
        query_stats=getattr(result, "query_stats", None),
    )


# ---------------------------------------------------------------------------
# scope combination
# ---------------------------------------------------------------------------


def _processed_term(graph: EntityGraph, key: int) -> Term:
    """Alpha-rename an entity's term and re-establish its R-value bindings."""
    entity = graph.entities[key]
    renamed = alpha_rename(entity.term, graph.supply)
    substitution: dict[Name, Value] = {}
    for free_name, binding in entity.bindings.items():
        if binding.kind == "lit":
            substitution[free_name] = Lit(binding.value)
        else:  # entity or hole
            substitution[free_name] = Var(binding.name)
    return substitute_many(renamed, substitution)


def _combine(graph: EntityGraph) -> tuple[Abs, tuple[Name, ...]]:
    """Build one TML term binding every entity around a call to the target.

    Shape::

        proc(p1..pk ce cc)
          <outermost binding group>
            ...
              (target p1..pk ce cc)

    Binding groups follow the SCC condensation of the dependency graph,
    dependencies outermost; each non-trivial SCC becomes a Y application.
    """
    target = graph.entities[graph.target_key]
    target_term = target.term
    if not isinstance(target_term, Abs):
        raise ReflectError("target procedure's PTML is not an abstraction")

    # wrapper parameters mirror the target's parameter sorts
    params = tuple(graph.supply.fresh_like(p) for p in target_term.params)
    inner: App = App(Var(target.name), tuple(Var(p) for p in params))

    dep_graph = graph.dependency_graph()
    condensation = nx.condensation(dep_graph)
    # topological order lists dependents before dependencies (edges point
    # from user to used); dependencies must be bound OUTSIDE, so the
    # outermost-first binding order is the reverse topological order.
    scc_order = list(nx.topological_sort(condensation))
    groups_outer_first = [
        condensation.nodes[scc]["members"] for scc in reversed(scc_order)
    ]

    body: Term = inner
    for group in reversed(groups_outer_first):
        body = _bind_group(graph, dep_graph, sorted(group), body)
    assert isinstance(body, (App, PrimApp))
    return Abs(params, body), params


def _bind_group(graph: EntityGraph, dep_graph, keys: list[int], inner) -> Term:
    """Bind one SCC: a λ-binding when trivial, a Y group when recursive."""
    if len(keys) == 1 and not dep_graph.has_edge(keys[0], keys[0]):
        entity = graph.entities[keys[0]]
        return App(
            Abs((entity.name,), inner),
            (_processed_term(graph, keys[0]),),
        )
    names = tuple(graph.entities[key].name for key in keys)
    terms = tuple(_processed_term(graph, key) for key in keys)
    c0 = graph.supply.fresh_cont("c0")
    c = graph.supply.fresh_cont("c")
    entry = Abs((), inner)
    fixfun = Abs((c0,) + names + (c,), App(Var(c), (entry,) + terms))
    return PrimApp("Y", (fixfun,))


def _combined_cost(graph: EntityGraph, registry: PrimitiveRegistry) -> int:
    """Cost estimate of the unoptimized configuration: sum of entity costs."""
    return sum(
        term_cost(entity.term, registry) for entity in graph.entities.values()
    )
