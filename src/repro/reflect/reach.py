"""Transitive reachability over persistent code (paper section 4.1).

"It is rather straightforward to collect (via transitive reachability) all
declarations which contribute to a given TML term (for example an embedded
query) into a single scope (represented again as a TML term) and to invoke
the TML optimizer to generate a globally optimized TML term."

:func:`collect_entities` walks the closure graph from a target procedure:
every reachable procedure with attached PTML becomes an *entity* (its TML
term will be spliced into the combined scope); simple values become
literals; store objects become OID literals; anything else stays a *hole*
bound at instantiation time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import networkx as nx

from repro.core.names import Name, NameSupply
from repro.core.syntax import Char, Oid, Term, Unit, max_uid
from repro.machine.isa import VMClosure
from repro.store.ptml import decode_ptml
from repro.store.serialize import Blob

__all__ = ["ReflectError", "Entity", "EntityGraph", "collect_entities", "term_of_closure"]


class ReflectError(Exception):
    """Reflection failed (no PTML, depth exhausted, malformed closure)."""


def term_of_closure(closure: VMClosure, heap=None, allow_decompile: bool = False) -> Term:
    """Recover the TML term of a compiled procedure from its PTML reference.

    With ``allow_decompile=True`` a procedure *without* PTML is reconstructed
    from its executable code instead (the §6 future-work technique,
    :mod:`repro.reflect.decompile`) — not isomorphic to the original term,
    but semantically equivalent and fully optimizable.
    """
    ref = closure.code.ptml_ref
    if ref is None:
        if allow_decompile:
            from repro.reflect.decompile import decompile_code

            return decompile_code(closure.code)
        raise ReflectError(
            f"procedure {closure.code.name!r} carries no PTML "
            "(compiled with attach_ptml=False?)"
        )
    if isinstance(ref, Oid):
        if heap is None:
            raise ReflectError("PTML reference is an OID but no heap was supplied")
        ref = heap.load(ref)
    if not isinstance(ref, Blob):
        raise ReflectError(f"unexpected PTML reference {ref!r}")
    return decode_ptml(ref).term


@dataclass
class Entity:
    """One procedure spliced into the combined optimization scope."""

    name: Name
    closure: VMClosure
    term: Term
    #: free Name of `term` -> how it binds (see _Binding kinds below)
    bindings: dict[Name, "Binding"] = field(default_factory=dict)


@dataclass(frozen=True)
class Binding:
    """How one free variable of an entity term is satisfied.

    kinds: ``lit`` (substituted literal), ``entity`` (reference to another
    spliced procedure), ``hole`` (left free; bound at instantiation).
    """

    kind: str
    value: Any = None  # Lit payload for lit; Entity key for entity; runtime value for hole
    name: Name | None = None  # the shared hole / entity name


@dataclass
class EntityGraph:
    """The result of reachability collection."""

    target_key: int
    entities: dict[int, Entity]  # keyed by id(closure)
    #: hole Name -> runtime value to bind at instantiation
    holes: dict[Name, Any]
    supply: NameSupply

    def dependency_graph(self) -> "nx.DiGraph":
        """entity key -> entity key edges (u depends on v)."""
        graph = nx.DiGraph()
        graph.add_nodes_from(self.entities)
        for key, entity in self.entities.items():
            for binding in entity.bindings.values():
                if binding.kind == "entity":
                    graph.add_edge(key, binding.value)
        return graph


_SIMPLE_TYPES = (bool, int, str, Char, Unit)


def collect_entities(
    target: VMClosure,
    heap=None,
    max_entities: int = 400,
    max_depth: int = 16,
) -> EntityGraph:
    """Collect the target and everything reachable through closure records.

    Depth and entity-count limits keep pathological graphs bounded; anything
    beyond the limits degrades to a hole (still correct, just not inlined).
    """
    terms: dict[int, Term] = {}
    closures: dict[int, VMClosure] = {}
    pending: list[tuple[VMClosure, int]] = [(target, 0)]
    order: list[int] = []

    while pending:
        closure, depth = pending.pop(0)
        key = id(closure)
        if key in terms:
            continue
        terms[key] = term_of_closure(closure, heap)
        closures[key] = closure
        order.append(key)
        if depth >= max_depth:
            continue
        for value in closure.free:
            if (
                isinstance(value, VMClosure)
                and id(value) not in terms
                and value.code.ptml_ref is not None
                and len(terms) + len(pending) < max_entities
            ):
                pending.append((value, depth + 1))

    # One shared supply above every uid in every collected term keeps the
    # unique binding rule intact across splices.
    top = max((max_uid(term) for term in terms.values()), default=-1)
    supply = NameSupply(start=top + 1)

    entity_names: dict[int, Name] = {
        key: supply.fresh_val(closures[key].code.name.replace(".", "_") or "f")
        for key in order
    }
    holes: dict[Name, Any] = {}
    hole_by_value: dict[int, Name] = {}
    entities: dict[int, Entity] = {}

    for key in order:
        closure = closures[key]
        term = terms[key]
        bindings: dict[Name, Binding] = {}
        for free_name, value in zip(closure.code.free_names, closure.free):
            bindings[free_name] = _bind_value(
                value, heap, terms, entity_names, holes, hole_by_value, supply, free_name
            )
        entities[key] = Entity(
            name=entity_names[key],
            closure=closure,
            term=term,
            bindings=bindings,
        )

    return EntityGraph(
        target_key=id(target), entities=entities, holes=holes, supply=supply
    )


def _bind_value(
    value: Any,
    heap,
    terms: dict[int, Term],
    entity_names: dict[int, Name],
    holes: dict[Name, Any],
    hole_by_value: dict[int, Name],
    supply: NameSupply,
    free_name: Name,
) -> Binding:
    if isinstance(value, _SIMPLE_TYPES):
        return Binding("lit", value=value)
    if isinstance(value, VMClosure) and id(value) in terms:
        return Binding("entity", value=id(value), name=entity_names[id(value)])
    if heap is not None:
        oid = heap.oid_of(value)
        if oid is not None:
            # known persistent object: substitutable as an OID literal —
            # this is what lets the query optimizer see index structures
            return Binding("lit", value=oid)
    existing = hole_by_value.get(id(value))
    if existing is not None:
        return Binding("hole", value=value, name=existing)
    hole = supply.fresh_like(free_name)
    holes[hole] = value
    hole_by_value[id(value)] = hole
    return Binding("hole", value=value, name=hole)
