"""Reflective runtime optimization across abstraction barriers (paper §4.1).

The public entry point is :func:`optimize_function`, mirroring the paper's

    let optimizedAbs = reflect.optimize(abs)

>>> from repro.lang import TycoonSystem
>>> from repro import reflect
>>> system = TycoonSystem()
>>> _ = system.compile('''
... module m export f
... let f(x: Int): Int = x * 2 + 1
... end''')
>>> fast = reflect.optimize_function(system, "m", "f")
>>> system.vm().call(fast, [20]).value
41
"""

from repro.reflect.attributes import (
    DerivedAttributes,
    cached_optimize,
    load_attributes,
    record_attributes,
)
from repro.reflect.decompile import decompile_code
from repro.reflect.optimize import DYNAMIC_CONFIG, ReflectResult, optimize_closure
from repro.reflect.pgo import HotCandidate, PgoReport, optimize_hot, rank_hot
from repro.reflect.reach import (
    Entity,
    EntityGraph,
    ReflectError,
    collect_entities,
    term_of_closure,
)

__all__ = [
    "DerivedAttributes",
    "cached_optimize",
    "load_attributes",
    "record_attributes",
    "DYNAMIC_CONFIG",
    "ReflectResult",
    "optimize_closure",
    "Entity",
    "EntityGraph",
    "ReflectError",
    "collect_entities",
    "term_of_closure",
    "decompile_code",
    "optimize_function",
    "optimize_result",
    "HotCandidate",
    "PgoReport",
    "optimize_hot",
    "rank_hot",
]


def optimize_function(system, module: str, function: str, config=None):
    """Reflectively optimize ``module.function`` in a running system image.

    Returns the new, faster closure (the paper's ``optimizedAbs``).  Use
    :func:`optimize_result` for the full diagnostics.
    """
    return optimize_result(system, module, function, config).closure


def optimize_result(system, module: str, function: str, config=None) -> ReflectResult:
    """Like :func:`optimize_function` but returns the full ReflectResult."""
    closure = system.closure(module, function)
    return optimize_closure(
        closure,
        heap=system.heap,
        registry=system.registry,
        config=config or DYNAMIC_CONFIG,
        name=f"{module}.{function}'",
    )
