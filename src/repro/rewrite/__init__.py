"""Analysis and rewriting of TML intermediate representations (paper §3).

The reduction pass applies the eight core rewrite rules to a fixpoint; the
expansion pass performs cost-model-guided procedure inlining; the pipeline
alternates the two under an accumulated-penalty bound.
"""

from repro.rewrite.expansion import ExpansionConfig, expand_pass
from repro.rewrite.pipeline import OptimizeResult, OptimizerConfig, optimize, reduce_only
from repro.rewrite.reduction import reduce_to_fixpoint
from repro.rewrite.rules import ALL_RULES, RuleConfig
from repro.rewrite.stats import RewriteStats

__all__ = [
    "ExpansionConfig",
    "expand_pass",
    "OptimizeResult",
    "OptimizerConfig",
    "optimize",
    "reduce_only",
    "reduce_to_fixpoint",
    "ALL_RULES",
    "RuleConfig",
    "RewriteStats",
]
