"""Heuristic cost model for the expansion (inlining) pass.

Paper section 3: "The decision whether a given use of a bound abstraction is
to be substituted is based on a heuristic cost model similar to the one
described by [Appel 1992]."  Section 2.3 item 3: every primitive carries "a
function to estimate the runtime cost of a given call ... measured in the
number of instructions necessary to implement the primitive on an idealized
abstract machine.  This function is used by the optimizer to estimate the
possible savings resulting from the inlining of a TML procedure containing
calls to the primitive."

The model is deliberately simple and unit-consistent: everything is measured
in abstract-machine instructions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.syntax import Abs, App, Lit, PrimApp, Term, iter_subterms
from repro.primitives.registry import PrimitiveRegistry

__all__ = [
    "CALL_COST",
    "CLOSURE_COST",
    "DEFAULT_PRIM_COST",
    "term_cost",
    "InlineDecision",
    "site_decision",
]

#: Instructions for a user-level procedure call: fetch closure, push frame,
#: pass arguments, indirect jump — the overhead inlining eliminates.
CALL_COST = 6

#: Instructions for invoking a continuation: a goto with arguments (most
#: continuation transfers compile to fallthrough or a single jump).
CONT_CALL_COST = 1

#: Instructions to materialize a closure for an abstraction used as a value.
CLOSURE_COST = 4

#: Worst-case cost assumed for unknown primitives (section 2.3: attribute
#: defaults represent the worst possible case).
DEFAULT_PRIM_COST = 20

#: Savings credited per literal argument at a call site: a known constant
#: typically enables at least one fold inside the inlined body.
LIT_ARG_BONUS = 2

#: Savings credited per abstraction argument: a known function argument
#: usually turns an indirect call inside the body into a direct (inlinable)
#: one — the higher-order-argument effect that makes query predicates cheap.
ABS_ARG_BONUS = CALL_COST


def term_cost(term: Term, registry: PrimitiveRegistry) -> int:
    """Estimated instruction cost of one execution path through ``term``.

    A static approximation: every application is counted once.  Fine for
    comparing a call site against an inlined body; not a profile.
    """
    from repro.core.syntax import Var

    total = 0
    for node in iter_subterms(term):
        if isinstance(node, App):
            fn = node.fn
            is_cont_transfer = (isinstance(fn, Var) and fn.name.is_cont) or (
                isinstance(fn, Abs) and fn.is_cont_abs
            )
            total += CONT_CALL_COST if is_cont_transfer else CALL_COST
        elif isinstance(node, PrimApp):
            prim = registry.get(node.prim)
            total += prim.cost if prim is not None else DEFAULT_PRIM_COST
        elif isinstance(node, Abs):
            total += CLOSURE_COST
    return total


@dataclass(frozen=True, slots=True)
class InlineDecision:
    """Outcome of the per-site heuristic, kept for explainability.

    ``savings`` is what inlining recovers at this site; ``growth`` is the
    residual cost the copy adds.  The site is inlined when ``growth`` stays
    within the pass's growth budget.
    """

    inline: bool
    savings: int
    growth: int
    body_cost: int


def site_decision(
    body: Abs,
    call_args: tuple,
    registry: PrimitiveRegistry,
    growth_budget: int,
) -> InlineDecision:
    """Decide whether to substitute ``body`` at a call site (section 3).

    savings = call overhead + per-argument bonuses for statically known
    arguments; the site is expanded when ``body_cost - savings`` does not
    exceed ``growth_budget``.

    Arguments bound to parameters the body never uses are credited too: the
    reduction pass deletes the dead binding right after inlining, so whatever
    it cost to materialize the argument is recovered (nothing for variables,
    the literal bonus for literals, a closure for abstractions).
    """
    from repro.analysis.usage import unused_param_indices

    cost = term_cost(body.body, registry)
    savings = CALL_COST + CLOSURE_COST  # the call and (eventually) the closure
    unused = set(unused_param_indices(body))
    for index, arg in enumerate(call_args):
        if isinstance(arg, Lit):
            savings += LIT_ARG_BONUS
        elif isinstance(arg, Abs):
            savings += ABS_ARG_BONUS
        if index in unused:
            if isinstance(arg, Lit):
                savings += 1
            elif isinstance(arg, Abs):
                savings += CLOSURE_COST
    growth = max(0, cost - savings)
    return InlineDecision(growth <= growth_budget, savings, growth, cost)
