"""The two-pass TML optimizer (paper section 3).

"We have organized the TML optimizer into two separate passes, namely a
reduction pass and the expansion pass. ... each expansion pass is followed
by a reduction pass.  Likewise, the reduction pass may reveal new
opportunities to perform expansions, so the two passes are applied
repeatedly until no more changes are made to the TML tree.  To guarantee the
termination of this process even in obscure cases, a penalty is accumulated
at each round of the reduction/expansion phases.  The optimization process
stops when this penalty reaches a certain limit."

Penalty here is the number of inlined sites per round; when the accumulated
penalty crosses ``penalty_limit`` the growth budget collapses to zero and
the alternation necessarily stops.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core.syntax import Term, term_size
from repro.primitives.registry import PrimitiveRegistry, default_registry
from repro.rewrite.expansion import ExpansionConfig, expand_pass
from repro.rewrite.reduction import reduce_to_fixpoint
from repro.rewrite.rules import RuleConfig
from repro.rewrite.stats import RewriteStats

__all__ = ["OptimizerConfig", "OptimizeResult", "optimize", "reduce_only"]


@dataclass(frozen=True, slots=True)
class OptimizerConfig:
    """Configuration of the full reduce/expand alternation."""

    rules: RuleConfig = field(default_factory=RuleConfig)
    expansion: ExpansionConfig = field(default_factory=ExpansionConfig)
    #: accumulated-penalty limit that bounds the alternation (section 3)
    penalty_limit: int = 500
    #: hard bound on reduce/expand rounds
    max_rounds: int = 10
    #: skip the expansion pass entirely (reduction-only optimizer)
    expansion_enabled: bool = True

    @classmethod
    def reduction_only(cls) -> "OptimizerConfig":
        return cls(expansion_enabled=False)

    @classmethod
    def with_rules(cls, rules: RuleConfig) -> "OptimizerConfig":
        return cls(rules=rules)


@dataclass(frozen=True, slots=True)
class OptimizeResult:
    """An optimized term plus the statistics explaining what happened."""

    term: Term
    stats: RewriteStats


def optimize(
    term: Term,
    registry: PrimitiveRegistry | None = None,
    config: OptimizerConfig | None = None,
) -> OptimizeResult:
    """Run the alternating reduction/expansion optimizer to quiescence."""
    registry = registry or default_registry()
    config = config or OptimizerConfig()
    stats = RewriteStats()
    stats.size_before = term_size(term)

    penalty = 0
    expansion_config = config.expansion
    for round_index in range(config.max_rounds):
        stats.rounds = round_index + 1
        term = reduce_to_fixpoint(term, registry, config.rules, stats)
        if not config.expansion_enabled:
            break

        if penalty >= config.penalty_limit:
            break
        inlined_before = stats.inlined_sites
        term = expand_pass(term, registry, expansion_config, stats)
        new_sites = stats.inlined_sites - inlined_before
        if new_sites == 0:
            break
        penalty += new_sites
        stats.penalty = penalty
        if penalty >= config.penalty_limit:
            # collapse the growth budget so a final reduction settles things
            expansion_config = replace(expansion_config, growth_budget=0)

    term = reduce_to_fixpoint(term, registry, config.rules, stats)
    stats.size_after = term_size(term)
    return OptimizeResult(term, stats)


def reduce_only(
    term: Term,
    registry: PrimitiveRegistry | None = None,
    rules: RuleConfig | None = None,
) -> OptimizeResult:
    """Run just the reduction pass to fixpoint (no inlining)."""
    registry = registry or default_registry()
    stats = RewriteStats()
    stats.size_before = term_size(term)
    term = reduce_to_fixpoint(term, registry, rules or RuleConfig(), stats)
    stats.size_after = term_size(term)
    return OptimizeResult(term, stats)
