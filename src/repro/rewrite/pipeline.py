"""The two-pass TML optimizer (paper section 3).

"We have organized the TML optimizer into two separate passes, namely a
reduction pass and the expansion pass. ... each expansion pass is followed
by a reduction pass.  Likewise, the reduction pass may reveal new
opportunities to perform expansions, so the two passes are applied
repeatedly until no more changes are made to the TML tree.  To guarantee the
termination of this process even in obscure cases, a penalty is accumulated
at each round of the reduction/expansion phases.  The optimization process
stops when this penalty reaches a certain limit."

Penalty here is the number of inlined sites per round; when the accumulated
penalty crosses ``penalty_limit`` the growth budget collapses to zero and
the alternation necessarily stops.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core.syntax import Term, term_size
from repro.obs.metrics import METRICS
from repro.obs.trace import TRACER
from repro.primitives.registry import PrimitiveRegistry, default_registry
from repro.rewrite.expansion import ExpansionConfig, expand_pass
from repro.rewrite.reduction import reduce_to_fixpoint
from repro.rewrite.rules import RuleConfig
from repro.rewrite.stats import RewriteStats, RuleTimer

__all__ = ["OptimizerConfig", "OptimizeResult", "optimize", "reduce_only"]

_OPT_RUNS = METRICS.counter("rewrite.optimize_runs", "full optimizer invocations")
_RULES_FIRED = METRICS.counter("rewrite.rules_fired", "reduction rule applications")
_SITES_INLINED = METRICS.counter("rewrite.inlined_sites", "expansion inline sites")
_SIZE_DELTA = METRICS.histogram(
    "rewrite.size_shrink", "term-size reduction (nodes removed) per optimize run"
)


@dataclass(frozen=True, slots=True)
class OptimizerConfig:
    """Configuration of the full reduce/expand alternation."""

    rules: RuleConfig = field(default_factory=RuleConfig)
    expansion: ExpansionConfig = field(default_factory=ExpansionConfig)
    #: accumulated-penalty limit that bounds the alternation (section 3)
    penalty_limit: int = 500
    #: hard bound on reduce/expand rounds
    max_rounds: int = 10
    #: skip the expansion pass entirely (reduction-only optimizer)
    expansion_enabled: bool = True

    @classmethod
    def reduction_only(cls) -> "OptimizerConfig":
        return cls(expansion_enabled=False)

    @classmethod
    def with_rules(cls, rules: RuleConfig) -> "OptimizerConfig":
        return cls(rules=rules)


@dataclass(frozen=True, slots=True)
class OptimizeResult:
    """An optimized term plus the statistics explaining what happened."""

    term: Term
    stats: RewriteStats


def optimize(
    term: Term,
    registry: PrimitiveRegistry | None = None,
    config: OptimizerConfig | None = None,
    check: bool = False,
) -> OptimizeResult:
    """Run the alternating reduction/expansion optimizer to quiescence.

    With ``check=True`` every pass is re-verified against the paper's
    invariants (well-formedness, strict shrink, effect preservation, fold
    legality); a violation raises
    :class:`repro.analysis.checked.RewriteCheckError` naming the offending
    rule with before/after terms.  See ``docs/analysis.md``.
    """
    registry = registry or default_registry()
    config = config or OptimizerConfig()
    checker, registry = _checker(registry, check, context="optimize")
    on_pass = checker.reduction_pass_hook if checker else None
    stats = RewriteStats()
    stats.size_before = term_size(term)
    tracer = TRACER
    timer = RuleTimer() if tracer.enabled else None
    span = tracer.span("rewrite.optimize", size_before=stats.size_before)

    penalty = 0
    expansion_config = config.expansion
    for round_index in range(config.max_rounds):
        stats.rounds = round_index + 1
        term = reduce_to_fixpoint(term, registry, config.rules, stats, on_pass, timer)
        if not config.expansion_enabled:
            break

        if penalty >= config.penalty_limit:
            break
        inlined_before = stats.inlined_sites
        with tracer.span("rewrite.expansion", round=round_index + 1) as exp_span:
            expanded = expand_pass(term, registry, expansion_config, stats)
            new_sites = stats.inlined_sites - inlined_before
            exp_span.set(inlined_sites=new_sites)
        if checker and new_sites > 0:
            checker.expansion_check(term, expanded)
        term = expanded
        if new_sites == 0:
            break
        penalty += new_sites
        stats.penalty = penalty
        if penalty >= config.penalty_limit:
            # collapse the growth budget so a final reduction settles things
            expansion_config = replace(expansion_config, growth_budget=0)

    term = reduce_to_fixpoint(term, registry, config.rules, stats, on_pass, timer)
    stats.size_after = term_size(term)
    _record_run(stats)
    if timer is not None:
        for rule, fires, total in timer.as_rows():
            tracer.event(
                "rewrite.rule_latency",
                rule=rule,
                timed_fires=fires,
                total_fires=stats.count(rule),
                total_s=total,
            )
    span.set(
        size_after=stats.size_after,
        rounds=stats.rounds,
        inlined_sites=stats.inlined_sites,
        rewrites=stats.total_rewrites,
    ).finish()
    return OptimizeResult(term, stats)


def _record_run(stats: RewriteStats) -> None:
    """Fold one optimizer run into the process-wide metrics."""
    _OPT_RUNS.inc()
    _RULES_FIRED.inc(stats.total_rewrites)
    _SITES_INLINED.inc(stats.inlined_sites)
    _SIZE_DELTA.observe(max(0, stats.size_before - stats.size_after))


def reduce_only(
    term: Term,
    registry: PrimitiveRegistry | None = None,
    rules: RuleConfig | None = None,
    check: bool = False,
) -> OptimizeResult:
    """Run just the reduction pass to fixpoint (no inlining)."""
    registry = registry or default_registry()
    checker, registry = _checker(registry, check, context="reduce_only")
    on_pass = checker.reduction_pass_hook if checker else None
    stats = RewriteStats()
    stats.size_before = term_size(term)
    term = reduce_to_fixpoint(term, registry, rules or RuleConfig(), stats, on_pass)
    stats.size_after = term_size(term)
    return OptimizeResult(term, stats)


def _checker(registry: PrimitiveRegistry, check: bool, context: str):
    """Build the pass checker and fold-guarded registry for checked mode."""
    if not check:
        return None, registry
    # Imported lazily: repro.analysis is a client of this package's stats
    # types and must not be required for plain (unchecked) optimization.
    from repro.analysis.checked import PassChecker, checked_registry

    return PassChecker(registry, context=context), checked_registry(registry)
