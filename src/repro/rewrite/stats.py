"""Rewrite statistics: how often each rule fired, sizes before/after.

The per-rule counters power the E7 rule-ablation experiment and give tests a
way to assert that a specific optimization (e.g. ``fold`` of ``+``) actually
happened rather than merely that output looks plausible.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

__all__ = ["RewriteStats", "RuleTimer"]


@dataclass(slots=True)
class RewriteStats:
    """Counters accumulated across reduction and expansion passes."""

    rule_counts: Counter = field(default_factory=Counter)
    reduction_passes: int = 0
    expansion_passes: int = 0
    rounds: int = 0
    inlined_sites: int = 0
    penalty: int = 0
    size_before: int = 0
    size_after: int = 0

    def fired(self, rule: str, times: int = 1) -> None:
        self.rule_counts[rule] += times

    def count(self, rule: str) -> int:
        return self.rule_counts.get(rule, 0)

    @property
    def total_rewrites(self) -> int:
        return sum(self.rule_counts.values())

    def merge(self, other: "RewriteStats") -> None:
        """Fold a later run's counters into this one.

        Sizes follow sequential-composition semantics: ``size_before`` is
        the first recorded input size, ``size_after`` the last recorded
        output size (previously both were silently dropped, so merged
        summaries misreported sizes).
        """
        self.rule_counts.update(other.rule_counts)
        self.reduction_passes += other.reduction_passes
        self.expansion_passes += other.expansion_passes
        self.rounds += other.rounds
        self.inlined_sites += other.inlined_sites
        self.penalty += other.penalty
        if not self.size_before:
            self.size_before = other.size_before
        if other.size_after:
            self.size_after = other.size_after

    def as_dict(self) -> dict:
        """Deterministic JSON-ready form (used by the bench exporters)."""
        return {
            "rules": {name: self.rule_counts[name] for name in sorted(self.rule_counts)},
            "reduction_passes": self.reduction_passes,
            "expansion_passes": self.expansion_passes,
            "rounds": self.rounds,
            "inlined_sites": self.inlined_sites,
            "penalty": self.penalty,
            "size_before": self.size_before,
            "size_after": self.size_after,
        }

    def summary(self) -> str:
        rules = ", ".join(f"{name}={n}" for name, n in sorted(self.rule_counts.items()))
        return (
            f"size {self.size_before} -> {self.size_after} in {self.rounds} round(s); "
            f"{self.inlined_sites} site(s) inlined; rules: {rules or 'none'}"
        )


class RuleTimer:
    """Wall-clock latency per reduction rule, active only while tracing.

    The reduction pass calls rules at cascade sites; when a timer is
    attached to the :class:`~repro.rewrite.rules.ReductionState`, each
    timed rewrite call credits its elapsed time to the rules that fired
    during it (``fired`` pushes onto ``pending``, the cascade site calls
    :meth:`credit`).  Never attached on the default (untraced) path, so it
    costs nothing when observability is off.
    """

    __slots__ = ("pending", "totals", "timed_fires")

    def __init__(self):
        self.pending: list[str] = []
        self.totals: dict[str, float] = {}
        self.timed_fires: dict[str, int] = {}

    def credit(self, elapsed: float) -> None:
        """Attribute one timed rewrite call to the rules it fired."""
        pending = self.pending
        if not pending:
            return
        share = elapsed / len(pending)
        for rule in pending:
            self.totals[rule] = self.totals.get(rule, 0.0) + share
            self.timed_fires[rule] = self.timed_fires.get(rule, 0) + 1
        pending.clear()

    def as_rows(self) -> list[tuple[str, int, float]]:
        """(rule, timed fires, total seconds) sorted by total desc, name."""
        return sorted(
            (
                (rule, self.timed_fires[rule], total)
                for rule, total in self.totals.items()
            ),
            key=lambda row: (-row[2], row[0]),
        )
