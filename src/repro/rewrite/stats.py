"""Rewrite statistics: how often each rule fired, sizes before/after.

The per-rule counters power the E7 rule-ablation experiment and give tests a
way to assert that a specific optimization (e.g. ``fold`` of ``+``) actually
happened rather than merely that output looks plausible.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

__all__ = ["RewriteStats"]


@dataclass(slots=True)
class RewriteStats:
    """Counters accumulated across reduction and expansion passes."""

    rule_counts: Counter = field(default_factory=Counter)
    reduction_passes: int = 0
    expansion_passes: int = 0
    rounds: int = 0
    inlined_sites: int = 0
    penalty: int = 0
    size_before: int = 0
    size_after: int = 0

    def fired(self, rule: str, times: int = 1) -> None:
        self.rule_counts[rule] += times

    def count(self, rule: str) -> int:
        return self.rule_counts.get(rule, 0)

    @property
    def total_rewrites(self) -> int:
        return sum(self.rule_counts.values())

    def merge(self, other: "RewriteStats") -> None:
        self.rule_counts.update(other.rule_counts)
        self.reduction_passes += other.reduction_passes
        self.expansion_passes += other.expansion_passes
        self.rounds += other.rounds
        self.inlined_sites += other.inlined_sites
        self.penalty += other.penalty

    def summary(self) -> str:
        rules = ", ".join(f"{name}={n}" for name, n in sorted(self.rule_counts.items()))
        return (
            f"size {self.size_before} -> {self.size_after} in {self.rounds} round(s); "
            f"{self.inlined_sites} site(s) inlined; rules: {rules or 'none'}"
        )
