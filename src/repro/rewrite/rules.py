"""The core TML rewrite rules (paper section 3).

Eight generic λ-calculus rules subsume many classic optimizations:

=============  =====================================================
rule           classic optimizations it generalizes
=============  =====================================================
subst          constant propagation, copy propagation, view expansion,
               inlining of once-used procedures
remove         dead-code (dead-binding) elimination
reduce         removal of trivial blocks
eta-reduce     removal of forwarding wrappers
fold           constant folding via per-primitive meta-evaluation
case-subst     refinement of a scrutinee inside case branches
Y-remove       elimination of dead recursive definitions
Y-reduce       removal of empty recursive binding groups
=============  =====================================================

Every rule is written exactly as the paper states it, as a guarded local
transformation ``precondition : A → B``.  Each application strictly shrinks
the tree (case-subst preserves size but strictly decreases the number of
scrutinee occurrences in branches), which is the paper's termination
argument for the reduction pass.

The implementation threads a :class:`ReductionState` through the rules so
occurrence counts (the ``|E|_v`` function) are maintained incrementally
rather than recounted from the root — see the dirty-set protocol documented
on :class:`ReductionState`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.names import Name
from repro.core.occurrences import OccurrenceCensus, count as count_occurrences
from repro.core.syntax import Abs, App, Application, Lit, PrimApp, Value, Var
from repro.core.substitution import substitute_many
from repro.primitives.control import case_parts
from repro.primitives.registry import PrimitiveRegistry
from repro.rewrite.stats import RewriteStats

__all__ = ["ALL_RULES", "RuleConfig", "ReductionState", "rewrite_app", "rewrite_prim", "try_eta"]

#: Names of the eight core rules, for configuration and ablation.
ALL_RULES = frozenset(
    ["subst", "remove", "reduce", "eta-reduce", "fold", "case-subst", "Y-remove", "Y-reduce"]
)


@dataclass(frozen=True, slots=True)
class RuleConfig:
    """Which rules are enabled (per-rule enable flags, section 2.3 item 4)."""

    enabled: frozenset[str] = ALL_RULES

    def __post_init__(self) -> None:
        unknown = self.enabled - ALL_RULES
        if unknown:
            raise ValueError(f"unknown rewrite rules: {sorted(unknown)}")

    def allows(self, rule: str) -> bool:
        return rule in self.enabled

    @classmethod
    def without(cls, *rules: str) -> "RuleConfig":
        return cls(ALL_RULES - set(rules))


@dataclass(slots=True)
class ReductionState:
    """Mutable state threaded through one reduction pass.

    ``census`` carries the occurrence counts from the start of the pass,
    updated incrementally with exact deltas as rules fire.  Counts can only
    become *stale-high* through deletions the census missed — harmless, the
    next pass catches the enabled rewrite.  Counts can become *stale-low*
    only when a substitution increased some variable's occurrence count; such
    variables enter ``dirty`` and all count-guarded decisions about them
    (``remove``, abstraction ``subst``, the Y rules) are deferred to the next
    pass, when the census is rebuilt.  This is what makes a single O(n) pass
    sound.
    """

    census: OccurrenceCensus
    registry: PrimitiveRegistry
    config: RuleConfig = field(default_factory=RuleConfig)
    stats: RewriteStats = field(default_factory=RewriteStats)
    changed: bool = False
    dirty: set[Name] = field(default_factory=set)
    #: optional :class:`repro.rewrite.stats.RuleTimer` — attached only while
    #: tracing is enabled, so the default path pays nothing
    timer: object | None = None

    def occurrences(self, name: Name) -> int:
        return self.census.occurrences(name)

    def is_clean(self, name: Name) -> bool:
        return name not in self.dirty

    def fired(self, rule: str) -> None:
        self.stats.fired(rule)
        self.changed = True
        if self.timer is not None:
            self.timer.pending.append(rule)


# ---------------------------------------------------------------------------
# subst / remove / reduce — the binding rules, fused over one App(Abs) redex
# ---------------------------------------------------------------------------


def rewrite_app(app: App, state: ReductionState) -> Application:
    """Apply subst, remove and reduce to a direct abstraction application.

    ``(λ(v1..vn) body  val1..valn)``: each binding is examined —

    * dead (``|body|_v = 0``): struck out with its value   [remove]
    * literal or variable value: substituted freely        [subst]
    * abstraction value with exactly one reference: moved  [subst]
    * otherwise: kept.

    If no bindings remain the application collapses to its body [reduce].
    """
    if not isinstance(app.fn, Abs):
        return app

    fn = app.fn
    if len(fn.params) != len(app.args):
        # Ill-typed direct application; constraint 1 is the front end's job —
        # leave the node alone rather than corrupt it.
        return app

    substitutions: dict[Name, Value] = {}
    kept_params: list[Name] = []
    kept_args: list[Value] = []
    removed_rule_hits = 0
    subst_rule_hits = 0

    for param, arg in zip(fn.params, app.args):
        occurrences = state.occurrences(param)
        if occurrences == 0 and state.is_clean(param):
            if state.config.allows("remove"):
                # remove: value args cannot contain calls, so dropping the
                # binding cannot lose side effects.
                state.census.forget_subtree(arg)
                state.census.zero(param)
                removed_rule_hits += 1
                continue
            kept_params.append(param)
            kept_args.append(arg)
            continue

        if not state.config.allows("subst"):
            kept_params.append(param)
            kept_args.append(arg)
            continue

        if isinstance(arg, Lit):
            substitutions[param] = arg
            state.census.zero(param)
            subst_rule_hits += 1
        elif isinstance(arg, Var):
            substitutions[param] = arg
            # every occurrence of param becomes an occurrence of arg; the
            # occurrence of arg in the argument list disappears.
            delta = occurrences - 1
            state.census.add(arg.name, delta)
            if delta > 0 or not state.is_clean(param):
                # arg's count grew, or param's count was uncertain so the
                # delta itself is uncertain — defer count-guarded decisions
                # about arg to the next pass.
                state.dirty.add(arg.name)
            state.census.zero(param)
            subst_rule_hits += 1
        elif (
            isinstance(arg, Abs)
            and occurrences == 1
            and state.is_clean(param)
        ):
            # subst with the |app|_v = 1 precondition: the abstraction is
            # *moved* to its single use site, so no occurrence deltas beyond
            # forgetting the binding itself.  (The paper notes the momentary
            # double occurrence of the abstraction's parameters; fusing subst
            # with the removal of the argument restores uniqueness
            # immediately.)
            substitutions[param] = arg
            state.census.zero(param)
            subst_rule_hits += 1
        else:
            kept_params.append(param)
            kept_args.append(arg)

    if not substitutions and not removed_rule_hits:
        if not fn.params and state.config.allows("reduce"):
            state.fired("reduce")
            return fn.body
        return app

    body = substitute_many(fn.body, substitutions) if substitutions else fn.body
    for _ in range(subst_rule_hits):
        state.fired("subst")
    for _ in range(removed_rule_hits):
        state.fired("remove")

    if not kept_params and state.config.allows("reduce"):
        state.fired("reduce")
        assert isinstance(body, (App, PrimApp))
        return body
    assert isinstance(body, (App, PrimApp))
    return App(Abs(tuple(kept_params), body), tuple(kept_args))


# ---------------------------------------------------------------------------
# eta-reduce
# ---------------------------------------------------------------------------


def try_eta(abs_node: Abs, state: ReductionState) -> Value | None:
    """``λ(v1..vn)(val v1..vn)  →  val`` when no ``vi`` occurs in ``val``.

    Returns the replacement value or None.  The caller decides positional
    legality (the Y fixpoint argument must remain an abstraction).
    """
    if not state.config.allows("eta-reduce"):
        return None
    body = abs_node.body
    if not isinstance(body, App) or len(body.args) != len(abs_node.params):
        return None
    for param, arg in zip(abs_node.params, body.args):
        if not (isinstance(arg, Var) and arg.name == param):
            return None
    target = body.fn
    params = set(abs_node.params)
    if isinstance(target, Var) and target.name in params:
        return None
    if isinstance(target, Abs):
        # the paper's precondition ∀i |val|_{vi} = 0
        for param in abs_node.params:
            if count_occurrences(target, param) > 0:
                return None
    # each parameter occurred exactly once (in the argument list) — those
    # occurrences vanish with the wrapper.
    for param in abs_node.params:
        state.census.add(param, -1)
        state.census.zero(param)
    state.fired("eta-reduce")
    return target


# ---------------------------------------------------------------------------
# fold and case-subst — primitive application rules
# ---------------------------------------------------------------------------


def rewrite_prim(prim_app: PrimApp, state: ReductionState) -> Application:
    """Apply fold, case-subst, Y-remove and Y-reduce to a primitive call."""
    result: Application = prim_app
    if state.config.allows("fold"):
        result = _try_fold(result, state)
    if isinstance(result, PrimApp) and result.prim == "==" and state.config.allows(
        "case-subst"
    ):
        result = _try_case_subst(result, state)
    if isinstance(result, PrimApp) and result.prim == "Y":
        # Y-alias is a derived rule (subst composed with Y-remove): when
        # eta-reduction turns a group member into a bare variable, the
        # binding v_i := x is an alias — substitute x for v_i and drop it.
        if state.config.allows("subst"):
            result = _try_y_alias(result, state)
        if isinstance(result, PrimApp) and result.prim == "Y" and state.config.allows(
            "Y-remove"
        ):
            result = _try_y_remove(result, state)
        if isinstance(result, PrimApp) and result.prim == "Y" and state.config.allows(
            "Y-reduce"
        ):
            result = _try_y_reduce(result, state)
    return result


def _try_fold(prim_app: PrimApp, state: ReductionState) -> Application:
    prim = state.registry.get(prim_app.prim)
    if prim is None:
        return prim_app
    folded = prim.meta_evaluate(prim_app)
    if folded is None:
        return prim_app
    state.census.forget_subtree(prim_app)
    state.census.add_subtree(folded)
    state.fired("fold")
    return folded


def _try_case_subst(prim_app: PrimApp, state: ReductionState) -> PrimApp:
    """Substitute the scrutinee variable with the tag inside each branch.

    ``(== v val1..valn c1..cn [ce]) → (== v val1..valn c1[val1/v]..cn[valn/v] [ce])``
    """
    scrutinee, tags, branches, else_branch = case_parts(prim_app)
    if not isinstance(scrutinee, Var):
        return prim_app
    v = scrutinee.name

    new_branches: list[Value] = []
    changed = False
    for tag, branch in zip(tags, branches):
        if not isinstance(tag, (Lit, Var)) or not isinstance(branch, Abs):
            new_branches.append(branch)
            continue
        if isinstance(tag, Var) and tag.name == v:
            new_branches.append(branch)
            continue
        hits = count_occurrences(branch, v)
        if hits == 0:
            new_branches.append(branch)
            continue
        new_branches.append(substitute_many(branch, {v: tag}))
        state.census.add(v, -hits)
        if isinstance(tag, Var):
            state.census.add(tag.name, hits)
            state.dirty.add(tag.name)
        changed = True

    if not changed:
        return prim_app
    state.fired("case-subst")
    new_args = (scrutinee,) + tuple(tags) + tuple(new_branches)
    if else_branch is not None:
        new_args += (else_branch,)
    return PrimApp("==", new_args)


# ---------------------------------------------------------------------------
# Y-remove and Y-reduce
# ---------------------------------------------------------------------------


def _split_fix(prim_app: PrimApp) -> tuple[Abs, Name, tuple[Name, ...], Name, App] | None:
    """Destructure ``(Y λ(c0 v1..vn c) (c entry abs1..absn))`` or None."""
    if len(prim_app.args) != 1 or not isinstance(prim_app.args[0], Abs):
        return None
    fixfun = prim_app.args[0]
    if len(fixfun.params) < 2:
        return None
    c0, *vs, c = fixfun.params
    if not (c0.is_cont and c.is_cont):
        return None
    body = fixfun.body
    if not isinstance(body, App):
        return None
    if not (isinstance(body.fn, Var) and body.fn.name == c):
        return None
    if len(body.args) != len(vs) + 1:
        return None
    return fixfun, c0, tuple(vs), c, body


def _try_y_alias(prim_app: PrimApp, state: ReductionState) -> PrimApp:
    """Eliminate variable-valued Y group members by substitution.

    ``(Y λ(c0 ..vi.. c)(c entry ..x..))  →  (Y λ(c0 .. c)((c entry ..)[x/vi]))``
    where the member bound to ``v_i`` is the variable ``x`` (an alias
    produced by eta-reducing the member abstraction).
    """
    split = _split_fix(prim_app)
    if split is None:
        return prim_app
    fixfun, c0, vs, c, body = split
    entry = body.args[0]
    abses = list(body.args[1:])

    alias_index = None
    for index, member in enumerate(abses):
        if isinstance(member, Var) and member.name != vs[index]:
            alias_index = index
            break
    if alias_index is None:
        return prim_app

    v = vs[alias_index]
    x = abses[alias_index]
    assert isinstance(x, Var)
    count_v = state.occurrences(v)

    remaining_vs = vs[:alias_index] + vs[alias_index + 1 :]
    remaining = abses[:alias_index] + abses[alias_index + 1 :]
    new_entry = substitute_many(entry, {v: x}) if not isinstance(entry, Lit) else entry
    new_members = [
        substitute_many(member, {v: x}) if not isinstance(member, Lit) else member
        for member in remaining
    ]
    # occurrences of v become occurrences of x; the member occurrence of x
    # itself is deleted
    state.census.add(x.name, count_v - 1)
    state.dirty.add(x.name)
    state.census.zero(v)
    state.fired("subst")

    new_body = App(Var(c), (new_entry,) + tuple(new_members))
    new_fix = Abs((c0,) + remaining_vs + (c,), new_body)
    return PrimApp("Y", (new_fix,))


def _try_y_remove(prim_app: PrimApp, state: ReductionState) -> PrimApp:
    """Strike out recursive bindings referenced by no other binding.

    Precondition for removing ``v_i``: ``|app|_{v_i} = 0`` (not used by the
    entry continuation) and ``|val_j|_{v_i} = 0`` for all j ≠ i (not used by
    the other recursive abstractions).  Self-references inside ``abs_i`` do
    not keep it alive.
    """
    split = _split_fix(prim_app)
    if split is None:
        return prim_app
    fixfun, c0, vs, c, body = split
    entry = body.args[0]
    abses = body.args[1:]

    keep = [True] * len(vs)
    removed_any = False
    for index, (v, abs_value) in enumerate(zip(vs, abses)):
        total = state.occurrences(v)
        if total == 0 and state.is_clean(v):
            keep[index] = False
            removed_any = True
            continue
        if not state.is_clean(v):
            continue
        # occurrences inside the member's own definition (including the
        # degenerate self-alias v_i := v_i) do not keep it alive
        self_refs = count_occurrences(abs_value, v)
        if total == self_refs and total > 0:
            keep[index] = False
            removed_any = True

    if not removed_any:
        return prim_app

    new_vs: list[Name] = []
    new_abses: list[Value] = []
    for flag, v, abs_value in zip(keep, vs, abses):
        if flag:
            new_vs.append(v)
            new_abses.append(abs_value)
        else:
            state.census.forget_subtree(abs_value)
            state.census.zero(v)
            state.fired("Y-remove")

    new_body = App(Var(c), (entry,) + tuple(new_abses))
    new_fix = Abs((c0,) + tuple(new_vs) + (c,), new_body)
    return PrimApp("Y", (new_fix,))


def _try_y_reduce(prim_app: PrimApp, state: ReductionState) -> Application:
    """``(Y λ(c0 c)(c cont() app)) → app`` when ``|app|_{c0} = 0``."""
    split = _split_fix(prim_app)
    if split is None:
        return prim_app
    fixfun, c0, vs, c, body = split
    if vs:
        return prim_app
    entry = body.args[0]
    if not isinstance(entry, Abs) or entry.params:
        return prim_app
    if state.occurrences(c0) != 0 or not state.is_clean(c0):
        return prim_app
    # the single occurrence of c (functional position of the body) vanishes
    state.census.add(c, -1)
    state.census.zero(c)
    state.census.zero(c0)
    state.fired("Y-reduce")
    return entry.body
