"""The reduction pass (paper section 3).

"During the reduction pass, a number of generic rewrite rules are applied to
the TML tree until no more rules are applicable.  Termination is guaranteed
because each of the rewrite rules reduces the size of the TML tree if it is
applied."

One *pass* is a single bottom-up rebuild of the tree that applies every
enabled rule wherever it matches, maintaining the occurrence census
incrementally (see :class:`repro.rewrite.rules.ReductionState` for the
staleness protocol).  Passes repeat until one makes no change; each pass is
O(tree), and the strict size decrease bounds the number of passes.
"""

from __future__ import annotations

from collections import Counter
from time import perf_counter

from repro.core.occurrences import OccurrenceCensus
from repro.obs.trace import TRACER
from repro.core.syntax import Abs, App, Lit, PrimApp, Term, Var
from repro.primitives.registry import PrimitiveRegistry
from repro.rewrite.rules import ReductionState, RuleConfig, rewrite_app, rewrite_prim, try_eta
from repro.rewrite.stats import RewriteStats

__all__ = ["reduce_pass", "reduce_to_fixpoint"]

#: Upper bound on local cascading at a single node; each cascade step shrinks
#: the subtree so this is never reached in practice — pure safety net.
_CASCADE_LIMIT = 10_000

#: Safety bound on the number of passes (each pass shrinks the tree or is
#: the last, so real programs converge in a handful).
_MAX_PASSES = 1_000


def reduce_pass(term: Term, state: ReductionState) -> Term:
    """One bottom-up rewrite pass over ``term``; sets ``state.changed``."""
    EXPAND, BUILD = 0, 1
    work: list[tuple[Term, int]] = [(term, EXPAND)]
    results: list[Term] = []

    while work:
        node, phase = work.pop()
        if phase == EXPAND:
            if isinstance(node, (Lit, Var)):
                results.append(node)
            elif isinstance(node, Abs):
                work.append((node, BUILD))
                work.append((node.body, EXPAND))
            elif isinstance(node, App):
                work.append((node, BUILD))
                for arg in reversed(node.args):
                    work.append((arg, EXPAND))
                work.append((node.fn, EXPAND))
            else:  # PrimApp
                work.append((node, BUILD))
                for arg in reversed(node.args):
                    work.append((arg, EXPAND))
        else:  # BUILD
            if isinstance(node, Abs):
                body = results.pop()
                assert isinstance(body, (App, PrimApp))
                rebuilt = node if body is node.body else Abs(node.params, body)
                results.append(rebuilt)
            elif isinstance(node, App):
                count = 1 + len(node.args)
                parts = results[-count:]
                del results[-count:]
                fn, args = parts[0], parts[1:]
                # Positional restriction on eta: the arguments of a
                # continuation-variable application may be Y-group members
                # (the fixfun body is `(c entry abs1..absn)`), and
                # eta-reducing a member to its own recursive name would
                # produce the ill-defined binding v := v.  Bottom-up we
                # cannot see whether this App is a fix body, so we skip eta
                # for all cont-var applications — ordinary binding redexes
                # (fn is an Abs) and user calls (fn is a value variable)
                # keep it.
                if not (isinstance(fn, Var) and fn.name.is_cont):
                    args = [_maybe_eta(arg, state) for arg in args]
                if fn is node.fn and all(a is b for a, b in zip(args, node.args)):
                    rebuilt: Term = node
                else:
                    rebuilt = App(fn, tuple(args))
                results.append(_cascade(rebuilt, state))
            else:  # PrimApp
                count = len(node.args)
                args = list(results[-count:]) if count else []
                if count:
                    del results[-count:]
                # eta is positionally restricted: the Y fixpoint argument must
                # stay an abstraction (its λ(c0 v1..vn c) shape is what the
                # Y rules and the code generator destructure).
                args = [
                    arg
                    if (node.prim == "Y" and index == 0)
                    else _maybe_eta(arg, state)
                    for index, arg in enumerate(args)
                ]
                if all(a is b for a, b in zip(args, node.args)):
                    rebuilt = node
                else:
                    rebuilt = PrimApp(node.prim, tuple(args))
                results.append(_cascade(rebuilt, state))

    assert len(results) == 1
    out = results[0]
    if isinstance(out, Abs):
        replacement = try_eta(out, state)
        if replacement is not None:
            out = replacement
    return out


def _maybe_eta(value: Term, state: ReductionState) -> Term:
    if isinstance(value, Abs):
        replacement = try_eta(value, state)
        if replacement is not None:
            return replacement
    return value


def _cascade(node: Term, state: ReductionState) -> Term:
    """Apply the application-level rules repeatedly at one node."""
    current = node
    timer = state.timer
    for _ in range(_CASCADE_LIMIT):
        if timer is not None:
            # eta fires elsewhere may have left pending entries; drop them so
            # this call's elapsed time is credited only to its own rules
            timer.pending.clear()
            started = perf_counter()
        if isinstance(current, App) and isinstance(current.fn, Abs):
            rewritten = rewrite_app(current, state)
        elif isinstance(current, PrimApp):
            rewritten = rewrite_prim(current, state)
        else:
            break
        if timer is not None:
            timer.credit(perf_counter() - started)
        if rewritten is current:
            break
        current = rewritten
    return current


def reduce_to_fixpoint(
    term: Term,
    registry: PrimitiveRegistry,
    config: RuleConfig | None = None,
    stats: RewriteStats | None = None,
    on_pass=None,
    timer=None,
) -> Term:
    """Apply the reduction rules until none is applicable (section 3).

    ``on_pass(before, after, fired)`` is invoked after every pass that changed
    the tree, with the per-pass rule-application counts (a ``Counter``); the
    checked pipeline uses it to re-verify the section 2.2/2.3/3 invariants.
    ``timer`` is an optional :class:`~repro.rewrite.stats.RuleTimer`
    collecting per-rule latencies (attached by the pipeline while tracing).
    """
    config = config or RuleConfig()
    stats = stats if stats is not None else RewriteStats()
    tracer = TRACER
    for _ in range(_MAX_PASSES):
        traced = tracer.enabled
        state = ReductionState(
            census=OccurrenceCensus(term),
            registry=registry,
            config=config,
            stats=stats,
            timer=timer,
        )
        want_delta = on_pass is not None or traced
        counts_before = Counter(stats.rule_counts) if want_delta else None
        span = tracer.span("rewrite.pass", pass_index=stats.reduction_passes)
        before = term
        term = reduce_pass(term, state)
        stats.reduction_passes += 1
        if traced:
            fired = stats.rule_counts - counts_before
            span.set(
                changed=state.changed,
                fired=sum(fired.values()),
                rules={name: fired[name] for name in sorted(fired)},
            ).finish()
        if not state.changed:
            break
        if on_pass is not None:
            delta = stats.rule_counts - counts_before
            on_pass(before, term, delta)
    return term
