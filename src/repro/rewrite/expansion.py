"""The expansion pass: procedure inlining / view expansion (paper section 3).

"The subsequent expansion pass tries to substitute bound λ-abstractions
(procedures or continuations) at the positions where they are applied.
Effectively, this CPS transformation performs procedure inlining in terms of
traditional compiler optimization or view expansion in database
terminology."

The reduction pass already moves *once-referenced* abstractions to their use
site (the ``subst`` rule's precondition).  Expansion handles the multiply
referenced ones: it copies (a variant of the subst rule, with alpha
renaming so the unique binding rule survives duplication) the abstraction
into call sites the cost model approves.  Both let-bound procedures

    (λ(f ..) body  proc(..) pbody ..)        call sites (f a.. ce cc)

and Y-bound recursive procedures are candidates; expanding a recursive
procedure into its own body is loop unrolling, which the paper lists among
the classic optimizations subsumed by these rules.  Unrolling is off by
default and bounded by the penalty mechanism when enabled.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.names import Name, NameSupply, fresh_supply_above
from repro.core.occurrences import count_all
from repro.core.substitution import alpha_rename
from repro.core.syntax import Abs, App, Lit, PrimApp, Term, Var, max_uid
from repro.primitives.registry import PrimitiveRegistry
from repro.rewrite.cost import site_decision
from repro.rewrite.rules import _split_fix  # shared Y destructuring
from repro.rewrite.stats import RewriteStats

__all__ = ["ExpansionConfig", "expand_pass"]


@dataclass(frozen=True, slots=True)
class ExpansionConfig:
    """Tuning of the expansion pass.

    ``growth_budget`` is the residual cost (in abstract-machine instructions)
    a single inlined copy may add; it shrinks as penalty accumulates, which
    is how the paper guarantees termination of the reduce/expand alternation
    "even in obscure cases".
    """

    growth_budget: int = 24
    unroll_recursive: bool = False
    #: growth budget applied to recursive (Y-bound) call sites when
    #: unrolling is enabled — deliberately tighter.
    recursive_growth_budget: int = 8
    #: hard cap on inlined sites per pass (defence against pathological fanout)
    max_sites_per_pass: int = 2_000


@dataclass(slots=True)
class _ExpansionState:
    registry: PrimitiveRegistry
    config: ExpansionConfig
    supply: NameSupply
    stats: RewriteStats
    #: name -> (definition, is_recursive, is_y_bound)
    candidates: dict[Name, tuple[Abs, bool, bool]] = field(default_factory=dict)
    sites_inlined: int = 0
    changed: bool = False


def expand_pass(
    term: Term,
    registry: PrimitiveRegistry,
    config: ExpansionConfig | None = None,
    stats: RewriteStats | None = None,
) -> Term:
    """Inline cost-approved call sites of multiply-referenced abstractions."""
    config = config or ExpansionConfig()
    stats = stats if stats is not None else RewriteStats()
    state = _ExpansionState(
        registry=registry,
        config=config,
        supply=fresh_supply_above([max_uid(term)]),
        stats=stats,
    )
    _collect_candidates(term, state)
    if not state.candidates:
        return term
    occurrences = count_all(term)
    new_term = _rewrite_sites(term, state, occurrences)
    stats.expansion_passes += 1
    stats.inlined_sites += state.sites_inlined
    return new_term


def _collect_candidates(term: Term, state: _ExpansionState) -> None:
    """Find abstraction bindings that could be expanded at their call sites.

    Let bindings: ``(λ(.. f ..) body  .. proc ..)``.  Y bindings: the
    ``v1..vn`` of a fixpoint function.  Once-referenced abstractions are left
    to the reduction pass's subst rule.
    """
    stack: list[Term] = [term]
    while stack:
        node = stack.pop()
        if isinstance(node, Abs):
            stack.append(node.body)
        elif isinstance(node, App):
            if isinstance(node.fn, Abs):
                for param, arg in zip(node.fn.params, node.args):
                    if isinstance(arg, Abs):
                        state.candidates[param] = (arg, False, False)
            stack.append(node.fn)
            stack.extend(node.args)
        elif isinstance(node, PrimApp):
            if node.prim == "Y":
                split = _split_fix(node)
                if split is not None:
                    _, c0, vs, _, body = split
                    group = set(vs) | {c0}
                    for v, abs_value in zip(vs, body.args[1:]):
                        if isinstance(abs_value, Abs):
                            # A member that references no group name is not
                            # actually recursive — inlining it is ordinary
                            # procedure inlining, not loop unrolling.
                            occurrences = count_all(abs_value)
                            recursive = any(name in occurrences for name in group)
                            state.candidates[v] = (abs_value, recursive, True)
            stack.extend(node.args)


def _rewrite_sites(term: Term, state: _ExpansionState, occurrences) -> Term:
    """Rebuild the tree, replacing approved call sites with fresh copies."""
    EXPAND, BUILD = 0, 1
    work: list[tuple[Term, int]] = [(term, EXPAND)]
    results: list[Term] = []

    while work:
        node, phase = work.pop()
        if phase == EXPAND:
            if isinstance(node, (Lit, Var)):
                results.append(node)
            elif isinstance(node, Abs):
                work.append((node, BUILD))
                work.append((node.body, EXPAND))
            elif isinstance(node, App):
                work.append((node, BUILD))
                for arg in reversed(node.args):
                    work.append((arg, EXPAND))
                work.append((node.fn, EXPAND))
            else:
                work.append((node, BUILD))
                for arg in reversed(node.args):
                    work.append((arg, EXPAND))
        else:
            if isinstance(node, Abs):
                body = results.pop()
                results.append(node if body is node.body else Abs(node.params, body))
            elif isinstance(node, App):
                count = 1 + len(node.args)
                parts = results[-count:]
                del results[-count:]
                fn, args = parts[0], tuple(parts[1:])
                rebuilt = (
                    node
                    if fn is node.fn and all(a is b for a, b in zip(args, node.args))
                    else App(fn, args)
                )
                results.append(_maybe_inline(rebuilt, state, occurrences))
            else:  # PrimApp
                count = len(node.args)
                args = tuple(results[-count:]) if count else ()
                if count:
                    del results[-count:]
                rebuilt = (
                    node
                    if all(a is b for a, b in zip(args, node.args))
                    else PrimApp(node.prim, args)
                )
                results.append(rebuilt)

    assert len(results) == 1
    return results[0]


def _maybe_inline(app: App, state: _ExpansionState, occurrences) -> App:
    if not isinstance(app.fn, Var):
        return app
    candidate = state.candidates.get(app.fn.name)
    if candidate is None:
        return app
    definition, is_recursive, is_y_bound = candidate
    if definition.arity != len(app.args):
        return app
    if not is_y_bound and occurrences.get(app.fn.name, 0) < 2:
        # once-referenced let binding: the reduction pass's subst rule moves
        # it for free.  (Y-bound members are never moved by subst, so they
        # are expanded here regardless of their reference count.)
        return app
    if is_recursive and not state.config.unroll_recursive:
        return app
    if state.sites_inlined >= state.config.max_sites_per_pass:
        return app

    budget = (
        state.config.recursive_growth_budget
        if is_recursive
        else state.config.growth_budget
    )
    decision = site_decision(definition, app.args, state.registry, budget)
    if not decision.inline:
        return app

    copy = alpha_rename(definition, state.supply)
    assert isinstance(copy, Abs)
    state.sites_inlined += 1
    state.changed = True
    state.stats.fired("expand-inline")
    return App(copy, app.args)
