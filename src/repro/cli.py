"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``run FILE [--entry m.f] [--args ...]`` — compile the TL modules in FILE
  and call an entry function (default: ``main`` of the last module), with
  optional static/dynamic optimization;
* ``tml FILE --function m.f`` — print a function's TML (optionally after
  runtime optimization);
* ``disasm FILE --function m.f`` — print the TAM code listing;
* ``bench [--scale S] [--programs p,q]`` — the §6 Stanford table;
* ``store ls PATH`` — list the roots of a persistent store image;
* ``fsck IMAGE [--repair] [--json OUT]`` — offline integrity check of a
  store image: header slots, page checksums, object table, chains, free
  list, references and reachability; ``--repair`` quarantines corrupt or
  unreachable objects and rebuilds the free list (see docs/durability.md);
  exits nonzero when integrity errors are found;
* ``serve IMAGE [--port N] [--workers N] ...`` — boot the multi-session
  database server over a persistent image (see docs/server.md); prints
  ``listening on HOST:PORT`` once ready and serves until interrupted or a
  client sends ``shutdown``; ``--replicate`` makes it a commit-log-shipping
  primary, ``--replica-of HOST:PORT`` a read replica following that
  primary (see docs/replication.md); ``--coordinator`` with repeated
  ``--shard HOST:PORT[,HOST:PORT]`` groups makes it a shard coordinator
  routing over the consistent-hash ring, and ``--shard-id N`` marks a
  participant daemon's own position (see docs/sharding.md);
* ``client --port N ACTION [...]`` — one-shot session against a running
  daemon: ``ping``, ``call m.f [args]``, ``run FILE``, ``get ROOT...``,
  ``set ROOT VALUE``, ``mset ROOT=VALUE...``, ``scatter [PREFIX [m.f]]``,
  ``topology``, ``roots``, ``stats``, ``pgo``, ``repl-status``,
  ``promote [TERM]``, ``follow HOST:PORT``, ``shutdown``; ``--deadline S``
  bounds each request's wall-clock budget;
* ``lint [FILE] [--stdlib] [--store PATH --oid N]`` — run the static
  analyses (constraints 1-5, usage, effect/registry lint, TAM bytecode
  verifier, abstract interpretation) over compiled TL functions or a stored
  PTML/code object; exits nonzero when any error-severity diagnostic is
  found, or — with ``--strict`` — when any warning is (see docs/analysis.md);
* ``audit IMAGE [--json OUT] [--no-update] [--strict]`` — whole-image
  interprocedural audit: verify and abstractly interpret every stored code
  object over the image call graph, report type-error sites, broken frozen
  references, effect violations and unreachable functions, and refresh the
  persisted analysis-fact cache under the ``analysis:facts`` root; exits
  nonzero on any error finding (see docs/analysis.md);
* ``profile FILE [--entry m.f] [--pgo]`` — run under the VM profiler and
  print per-closure invocation/instruction counts plus per-opcode totals;
  ``--pgo`` then feeds the profile into ``reflect.optimize`` and reports the
  profile-guided reoptimization (see docs/observability.md);
* ``stats [FILE]`` — print the process metrics registry (optionally after
  compiling and running FILE).

Most subcommands accept ``--trace OUT.ndjson`` to stream structured
spans/events from every instrumented layer to an NDJSON trace file.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from repro.bench.harness import format_table, run_stanford
from repro.core.pretty import PrettyOptions, pretty
from repro.lang import CompileOptions, TycoonSystem
from repro.lang.parser import parse_modules
from repro.machine.runtime import UncaughtTmlException, show_value
from repro.reflect import optimize_result, term_of_closure
from repro.rewrite import OptimizerConfig
from repro.store.heap import ObjectHeap

__all__ = ["main"]


def _options(level: str) -> CompileOptions:
    if level == "none":
        return CompileOptions(optimizer=None)
    return CompileOptions(optimizer=OptimizerConfig())


def _load_system(path: str, opt: str, store: str | None) -> TycoonSystem:
    heap = ObjectHeap(store) if store else None
    system = TycoonSystem(heap=heap, options=_options(opt))
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    for module in parse_modules(source):
        system.compile_ast(module)
    return system


def _parse_value(text: str):
    if text == "true":
        return True
    if text == "false":
        return False
    if text == "unit":
        from repro.core.syntax import UNIT

        return UNIT
    try:
        return int(text)
    except ValueError:
        return text


def _split_entry(entry: str, system: TycoonSystem) -> tuple[str, str]:
    if "." in entry:
        module, function = entry.split(".", 1)
        return module, function
    # bare function name: search the compiled modules, latest first
    for name in reversed(list(system.compiled)):
        if entry in system.compiled[name].functions:
            return name, entry
    raise SystemExit(f"error: no compiled module exports {entry!r}")


def _cmd_run(args: argparse.Namespace) -> int:
    system = _load_system(args.file, args.opt, args.store)
    entry = args.entry
    if entry is None:
        last = list(system.compiled)[-1]
        entry = f"{last}.main" if "main" in system.compiled[last].functions else last
    module, function = _split_entry(entry, system)

    call_args = [_parse_value(a) for a in args.args]
    if args.opt == "dynamic":
        closure = optimize_result(system, module, function).closure
    else:
        closure = system.closure(module, function)
    try:
        result = system.vm().call(closure, call_args)
    except UncaughtTmlException as exc:
        print(f"uncaught exception: {show_value(exc.value)}", file=sys.stderr)
        return 1
    for line in result.output:
        print(line)
    print(f"=> {show_value(result.value)}")
    if args.verbose:
        print(f"[{result.instructions} TAM instructions]", file=sys.stderr)
    return 0


def _cmd_tml(args: argparse.Namespace) -> int:
    system = _load_system(args.file, args.opt, args.store)
    module, function = _split_entry(args.function, system)
    closure = system.closure(module, function)
    if args.dynamic:
        term = optimize_result(system, module, function).term
    else:
        term = term_of_closure(closure, system.heap, allow_decompile=True)
    print(pretty(term, PrettyOptions(show_uids=not args.plain)))
    return 0


def _cmd_disasm(args: argparse.Namespace) -> int:
    system = _load_system(args.file, args.opt, args.store)
    module, function = _split_entry(args.function, system)
    closure = system.closure(module, function)
    print(closure.code.disassemble())
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    names = args.programs.split(",") if args.programs else None
    rows = run_stanford(names=names, scale=args.scale, repeats=args.repeats)
    print(format_table(rows))
    if args.artifacts is not None:
        from repro.bench.artifacts import write_bench_artifacts

        vm_path, opt_path = write_bench_artifacts(
            args.artifacts, scale=args.scale, repeats=args.repeats, rows=rows
        )
        print(f"wrote {vm_path} and {opt_path}", file=sys.stderr)
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.machine.vm import StepLimitExceeded
    from repro.obs import VMProfiler, write_metrics_json

    system = _load_system(args.file, args.opt, args.store)
    entry = args.entry
    if entry is None:
        last = list(system.compiled)[-1]
        entry = f"{last}.main" if "main" in system.compiled[last].functions else last
    module, function = _split_entry(entry, system)
    call_args = [_parse_value(a) for a in args.args]

    profiler = VMProfiler()
    closure = system.closure(module, function)
    vm = system.vm(step_limit=args.step_limit)
    vm.profiler = profiler
    truncated = False
    try:
        result = vm.call(closure, call_args)
    except UncaughtTmlException as exc:
        print(f"uncaught exception: {show_value(exc.value)}", file=sys.stderr)
        return 1
    except StepLimitExceeded as exc:
        # the profile of the truncated run is still valid evidence
        truncated = True
        result = exc.partial
        print(
            f"step limit hit after {exc.instructions} instructions "
            f"(limit {exc.limit}); profile covers the truncated run",
            file=sys.stderr,
        )

    for line in result.output:
        print(line)
    if not truncated:
        print(f"=> {show_value(result.value)}")
    print()
    print(f"profile of {module}.{function} ({result.instructions} instructions):")
    print(profiler.format_report(top=args.top))

    if args.pgo:
        from repro.reflect.pgo import optimize_hot

        report = optimize_hot(system, profiler, top=args.pgo)
        print()
        if not report.selected:
            print("pgo: no profiled compiled function to reoptimize")
        for candidate in report.selected:
            reflected = report.results[candidate.qualified]
            print(
                f"pgo: reoptimized {candidate.qualified} "
                f"({candidate.invocations} invocation(s), "
                f"{candidate.instructions} instructions measured): "
                f"cost {reflected.cost_before} -> {reflected.cost_after}, "
                f"estimated speedup {reflected.estimated_speedup:.2f}x"
            )

    if args.json:
        import json as _json

        with open(args.json, "w", encoding="utf-8") as fp:
            _json.dump(profiler.as_dict(), fp, indent=2, sort_keys=True)
            fp.write("\n")
        print(f"wrote {args.json}", file=sys.stderr)
    if args.metrics_json:
        write_metrics_json(args.metrics_json)
        print(f"wrote {args.metrics_json}", file=sys.stderr)
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    if args.history:
        return _cmd_stats_history(args)
    from repro.obs import METRICS, write_metrics_json

    # importing the instrumented layers registers their metric catalog even
    # before anything runs
    import repro.machine.vm  # noqa: F401
    import repro.rewrite.pipeline  # noqa: F401
    import repro.store.heap  # noqa: F401
    import repro.store.ptml  # noqa: F401

    if args.file is not None:
        system = _load_system(args.file, args.opt, args.store)
        last = list(system.compiled)[-1]
        entry = f"{last}.main" if "main" in system.compiled[last].functions else last
        module, function = _split_entry(entry, system)
        try:
            system.call(module, function, [])
        except UncaughtTmlException as exc:
            print(f"uncaught exception: {show_value(exc.value)}", file=sys.stderr)
            return 1

    rows = METRICS.describe()
    snapshot = METRICS.snapshot()
    print(f"{'metric':<34} {'type':<10} value")
    print("-" * 64)
    for name, kind, _help in rows:
        state = snapshot[name]
        if kind == "histogram":
            value = (
                f"count={state['count']} total={state['total']} "
                f"min={state['min']} max={state['max']}"
            )
        else:
            value = str(state["value"])
        print(f"{name:<34} {kind:<10} {value}")
    if args.json:
        write_metrics_json(args.json)
        print(f"wrote {args.json}", file=sys.stderr)
    return 0


def _cmd_stats_history(args: argparse.Namespace) -> int:
    """Offline read of the in-image metrics-history ring (``obs:history``).

    The daemon persists periodic metric snapshots into the image it
    serves; this reads them back with no server running — the positional
    argument is the store image, not a TL file.
    """
    import json as _json

    from repro.obs.history import read_history

    if args.file is None:
        raise SystemExit("error: stats --history needs a store image path")
    heap = ObjectHeap(args.file)
    try:
        entries = read_history(heap)
    finally:
        heap.close()
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            _json.dump(entries, handle, indent=2, sort_keys=True)
        print(f"wrote {args.json}", file=sys.stderr)
        return 0
    if not entries:
        print("(no persisted metric snapshots)")
        return 0
    print(f"{'seq':>5} {'timestamp':<24} {'role':<10} {'version':>8} {'requests':>9}")
    print("-" * 60)
    for entry in entries:
        meta = entry.get("meta", {})
        metrics = entry.get("metrics", {})
        requests = metrics.get("server.requests", {}).get("value", "-")
        ts = time.strftime(
            "%Y-%m-%dT%H:%M:%S", time.localtime(entry.get("ts_ms", 0) / 1000)
        )
        print(
            f"{entry.get('seq', 0):>5} {ts:<24} {str(meta.get('role', '-')):<10} "
            f"{str(meta.get('version', '-')):>8} {str(requests):>9}"
        )
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    from repro.server.top import run_top

    host, _, port = args.target.rpartition(":")
    if not host or not port.isdigit():
        raise SystemExit("error: top expects HOST:PORT")
    return run_top(host, int(port), interval=args.interval, count=args.count)


def _cmd_store(args: argparse.Namespace) -> int:
    heap = ObjectHeap(args.path)
    try:
        if args.action == "ls":
            names = heap.root_names()
            if not names:
                print("(no roots)")
            for name in names:
                oid = heap.root(name)
                size = heap.stored_size(oid)
                print(f"{name:<30} oid={int(oid):<6} {size} bytes")
            return 0
        raise SystemExit(f"unknown store action {args.action!r}")
    finally:
        heap.close()


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis import Severity, lint_code, lint_registry, lint_term
    from repro.primitives.registry import default_registry

    registry = default_registry()
    findings: list[tuple[str, object]] = []  # (label, Diagnostic)

    def collect(label: str, diags) -> None:
        findings.extend((label, d) for d in diags)

    collect("registry", lint_registry(registry))

    targets: list[tuple[str, object, object]] = []  # (label, term, code)
    if args.stdlib:
        from repro.lang.modules import compile_stdlib

        for mod_name, module in compile_stdlib(_options(args.opt)).items():
            for fn in module.functions.values():
                targets.append((f"{mod_name}.{fn.name}", fn.term, fn.code))
    if args.file is not None:
        system = _load_system(args.file, args.opt, None)
        for mod_name, module in system.compiled.items():
            for fn in module.functions.values():
                targets.append((f"{mod_name}.{fn.name}", fn.term, fn.code))
    if args.oid is not None:
        if args.store is None:
            raise SystemExit("error: --oid requires --store")
        targets.extend(_stored_targets(args.store, args.oid))
    if not targets and not args.stdlib:
        raise SystemExit("error: nothing to lint (give a FILE, --stdlib or --oid)")

    for label, term, code in targets:
        if term is not None:
            collect(label, lint_term(term, registry, include_usage=not args.no_usage))
        if code is not None:
            collect(label, lint_code(code, name=label))

    errors = warnings = infos = 0
    for label, diagnostic in findings:
        if diagnostic.severity == Severity.ERROR:
            errors += 1
        elif diagnostic.severity == Severity.WARNING:
            warnings += 1
        else:
            infos += 1
        if diagnostic.severity == Severity.INFO and not args.verbose:
            continue
        print(f"{label}: {diagnostic}")
    print(
        f"linted {len(targets)} object(s): {errors} error(s), "
        f"{warnings} warning(s), {infos} info(s)"
    )
    # exit-code contract (docs/analysis.md): errors always fail, warnings
    # fail only under --strict, info never does
    if errors:
        return 1
    if args.strict and warnings:
        return 1
    return 0


def _stored_targets(store_path: str, oid: int):
    """Lintable (label, term, code) triples for one stored object."""
    from repro.machine.isa import CodeObject
    from repro.store.ptml import decode_ptml
    from repro.store.serialize import Blob

    heap = ObjectHeap(store_path)
    try:
        obj = heap.load(oid)
        label = f"oid:{oid}"
        if isinstance(obj, Blob):
            return [(label, decode_ptml(obj).term, None)]
        if isinstance(obj, CodeObject):
            term = None
            if obj.ptml_ref is not None:
                ref = obj.ptml_ref
                blob = heap.load(ref) if not isinstance(ref, Blob) else ref
                term = decode_ptml(blob).term
            return [(label, term, obj)]
        if hasattr(obj, "functions"):  # a StoredModule
            targets = []
            for fn_name, code, _externals in obj.functions:
                term = None
                if code.ptml_ref is not None:
                    ref = code.ptml_ref
                    blob = heap.load(ref) if not isinstance(ref, Blob) else ref
                    term = decode_ptml(blob).term
                targets.append((f"oid:{oid}/{fn_name}", term, code))
            return targets
        raise SystemExit(f"error: oid {oid} holds {type(obj).__name__}, "
                         "not PTML, code, or a stored module")
    finally:
        heap.close()


def _cmd_fsck(args: argparse.Namespace) -> int:
    import json as _json

    from repro.store.fsck import fsck_image

    result = fsck_image(args.image, repair=args.repair)
    for finding in result.findings:
        if finding.severity == "info" and not args.verbose:
            continue
        print(f"{finding.severity}: [{finding.code}] {finding.message}")
    print(
        f"fsck {args.image}: format v{result.format}, "
        f"{result.objects_checked} object(s) checked, "
        f"{len(result.errors)} error(s), {len(result.warnings)} warning(s), "
        f"{len(result.leaked_pages)} leaked page(s)"
        + (f", {len(result.quarantined)} quarantined" if result.repaired else "")
    )
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fp:
            _json.dump(result.as_dict(), fp, indent=2, sort_keys=True)
            fp.write("\n")
        print(f"wrote {args.json}", file=sys.stderr)
    if result.repaired:
        return 0
    return 1 if result.errors else 0


def _cmd_audit(args: argparse.Namespace) -> int:
    import json as _json

    from repro.analysis import Severity, audit_image

    report = audit_image(args.image, update_facts=not args.no_update)
    ordered = sorted(
        report.diagnostics, key=lambda d: (-int(d.severity), d.code, d.path)
    )
    for diagnostic in ordered:
        if diagnostic.severity == Severity.INFO and not args.verbose:
            continue
        print(str(diagnostic))
    counts = report.counts
    print(
        f"audit {args.image}: {report.modules} module(s), "
        f"{report.functions} function(s), {report.analyzed} analyzed, "
        f"{report.reused} fact(s) reused, {counts['error']} error(s), "
        f"{counts['warning']} warning(s), {counts['info']} info(s) "
        f"in {report.wall_s * 1000:.1f} ms"
    )
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fp:
            _json.dump(report.as_dict(), fp, indent=2, sort_keys=True)
            fp.write("\n")
        print(f"wrote {args.json}", file=sys.stderr)
    if not report.ok:
        return 1
    if args.strict and counts["warning"]:
        return 1
    return 0


def _cmd_backup(args: argparse.Namespace) -> int:
    """Full or incremental backup of an image into a directory.

    The first backup into an empty destination is always full; later runs
    default to incremental (ship the archive segments the destination
    lacks) unless ``--full`` forces a fresh base.
    """
    import json

    from repro.store.recovery import (
        ArchiveError,
        backup_info,
        full_backup,
        incremental_backup,
    )

    mode = "full"
    if not args.full:
        try:
            backup_info(args.dest)
            mode = "incremental"
        except ArchiveError:
            mode = "full"
    try:
        if mode == "full":
            result = full_backup(args.image, args.dest)
        else:
            result = incremental_backup(args.image, args.dest)
    except (ArchiveError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(json.dumps({"mode": mode, **result}, indent=2, sort_keys=True))
    return 0


def _cmd_restore(args: argparse.Namespace) -> int:
    """Rebuild an image from a backup, optionally to a point in time."""
    import json

    from repro.store.recovery import ArchiveError, restore_image

    if args.to_version is not None and args.to_ts is not None:
        print("error: --to-version and --to-ts are mutually exclusive",
              file=sys.stderr)
        return 1
    try:
        result = restore_image(
            args.backup,
            args.image,
            to_version=args.to_version,
            to_ts_us=int(args.to_ts * 1e6) if args.to_ts is not None else None,
            force=args.force,
        )
    except (ArchiveError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(json.dumps(result, indent=2, sort_keys=True))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import signal

    from repro.server import ReproServer, ServerConfig

    replica_of = None
    if args.replica_of:
        host, _, port = args.replica_of.rpartition(":")
        if not host or not port.isdigit():
            raise SystemExit("error: --replica-of expects HOST:PORT")
        replica_of = (host, int(port))
    shards = None
    if args.shard:
        shards = []
        for group in args.shard:
            endpoints = []
            for part in group.split(","):
                host, _, port = part.strip().rpartition(":")
                if not host or not port.isdigit():
                    raise SystemExit(
                        "error: --shard expects HOST:PORT[,HOST:PORT...] "
                        "per group"
                    )
                endpoints.append((host, int(port)))
            shards.append(endpoints)
    config = ServerConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_size=args.queue_size,
        step_limit=args.step_limit,
        lock_timeout=args.lock_timeout,
        pgo_interval=None if args.no_pgo else args.pgo_interval,
        enable_debug_ops=args.debug_ops,
        idle_timeout=args.idle_timeout if args.idle_timeout > 0 else None,
        replicate=args.replicate,
        replica_of=replica_of,
        node_id=args.node_id,
        sync_replicas=args.sync_replicas,
        replication_timeout=args.replication_timeout,
        trace_sample=args.trace_sample,
        history_interval=args.history_interval if args.history_interval > 0 else None,
        slowlog_capacity=args.slowlog_capacity,
        coordinator=args.coordinator,
        shards=shards,
        shard_id=args.shard_id,
        shard_vnodes=args.vnodes,
        durable_decisions=not args.no_durable_decisions,
        read_only=args.read_only,
        degraded_probe_interval=(
            args.degraded_probe_interval
            if args.degraded_probe_interval > 0 else None
        ),
        mem_budget_bytes=args.mem_budget if args.mem_budget > 0 else None,
        mem_txn_budget_objects=(
            args.mem_txn_budget if args.mem_txn_budget > 0 else None
        ),
        queue_wait_limit=(
            args.queue_wait_limit if args.queue_wait_limit > 0 else None
        ),
        send_timeout=args.send_timeout if args.send_timeout > 0 else None,
        archive=not args.no_archive,
        scrub_interval=args.scrub_interval if args.scrub_interval > 0 else None,
        scrub_pages_per_sec=args.scrub_pages_per_sec,
    )
    server = ReproServer(args.image, config)
    server.start()
    host, port = server.address
    # machine-parsable readiness line: the smoke driver waits for it
    print(f"listening on {host}:{port}", flush=True)

    def _on_sigterm(signum, frame):  # graceful drain, then exit
        print("SIGTERM; draining sessions and shutting down", file=sys.stderr)
        server.initiate_shutdown()

    try:
        signal.signal(signal.SIGTERM, _on_sigterm)
    except ValueError:  # pragma: no cover - non-main-thread embedding
        pass
    try:
        server.wait()
    except KeyboardInterrupt:
        print("interrupted; shutting down", file=sys.stderr)
        server.stop()
    return 0


def _cmd_client(args: argparse.Namespace) -> int:
    import json as _json

    from repro.server.client import ServerError, connect

    try:
        with connect(args.port, host=args.host, deadline=args.deadline) as db:
            action = args.action
            if action == "ping":
                result = db.ping()
            elif action == "call":
                if not args.operands:
                    raise SystemExit("error: call needs module.function [args...]")
                module, function = _split_qualified(args.operands[0])
                call_args = [_parse_value(a) for a in args.operands[1:]]
                result = db.call(
                    module, function, call_args, step_limit=args.step_limit, full=True
                )
            elif action == "run":
                if len(args.operands) != 1:
                    raise SystemExit("error: run needs a TL source file or inline source")
                operand = args.operands[0]
                if os.path.exists(operand):
                    with open(operand, "r", encoding="utf-8") as handle:
                        source = handle.read()
                else:
                    source = operand
                result = {"modules": db.run(source)}
            elif action == "get":
                if not args.operands:
                    raise SystemExit("error: get needs root names")
                result = db.get(*args.operands)
            elif action == "set":
                if len(args.operands) != 2:
                    raise SystemExit("error: set needs ROOT VALUE")
                result = db.set(args.operands[0], _parse_value(args.operands[1]))
            elif action == "mset":
                if not args.operands or any("=" not in o for o in args.operands):
                    raise SystemExit("error: mset needs ROOT=VALUE pairs")
                writes = {}
                for operand in args.operands:
                    root, _, raw = operand.partition("=")
                    writes[root] = _parse_value(raw)
                result = db.mset(writes)
            elif action == "scatter":
                prefix = args.operands[0] if args.operands else ""
                module = function = None
                if len(args.operands) > 1:
                    module, function = _split_qualified(args.operands[1])
                result = db.scatter(
                    prefix, module=module, function=function, merge=args.merge
                )
            elif action == "topology":
                result = db.topology()
            elif action == "roots":
                result = {"roots": db.roots()}
            elif action == "stats":
                result = db.stats(metrics=args.metrics)
            elif action == "slowlog":
                result = db.slowlog(
                    n=int(args.operands[0]) if args.operands else None
                )
            elif action == "trace":
                trace_action = args.operands[0] if args.operands else "status"
                trace_path = trace_rate = None
                if trace_action == "start":
                    if len(args.operands) != 2:
                        raise SystemExit(
                            "error: trace start needs a server-side output path"
                        )
                    trace_path = args.operands[1]
                elif trace_action == "sample":
                    if len(args.operands) != 2:
                        raise SystemExit("error: trace sample needs a rate in [0, 1]")
                    trace_rate = float(args.operands[1])
                result = db.trace_ctl(trace_action, path=trace_path, rate=trace_rate)
            elif action == "pgo":
                result = db.pgo(top=int(args.operands[0]) if args.operands else None)
            elif action == "repl-status":
                result = db.repl_status(digest=True)
            elif action == "promote":
                result = db.promote(
                    term=int(args.operands[0]) if args.operands else None
                )
            elif action == "follow":
                if len(args.operands) != 1 or ":" not in args.operands[0]:
                    raise SystemExit("error: follow needs HOST:PORT of the new primary")
                host, _, port = args.operands[0].rpartition(":")
                result = db.follow(host, int(port))
            elif action == "shutdown":
                result = db.shutdown()
            else:  # pragma: no cover - argparse restricts choices
                raise SystemExit(f"unknown client action {action!r}")
    except ServerError as exc:
        print(f"error: {exc}", file=sys.stderr)
        if exc.code == "read_only":
            # degraded mode: tell the operator what to do, not just "no"
            reason = exc.details.get("reason") or "unknown reason"
            if exc.details.get("manual"):
                remedy = (
                    "it was started with --read-only; restart without "
                    "the flag to re-enable writes"
                )
            else:
                remedy = (
                    "it re-probes the disk and recovers on its own once "
                    "the fault clears"
                )
            print(
                f"hint: the daemon is in degraded read-only mode "
                f"({reason}); reads still work.  {remedy.capitalize()} — "
                "see 'disk full / degraded mode' in docs/durability.md",
                file=sys.stderr,
            )
        return 1
    print(_json.dumps(result, indent=2, sort_keys=True, default=str))
    return 0


def _split_qualified(entry: str) -> tuple[str, str]:
    if "." not in entry:
        raise SystemExit(f"error: expected module.function, got {entry!r}")
    module, function = entry.split(".", 1)
    return module, function


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="TML / Tycoon-style persistent code environment "
        "(EDBT 1996 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="compile and run a TL file")
    run_p.add_argument("file")
    run_p.add_argument("--entry", help="module.function (default: <last module>.main)")
    run_p.add_argument("--args", nargs="*", default=[], help="int/bool/string arguments")
    run_p.add_argument(
        "--opt", choices=["none", "static", "dynamic"], default="static"
    )
    run_p.add_argument("--store", help="persistent store file to attach")
    run_p.add_argument("-v", "--verbose", action="store_true")
    run_p.set_defaults(handler=_cmd_run)

    tml_p = sub.add_parser("tml", help="print a function's TML")
    tml_p.add_argument("file")
    tml_p.add_argument("--function", required=True, help="module.function")
    tml_p.add_argument("--dynamic", action="store_true", help="after runtime optimization")
    tml_p.add_argument("--plain", action="store_true", help="hide name uids")
    tml_p.add_argument("--opt", choices=["none", "static"], default="static")
    tml_p.add_argument("--store")
    tml_p.set_defaults(handler=_cmd_tml)

    dis_p = sub.add_parser("disasm", help="print a function's TAM code")
    dis_p.add_argument("file")
    dis_p.add_argument("--function", required=True)
    dis_p.add_argument("--opt", choices=["none", "static"], default="static")
    dis_p.add_argument("--store")
    dis_p.set_defaults(handler=_cmd_disasm)

    bench_p = sub.add_parser("bench", help="run the §6 Stanford experiment")
    bench_p.add_argument("--scale", type=float, default=1.0)
    bench_p.add_argument("--repeats", type=int, default=1)
    bench_p.add_argument("--programs", help="comma-separated subset")
    bench_p.add_argument(
        "--artifacts",
        metavar="DIR",
        help="also write BENCH_vm.json / BENCH_opt.json into DIR",
    )
    bench_p.set_defaults(handler=_cmd_bench)

    prof_p = sub.add_parser(
        "profile", help="run a TL file under the VM profiler"
    )
    prof_p.add_argument("file")
    prof_p.add_argument("--entry", help="module.function (default: <last module>.main)")
    prof_p.add_argument("--args", nargs="*", default=[], help="int/bool/string arguments")
    prof_p.add_argument("--opt", choices=["none", "static"], default="static")
    prof_p.add_argument("--store", help="persistent store file to attach")
    prof_p.add_argument(
        "--step-limit", type=int, help="instruction budget (profile the truncated run)"
    )
    prof_p.add_argument("--top", type=int, help="show only the N hottest closures")
    prof_p.add_argument(
        "--pgo",
        type=int,
        nargs="?",
        const=1,
        metavar="N",
        help="feed the profile into reflect.optimize for the N hottest functions",
    )
    prof_p.add_argument("--json", metavar="OUT", help="write the profile as JSON")
    prof_p.add_argument(
        "--metrics-json", metavar="OUT", help="write a metrics snapshot as JSON"
    )
    prof_p.set_defaults(handler=_cmd_profile)

    stats_p = sub.add_parser(
        "stats", help="print the process metrics registry"
    )
    stats_p.add_argument("file", nargs="?", help="TL file to compile and run first")
    stats_p.add_argument("--opt", choices=["none", "static"], default="static")
    stats_p.add_argument("--store", help="persistent store file to attach")
    stats_p.add_argument("--json", metavar="OUT", help="write the snapshot as JSON")
    stats_p.add_argument(
        "--history", action="store_true",
        help="read the in-image metrics-history ring instead (FILE is a "
        "store image; works offline, no server needed)",
    )
    stats_p.set_defaults(handler=_cmd_stats)

    store_p = sub.add_parser("store", help="inspect a persistent store image")
    store_p.add_argument("action", choices=["ls"])
    store_p.add_argument("path")
    store_p.set_defaults(handler=_cmd_store)

    fsck_p = sub.add_parser(
        "fsck", help="check (and repair) the integrity of a store image"
    )
    fsck_p.add_argument("image", help="persistent store image to check")
    fsck_p.add_argument(
        "--repair",
        action="store_true",
        help="quarantine corrupt/unreachable objects and rebuild the free list",
    )
    fsck_p.add_argument("--json", metavar="OUT", help="write the report as JSON")
    fsck_p.add_argument(
        "-v", "--verbose", action="store_true", help="also print info findings"
    )
    fsck_p.set_defaults(handler=_cmd_fsck)

    lint_p = sub.add_parser(
        "lint", help="run the static analyses over TL functions or stored objects"
    )
    lint_p.add_argument("file", nargs="?", help="TL source file to compile and lint")
    lint_p.add_argument("--stdlib", action="store_true", help="lint the standard library")
    lint_p.add_argument("--store", help="persistent store image to read")
    lint_p.add_argument("--oid", type=int, help="lint a stored PTML/code/module object")
    lint_p.add_argument("--opt", choices=["none", "static"], default="static")
    lint_p.add_argument(
        "--no-usage", action="store_true", help="skip dead-binding/unused-parameter lint"
    )
    lint_p.add_argument(
        "--strict", action="store_true",
        help="exit nonzero on warnings too, not just errors",
    )
    lint_p.add_argument(
        "-v", "--verbose", action="store_true", help="also print info-severity findings"
    )
    lint_p.set_defaults(handler=_cmd_lint)

    audit_p = sub.add_parser(
        "audit", help="whole-image interprocedural analysis of stored code"
    )
    audit_p.add_argument("image", help="persistent store image to audit")
    audit_p.add_argument("--json", metavar="OUT", help="write the report as JSON")
    audit_p.add_argument(
        "--no-update", action="store_true",
        help="read-only: do not refresh the persisted analysis-fact cache",
    )
    audit_p.add_argument(
        "--strict", action="store_true",
        help="exit nonzero on warnings too, not just errors",
    )
    audit_p.add_argument(
        "-v", "--verbose", action="store_true", help="also print info findings"
    )
    audit_p.set_defaults(handler=_cmd_audit)

    serve_p = sub.add_parser(
        "serve", help="run the multi-session database server over an image"
    )
    serve_p.add_argument("image", help="persistent store image (created if absent)")
    serve_p.add_argument("--host", default="127.0.0.1")
    serve_p.add_argument("--port", type=int, default=0, help="0 = ephemeral")
    serve_p.add_argument("--workers", type=int, default=4)
    serve_p.add_argument("--queue-size", type=int, default=64)
    serve_p.add_argument(
        "--step-limit", type=int, default=5_000_000,
        help="per-request TAM instruction budget",
    )
    serve_p.add_argument("--lock-timeout", type=float, default=10.0)
    serve_p.add_argument(
        "--pgo-interval", type=float, default=30.0,
        help="seconds between background PGO rounds",
    )
    serve_p.add_argument(
        "--no-pgo", action="store_true", help="disable the background PGO worker"
    )
    serve_p.add_argument(
        "--debug-ops", action="store_true",
        help="enable debug protocol ops (sleep) — test use only",
    )
    serve_p.add_argument(
        "--idle-timeout", type=float, default=300.0,
        help="seconds before an idle session is reaped (0 disables)",
    )
    serve_p.add_argument(
        "--replicate", action="store_true",
        help="primary role: keep a commit log and accept replica subscriptions",
    )
    serve_p.add_argument(
        "--replica-of", metavar="HOST:PORT",
        help="replica role: follow this primary's commit stream (read-only)",
    )
    serve_p.add_argument(
        "--node-id", default="", help="replication node id (default host:port)"
    )
    serve_p.add_argument(
        "--sync-replicas", type=int, default=0,
        help="acknowledge writes only after N replicas applied them",
    )
    serve_p.add_argument(
        "--replication-timeout", type=float, default=5.0,
        help="seconds a sync write waits for its ack quorum",
    )
    serve_p.add_argument(
        "--trace-sample", type=float, default=1.0,
        help="probability an unstamped request roots a new trace when a "
        "recorder is attached (stamped requests always honor the stamp)",
    )
    serve_p.add_argument(
        "--history-interval", type=float, default=60.0,
        help="seconds between in-image metric snapshots (0 disables)",
    )
    serve_p.add_argument(
        "--slowlog-capacity", type=int, default=32,
        help="slowest requests kept in the in-memory slowlog ring",
    )
    serve_p.add_argument(
        "--coordinator", action="store_true",
        help="shard coordinator role: route by the consistent-hash ring, "
        "run cross-shard writes as 2PC, serve scatter-gather "
        "(see docs/sharding.md)",
    )
    serve_p.add_argument(
        "--shard", action="append", metavar="HOST:PORT[,HOST:PORT...]",
        help="one shard group's endpoints (primary plus replicas); repeat "
        "per group — group order defines shard ids",
    )
    serve_p.add_argument(
        "--shard-id", type=int, default=None,
        help="this daemon's own shard id within --shard (participants "
        "enforce ring ownership and answer wrong_shard with a hint)",
    )
    serve_p.add_argument(
        "--vnodes", type=int, default=64,
        help="virtual nodes per shard on the hash ring",
    )
    serve_p.add_argument(
        "--no-durable-decisions", action="store_true",
        help="skip the 2PC decision-record fsync (UNSAFE: loses "
        "cross-shard atomicity on coordinator crash; negative-control "
        "testing only)",
    )
    serve_p.add_argument(
        "--read-only", action="store_true",
        help="start in degraded read-only mode (manual operator override; "
        "never auto-recovers — see docs/durability.md)",
    )
    serve_p.add_argument(
        "--degraded-probe-interval", type=float, default=2.0,
        help="seconds between writability re-probes while degraded after "
        "a disk fault (0 disables auto-recovery)",
    )
    serve_p.add_argument(
        "--mem-budget", type=int, default=0, metavar="BYTES",
        help="heap-cache byte budget: writes beyond it shed busy-style "
        "and the watchdog shrinks the cache (0 = unbounded)",
    )
    serve_p.add_argument(
        "--mem-txn-budget", type=int, default=0, metavar="OBJECTS",
        help="per-transaction dirty-object budget (0 = unbounded)",
    )
    serve_p.add_argument(
        "--queue-wait-limit", type=float, default=5.0,
        help="shed a pooled request that waited longer than this in the "
        "admission queue (overloaded error; 0 disables)",
    )
    serve_p.add_argument(
        "--send-timeout", type=float, default=20.0,
        help="close a session whose socket send has been blocked longer "
        "than this (0 disables the slow-client reaper)",
    )
    serve_p.add_argument(
        "--no-archive", action="store_true",
        help="skip continuous commit-log archiving (UNSAFE for disaster "
        "recovery: log resets discard restore points; see docs/recovery.md)",
    )
    serve_p.add_argument(
        "--scrub-interval", type=float, default=0.0,
        help="seconds between background integrity-scrub cycles "
        "(0 disables; corruption degrades the daemon and, on a replica, "
        "triggers anti-entropy repair)",
    )
    serve_p.add_argument(
        "--scrub-pages-per-sec", type=int, default=0,
        help="scrub disk-read budget in pages per second (0 = unbounded)",
    )
    serve_p.set_defaults(handler=_cmd_serve)

    backup_p = sub.add_parser(
        "backup",
        help="back an image up into a directory (full base + archived "
        "commit-log segments for point-in-time restore)",
    )
    backup_p.add_argument("image", help="source image")
    backup_p.add_argument("dest", help="backup directory (created if absent)")
    backup_p.add_argument(
        "--full", action="store_true",
        help="force a fresh full base copy (default: full when the "
        "destination is empty, incremental otherwise)",
    )
    backup_p.set_defaults(handler=_cmd_backup)

    restore_p = sub.add_parser(
        "restore",
        help="rebuild an image from a backup directory, optionally to an "
        "earlier point in time",
    )
    restore_p.add_argument("backup", help="backup directory (from `backup`)")
    restore_p.add_argument("image", help="image file to create")
    restore_p.add_argument(
        "--to-version", type=int, default=None,
        help="stop replay at this replication version (point-in-time)",
    )
    restore_p.add_argument(
        "--to-ts", type=float, default=None, metavar="UNIX_SECONDS",
        help="stop replay at the last commit at or before this wall-clock "
        "time",
    )
    restore_p.add_argument(
        "--force", action="store_true",
        help="overwrite an existing image file at the destination",
    )
    restore_p.set_defaults(handler=_cmd_restore)

    top_p = sub.add_parser(
        "top", help="live terminal dashboard over a running daemon's stats"
    )
    top_p.add_argument("target", metavar="HOST:PORT", help="daemon to watch")
    top_p.add_argument(
        "--interval", type=float, default=2.0, help="seconds between polls"
    )
    top_p.add_argument(
        "--count", type=int, default=None,
        help="render N frames then exit (default: until interrupted)",
    )
    top_p.set_defaults(handler=_cmd_top)

    client_p = sub.add_parser("client", help="one-shot session against a daemon")
    client_p.add_argument(
        "action",
        choices=[
            "ping", "call", "run", "get", "set", "mset", "scatter",
            "topology", "roots", "stats", "slowlog", "trace", "pgo",
            "repl-status", "promote", "follow", "shutdown",
        ],
    )
    client_p.add_argument("operands", nargs="*")
    client_p.add_argument("--port", type=int, required=True)
    client_p.add_argument("--host", default="127.0.0.1")
    client_p.add_argument("--step-limit", type=int, help="per-call instruction budget")
    client_p.add_argument(
        "--deadline", type=float,
        help="per-request wall-clock budget in seconds (structured "
        "deadline_exceeded once spent)",
    )
    client_p.add_argument(
        "--metrics", action="store_true", help="include the metrics snapshot in stats"
    )
    client_p.add_argument(
        "--merge", choices=["concat", "sum", "values"], default="concat",
        help="scatter merge strategy (scatter action only)",
    )
    client_p.set_defaults(handler=_cmd_client)

    # --trace OUT.ndjson on every subcommand that executes/optimizes code
    for sub_parser in (
        run_p, tml_p, dis_p, bench_p, prof_p, stats_p, lint_p, audit_p, serve_p,
    ):
        sub_parser.add_argument(
            "--trace",
            metavar="OUT.ndjson",
            help="stream structured trace events (NDJSON) to this file",
        )
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    trace_path = getattr(args, "trace", None)
    if trace_path is None:
        return args.handler(args)
    from repro.obs import NdjsonRecorder, TRACER

    with NdjsonRecorder(trace_path) as recorder:
        with TRACER.recording(recorder):
            status = args.handler(args)
    print(f"wrote trace to {trace_path}", file=sys.stderr)
    return status


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
