#!/usr/bin/env python
"""CI smoke test for the repro daemon (`python scripts/server_smoke.py`).

Boots ``python -m repro serve`` as a real subprocess with NDJSON tracing,
then drives it the way the docs promise it works:

1. eight concurrent client sessions transactionally increment one shared
   counter — every increment must survive (serialized commits, no lost
   updates);
2. a stored function is called from several sessions — the shared compiled
   -code cache must serve at least one hit;
3. one explicit PGO round replaces the measured-hot function with a
   cheaper body while the server keeps answering;
4. a ``shutdown`` request stops the daemon gracefully (exit code 0).

Exits nonzero on the first violated expectation.  The trace file
(``artifacts/server-smoke-trace.ndjson`` by default) is uploaded as a
CI artifact; all scratch outputs stay out of the repo root.
"""

from __future__ import annotations

import argparse
import os
import re
import subprocess
import sys
import threading

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(ROOT, "src"))

from repro.server.client import connect  # noqa: E402

BENCH = """
module bench export work
let work(n: Int): Int =
  var s := 0 in var i := 0 in
  begin while i < n do begin s := s + i; i := i + 1 end end; s end
end"""

SESSIONS = 8
INCREMENTS = 4


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    raise SystemExit(1)


def check(condition: bool, message: str) -> None:
    if not condition:
        fail(message)
    print(f"ok: {message}")


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--image", default="artifacts/server-smoke.tyc")
    parser.add_argument("--trace", default="artifacts/server-smoke-trace.ndjson")
    args = parser.parse_args()

    for path in (args.image, args.trace):
        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)

    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(ROOT, "src") + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    daemon = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve", args.image,
            "--no-pgo",  # rounds are driven explicitly for determinism
            "--trace", args.trace,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    try:
        ready = daemon.stdout.readline().strip()
        match = re.fullmatch(r"listening on (\S+):(\d+)", ready)
        if match is None:
            fail(f"daemon did not announce readiness, got {ready!r}")
        port = int(match.group(2))
        print(f"daemon ready on port {port}")

        # --- 1. concurrent transactional commits, no lost updates --------
        with connect(port) as db:
            db.run(BENCH)
            db.set("counter", 0)
        errors: list[Exception] = []

        def incrementer() -> None:
            try:
                with connect(port) as session:
                    for _ in range(INCREMENTS):
                        with session.transaction():
                            value = session.get("counter")["counter"]
                            session.set("counter", value + 1)
            except Exception as exc:  # surfaced after join
                errors.append(exc)

        threads = [threading.Thread(target=incrementer) for _ in range(SESSIONS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        check(not errors, f"{SESSIONS} concurrent sessions committed without error")
        with connect(port) as db:
            final = db.get("counter")["counter"]
        check(
            final == SESSIONS * INCREMENTS,
            f"counter == {SESSIONS * INCREMENTS} after "
            f"{SESSIONS}x{INCREMENTS} transactional increments (got {final})",
        )

        # --- 2. shared compiled-code cache serves hits across sessions ---
        with connect(port) as first:
            first.call("bench", "work", [200])
        with connect(port) as second:
            result = second.call("bench", "work", [200], full=True)
            stats = second.stats()
        check(result["cache"] == "hit", "second session hit the compiled-code cache")
        check(stats["codecache"]["hits"] >= 1, "code cache hit counter advanced")

        # --- 3. a PGO round swaps in faster code while serving ------------
        with connect(port) as db:
            before = db.call("bench", "work", [200], full=True)
            report = db.pgo(top=1)
            optimized = [entry["function"] for entry in report["optimized"]]
            check("bench.work" in optimized, "pgo round reoptimized bench.work")
            after = db.call("bench", "work", [200], full=True)
            check(after["value"] == before["value"], "optimized code agrees on the result")
            check(
                after["instructions"] < before["instructions"],
                f"optimized code is faster "
                f"({before['instructions']} -> {after['instructions']} instructions)",
            )
            check(db.ping()["pong"] is True, "server still serving after the swap")

        # --- 4. graceful shutdown ----------------------------------------
        with connect(port) as db:
            check(db.shutdown() == {"stopping": True}, "shutdown acknowledged")
        daemon.wait(timeout=60)
        check(daemon.returncode == 0, "daemon exited cleanly")
        check(
            os.path.exists(args.trace) and os.path.getsize(args.trace) > 0,
            f"trace artifact {args.trace} written",
        )
        print("server smoke: all checks passed")
        return 0
    finally:
        if daemon.poll() is None:
            daemon.kill()
            daemon.wait(timeout=30)


if __name__ == "__main__":
    raise SystemExit(main())
