#!/usr/bin/env python
"""CI driver for the disaster-recovery sweep (``make recovery-sim``).

Runs :func:`repro.store.recoverysim.run_sweep` — live daemons whose
commit logs are continuously archived, with full + incremental backups
taken under write traffic, point-in-time restores replayed to a
pre-poison restore point, bit rot flipped into a cold replica page, and
crashes injected mid-backup and mid-restore — and exits nonzero if any
scenario violated an invariant:

* a restore to the pre-poison version is digest-identical to the oracle
  snapshot taken at that version, and no acknowledged write from after
  the restore point survives in the restored image,
* the background scrub detects flipped pages and anti-entropy repair
  re-converges the replica by fetching only the diverged OID buckets —
  never a full resync — after which a re-scrub comes back clean and
  degraded mode exits,
* a crash mid-backup or mid-restore never leaves a non-fsck-clean
  artifact behind: either the output is absent or it verifies.

``--negative-control`` archives segments without fsync through a
write-back fault plan: the restore point MUST be lost (exit nonzero),
which CI asserts by inverting the invocation.

Usage: python scripts/recovery_sim.py [--quick] [--negative-control]
                                      [--json OUT] [--verbose]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.store.recoverysim import run_sweep  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="reduced scenario grid for local iteration and CI",
    )
    parser.add_argument(
        "--negative-control", action="store_true",
        help="archive without fsync; the lost restore point MUST exit nonzero",
    )
    parser.add_argument("--json", metavar="OUT", help="write the report as JSON")
    parser.add_argument(
        "--verbose", action="store_true", help="print every scenario result"
    )
    args = parser.parse_args(argv)

    started = time.monotonic()

    def progress(done, total, result):
        if args.verbose or not result.ok:
            mark = "ok  " if result.ok else "FAIL"
            print(
                f"  [{done:3d}/{total}] {mark} {result.name} "
                f"({result.elapsed_s:.2f}s)"
                + ("" if result.ok else f" — {result.detail}")
            )
        else:
            print(f"  [{done:3d}/{total}] {result.name}")

    with tempfile.TemporaryDirectory(prefix="recovery-sim-") as workdir:
        report = run_sweep(
            workdir,
            quick=args.quick,
            negative_control=args.negative_control,
            progress=progress,
        )
    report["duration_s"] = round(time.monotonic() - started, 2)
    report["mode"] = (
        "negative-control" if args.negative_control
        else ("quick" if args.quick else "full")
    )

    print(
        f"recovery-sim [{report['mode']}]: {report['scenarios']} scenarios "
        f"in {report['duration_s']}s -> "
        + ("OK" if not report["failed"] else f"{report['failed']} FAILURES")
    )
    for failure in report["failures"]:
        print(f"  FAIL {failure['name']}: {failure['detail']}")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fp:
            json.dump(report, fp, indent=2, sort_keys=True)
            fp.write("\n")
        print(f"wrote {args.json}")
    return 0 if not report["failed"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
