#!/usr/bin/env python
"""Observability overhead benchmark → ``BENCH_obs.json`` (``make bench``).

Quantifies what watching the system costs, in two places:

* **Stanford suite** (pure VM work, no wire): wall time with the metrics
  registry disabled entirely vs the always-on default vs a full NDJSON
  trace recorder attached.  The always-on delta is the *gate*: CI fails
  when enabled-metrics overhead exceeds ``--max-overhead`` (default 5%),
  because "observability is always on" is only tenable while it is cheap.
* **Server round-trips** (loopback TCP): µs per request with no tracing,
  with clients stamping trace context on every request (ids only, no
  recorder), with the daemon recording at 10% sampling, and with a full
  recorder at 100% — the tiers an operator actually chooses between.

The artifact shares the ``BENCH_server.json`` envelope style (schema +
meta + results) so CI uploads it alongside the other benchmarks.

Usage: python scripts/obs_bench.py [--scale F] [--repeats N]
       [--server-ops N] [--max-overhead F] [--json OUT]
"""

from __future__ import annotations

import argparse
import json
import math
import os
import platform
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.bench.harness import CONFIG_STATIC  # noqa: E402
from repro.bench.stanford import PROGRAMS  # noqa: E402
from repro.lang import TycoonSystem  # noqa: E402
from repro.obs import NdjsonRecorder, TRACER  # noqa: E402
from repro.obs.metrics import metrics_disabled  # noqa: E402
from repro.server import ReproServer, ServerConfig, connect  # noqa: E402

#: a CPU-bound subset: enough work per call that per-call noise is small
STANFORD_SUBSET = ("bubblesort", "intmm", "perm", "queens")


def _stanford_pass(system, closures, scale: float) -> float:
    """One full pass over the subset; returns elapsed seconds."""
    start = time.perf_counter()
    for name, closure in closures:
        n = max(1, int(PROGRAMS[name].bench_n * scale))
        system.vm().call(closure, [n])
    return time.perf_counter() - start


def bench_stanford(scale: float, repeats: int, trace_dir: str) -> dict:
    system = TycoonSystem(options=CONFIG_STATIC)
    names = [n for n in STANFORD_SUBSET if n in PROGRAMS]
    for name in names:
        system.compile(PROGRAMS[name].source)
    closures = [(name, system.closure(name, "run")) for name in names]

    def best_of(run) -> float:
        best = math.inf
        for _ in range(repeats):
            best = min(best, run())
        return best

    # warm-up: fault in code paths and caches before any timed pass
    _stanford_pass(system, closures, scale)

    with metrics_disabled():
        t_off = best_of(lambda: _stanford_pass(system, closures, scale))
    t_on = best_of(lambda: _stanford_pass(system, closures, scale))
    trace_path = os.path.join(trace_dir, "obs-bench-stanford.ndjson")
    with NdjsonRecorder(trace_path) as recorder:
        with TRACER.recording(recorder):
            t_traced = best_of(lambda: _stanford_pass(system, closures, scale))
    return {
        "programs": names,
        "scale": scale,
        "repeats": repeats,
        "metrics_off_s": round(t_off, 6),
        "metrics_on_s": round(t_on, 6),
        "tracing_full_s": round(t_traced, 6),
        "metrics_overhead": round(t_on / t_off - 1.0, 4) if t_off else 0.0,
        "tracing_overhead": round(t_traced / t_off - 1.0, 4) if t_off else 0.0,
    }


def _rtt_us(port: int, ops: int, trace_sample: float) -> float:
    """Best-of-3 mean round-trip time of a get over loopback, in µs."""
    best = math.inf
    with connect(port) as db:
        db.trace_sample = trace_sample
        for _ in range(ops // 4):  # warm-up
            db.get("x")
        for _ in range(3):
            start = time.perf_counter()
            for _ in range(ops):
                db.get("x")
            best = min(best, (time.perf_counter() - start) / ops)
    return best * 1e6


def bench_server(ops: int, root: str) -> dict:
    server = ReproServer(
        os.path.join(root, "obs-bench.tyc"),
        ServerConfig(
            workers=2, queue_size=64, pgo_interval=None, history_interval=None,
        ),
    )
    server.start()
    try:
        with connect(server.port) as db:
            db.set("x", 1)
        off = _rtt_us(server.port, ops, trace_sample=0.0)
        stamped = _rtt_us(server.port, ops, trace_sample=1.0)
        trace_path = os.path.join(root, "obs-bench-server.ndjson")
        with connect(server.port) as ctl:
            ctl.trace_ctl("start", path=trace_path)
            ctl.trace_ctl("sample", rate=0.1)
        sampled = _rtt_us(server.port, ops, trace_sample=0.1)
        with connect(server.port) as ctl:
            ctl.trace_ctl("sample", rate=1.0)
        full = _rtt_us(server.port, ops, trace_sample=1.0)
        with connect(server.port) as ctl:
            ctl.trace_ctl("stop")
        return {
            "ops": ops,
            "rtt_us": {
                "off": round(off, 1),
                "stamped": round(stamped, 1),
                "sampled_10pct": round(sampled, 1),
                "full": round(full, 1),
            },
            "overhead_vs_off": {
                "stamped": round(stamped / off - 1.0, 4) if off else 0.0,
                "sampled_10pct": round(sampled / off - 1.0, 4) if off else 0.0,
                "full": round(full / off - 1.0, 4) if off else 0.0,
            },
        }
    finally:
        server.stop()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.2, help="stanford n scale")
    parser.add_argument("--repeats", type=int, default=5, help="best-of passes")
    parser.add_argument("--server-ops", type=int, default=400)
    parser.add_argument(
        "--max-overhead", type=float, default=0.05,
        help="fail when always-on metrics cost more than this fraction "
        "over metrics-disabled on the Stanford suite",
    )
    parser.add_argument(
        "--json", metavar="OUT", default="BENCH_obs.json",
        help="artifact path (default: BENCH_obs.json)",
    )
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory(prefix="obs-bench-") as root:
        stanford = bench_stanford(args.scale, args.repeats, root)
        server = bench_server(args.server_ops, root)

    overhead = stanford["metrics_overhead"]
    gate_pass = overhead <= args.max_overhead
    payload = {
        "schema": "repro.bench.obs/v1",
        "meta": {
            "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
            "python": platform.python_version(),
            "platform": sys.platform,
        },
        "stanford": stanford,
        "server": server,
        "gate": {
            "max_metrics_overhead": args.max_overhead,
            "metrics_overhead": overhead,
            "pass": gate_pass,
        },
    }
    with open(args.json, "w", encoding="utf-8") as fp:
        json.dump(payload, fp, indent=2, sort_keys=True)
        fp.write("\n")
    rtt = server["rtt_us"]
    print(
        f"obs-bench: always-on metrics {overhead * 100:+.2f}% vs disabled "
        f"(gate {args.max_overhead * 100:.0f}%); tracing "
        f"{stanford['tracing_overhead'] * 100:+.2f}%; server rtt "
        f"off {rtt['off']}us / stamped {rtt['stamped']}us / "
        f"10% {rtt['sampled_10pct']}us / full {rtt['full']}us "
        f"-> wrote {args.json}"
    )
    if not gate_pass:
        print(
            f"obs-bench: FAIL — always-on metrics overhead "
            f"{overhead * 100:.2f}% exceeds the {args.max_overhead * 100:.0f}% gate",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
