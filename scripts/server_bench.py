#!/usr/bin/env python
"""Server throughput benchmark → ``BENCH_server.json`` (``make bench``).

Measures requests/second over the real wire path (loopback TCP, JSON
frames) in two topologies:

* **single-node** — one standalone daemon, read and write throughput;
* **replicated** — a primary with two read replicas; reads fan out
  round-robin across the replicas via :class:`ClusterClient` while the
  primary replicates writes, quantifying what the read-replica tier buys.

The artifact shares the ``BENCH_vm.json`` envelope style (schema +
meta + results) so CI uploads it alongside the other benchmarks.

Usage: python scripts/server_bench.py [--ops N] [--threads N] [--json OUT]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
import threading
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.server import ReproServer, ServerConfig, connect  # noqa: E402
from repro.server.client import ClusterClient, RetryPolicy  # noqa: E402


def _drive(threads: int, ops: int, make_client, op) -> float:
    """Run ``op(client)`` ops×threads times; returns requests/second."""
    clients = [make_client() for _ in range(threads)]
    barrier = threading.Barrier(threads + 1)
    errors: list[Exception] = []

    def worker(client):
        try:
            barrier.wait()
            for _ in range(ops):
                op(client)
        except Exception as exc:  # pragma: no cover - surfaced below
            errors.append(exc)

    workers = [
        threading.Thread(target=worker, args=(c,)) for c in clients
    ]
    for t in workers:
        t.start()
    barrier.wait()
    started = time.perf_counter()
    for t in workers:
        t.join()
    elapsed = time.perf_counter() - started
    for client in clients:
        client.close()
    if errors:
        raise errors[0]
    return (threads * ops) / elapsed if elapsed > 0 else 0.0


def bench_single_node(root: str, threads: int, ops: int) -> dict:
    os.makedirs(root, exist_ok=True)
    server = ReproServer(
        os.path.join(root, "single.tyc"),
        ServerConfig(workers=4, queue_size=128, pgo_interval=None),
    )
    server.start()
    try:
        with connect(server.port) as db:
            db.set("x", 1)
        read_rps = _drive(
            threads, ops,
            lambda: connect(server.port),
            lambda c: c.get("x"),
        )
        write_rps = _drive(
            1, ops,
            lambda: connect(server.port),
            lambda c: c.set("x", 2),
        )
        return {"read_rps": round(read_rps, 1), "write_rps": round(write_rps, 1)}
    finally:
        server.stop()


def bench_replicated(root: str, threads: int, ops: int) -> dict:
    os.makedirs(root, exist_ok=True)
    primary = ReproServer(
        os.path.join(root, "primary.tyc"),
        ServerConfig(
            workers=4, queue_size=128, pgo_interval=None,
            replicate=True, node_id="primary",
        ),
    )
    primary.start()
    replicas = []
    try:
        for i in range(2):
            replica = ReproServer(
                os.path.join(root, f"r{i}.tyc"),
                ServerConfig(
                    workers=4, queue_size=128, pgo_interval=None,
                    replica_of=("127.0.0.1", primary.port), node_id=f"r{i}",
                ),
            )
            replica.start()
            replicas.append(replica)
        with connect(primary.port) as db:
            version = db.set("x", 1)["repl_version"]
        # wait for both replicas before timing the read tier
        deadline = time.monotonic() + 30
        for replica in replicas:
            with connect(replica.port) as db:
                while db.repl_status()["version"] < version:
                    if time.monotonic() > deadline:
                        raise RuntimeError("replicas never caught up")
                    time.sleep(0.02)
        endpoints = [("127.0.0.1", s.port) for s in (primary, *replicas)]

        def make_cluster():
            client = ClusterClient(endpoints, retry=RetryPolicy())
            client.discover()
            return client

        fanout_rps = _drive(
            threads, ops, make_cluster, lambda c: c.get("x")
        )
        return {
            "replicas": len(replicas),
            "fanout_read_rps": round(fanout_rps, 1),
        }
    finally:
        for server in (*replicas, primary):
            try:
                server.stop()
            except Exception:
                pass


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--ops", type=int, default=300, help="ops per thread")
    parser.add_argument("--threads", type=int, default=4)
    parser.add_argument(
        "--json", metavar="OUT", default="BENCH_server.json",
        help="artifact path (default: BENCH_server.json)",
    )
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory(prefix="server-bench-") as root:
        single = bench_single_node(os.path.join(root, "s"), args.threads, args.ops)
        replicated = bench_replicated(
            os.path.join(root, "r"), args.threads, args.ops
        )

    speedup = (
        replicated["fanout_read_rps"] / single["read_rps"]
        if single["read_rps"] else 0.0
    )
    payload = {
        "schema": "repro.bench.server/v1",
        "meta": {
            "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
            "python": platform.python_version(),
            "platform": sys.platform,
            "ops_per_thread": args.ops,
            "threads": args.threads,
        },
        "single_node": single,
        "replicated": replicated,
        "read_fanout_speedup": round(speedup, 3),
    }
    with open(args.json, "w", encoding="utf-8") as fp:
        json.dump(payload, fp, indent=2, sort_keys=True)
        fp.write("\n")
    print(
        f"server-bench: single read {single['read_rps']} rps, "
        f"write {single['write_rps']} rps; "
        f"2-replica fan-out {replicated['fanout_read_rps']} rps "
        f"({speedup:.2f}x) -> wrote {args.json}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
