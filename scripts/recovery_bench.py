#!/usr/bin/env python
"""Disaster-recovery benchmark → ``BENCH_recovery.json`` (``make bench``).

Quantifies what the recovery machinery costs and how fast it moves:

* **full backup**: MB/s for the fsck-verified base copy of a live image,
  taken under a read transaction on a running daemon;
* **incremental backup**: latency of seal-live-tail + segment sync — the
  steady-state cadence cost of continuous archiving;
* **restore**: archived ChangeRecords replayed per second onto the base
  copy (the recovery-time-objective driver);
* **scrub**: committed objects and pages verified per second by the
  background integrity scrub at an unthrottled budget.

The artifact shares the ``BENCH_server.json`` envelope style (schema +
meta + results) so CI uploads it alongside the other benchmarks.

Usage: python scripts/recovery_bench.py [--keys N] [--rounds N] [--json OUT]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.server import ReproServer, ServerConfig, connect  # noqa: E402
from repro.server.repair import scrub_heap  # noqa: E402
from repro.store.heap import ObjectHeap  # noqa: E402
from repro.store.recovery import (  # noqa: E402
    full_backup,
    incremental_backup,
    restore_image,
)

BLOB = "x" * 240


def _write_keys(port: int, prefix: str, count: int) -> None:
    with connect(port) as db:
        for i in range(count):
            db.set(f"{prefix}{i}", {"i": i, "blob": BLOB})


def bench_recovery(root: str, keys: int, rounds: int) -> dict:
    image = os.path.join(root, "bench.tyc")
    dest = os.path.join(root, "backup")
    server = ReproServer(
        image,
        ServerConfig(
            workers=2, queue_size=64, pgo_interval=None, history_interval=None,
            replicate=True, node_id="bench",
        ),
    )
    server.start()
    try:
        _write_keys(server.port, "seed", keys)
        kwargs = {
            "txns": server.txns,
            "log": server.replication.log,
            "archiver": server.archiver,
        }

        start = time.perf_counter()
        full = full_backup(image, dest, **kwargs)
        full_s = time.perf_counter() - start
        base_bytes = os.path.getsize(os.path.join(dest, "base.tyc"))

        incr_s = []
        for r in range(rounds):
            _write_keys(server.port, f"r{r}-", keys // 4)
            start = time.perf_counter()
            incremental_backup(image, dest, **kwargs)
            incr_s.append(time.perf_counter() - start)

        out = os.path.join(root, "restored.tyc")
        start = time.perf_counter()
        restored = restore_image(dest, out)
        restore_s = time.perf_counter() - start

        heap = ObjectHeap(out)
        try:
            start = time.perf_counter()
            report = scrub_heap(heap)
            scrub_s = time.perf_counter() - start
        finally:
            heap.close()
        if not report.clean:
            raise RuntimeError(f"scrub of the restored image found rot: {report}")

        records = restored["records_applied"]
        return {
            "keys": keys,
            "rounds": rounds,
            "full_backup": {
                "seconds": round(full_s, 4),
                "base_bytes": base_bytes,
                "mb_per_s": round(base_bytes / full_s / 1e6, 2) if full_s else 0.0,
                "base_version": full["base_version"],
            },
            "incremental_backup": {
                "rounds": rounds,
                "mean_seconds": round(sum(incr_s) / len(incr_s), 4),
                "max_seconds": round(max(incr_s), 4),
            },
            "restore": {
                "seconds": round(restore_s, 4),
                "records_applied": records,
                "records_per_s": round(records / restore_s, 1) if restore_s else 0.0,
                "restored_version": restored["restored_version"],
            },
            "scrub": {
                "seconds": round(scrub_s, 4),
                "oids": report.oids_checked,
                "pages": report.pages_read,
                "oids_per_s": (
                    round(report.oids_checked / scrub_s, 1) if scrub_s else 0.0
                ),
                "pages_per_s": (
                    round(report.pages_read / scrub_s, 1) if scrub_s else 0.0
                ),
            },
        }
    finally:
        server.stop()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--keys", type=int, default=200, help="seed keys")
    parser.add_argument(
        "--rounds", type=int, default=3, help="incremental backup rounds"
    )
    parser.add_argument(
        "--json", metavar="OUT", default="BENCH_recovery.json",
        help="artifact path (default: BENCH_recovery.json)",
    )
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory(prefix="recovery-bench-") as root:
        results = bench_recovery(root, args.keys, args.rounds)

    payload = {
        "schema": "repro.bench.recovery/v1",
        "meta": {
            "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
            "python": platform.python_version(),
            "platform": sys.platform,
        },
        "results": results,
    }
    with open(args.json, "w", encoding="utf-8") as fp:
        json.dump(payload, fp, indent=2, sort_keys=True)
        fp.write("\n")
    print(
        f"recovery-bench: full backup {results['full_backup']['mb_per_s']} MB/s; "
        f"incremental {results['incremental_backup']['mean_seconds']}s mean; "
        f"restore {results['restore']['records_per_s']} records/s; "
        f"scrub {results['scrub']['oids_per_s']} oids/s "
        f"-> wrote {args.json}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
