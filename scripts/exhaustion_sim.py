#!/usr/bin/env python
"""CI driver for the resource-exhaustion chaos sweep (``make exhaustion-sim``).

Runs :func:`repro.store.exhaustsim.run_sweep` — live daemons over
fault-planned images, with ENOSPC/EDQUOT/EIO write and fsync failures
injected one-shot at successive I/O ops and as persistent outages, plus
the memory-ceiling and open-loop-overload scenarios — and exits nonzero
if any scenario violated an invariant:

* the daemon never dies (ping answers throughout, degraded or not),
* reads keep succeeding while the disk is gone (degraded = read-only,
  not down),
* degraded mode is entered on the failure and exited by the recovery
  probe once the fault clears — no restart,
* the image passes fsck and no acknowledged write is lost (and no
  rolled-back write resurrected).

``--negative-control`` runs the sweep's detector check with degraded
mode disabled (``unsafe_no_degraded``): the torn-table resurrection MUST
be detected (exit nonzero), which CI asserts by inverting the invocation.

Usage: python scripts/exhaustion_sim.py [--quick] [--negative-control]
                                        [--json OUT] [--verbose]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.store.exhaustsim import run_sweep  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="reduced fault grid for local iteration and CI",
    )
    parser.add_argument(
        "--negative-control", action="store_true",
        help="run with degraded mode disabled; MUST exit nonzero",
    )
    parser.add_argument("--json", metavar="OUT", help="write the report as JSON")
    parser.add_argument(
        "--verbose", action="store_true", help="print every scenario result"
    )
    args = parser.parse_args(argv)

    started = time.monotonic()

    def progress(done, total, result):
        if args.verbose or not result.ok:
            mark = "ok  " if result.ok else "FAIL"
            print(
                f"  [{done:3d}/{total}] {mark} {result.name} "
                f"({result.elapsed_s:.2f}s)"
                + ("" if result.ok else f" — {result.detail}")
            )
        elif done % 10 == 0:
            print(f"  [{done:3d}/{total}] ...")

    with tempfile.TemporaryDirectory(prefix="exhaustion-sim-") as workdir:
        report = run_sweep(
            workdir,
            quick=args.quick,
            negative_control=args.negative_control,
            progress=progress,
        )
    report["duration_s"] = round(time.monotonic() - started, 2)
    report["mode"] = (
        "negative-control" if args.negative_control
        else ("quick" if args.quick else "full")
    )

    print(
        f"exhaustion-sim [{report['mode']}]: {report['scenarios']} scenarios "
        f"in {report['duration_s']}s -> "
        + ("OK" if not report["failed"] else f"{report['failed']} FAILURES")
    )
    for failure in report["failures"]:
        print(f"  FAIL {failure['name']}: {failure['detail']}")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fp:
            json.dump(report, fp, indent=2, sort_keys=True)
            fp.write("\n")
        print(f"wrote {args.json}")
    return 0 if not report["failed"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
