#!/usr/bin/env python
"""CI driver for the replication chaos sweep (``make replication-sim``).

Runs :func:`repro.server.netchaos.run_sweep` — a few hundred scenarios
combining link faults (partitions, delays, truncated frames, connection
resets) with kill/restart of every node in both roles and sync-replicated
failover — and exits nonzero if any scenario violated an invariant:

* no committed-*acknowledged* write lost,
* all live nodes converge to the primary's fsck-clean state,
* exactly one live primary, holding the highest term.

``--negative-control`` runs the unfenced acked-write-loss scenario
instead; it MUST fail (exit nonzero), which CI asserts by inverting the
invocation — proving the detector still detects.

Usage: python scripts/replication_sim.py [--quick] [--negative-control]
                                         [--json OUT] [--verbose]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.server.netchaos import run_sweep  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="reduced step grid (~40 scenarios) for local iteration",
    )
    parser.add_argument(
        "--negative-control", action="store_true",
        help="run the unfenced loss scenario; MUST exit nonzero",
    )
    parser.add_argument("--json", metavar="OUT", help="write the report as JSON")
    parser.add_argument(
        "--verbose", action="store_true", help="print every scenario result"
    )
    args = parser.parse_args(argv)

    started = time.monotonic()

    def progress(done, total, result):
        if args.verbose or not result.ok:
            mark = "ok  " if result.ok else "FAIL"
            print(
                f"  [{done:3d}/{total}] {mark} {result.name} "
                f"({result.elapsed_s:.2f}s)"
                + ("" if result.ok else f" — {result.detail}")
            )
        elif done % 25 == 0:
            print(f"  [{done:3d}/{total}] ...")

    with tempfile.TemporaryDirectory(prefix="replication-sim-") as workdir:
        report = run_sweep(
            workdir,
            quick=args.quick,
            negative_control=args.negative_control,
            progress=progress,
        )
    report["duration_s"] = round(time.monotonic() - started, 2)
    report["mode"] = (
        "negative-control" if args.negative_control
        else ("quick" if args.quick else "full")
    )

    print(
        f"replication-sim [{report['mode']}]: {report['scenarios']} scenarios "
        f"in {report['duration_s']}s -> "
        + ("OK" if not report["failed"] else f"{report['failed']} FAILURES")
    )
    for failure in report["failures"]:
        print(f"  FAIL {failure['name']}: {failure['detail']}")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fp:
            json.dump(report, fp, indent=2, sort_keys=True)
            fp.write("\n")
        print(f"wrote {args.json}")
    return 0 if not report["failed"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
