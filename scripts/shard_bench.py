#!/usr/bin/env python
"""Sharding benchmark → ``BENCH_shard.json`` (``make bench``).

Measures, over the real wire path (loopback TCP, JSON frames):

* **write throughput vs shard count** — single-root sets of ring-spread
  roots through a ring-aware :class:`ClusterClient` against 1-, 2- and
  4-shard deployments (each shard a standalone group, no replicas — the
  point is the horizontal axis, not the replication tax, which
  ``BENCH_server.json`` already covers);
* **cross-shard mset latency** — the 2PC premium over a single-shard
  atomic mset of the same width;
* **scatter-gather latency** — a full-keyspace ``scatter`` (union of
  values) and a ``merge=sum`` fold against each deployment, versus the
  same query answered by one single-node daemon holding the whole
  keyspace.

The artifact shares the ``BENCH_vm.json`` envelope style (schema + meta
+ results) so CI uploads it alongside the other benchmarks.

Usage: python scripts/shard_bench.py [--ops N] [--threads N] [--roots N]
                                     [--json OUT]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import statistics
import sys
import tempfile
import threading
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.server import ReproServer, ServerConfig, connect  # noqa: E402
from repro.server.client import ClusterClient, RetryPolicy  # noqa: E402

SUM_MODULE = """
module benchsum export fold
let fold(v: Array(Int)): Int =
  var s := 0 in var i := 0 in
  begin while i < size(v) do begin s := s + v[i]; i := i + 1 end end; s end
end"""


class Deployment:
    """N standalone shard daemons + one coordinator (N>1), or one plain
    daemon (N=1) — the same client-visible surface either way."""

    def __init__(self, root: str, shards: int):
        os.makedirs(root, exist_ok=True)
        self.shards = shards
        self.servers: list[ReproServer] = []
        base = dict(workers=4, queue_size=128, pgo_interval=None)
        if shards == 1:
            server = ReproServer(
                os.path.join(root, "single.tyc"),
                ServerConfig(node_id="single", **base),
            )
            server.start()
            self.servers.append(server)
            self.coordinator = server
            return
        groups = []
        for sid in range(shards):
            server = ReproServer(
                os.path.join(root, f"shard{sid}.tyc"),
                ServerConfig(node_id=f"shard{sid}", replicate=True, **base),
            )
            server.start()
            self.servers.append(server)
            groups.append([("127.0.0.1", server.port)])
        self.coordinator = ReproServer(
            os.path.join(root, "coordinator.tyc"),
            ServerConfig(
                node_id="coordinator", coordinator=True, shards=groups, **base
            ),
        )
        self.coordinator.start()
        self.servers.append(self.coordinator)
        # wait for boot recovery so 2PC msets are admitted
        deadline = time.monotonic() + 20
        with connect(self.coordinator.port) as db:
            while not db.topology().get("recovered", True):
                if time.monotonic() > deadline:
                    raise RuntimeError("coordinator never recovered")
                time.sleep(0.05)

    def client(self) -> ClusterClient:
        client = ClusterClient(
            [("127.0.0.1", self.coordinator.port)], retry=RetryPolicy()
        )
        if self.shards > 1:
            client.discover_topology()
        return client

    def teardown(self) -> None:
        for server in reversed(self.servers):
            try:
                server.stop()
            except Exception:
                pass


def _drive(threads: int, ops: int, make_client, op) -> float:
    clients = [make_client() for _ in range(threads)]
    barrier = threading.Barrier(threads + 1)
    errors: list[Exception] = []

    def worker(client, wid):
        try:
            barrier.wait()
            for i in range(ops):
                op(client, wid, i)
        except Exception as exc:  # pragma: no cover - surfaced below
            errors.append(exc)

    workers = [
        threading.Thread(target=worker, args=(c, wid))
        for wid, c in enumerate(clients)
    ]
    for t in workers:
        t.start()
    barrier.wait()
    started = time.perf_counter()
    for t in workers:
        t.join()
    elapsed = time.perf_counter() - started
    for client in clients:
        client.close()
    if errors:
        raise errors[0]
    return (threads * ops) / elapsed if elapsed > 0 else 0.0


def _latency_ms(repeats: int, op) -> dict:
    samples = []
    for _ in range(repeats):
        started = time.perf_counter()
        op()
        samples.append((time.perf_counter() - started) * 1000)
    samples.sort()
    return {
        "p50_ms": round(statistics.median(samples), 3),
        "p95_ms": round(samples[int(0.95 * (len(samples) - 1))], 3),
    }


def bench_deployment(root: str, shards: int, threads: int, ops: int,
                     roots: int) -> dict:
    dep = Deployment(root, shards)
    try:
        out: dict = {"shards": shards}
        # write throughput: ring-spread roots, each thread its own slice
        out["write_rps"] = round(
            _drive(
                threads, ops, dep.client,
                lambda c, wid, i: c.set(f"k{wid}x{i % 64}", i),
            ),
            1,
        )
        # seed a keyspace for the scatter comparison + the sum fold
        with connect(dep.coordinator.port, timeout=60.0) as db:
            db.run(SUM_MODULE)
            for base in range(0, roots, 32):
                db.mset({
                    f"v{i}": i for i in range(base, min(base + 32, roots))
                })
        client = dep.client()
        try:
            if shards > 1:
                def values_query():
                    return client.scatter(prefix="v")

                def sum_query():
                    return client.scatter(
                        prefix="v", module="benchsum", function="fold",
                        merge="sum",
                    )["value"]
            else:
                # the single-node oracle answers the same question with a
                # local prefix query — no coordinator in the path
                def values_query():
                    return client.op_replica("query", prefix="v")

                def sum_query():
                    return client.op_replica(
                        "query", prefix="v", module="benchsum", function="fold"
                    )["value"]

            out["scatter_values"] = _latency_ms(20, values_query)
            out["scatter_sum"] = _latency_ms(20, sum_query)
            expect = sum(range(roots))
            got = sum_query()
            if got != expect:
                raise RuntimeError(f"scatter sum {got} != {expect}")
        finally:
            client.close()
        # 2PC premium: wide msets through the coordinator
        if shards > 1:
            with connect(dep.coordinator.port, timeout=60.0) as db:
                out["mset_cross_shard"] = _latency_ms(
                    20,
                    lambda: db.mset({f"m{i}": i for i in range(8)}),
                )
        else:
            with connect(dep.coordinator.port, timeout=60.0) as db:
                out["mset_single"] = _latency_ms(
                    20,
                    lambda: db.mset({f"m{i}": i for i in range(8)}),
                )
        return out
    finally:
        dep.teardown()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--ops", type=int, default=200, help="ops per thread")
    parser.add_argument("--threads", type=int, default=4)
    parser.add_argument(
        "--roots", type=int, default=256, help="keyspace size for scatter"
    )
    parser.add_argument(
        "--json", metavar="OUT", default="BENCH_shard.json",
        help="artifact path (default: BENCH_shard.json)",
    )
    args = parser.parse_args(argv)

    results = []
    with tempfile.TemporaryDirectory(prefix="shard-bench-") as root:
        for shards in (1, 2, 4):
            results.append(
                bench_deployment(
                    os.path.join(root, f"n{shards}"), shards,
                    args.threads, args.ops, args.roots,
                )
            )

    single = results[0]
    scaling = {
        str(r["shards"]): round(r["write_rps"] / single["write_rps"], 3)
        for r in results
        if single["write_rps"]
    }
    payload = {
        "schema": "repro.bench.shard/v1",
        "meta": {
            "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
            "python": platform.python_version(),
            "platform": sys.platform,
            "ops_per_thread": args.ops,
            "threads": args.threads,
            "scatter_roots": args.roots,
        },
        "deployments": results,
        "write_scaling_vs_single": scaling,
    }
    with open(args.json, "w", encoding="utf-8") as fp:
        json.dump(payload, fp, indent=2, sort_keys=True)
        fp.write("\n")
    line = ", ".join(
        f"{r['shards']}-shard {r['write_rps']} rps" for r in results
    )
    print(f"shard-bench: {line}; scaling {scaling} -> wrote {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
