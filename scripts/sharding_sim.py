#!/usr/bin/env python
"""CI driver for the sharded chaos sweep (``make sharding-sim``).

Runs :func:`repro.server.shardchaos.run_sweep` — cross-shard 2PC
workloads under coordinator↔shard partitions, shard-replication faults,
shard-primary failover and coordinator crashes at every 2PC protocol
point — and exits nonzero if any scenario violated an invariant:

* no *acknowledged* cross-shard batch lost (every root readable with the
  acked value on its owning shard group),
* every attempted batch all-or-nothing — no half-applied cross-shard
  write survives recovery,
* no in-doubt residue (staging or decision records) once settled, and
  each shard group upholds the replication invariants (single primary,
  convergence, clean fsck).

``--negative-control`` disables the decision-record fsync and crashes
the coordinator between phase-two deliveries; the half-applied batch
this produces MUST fail the sweep (exit nonzero), which CI asserts by
inverting the invocation — proving the torn-write detector detects.

Usage: python scripts/sharding_sim.py [--quick] [--negative-control]
                                      [--json OUT] [--verbose]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.server.shardchaos import run_sweep  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="reduced step grid (~10 scenarios) for local iteration",
    )
    parser.add_argument(
        "--negative-control", action="store_true",
        help="run the torn-write scenario; MUST exit nonzero",
    )
    parser.add_argument("--json", metavar="OUT", help="write the report as JSON")
    parser.add_argument(
        "--verbose", action="store_true", help="print every scenario result"
    )
    args = parser.parse_args(argv)

    started = time.monotonic()

    def progress(done, total, result):
        if args.verbose or not result.ok:
            mark = "ok  " if result.ok else "FAIL"
            print(
                f"  [{done:3d}/{total}] {mark} {result.name} "
                f"({result.elapsed_s:.2f}s)"
                + ("" if result.ok else f" — {result.detail}")
            )
        else:
            print(f"  [{done:3d}/{total}] ok   {result.name}")

    with tempfile.TemporaryDirectory(prefix="sharding-sim-") as workdir:
        report = run_sweep(
            workdir,
            quick=args.quick,
            negative_control=args.negative_control,
            progress=progress,
        )
    report["duration_s"] = round(time.monotonic() - started, 2)
    report["mode"] = (
        "negative-control" if args.negative_control
        else ("quick" if args.quick else "full")
    )

    print(
        f"sharding-sim [{report['mode']}]: {report['scenarios']} scenarios "
        f"in {report['duration_s']}s -> "
        + ("OK" if not report["failed"] else f"{report['failed']} FAILURES")
    )
    for failure in report["failures"]:
        print(f"  FAIL {failure['name']}: {failure['detail']}")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fp:
            json.dump(report, fp, indent=2, sort_keys=True)
            fp.write("\n")
        print(f"wrote {args.json}")
    return 0 if not report["failed"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
