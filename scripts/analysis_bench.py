#!/usr/bin/env python
"""Benchmark the whole-image analysis layer → ``BENCH_analysis.json``.

Measures the costs the audit/fact-cache design trades against each other:

* cold audit — verify + abstractly interpret every stored function of a
  representative image (user modules over the persisted stdlib);
* warm audit — the same image again with all facts valid: the advertised
  steady-state cost of ``repro audit`` in CI;
* incremental audit — after redefining one function: only the dirty slice
  of the call graph is recomputed;
* fusion certification — certifying the hottest opcode pairs out of a
  real Stanford profile.

The artifact follows the ``BENCH_vm.json``/``BENCH_opt.json`` envelope so
the analysis layer's performance trajectory is tracked across PRs too.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
import time

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(ROOT, "src"))

from repro.analysis.audit import audit_image  # noqa: E402
from repro.analysis.fusion import certify_profile  # noqa: E402
from repro.bench.stanford import PROGRAMS  # noqa: E402
from repro.lang import TycoonSystem  # noqa: E402
from repro.obs import profile_call  # noqa: E402
from repro.store.heap import ObjectHeap  # noqa: E402

SRC = """
module app
export fact deep main
let add3(a: Int, b: Int, c: Int): Int = a + b + c
let deep(x: Int): Int = add3(x, x, x)
let fact(n: Int): Int = if n < 2 then 1 else n * fact(n - 1) end
let main(): Int = fact(12) + deep(7)
end
"""

SRC_V2 = SRC.replace("fact(12)", "fact(11)")


def _build(path: str, source: str = SRC) -> None:
    system = TycoonSystem(heap=ObjectHeap(path))
    system.compile(source)
    system.persist("app")
    system.heap.commit()
    system.heap.close()


def _audit_timing(image: str) -> dict:
    cold = audit_image(image)
    warm = audit_image(image)
    _build(image, SRC_V2)  # app.main's body (and PTML hash) moves
    incremental = audit_image(image)
    return {
        "functions": cold.functions,
        "modules": cold.modules,
        "cold": {"wall_s": round(cold.wall_s, 6), "analyzed": cold.analyzed},
        "warm": {
            "wall_s": round(warm.wall_s, 6),
            "analyzed": warm.analyzed,
            "reused": warm.reused,
        },
        "incremental": {
            "wall_s": round(incremental.wall_s, 6),
            "analyzed": incremental.analyzed,
            "reused": incremental.reused,
            "pruned": list(incremental.pruned),
        },
    }


def _fusion_timing(program: str = "fib") -> dict:
    spec = PROGRAMS[program]
    system = TycoonSystem()
    system.compile(spec.source)
    _, profiler = profile_call(system, program, "run", [spec.test_n])
    start = time.perf_counter()
    report = certify_profile(profiler, top=16)
    wall = time.perf_counter() - start
    return {
        "program": program,
        "profiled_pairs": len(profiler.pairs),
        "wall_s": round(wall, 6),
        "certified": [
            {"pair": [c.first, c.second], "count": c.count}
            for c in report.certified
        ],
        "rejected": len(report.rejected),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--json", default="BENCH_analysis.json")
    args = parser.parse_args(argv)

    image = os.path.join(tempfile.mkdtemp(prefix="analysis-bench-"), "bench.tyc")
    _build(image)

    payload = {
        "schema": "repro.bench.analysis/v1",
        "meta": {
            "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
            "python": platform.python_version(),
            "platform": sys.platform,
        },
        "audit": _audit_timing(image),
        "fusion": _fusion_timing(),
    }
    with open(args.json, "w", encoding="utf-8") as fp:
        json.dump(payload, fp, indent=2, sort_keys=True)
        fp.write("\n")

    audit = payload["audit"]
    print(
        f"audit over {audit['functions']} function(s): "
        f"cold {audit['cold']['wall_s'] * 1000:.1f} ms, "
        f"warm {audit['warm']['wall_s'] * 1000:.1f} ms "
        f"({audit['warm']['reused']} fact(s) reused), "
        f"incremental {audit['incremental']['wall_s'] * 1000:.1f} ms "
        f"({audit['incremental']['analyzed']} recomputed)"
    )
    print(
        f"fusion: {len(payload['fusion']['certified'])} certified pair(s) "
        f"out of {payload['fusion']['profiled_pairs']} profiled"
    )
    print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
