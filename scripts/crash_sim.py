#!/usr/bin/env python
"""CI driver for the exhaustive crash-point harness (``make crash-sim``).

Runs :func:`repro.store.crashsim.run_crash_sim` — a simulated crash at
every successive I/O operation of a multi-commit workload, in all four
failure models — and exits nonzero if any scenario reopened to anything
but the pre- or post-commit state (or failed its fsck).  Writes the full
JSON report for artifact upload.

``--negative-control`` swaps in a deliberately non-deterministic workload
step, so every replayed scenario mismatches its recorded expectation: the
run MUST exit nonzero, which CI asserts by inverting the invocation —
proving scenario failures actually propagate to the exit code.

Usage: python scripts/crash_sim.py [--page-size N] [--modes a,b]
                                   [--no-fsck] [--json OUT]
                                   [--negative-control]
"""

from __future__ import annotations

import argparse
import itertools
import json
import os
import sys
import tempfile

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.store.crashsim import MODES, default_workload, run_crash_sim  # noqa: E402


def _negative_control_workload():
    """The default workload plus one run-varying step.

    The counting run records one value; every scenario replay stores a
    different one, so the reopened state can never match the recorded
    pre- or post-commit expectation and the comparator must flag it.
    """
    ticket = itertools.count(1)

    def nondeterministic(heap, state):
        heap.set_root("negative", heap.store(("run", next(ticket))))

    return [*default_workload(), nondeterministic]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--page-size", type=int, default=256)
    parser.add_argument(
        "--modes", default=",".join(MODES), help="comma-separated failure models"
    )
    parser.add_argument(
        "--no-fsck", action="store_true", help="skip the per-scenario fsck pass"
    )
    parser.add_argument("--json", metavar="OUT", help="write the report as JSON")
    parser.add_argument(
        "--negative-control", action="store_true",
        help="sabotage the workload determinism; MUST exit nonzero",
    )
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory(prefix="crash-sim-") as workdir:
        report = run_crash_sim(
            workdir,
            page_size=args.page_size,
            modes=tuple(m for m in args.modes.split(",") if m),
            workload=(
                _negative_control_workload() if args.negative_control else None
            ),
            fsck=not args.no_fsck,
        )
    summary = report.as_dict()
    print(
        f"crash-sim: {summary['scenarios']} scenarios "
        f"({summary['io_ops_per_run']} crash points x {len(summary['modes'])} modes, "
        f"{summary['commits']} commits, page_size={summary['page_size']}) "
        f"in {summary['duration_s']}s -> "
        + ("OK" if report.ok else f"{len(report.failures)} FAILURES")
    )
    for failure in report.failures:
        print(f"  FAIL {failure['mode']} @ op {failure['crash_at']}: {failure['error']}")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fp:
            json.dump(summary, fp, indent=2, sort_keys=True)
            fp.write("\n")
        print(f"wrote {args.json}")
    return 0 if report.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
