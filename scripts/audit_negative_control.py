#!/usr/bin/env python
"""Negative control for ``python -m repro audit`` (CI runs this inverted).

Builds a fresh image, persists a known-good module, then flips one bit of
one stored instruction's opcode — exactly the class of silent bytecode
corruption the whole-image audit exists to catch (the physical layer is
fine, so ``fsck`` stays green; only semantic verification can see it).
The script then runs the real CLI audit against the tampered image and
exits 0 **only if the audit failed** — a green audit on corrupt code
turns ``make audit`` (and CI) red.
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(ROOT, "src"))

from repro.cli import main as repro_main  # noqa: E402
from repro.lang import TycoonSystem  # noqa: E402
from repro.store.heap import ObjectHeap  # noqa: E402

SRC = """
module ctrl
export fact main
let fact(n: Int): Int = if n < 2 then 1 else n * fact(n - 1) end
let main(): Int = fact(12)
end
"""


def build_image(path: str) -> None:
    system = TycoonSystem(heap=ObjectHeap(path))
    system.compile(SRC)
    system.persist("ctrl")
    system.heap.commit()
    system.heap.close()


def flip_one_bit(path: str) -> str:
    """Flip the low bit of the last opcode byte of ctrl.fact's first instr."""
    heap = ObjectHeap(path)
    oid = heap.root("module:ctrl")
    stored = heap.load(oid)
    flipped = None
    for fn_name, code, _externals in stored.functions:
        if fn_name == "fact":
            op, *rest = code.instrs[0]
            flipped = op[:-1] + chr(ord(op[-1]) ^ 1)
            code.instrs[0] = (flipped, *rest)
            break
    assert flipped is not None, "ctrl.fact not found in the stored module"
    heap.update(oid, stored)
    heap.commit()
    heap.close()
    return flipped


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--image", help="image path (default: a temp file, removed after)"
    )
    parser.add_argument("--json", help="write the failing audit report here")
    args = parser.parse_args(argv)

    image = args.image or os.path.join(
        tempfile.mkdtemp(prefix="audit-ctrl-"), "control.tyc"
    )
    build_image(image)

    # --no-update: the sanity pass must not install facts, or the tampered
    # pass would reuse them (the PTML hash does not move when raw bytecode
    # is flipped — cold verification is the point of this control)
    clean = repro_main(["audit", image, "--no-update"])
    if clean != 0:
        print("control error: audit of the untampered image failed", file=sys.stderr)
        return 1
    print(f"untampered image audits clean: {image}")

    flipped = flip_one_bit(image)
    print(f"flipped one opcode bit in ctrl.fact (now {flipped!r})")

    audit_argv = ["audit", image]
    if args.json:
        audit_argv += ["--json", args.json]
    tampered = repro_main(audit_argv)
    if tampered == 0:
        print(
            "NEGATIVE CONTROL FAILED: the audit passed a bit-flipped image",
            file=sys.stderr,
        )
        return 1
    print("audit correctly rejected the tampered image (nonzero exit)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
