"""Every example in examples/ must run clean (they are living documentation)."""

import os
import subprocess
import sys

import pytest

_EXAMPLES = os.path.join(os.path.dirname(__file__), "..", "examples")


def _run(script: str, *args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, os.path.join(_EXAMPLES, script), *args],
        capture_output=True,
        text=True,
        timeout=300,
    )


def test_quickstart():
    result = _run("quickstart.py")
    assert result.returncode == 0, result.stderr
    assert "sumsq(100) = 338350" in result.stdout
    assert "fewer" in result.stdout


def test_reflective_optimization():
    result = _run("reflective_optimization.py")
    assert result.returncode == 0, result.stderr
    assert "optimizedAbs(c) = 5" in result.stdout
    assert "persisted derived attributes" in result.stdout


def test_embedded_queries():
    result = _run("embedded_queries.py")
    assert result.returncode == 0, result.stderr
    assert "merge-select fired 1x" in result.stdout
    assert "index-select fired 1x" in result.stdout
    assert "trivial-exists fired 1x" in result.stdout


def test_code_shipping():
    result = _run("code_shipping.py")
    assert result.returncode == 0, result.stderr
    assert "index-select fired 1x" in result.stdout
    assert "4 instructions" in result.stdout


def test_persistent_database():
    result = _run("persistent_database.py")
    assert result.returncode == 0, result.stderr
    assert "everything survived" in result.stdout
    assert result.stdout.strip().endswith("OK")


@pytest.mark.slow
def test_stanford_suite_small_scale():
    result = _run("stanford_suite.py", "0.2")
    assert result.returncode == 0, result.stderr
    assert "geometric mean speedups" in result.stdout
