"""Shared fixtures and hypothesis strategies for the TML test suite."""

from __future__ import annotations

import pytest
from hypothesis import strategies as st

from repro.core.builder import TmlBuilder
from repro.core.names import NameSupply
from repro.core.parser import parse_term
from repro.primitives.arith import int_div, int_rem
from repro.primitives.registry import default_registry


@pytest.fixture
def registry():
    return default_registry()


@pytest.fixture
def builder():
    return TmlBuilder(NameSupply())


@pytest.fixture
def parse(registry):
    def _parse(text: str):
        return parse_term(text, prims=registry.names())

    return _parse


# ---------------------------------------------------------------------------
# hypothesis: random TL integer expressions with a Python oracle
# ---------------------------------------------------------------------------


class TLZeroDivide(Exception):
    """Oracle marker: the expression divides by zero (TL raises)."""


class TLOverflow(Exception):
    """Oracle marker: the expression overflows 64-bit integers (TL raises)."""


_INT_MIN = -(1 << 63)
_INT_MAX = (1 << 63) - 1


def _checked(value: int) -> int:
    if value < _INT_MIN or value > _INT_MAX:
        raise TLOverflow()
    return value


def _eval_node(node) -> int | bool:
    kind = node[0]
    if kind == "int":
        return node[1]
    if kind == "bin":
        _, op, left, right = node
        a, b = _eval_node(left), _eval_node(right)
        if op == "+":
            return _checked(a + b)
        if op == "-":
            return _checked(a - b)
        if op == "*":
            return _checked(a * b)
        if op == "/":
            if b == 0:
                raise TLZeroDivide()
            return _checked(int_div(a, b))
        if op == "%":
            if b == 0:
                raise TLZeroDivide()
            return int_rem(a, b)
        raise AssertionError(op)
    if kind == "cmp":
        _, op, left, right = node
        a, b = _eval_node(left), _eval_node(right)
        return {"<": a < b, ">": a > b, "<=": a <= b, ">=": a >= b, "==": a == b, "!=": a != b}[op]
    if kind == "if":
        _, cond, then, other = node
        return _eval_node(then) if _eval_node(cond) else _eval_node(other)
    if kind == "let":
        _, name, value, body = node
        return _eval_node(_substitute(body, name, _eval_node(value)))
    if kind == "var":
        raise AssertionError(f"unbound oracle variable {node[1]}")
    raise AssertionError(kind)


def _substitute(node, name, value):
    kind = node[0]
    if kind == "var":
        return ("int", value) if node[1] == name else node
    if kind == "int":
        return node
    if kind in ("bin", "cmp"):
        return (kind, node[1], _substitute(node[2], name, value), _substitute(node[3], name, value))
    if kind == "if":
        return ("if",) + tuple(_substitute(child, name, value) for child in node[1:])
    if kind == "let":
        _, inner_name, val, body = node
        new_val = _substitute(val, name, value)
        if inner_name == name:  # shadowed
            return ("let", inner_name, new_val, body)
        return ("let", inner_name, new_val, _substitute(body, name, value))
    raise AssertionError(kind)


def _render(node) -> str:
    kind = node[0]
    if kind == "int":
        value = node[1]
        return f"(0 - {-value})" if value < 0 else str(value)
    if kind == "var":
        return node[1]
    if kind in ("bin", "cmp"):
        return f"({_render(node[2])} {node[1]} {_render(node[3])})"
    if kind == "if":
        return f"(if {_render(node[1])} then {_render(node[2])} else {_render(node[3])} end)"
    if kind == "let":
        return f"(let {node[1]} = {_render(node[2])} in {_render(node[3])})"
    raise AssertionError(kind)


def _int_expr_nodes(variables: tuple[str, ...], depth: int):
    """Strategy producing oracle AST nodes for integer-valued expressions."""
    leaves = [st.builds(lambda v: ("int", v), st.integers(-50, 50))]
    if variables:
        leaves.append(st.builds(lambda n: ("var", n), st.sampled_from(variables)))
    base = st.one_of(*leaves)
    if depth <= 0:
        return base

    sub = _int_expr_nodes(variables, depth - 1)

    def bin_node(op, a, b):
        return ("bin", op, a, b)

    def cmp_node(op, a, b):
        return ("cmp", op, a, b)

    composite = st.one_of(
        base,
        st.builds(bin_node, st.sampled_from("+-*/%"), sub, sub),
        st.builds(
            lambda c, t, e: ("if", c, t, e),
            st.builds(cmp_node, st.sampled_from(["<", ">", "<=", ">=", "==", "!="]), sub, sub),
            sub,
            sub,
        ),
        st.builds(
            lambda value, body: ("let", "v0", value, body),
            sub,
            _int_expr_nodes(variables + ("v0",), depth - 1),
        ),
    )
    return composite


@st.composite
def tl_int_expression(draw, max_depth: int = 3):
    """A TL integer expression with its Python-oracle outcome.

    Returns (source text, expected) where expected is an int or the string
    ``"zeroDivide"`` when the oracle hits a division by zero.
    """
    node = draw(_int_expr_nodes((), draw(st.integers(1, max_depth))))
    try:
        expected: int | str = _eval_node(node)
    except TLZeroDivide:
        expected = "zeroDivide"
    except TLOverflow:
        expected = "overflow"
    return _render(node), expected


# random runtime values for serializer round-trips -------------------------


def runtime_values(max_leaves: int = 20):
    from repro.core.syntax import Char, Oid, UNIT
    from repro.machine.runtime import TmlArray, TmlByteArray, TmlVector

    scalars = st.one_of(
        st.integers(-(2**63), 2**63 - 1),
        st.booleans(),
        st.text(max_size=12),
        st.builds(Char, st.characters(min_codepoint=32, max_codepoint=0x2FF)),
        st.builds(Oid, st.integers(0, 2**32)),
        st.just(UNIT),
        st.none(),
    )
    return st.recursive(
        scalars,
        lambda children: st.one_of(
            st.builds(TmlArray, st.lists(children, max_size=4)),
            st.builds(TmlVector, st.lists(children, max_size=4)),
            st.builds(TmlByteArray, st.binary(max_size=8)),
            st.tuples(children, children),
            st.dictionaries(st.text(max_size=5), children, max_size=3),
        ),
        max_leaves=max_leaves,
    )
