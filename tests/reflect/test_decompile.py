"""Tests for TML reconstruction from executable code (§6 future work).

The paper's "interesting question": does the non-isomorphic reconstructed
tree still support the optimizations?  These tests answer yes — the
reconstruction is well-formed, semantically equivalent, and the optimizer
fires on it.
"""

import pytest

from repro.core.parser import parse_term
from repro.core.syntax import Abs
from repro.core.wellformed import check
from repro.lang import TycoonSystem
from repro.machine.codegen import compile_function
from repro.machine.runtime import UncaughtTmlException
from repro.machine.vm import VM, instantiate
from repro.primitives.registry import default_registry
from repro.reflect.decompile import decompile_code
from repro.rewrite import optimize

SOURCES = [
    # straight-line arithmetic with exception paths
    "proc(x ce cc) (+ x 1 ce cont(t) (* t 2 ce cc))",
    # branching
    "proc(x ce cc) (< x 10 cont() (cc 1) cont() (cc 0))",
    # case with else
    "proc(x ce cc) (== x 1 2 cont() (cc 10) cont() (cc 20) cont() (cc 99))",
    # arrays and unit-result stores
    """
    proc(n ce cc)
      (new n 0 cont(a)
        ([]:= a 0 7 cont(u)
          ([] a 0 cont(v) (size a cont(s) (+ v s ce cc)))))
    """,
    # a loop (fix group)
    """
    proc(n ce cc)
      (Y λ(^c0 loop ^c)
         (c cont() (loop 1 0)
            cont(i acc)
              (> i n cont() (cc acc)
                     cont() (+ acc i ce cont(a)
                               (+ i 1 ce cont(j) (loop j a))))))
    """,
    # closures (materialized continuation passed to a call)
    "proc(f ce cc) (f 3 ce cont(t) (+ t 1 ce cc))",
    # handler machinery
    """
    proc(x ce cc)
      (λ(^h) (pushHandler h cont() (raise x))
       cont(e) (+ e 100 ce cc))
    """,
    # print and char conversion
    "proc(c ce cc) (char2int c cont(i) (print i cont(u) (int2char i cont(d) (cc d))))",
]


@pytest.fixture
def registry():
    return default_registry()


def _roundtrip(source, registry):
    term = parse_term(source)
    assert isinstance(term, Abs)
    code = compile_function(term, registry)
    rebuilt = decompile_code(code)
    return term, code, rebuilt


@pytest.mark.parametrize("source", SOURCES)
def test_reconstruction_is_well_formed(source, registry):
    _, _, rebuilt = _roundtrip(source, registry)
    check(rebuilt, registry)


@pytest.mark.parametrize("source", SOURCES)
def test_reconstruction_recompiles(source, registry):
    _, _, rebuilt = _roundtrip(source, registry)
    compile_function(rebuilt, registry)  # must not raise


def _run(code, args):
    return VM().call(instantiate(code), args)


class TestSemanticEquivalence:
    def test_arithmetic(self, registry):
        _, code, rebuilt = _roundtrip(SOURCES[0], registry)
        recompiled = compile_function(rebuilt, registry)
        for x in (-3, 0, 20):
            assert _run(code, [x]).value == _run(recompiled, [x]).value

    def test_branching_and_case(self, registry):
        for source in (SOURCES[1], SOURCES[2]):
            _, code, rebuilt = _roundtrip(source, registry)
            recompiled = compile_function(rebuilt, registry)
            for x in (0, 1, 2, 15):
                assert _run(code, [x]).value == _run(recompiled, [x]).value

    def test_arrays(self, registry):
        _, code, rebuilt = _roundtrip(SOURCES[3], registry)
        recompiled = compile_function(rebuilt, registry)
        assert _run(code, [5]).value == _run(recompiled, [5]).value == 12

    def test_loop(self, registry):
        _, code, rebuilt = _roundtrip(SOURCES[4], registry)
        recompiled = compile_function(rebuilt, registry)
        assert _run(recompiled, [100]).value == 5050

    def test_handlers(self, registry):
        _, code, rebuilt = _roundtrip(SOURCES[6], registry)
        recompiled = compile_function(rebuilt, registry)
        assert _run(recompiled, [11]).value == 111

    def test_output(self, registry):
        from repro.core.syntax import Char

        _, code, rebuilt = _roundtrip(SOURCES[7], registry)
        recompiled = compile_function(rebuilt, registry)
        original = _run(code, [Char("A")])
        again = _run(recompiled, [Char("A")])
        assert original.value == again.value
        assert original.output == again.output == ["65"]


def test_not_necessarily_isomorphic(registry):
    """The paper's caveat: reconstruction duplicates shared blocks."""
    source = """
    proc(x ce cc)
      (< x 0 cont() (+ x 1 ce cc)
             cont() (+ x 2 ce cc))
    """
    term, code, rebuilt = _roundtrip(source, registry)
    # equivalence holds even when the trees differ
    recompiled = compile_function(rebuilt, registry)
    for x in (-5, 5):
        assert _run(code, [x]).value == _run(recompiled, [x]).value


def test_optimizer_applies_to_reconstruction(registry):
    """The paper's 'interesting question': reconstructed TML optimizes."""
    source = "proc(ce cc) (+ 1 2 ce cont(t) (* t t ce cc))"
    _, code, rebuilt = _roundtrip(source, registry)
    result = optimize(rebuilt, registry)
    assert result.stats.count("fold") >= 2
    recompiled = compile_function(result.term, registry)
    assert _run(recompiled, []).value == 9


def test_decompiled_tl_function_runs(registry):
    """End to end: decompile a compiled TL function and re-link it."""
    system = TycoonSystem()
    system.compile(
        """
        module d export f
        let f(n: Int): Int =
          var acc := 1 in
          begin
            for i = 1 upto n do acc := acc * i end;
            acc
          end
        end
        """
    )
    closure = system.closure("d", "f")
    rebuilt = decompile_code(closure.code)
    check(rebuilt, system.registry)
    recompiled = compile_function(rebuilt, system.registry)
    # rebind the original free values (library procedures) positionally
    bindings = dict(zip(closure.code.free_names, closure.free))
    new_closure = instantiate(recompiled, bindings)
    assert system.vm().call(new_closure, [6]).value == 720


def test_exceptions_preserved(registry):
    source = "proc(a b ce cc) (/ a b ce cc)"
    _, code, rebuilt = _roundtrip(source, registry)
    recompiled = compile_function(rebuilt, registry)
    assert _run(recompiled, [7, 2]).value == 3
    with pytest.raises(UncaughtTmlException):
        _run(recompiled, [1, 0])
