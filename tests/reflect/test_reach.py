"""Tests for transitive reachability collection (repro.reflect.reach)."""

import pytest

from repro.core.syntax import Abs, Lit, Oid
from repro.lang import CompileOptions, TycoonSystem
from repro.machine.runtime import TmlArray
from repro.reflect.reach import ReflectError, collect_entities, term_of_closure
from repro.store.heap import ObjectHeap


@pytest.fixture
def system():
    return TycoonSystem()


def test_term_of_closure_roundtrips(system):
    system.compile("module m export f let f(x: Int): Int = x + 1 end")
    closure = system.closure("m", "f")
    term = term_of_closure(closure, system.heap)
    assert isinstance(term, Abs)
    assert len(term.params) == 3  # x, ce, cc


def test_missing_ptml_rejected():
    system = TycoonSystem(options=CompileOptions(attach_ptml=False))
    system.compile("module m export f let f(x: Int): Int = x end")
    with pytest.raises(ReflectError, match="no PTML"):
        term_of_closure(system.closure("m", "f"), system.heap)


def test_collects_library_entities(system):
    system.compile("module m export f let f(x: Int): Int = x * 2 + 1 end")
    graph = collect_entities(system.closure("m", "f"), system.heap)
    names = {e.closure.code.name for e in graph.entities.values()}
    assert "m.f" in names
    assert "int.mul" in names and "int.add" in names


def test_collects_sibling_recursion(system):
    system.compile(
        """
        module m export f
        let f(n: Int): Int = if n == 0 then 0 else g(n - 1) end
        let g(n: Int): Int = if n == 0 then 1 else f(n - 1) end
        end
        """
    )
    graph = collect_entities(system.closure("m", "f"), system.heap)
    names = {e.closure.code.name for e in graph.entities.values()}
    assert {"m.f", "m.g"} <= names

    # the dependency graph has the f <-> g cycle
    dep = graph.dependency_graph()
    import networkx as nx

    cycles = [scc for scc in nx.strongly_connected_components(dep) if len(scc) > 1]
    assert cycles


def test_simple_values_become_literals(system):
    # a link-time binding to a simple value (module-local constants are
    # already inlined by the front end; imported ones bind at link time)
    system.register_data_module("cfg", {"k": 7})
    system.compile(
        """
        module m export f
        import cfg
        let f(x: Int): Int = x + cfg.k
        end
        """
    )
    graph = collect_entities(system.closure("m", "f"), system.heap)
    target = graph.entities[graph.target_key]
    lit_bindings = [b for b in target.bindings.values() if b.kind == "lit"]
    assert any(b.value == 7 for b in lit_bindings)


def test_store_objects_become_oid_literals(tmp_path):
    heap = ObjectHeap(str(tmp_path / "h.tyc"))
    system = TycoonSystem(heap=heap)
    data = TmlArray([1, 2, 3])
    heap.store(data)
    system.register_data_module("db", {"data": data})
    system.compile(
        """
        module m export f
        import db
        let f(i: Int): Int = db.data[i]
        end
        """
    )
    graph = collect_entities(system.closure("m", "f"), system.heap)
    target = graph.entities[graph.target_key]
    lit_values = [
        b.value for b in target.bindings.values() if b.kind == "lit"
    ]
    assert any(isinstance(v, Oid) for v in lit_values)
    heap.close()


def test_unstored_objects_become_holes(system):
    data = TmlArray([1, 2, 3])  # never stored in the heap
    system.register_data_module("db", {"data": data})
    system.compile(
        """
        module m export f
        import db
        let f(i: Int): Int = db.data[i]
        end
        """
    )
    graph = collect_entities(system.closure("m", "f"), system.heap)
    # the in-memory heap interns objects on store() only; register_data_module
    # does not store, so the relation value stays a hole
    assert graph.holes or any(
        b.kind == "lit" for e in graph.entities.values() for b in e.bindings.values()
    )


def test_entity_limit_bounds_collection(system):
    system.compile("module m export f let f(x: Int): Int = x * 2 + 1 - 3 end")
    graph = collect_entities(system.closure("m", "f"), system.heap, max_entities=2)
    assert len(graph.entities) <= 2
    assert graph.holes  # uncollected procedures degrade to holes


def test_supply_above_all_uids(system):
    system.compile("module m export f let f(x: Int): Int = x + 1 end")
    graph = collect_entities(system.closure("m", "f"), system.heap)
    from repro.core.syntax import max_uid

    top = max(max_uid(e.term) for e in graph.entities.values())
    assert graph.supply.peek() > top
