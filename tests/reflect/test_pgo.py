"""Profile-guided reflective optimization (repro.reflect.pgo).

Closes the paper's §4.1 loop: the VM profile supplies the evidence, and
``reflect.optimize`` is applied to the procedures that measurably ran hot.
"""

import pytest

from repro.bench.harness import CONFIG_NONE
from repro.bench.stanford import PROGRAMS
from repro.lang import TycoonSystem
from repro.obs.profile import VMProfiler, profile_call
from repro.reflect import optimize_hot, rank_hot

TWO_FUNCTIONS = """
module m export work idle
let idle(x: Int): Int = x
let work(n: Int): Int =
  var s := 0 in var i := 0 in
  begin while i < n do begin s := s + i * i; i := i + 1 end end; s end
end"""


def test_rank_hot_selects_measured_functions_only():
    system = TycoonSystem()
    system.compile(TWO_FUNCTIONS)
    _, profiler = profile_call(system, "m", "work", [30])
    ranking = rank_hot(system, profiler)
    names = [c.qualified for c in ranking]
    # idle never ran: no profile entry, so it is not a candidate
    assert "m.work" in names
    assert "m.idle" not in names
    assert ranking[0].invocations >= 1


def test_rank_hot_orders_by_measured_instructions():
    system = TycoonSystem()
    system.compile(TWO_FUNCTIONS)
    profiler = VMProfiler()
    _, profiler = profile_call(system, "m", "work", [30], profiler=profiler)
    _, profiler = profile_call(system, "m", "idle", [1], profiler=profiler)
    work = profiler.closures["m.work"]
    idle = profiler.closures["m.idle"]
    assert work.instructions > idle.instructions
    ranking = rank_hot(system, profiler)
    assert [c.qualified for c in ranking[:2]] == ["m.work", "m.idle"]
    # by invocation count the order may differ; the key is honored
    by_calls = rank_hot(system, profiler, key="invocations")
    assert by_calls[0].invocations == max(c.invocations for c in by_calls)
    with pytest.raises(ValueError):
        rank_hot(system, profiler, key="wallclock")


def test_optimize_hot_reoptimizes_only_the_hot_function():
    system = TycoonSystem()
    system.compile(TWO_FUNCTIONS)
    profiler = VMProfiler()
    _, profiler = profile_call(system, "m", "work", [30], profiler=profiler)
    _, profiler = profile_call(system, "m", "idle", [1], profiler=profiler)
    report = optimize_hot(system, profiler, top=1)
    assert [c.qualified for c in report.selected] == ["m.work"]
    result = report.results["m.work"]
    assert result.cost_after <= result.cost_before
    # the relinked closure is the optimized one and still computes work(n)
    relinked = system.closure("m", "work")
    assert relinked is result.closure
    assert system.vm().call(relinked, [10]).value == sum(i * i for i in range(10))


def test_optimize_hot_min_instructions_threshold():
    system = TycoonSystem()
    system.compile(TWO_FUNCTIONS)
    _, profiler = profile_call(system, "m", "work", [5])
    measured = profiler.closures["m.work"].instructions
    report = optimize_hot(system, profiler, top=1, min_instructions=measured + 1)
    assert report.selected == []
    assert report.ranking  # evidence was there, threshold filtered it


def test_optimize_hot_without_relink_keeps_binding():
    system = TycoonSystem()
    system.compile(TWO_FUNCTIONS)
    before = system.closure("m", "work")
    _, profiler = profile_call(system, "m", "work", [10])
    report = optimize_hot(system, profiler, top=1, relink=False)
    assert system.closure("m", "work") is before
    assert report.closure("m", "work") is not before


def test_pgo_beats_unoptimized_default_on_stanford_benchmark():
    """The acceptance scenario: compile a Stanford program with optimization
    off, profile it, let the profile pick the hot procedure, reflectively
    reoptimize, and measure fewer executed TAM instructions for the same
    answer."""
    program = PROGRAMS["towers"]
    n = max(1, program.bench_n // 4)
    system = TycoonSystem(options=CONFIG_NONE)
    system.compile(program.source)

    baseline, profiler = profile_call(system, "towers", "run", [n])

    report = optimize_hot(system, profiler, top=1)
    assert [c.qualified for c in report.selected] == ["towers.run"]
    assert report.selected[0].instructions > 0  # selection was evidence-based

    optimized = system.vm().call(system.closure("towers", "run"), [n])
    assert optimized.value == baseline.value
    assert optimized.instructions < baseline.instructions, (
        f"profile-guided reoptimization did not help: "
        f"{optimized.instructions} >= {baseline.instructions}"
    )


def test_pgo_emits_trace_events_when_recording():
    from repro.obs import ListRecorder, TRACER

    system = TycoonSystem()
    system.compile(TWO_FUNCTIONS)
    _, profiler = profile_call(system, "m", "work", [10])
    recorder = ListRecorder()
    with TRACER.recording(recorder):
        optimize_hot(system, profiler, top=1)
    (event,) = recorder.named("reflect.pgo")
    assert event.attrs["function"] == "m.work"
    assert event.attrs["relinked"] is True
    assert recorder.named("reflect.optimize")  # the span from optimize_closure
