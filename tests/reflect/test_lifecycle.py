"""Full Fig. 3 lifecycle test: compile → persist → reload → re-optimize → run.

Exercises the interaction between compilation, optimization and evaluation
the paper's architecture diagram shows: PTML attached at compile time, the
reflective optimizer invoked at runtime in a *fresh* session against the
persistent store, and the regenerated code linked into the running image.
"""

import pytest

from repro.lang import TycoonSystem
from repro.reflect import (
    cached_optimize,
    load_attributes,
    optimize_closure,
    optimize_result,
    record_attributes,
)
from repro.reflect.optimize import DYNAMIC_CONFIG
from repro.store.heap import ObjectHeap

SRC = """
module geo export area
let area(w: Int, h: Int): Int = w * h + w + h
end
"""


def test_fig3_lifecycle(tmp_path):
    path = str(tmp_path / "image.tyc")

    # session 1: compile, persist, commit
    heap = ObjectHeap(path)
    system = TycoonSystem(heap=heap)
    system.compile(SRC)
    system.persist("geo")
    system.commit()
    assert system.call("geo", "area", [3, 4]).value == 19
    heap.close()

    # session 2: reload from the store, reflect-optimize, execute
    heap2 = ObjectHeap(path)
    system2 = TycoonSystem(heap=heap2)
    system2.load("geo")
    slow = system2.call("geo", "area", [3, 4])
    assert slow.value == 19

    result = optimize_result(system2, "geo", "area")
    fast = system2.vm().call(result.closure, [3, 4])
    assert fast.value == 19
    assert fast.instructions < slow.instructions
    heap2.close()


def test_reoptimization_of_optimized_code(tmp_path):
    """The regenerated code carries PTML, so it can be optimized again."""
    heap = ObjectHeap(str(tmp_path / "i.tyc"))
    system = TycoonSystem(heap=heap)
    system.compile(SRC)
    first = optimize_result(system, "geo", "area")
    second = optimize_closure(
        first.closure, heap=system.heap, registry=system.registry
    )
    assert system.vm().call(second.closure, [3, 4]).value == 19
    heap.close()


class TestDerivedAttributes:
    def test_attributes_persisted(self, tmp_path):
        heap = ObjectHeap(str(tmp_path / "a.tyc"))
        system = TycoonSystem(heap=heap)
        system.compile(SRC)
        result = optimize_result(system, "geo", "area")
        attrs = record_attributes(heap, "geo.area", DYNAMIC_CONFIG, result)
        assert attrs.savings > 0

        loaded = load_attributes(heap, "geo.area", DYNAMIC_CONFIG)
        assert loaded == attrs
        heap.close()

    def test_attributes_survive_commit(self, tmp_path):
        path = str(tmp_path / "b.tyc")
        heap = ObjectHeap(path)
        system = TycoonSystem(heap=heap)
        system.compile(SRC)
        result = optimize_result(system, "geo", "area")
        record_attributes(heap, "geo.area", DYNAMIC_CONFIG, result)
        heap.commit()
        heap.close()

        heap2 = ObjectHeap(path)
        loaded = load_attributes(heap2, "geo.area", DYNAMIC_CONFIG)
        assert loaded is not None
        assert loaded.function == "geo.area"
        heap2.close()

    def test_cached_optimize_reuses_results(self, tmp_path):
        heap = ObjectHeap(str(tmp_path / "c.tyc"))
        system = TycoonSystem(heap=heap)
        system.compile(SRC)
        closure = system.closure("geo", "area")
        first = cached_optimize(heap, closure, registry=system.registry)
        second = cached_optimize(heap, closure, registry=system.registry)
        assert first is second  # session cache hit
        heap.close()

    def test_missing_attributes_is_none(self, tmp_path):
        heap = ObjectHeap(str(tmp_path / "d.tyc"))
        assert load_attributes(heap, "nope", DYNAMIC_CONFIG) is None
        heap.close()
