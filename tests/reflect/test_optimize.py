"""Tests for reflective runtime optimization (paper section 4.1)."""

import pytest

from repro.core.pretty import pretty_compact
from repro.core.syntax import PrimApp, iter_subterms
from repro.core.wellformed import check
from repro.lang import TycoonSystem
from repro.machine.runtime import UncaughtTmlException
from repro.reflect import optimize_function, optimize_result

COMPLEX_SRC = """
module complex export T new x y
type T = tuple x: Int, y: Int end
let new(a: Int, b: Int): T = tuple x = a, y = b end
let x(c: T): Int = c.x
let y(c: T): Int = c.y
end
"""

ABS_SRC = """
module app export abs
import complex
let abs(c: complex.T): Int =
  sqrt(complex.x(c) * complex.x(c) + complex.y(c) * complex.y(c))
end
"""


@pytest.fixture
def system():
    system = TycoonSystem()
    system.compile(COMPLEX_SRC)
    system.compile(ABS_SRC)
    return system


class TestPaperAbsExample:
    """Section 4.1's worked example: reflect.optimize(abs)."""

    def test_equivalence(self, system):
        point = system.call("complex", "new", [3, 4]).value
        original = system.call("app", "abs", [point])
        fast = optimize_function(system, "app", "abs")
        optimized = system.vm().call(fast, [point])
        assert original.value == optimized.value == 5

    def test_module_accessors_inlined(self, system):
        """optimizedAbs ≡ sqrt(c.x*c.x + c.y*c.y): direct field access."""
        result = optimize_result(system, "app", "abs")
        text = pretty_compact(result.term)
        # the record accessors collapsed to direct indexed loads
        assert "[]" in text
        # no calls to complex.x / complex.y remain
        assert "complex.x" not in text and "complex.y" not in text

    def test_faster_than_original(self, system):
        point = system.call("complex", "new", [3, 4]).value
        original = system.call("app", "abs", [point])
        result = optimize_result(system, "app", "abs")
        optimized = system.vm().call(result.closure, [point])
        assert optimized.instructions < original.instructions
        assert result.cost_after < result.cost_before

    def test_result_is_well_formed(self, system):
        result = optimize_result(system, "app", "abs")
        check(result.term, system.registry)

    def test_optimized_code_carries_new_ptml(self, system):
        """Re-optimization chains: the new code is itself reflectable."""
        result = optimize_result(system, "app", "abs")
        assert result.closure.code.ptml_ref is not None


class TestRecursion:
    def test_self_recursive_function(self, system):
        system.compile(
            """
            module r export fact
            let fact(n: Int): Int = if n <= 1 then 1 else n * fact(n - 1) end
            end
            """
        )
        fast = optimize_function(system, "r", "fact")
        assert system.vm().call(fast, [10]).value == 3628800

    def test_recursive_binding_uses_y(self, system):
        system.compile(
            """
            module r export fact
            let fact(n: Int): Int = if n <= 1 then 1 else n * fact(n - 1) end
            end
            """
        )
        result = optimize_result(system, "r", "fact")
        y_nodes = [
            n
            for n in iter_subterms(result.term)
            if isinstance(n, PrimApp) and n.prim == "Y"
        ]
        assert y_nodes  # the recursive group is a Y application

    def test_mutual_recursion(self, system):
        system.compile(
            """
            module r export iseven
            let iseven(n: Int): Bool = if n == 0 then true else isodd(n - 1) end
            let isodd(n: Int): Bool = if n == 0 then false else iseven(n - 1) end
            end
            """
        )
        fast = optimize_function(system, "r", "iseven")
        assert system.vm().call(fast, [100]).value is True
        assert system.vm().call(fast, [101]).value is False


class TestSemanticsPreservation:
    def test_exceptions_preserved(self, system):
        system.compile(
            """
            module e export f
            let f(x: Int): Int = 100 / x
            end
            """
        )
        fast = optimize_function(system, "e", "f")
        assert system.vm().call(fast, [4]).value == 25
        with pytest.raises(UncaughtTmlException):
            system.vm().call(fast, [0])

    def test_try_catch_preserved(self, system):
        system.compile(
            """
            module e export f
            let f(x: Int): Int = try 100 / x catch(err) -1 end
            end
            """
        )
        fast = optimize_function(system, "e", "f")
        assert system.vm().call(fast, [0]).value == -1

    def test_output_preserved(self, system):
        system.compile(
            """
            module o export f
            let f(x: Int) = begin print(x); print(x + 1); unit end
            end
            """
        )
        fast = optimize_function(system, "o", "f")
        result = system.vm().call(fast, [1])
        assert result.output == ["1", "2"]

    def test_loops_preserved(self, system):
        system.compile(
            """
            module l export f
            let f(n: Int): Int =
              var acc := 0 in
              begin
                for i = 1 upto n do acc := acc + i * i end;
                acc
              end
            end
            """
        )
        fast = optimize_function(system, "l", "f")
        assert system.vm().call(fast, [10]).value == 385


class TestDiagnostics:
    def test_entities_counted(self, system):
        result = optimize_result(system, "app", "abs")
        assert result.entities >= 4  # abs + accessors + library leaves

    def test_speedup_estimate_positive(self, system):
        result = optimize_result(system, "app", "abs")
        assert result.estimated_speedup > 1.0

    def test_stats_show_inlining(self, system):
        result = optimize_result(system, "app", "abs")
        assert result.stats.inlined_sites + result.stats.count("subst") > 0
