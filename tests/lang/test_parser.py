"""Tests for the TL parser."""

import pytest

from repro.lang import ast
from repro.lang.errors import TLSyntaxError
from repro.lang.parser import parse_expression, parse_module, parse_modules


class TestModules:
    def test_minimal_module(self):
        module = parse_module("module m export end")
        assert module.name == "m"
        assert module.exports == ()

    def test_exports_and_decls(self):
        module = parse_module(
            """
            module m export f g
            import other
            type T = tuple x: Int end
            let f(a: Int): Int = a
            let g() = 1
            let k = 5
            end
            """
        )
        assert module.exports == ("f", "g")
        assert module.imports() == ["other"]
        assert len(module.functions()) == 2

    def test_multiple_modules(self):
        modules = parse_modules("module a export end module b export end")
        assert [m.name for m in modules] == ["a", "b"]

    def test_missing_end(self):
        with pytest.raises(TLSyntaxError):
            parse_module("module m export let f() = 1")


class TestExpressions:
    def test_precedence(self):
        expr = parse_expression("1 + 2 * 3")
        assert isinstance(expr, ast.BinOp) and expr.op == "+"
        assert isinstance(expr.right, ast.BinOp) and expr.right.op == "*"

    def test_comparison_non_associative(self):
        expr = parse_expression("a + 1 < b * 2")
        assert expr.op == "<"

    def test_and_or_levels(self):
        expr = parse_expression("a or b and c")
        assert expr.op == "or"
        assert expr.right.op == "and"

    def test_unary(self):
        neg = parse_expression("-x")
        assert isinstance(neg, ast.UnOp) and neg.op == "-"
        noty = parse_expression("not x")
        assert noty.op == "not"

    def test_postfix_chain(self):
        expr = parse_expression("a.b[1](2)")
        assert isinstance(expr, ast.Call)
        assert isinstance(expr.fn, ast.Index)
        assert isinstance(expr.fn.target, ast.FieldAccess)

    def test_assignment_targets(self):
        assign = parse_expression("x := 1")
        assert isinstance(assign.target, ast.Ident)
        indexed = parse_expression("a[0] := 1")
        assert isinstance(indexed.target, ast.Index)
        with pytest.raises(TLSyntaxError):
            parse_expression("f(x) := 1")

    def test_if_elif_else(self):
        expr = parse_expression("if a then 1 elif b then 2 else 3 end")
        assert isinstance(expr, ast.If)
        assert isinstance(expr.else_branch, ast.If)
        assert isinstance(expr.else_branch.else_branch, ast.IntLit)

    def test_if_without_else(self):
        expr = parse_expression("if a then 1 end")
        assert expr.else_branch is None

    def test_begin_sequence(self):
        expr = parse_expression("begin 1; 2; 3 end")
        assert isinstance(expr, ast.Seq)
        assert len(expr.exprs) == 3

    def test_trailing_semicolon_tolerated(self):
        expr = parse_expression("begin 1; 2; end")
        assert len(expr.exprs) == 2

    def test_let_in_expression(self):
        expr = parse_expression("let x = 1 in x + 1")
        assert isinstance(expr, ast.LetIn)

    def test_let_statement_in_block(self):
        expr = parse_expression("begin let x = 1; x + 1 end")
        assert isinstance(expr, ast.LetIn)
        assert isinstance(expr.body, ast.BinOp)

    def test_var_forms(self):
        assert isinstance(parse_expression("var x := 1 in x"), ast.VarIn)
        block = parse_expression("begin var x := 1; x end")
        assert isinstance(block, ast.VarIn)

    def test_loops(self):
        loop = parse_expression("while x < 10 do x := x + 1 end")
        assert isinstance(loop, ast.While)
        forloop = parse_expression("for i = 1 upto 10 do print(i) end")
        assert isinstance(forloop, ast.ForLoop) and not forloop.downto
        down = parse_expression("for i = 10 downto 1 do print(i) end")
        assert down.downto

    def test_lambda(self):
        fn = parse_expression("fn(x, y) => x + y")
        assert isinstance(fn, ast.Lambda)
        assert len(fn.params) == 2

    def test_tuple_literal(self):
        record = parse_expression("tuple x = 1, y = 2 end")
        assert isinstance(record, ast.TupleLit)
        assert record.field_names == ("x", "y")

    def test_try_catch(self):
        expr = parse_expression("try risky() catch(e) 0 end")
        assert isinstance(expr, ast.TryCatch)
        assert expr.exc_name == "e"

    def test_raise(self):
        assert isinstance(parse_expression("raise 42"), ast.Raise)

    def test_select(self):
        expr = parse_expression(
            "select p.name from people as p : Person where p.age > 18 end"
        )
        assert isinstance(expr, ast.SelectExpr)
        assert expr.var == "p"
        assert expr.where is not None
        assert isinstance(expr.var_type, ast.NamedType)

    def test_select_without_where(self):
        expr = parse_expression("select p from people as p end")
        assert expr.where is None and expr.var_type is None

    def test_exists(self):
        expr = parse_expression("exists p : Person in people : p.age > 65")
        assert isinstance(expr, ast.ExistsExpr)
        assert isinstance(expr.pred, ast.BinOp)


class TestTypes:
    def test_record_type(self):
        module = parse_module(
            "module m export type T = tuple a: Int, b: Array(Int) end end"
        )
        decl = module.decls[0]
        assert isinstance(decl.type, ast.RecordType)
        assert decl.type.field_names == ("a", "b")
        assert isinstance(decl.type.fields[1].type, ast.ArrayType)

    def test_module_qualified_type(self):
        module = parse_module(
            "module m export let f(c: other.T): Int = 1 end"
        )
        annotation = module.functions()[0].params[0].type
        assert annotation.module == "other" and annotation.name == "T"
