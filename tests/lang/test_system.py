"""Tests for the TycoonSystem image (repro.lang.system)."""

import pytest

from repro.lang import CompileOptions, TLError, TycoonSystem
from repro.machine.vm import StepLimitExceeded
from repro.query.relation import Relation


@pytest.fixture
def system():
    return TycoonSystem()


def test_stdlib_prelinked(system):
    for name in ("int", "arraylib", "io", "math", "charlib", "bits"):
        assert name in system.linked


def test_stdlib_modules_cannot_be_user_called_without_compile(system):
    with pytest.raises(TLError, match="library module"):
        system._compiled("int")


def test_closure_rejects_non_functions(system):
    system.compile("module m export k let k = 5 end")
    with pytest.raises(TLError, match="not a function"):
        system.closure("m", "k")


def test_constant_export_value(system):
    system.compile("module m export k let k = 5 end")
    assert system.link("m").member("k") == 5


def test_step_limit_applies(system):
    system.compile(
        """
        module spin export f
        let f(): Int = begin while true do 0 end; 1 end
        end
        """
    )
    with pytest.raises(StepLimitExceeded):
        system.call("spin", "f", [], step_limit=1000)


def test_transitive_import_linking(system):
    system.compile("module a export one let one(): Int = 1 end")
    system.compile(
        "module b export two import a let two(): Int = a.one() + 1 end"
    )
    system.compile(
        "module c export three import b let three(): Int = b.two() + 1 end"
    )
    # linking c must recursively link b and a
    assert system.call("c", "three", []).value == 3


def test_data_module_members(system):
    rel = Relation("r", ["v"])
    system.register_data_module("db", {"r": rel, "limit": 10})
    system.compile(
        """
        module m export f
        import db
        let f(): Int = db.limit * 2
        end
        """
    )
    assert system.call("m", "f", []).value == 20


def test_registry_threads_into_options(system):
    # the system's registry (with query prims) is what compile uses
    assert "select" in system.registry
    assert system.options.registry is system.registry


def test_vm_attached_to_heap(system):
    vm = system.vm()
    assert vm.store is system.heap


def test_doctest_example():
    import doctest

    import repro.lang.system as module

    results = doctest.testmod(module)
    assert results.failed == 0


def test_reflect_doctest():
    import doctest

    import repro.reflect as module

    results = doctest.testmod(module)
    assert results.failed == 0
