"""Tests for the command-line interface (python -m repro)."""

import pytest

from repro.cli import main

DEMO = """
module util export triple
let triple(x: Int): Int = x * 3
end

module app export main
import util
let main(n: Int): Int =
  begin
    print("computing...");
    util.triple(n) + 1
  end
end
"""


@pytest.fixture
def demo_file(tmp_path):
    path = tmp_path / "demo.tl"
    path.write_text(DEMO)
    return str(path)


class TestRun:
    def test_default_entry_is_main(self, demo_file, capsys):
        assert main(["run", demo_file, "--args", "13"]) == 0
        out = capsys.readouterr().out
        assert "computing..." in out
        assert "=> 40" in out

    def test_explicit_entry(self, demo_file, capsys):
        assert main(["run", demo_file, "--entry", "util.triple", "--args", "5"]) == 0
        assert "=> 15" in capsys.readouterr().out

    def test_bare_function_entry(self, demo_file, capsys):
        assert main(["run", demo_file, "--entry", "triple", "--args", "2"]) == 0
        assert "=> 6" in capsys.readouterr().out

    def test_dynamic_optimization(self, demo_file, capsys):
        assert main(
            ["run", demo_file, "--entry", "app.main", "--args", "13",
             "--opt", "dynamic"]
        ) == 0
        assert "=> 40" in capsys.readouterr().out

    def test_unoptimized(self, demo_file, capsys):
        assert main(["run", demo_file, "--args", "13", "--opt", "none"]) == 0
        assert "=> 40" in capsys.readouterr().out

    def test_uncaught_exception_exit_code(self, tmp_path, capsys):
        path = tmp_path / "boom.tl"
        path.write_text(
            "module b export main let main(x: Int): Int = 1 / x end"
        )
        assert main(["run", str(path), "--args", "0"]) == 1
        assert "uncaught exception" in capsys.readouterr().err

    def test_bool_and_string_args(self, tmp_path, capsys):
        path = tmp_path / "args.tl"
        path.write_text(
            'module a export main\n'
            'let main(flag: Bool, s: String): Int =\n'
            '  if flag and s == "go" then 1 else 0 end\n'
            'end'
        )
        assert main(["run", str(path), "--args", "true", "go"]) == 0
        assert "=> 1" in capsys.readouterr().out

    def test_unknown_entry(self, demo_file):
        with pytest.raises(SystemExit):
            main(["run", demo_file, "--entry", "nonexistent"])


class TestTml:
    def test_static_tml(self, demo_file, capsys):
        assert main(["tml", demo_file, "--function", "app.main"]) == 0
        out = capsys.readouterr().out
        assert "proc(" in out
        assert "print" in out

    def test_dynamic_tml_inlines_imports(self, demo_file, capsys):
        assert main(["tml", demo_file, "--function", "app.main", "--dynamic"]) == 0
        out = capsys.readouterr().out
        # the library and util calls dissolved into primitives
        assert "(*" in out and "(+" in out
        assert "util.triple" not in out

    def test_plain_names(self, demo_file, capsys):
        assert main(
            ["tml", demo_file, "--function", "util.triple", "--plain"]
        ) == 0
        assert "_8" not in capsys.readouterr().out.split("proc")[0]


class TestDisasm:
    def test_listing(self, demo_file, capsys):
        assert main(["disasm", demo_file, "--function", "util.triple"]) == 0
        out = capsys.readouterr().out
        assert "code util.triple" in out
        assert "tailcall" in out


class TestBench:
    def test_subset(self, capsys):
        assert main(["bench", "--programs", "towers", "--scale", "0.3"]) == 0
        out = capsys.readouterr().out
        assert "towers" in out
        assert "geometric mean" in out


class TestStore:
    def test_ls(self, tmp_path, capsys):
        from repro.lang import TycoonSystem
        from repro.store.heap import ObjectHeap

        path = str(tmp_path / "img.tyc")
        heap = ObjectHeap(path)
        system = TycoonSystem(heap=heap)
        system.compile("module m export f let f(): Int = 1 end")
        system.persist("m")
        system.commit()
        heap.close()

        assert main(["store", "ls", path]) == 0
        out = capsys.readouterr().out
        assert "module:m" in out

    def test_ls_empty(self, tmp_path, capsys):
        from repro.store.heap import ObjectHeap

        path = str(tmp_path / "empty.tyc")
        ObjectHeap(path).close()
        assert main(["store", "ls", path]) == 0
        assert "(no roots)" in capsys.readouterr().out
