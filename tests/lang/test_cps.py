"""Structural tests for TL → TML CPS conversion (repro.lang.cps)."""

import pytest

from repro.core.syntax import Abs, App, PrimApp, Var, iter_subterms
from repro.core.wellformed import check
from repro.lang.check import check_module
from repro.lang.cps import CpsConverter
from repro.lang.parser import parse_module
from repro.query.algebra import query_registry


def convert(source, function=None, library_ops=True):
    checked = check_module(parse_module(source))
    converter = CpsConverter(checked, library_ops=library_ops)
    decls = checked.module.functions()
    target = decls[-1] if function is None else next(
        d for d in decls if d.name == function
    )
    term = converter.convert_function(target)
    check(term, query_registry())
    return term, converter


def _prims(term):
    return [n.prim for n in iter_subterms(term) if isinstance(n, PrimApp)]


class TestShape:
    def test_function_is_proc(self):
        term, _ = convert("module m export let f(x: Int): Int = x end")
        assert isinstance(term, Abs)
        assert term.is_proc_abs
        assert [p.is_cont for p in term.params] == [False, True, True]

    def test_operators_are_library_calls(self):
        term, converter = convert("module m export let f(x: Int): Int = x + x end")
        # no arithmetic primitive in the tree: an App to a free variable
        assert "+" not in _prims(term)
        refs = {ref.member for ref in converter.external_refs.values()}
        assert "add" in refs

    def test_open_coding_uses_primitives(self):
        term, _ = convert(
            "module m export let f(x: Int): Int = x + x end", library_ops=False
        )
        assert "+" in _prims(term)

    def test_loops_use_y(self):
        term, _ = convert(
            """
            module m export
            let f(n: Int): Int =
              begin for i = 1 upto n do 0 end; 1 end
            end
            """
        )
        assert "Y" in _prims(term)

    def test_while_uses_y(self):
        term, _ = convert(
            """
            module m export
            let f(): Int = begin while false do 0 end; 1 end
            end
            """
        )
        assert "Y" in _prims(term)

    def test_mutable_locals_are_boxes(self):
        term, _ = convert(
            """
            module m export
            let f(): Int = var x := 1 in begin x := 2; x end
            end
            """
        )
        prims = _prims(term)
        assert "new" in prims  # box allocation
        assert "[]:=" in prims and "[]" in prims  # write / read

    def test_records_are_vectors(self):
        term, _ = convert(
            """
            module m export
            type P = tuple a: Int end
            let f(x: Int) = tuple a = x end
            end
            """,
            function="f",
        )
        assert "vector" in _prims(term)

    def test_field_access_is_direct_load(self):
        term, _ = convert(
            """
            module m export
            type P = tuple a: Int, b: Int end
            let f(p: P): Int = p.b
            end
            """,
            function="f",
        )
        assert "[]" in _prims(term)

    def test_try_uses_handler_primitives(self):
        term, _ = convert(
            """
            module m export
            let f(x: Int): Int = try x catch(e) 0 end
            end
            """
        )
        prims = _prims(term)
        assert "pushHandler" in prims and "popHandler" in prims

    def test_raise_calls_exception_continuation(self):
        term, _ = convert("module m export let f(x: Int): Int = raise x end")
        ce = term.params[1]
        calls = [
            n
            for n in iter_subterms(term)
            if isinstance(n, App) and isinstance(n.fn, Var) and n.fn.name == ce
        ]
        assert calls  # (ce x)


class TestQueryTemplate:
    SRC = """
    module m export
    type P = tuple id: Int end
    let f(people) =
      select p.id from people as p : P where p.id > 0 end
    end
    """

    def test_paper_select_project_shape(self):
        """§4.2: (select pred Rel ce cont(tempRel) (project tgt tempRel ce cc))."""
        term, _ = convert(self.SRC)
        selects = [
            n for n in iter_subterms(term)
            if isinstance(n, PrimApp) and n.prim == "select"
        ]
        assert len(selects) == 1
        select = selects[0]
        pred, rel, ce, k = select.args
        assert isinstance(pred, Abs) and len(pred.params) == 3
        assert isinstance(ce, Var) and ce.name.is_cont
        assert isinstance(k, Abs) and len(k.params) == 1  # cont(tempRel)
        inner = k.body
        assert isinstance(inner, PrimApp) and inner.prim == "project"
        assert isinstance(inner.args[1], Var)
        assert inner.args[1].name == k.params[0]

    def test_identity_target_skips_projection(self):
        term, _ = convert(
            """
            module m export
            type P = tuple id: Int end
            let f(people) = select p from people as p : P where p.id > 0 end
            end
            """
        )
        assert "project" not in _prims(term)
        assert "select" in _prims(term)

    def test_projection_only_without_where(self):
        term, _ = convert(
            """
            module m export
            type P = tuple id: Int end
            let f(people) = select p.id from people as p : P end
            end
            """
        )
        assert "select" not in _prims(term)
        assert "project" in _prims(term)

    def test_exists_primitive(self):
        term, _ = convert(
            """
            module m export
            type P = tuple id: Int end
            let f(people): Bool = exists p : P in people : p.id > 0
            end
            """
        )
        assert "exists" in _prims(term)

    def test_correlation_variable_scoped_in_pred(self):
        term, _ = convert(self.SRC)
        select = next(
            n for n in iter_subterms(term)
            if isinstance(n, PrimApp) and n.prim == "select"
        )
        pred = select.args[0]
        x = pred.params[0]
        # x occurs in the predicate body (p.id > 0)
        occurrences = [
            n for n in iter_subterms(pred.body)
            if isinstance(n, Var) and n.name == x
        ]
        assert occurrences


class TestSharedExternals:
    def test_one_name_per_entity(self):
        _, converter = convert(
            "module m export let f(x: Int): Int = x + x + x end"
        )
        add_names = [
            name for name, ref in converter.external_refs.items()
            if ref.member == "add"
        ]
        assert len(add_names) == 1  # shared across all uses

    def test_sibling_and_import_kinds(self):
        _, converter = convert(
            """
            module m export
            let g(x: Int): Int = x
            let f(x: Int): Int = g(x) + 1
            end
            """,
            function="f",
        )
        kinds = {ref.kind for ref in converter.external_refs.values()}
        assert kinds == {"sibling", "import"}
