"""Tests for the TL checker: binding, arities, record shapes."""

import pytest

from repro.lang.check import check_module
from repro.lang.errors import TLCheckError
from repro.lang.parser import parse_module
from repro.lang.types import ModuleInterface, TRecord, INT, FunSig


def check_src(source, available=None):
    return check_module(parse_module(source), available)


class TestBinding:
    def test_unbound_identifier(self):
        with pytest.raises(TLCheckError, match="unbound identifier"):
            check_src("module m export let f() = nonexistent end")

    def test_locals_params_and_siblings_resolve(self):
        checked = check_src(
            """
            module m export f
            let g(x: Int): Int = x
            let f(a: Int): Int = let b = a in g(b)
            end
            """
        )
        assert checked.interface.functions["f"].arity == 1

    def test_builtins_resolve(self):
        check_src("module m export let f(n: Int) = array(n, 0) end")

    def test_export_of_undefined_name(self):
        with pytest.raises(TLCheckError, match="exports undefined"):
            check_src("module m export ghost end")

    def test_module_constant_must_be_literal(self):
        with pytest.raises(TLCheckError, match="must be a literal"):
            check_src("module m export let k = 1 + 2 end")

    def test_assignment_needs_var(self):
        with pytest.raises(TLCheckError, match="not a mutable variable"):
            check_src("module m export let f(x: Int) = begin x := 1; x end end")


class TestArities:
    def test_sibling_call_arity(self):
        with pytest.raises(TLCheckError, match="argument"):
            check_src(
                """
                module m export
                let g(x: Int): Int = x
                let f(): Int = g(1, 2)
                end
                """
            )

    def test_builtin_arity(self):
        with pytest.raises(TLCheckError, match="argument"):
            check_src("module m export let f() = size(1, 2) end")

    def test_calling_non_function(self):
        with pytest.raises(TLCheckError, match="cannot call"):
            check_src("module m export let f(x: Int) = x(1) end")


class TestRecords:
    SRC = """
    module m export T
    type T = tuple x: Int, y: Int end
    let mk(a: Int): T = tuple x = a, y = 0 end
    let getx(t: T): Int = t.x
    end
    """

    def test_field_access_resolves_to_index(self):
        checked = check_src(self.SRC)
        field_res = [
            r for r in checked.resolutions.values() if r.kind == "field"
        ]
        assert [r.index for r in field_res] == [0]

    def test_unknown_field(self):
        with pytest.raises(TLCheckError, match="no field"):
            check_src(
                """
                module m export
                type T = tuple x: Int end
                let f(t: T): Int = t.z
                end
                """
            )

    def test_access_without_shape_rejected(self):
        with pytest.raises(TLCheckError, match="unknown record shape"):
            check_src("module m export let f(t) = t.x end")

    def test_annotation_enables_access(self):
        check_src(
            """
            module m export
            type T = tuple x: Int end
            let f(t) = let u : T = t in u.x
            end
            """
        )

    def test_duplicate_record_field(self):
        with pytest.raises(TLCheckError, match="duplicate"):
            check_src("module m export let f() = tuple a = 1, a = 2 end end")

    def test_exported_type_in_interface(self):
        checked = check_src(self.SRC)
        assert isinstance(checked.interface.types["T"], TRecord)


class TestImports:
    def other_interface(self):
        interface = ModuleInterface(name="other")
        interface.functions["helper"] = FunSig("helper", (INT,), INT)
        interface.types["T"] = TRecord((("v", INT),))
        return {"other": interface}

    def test_import_member_resolves(self):
        checked = check_src(
            """
            module m export
            import other
            let f(x: Int): Int = other.helper(x)
            end
            """,
            self.other_interface(),
        )
        refs = [r for r in checked.resolutions.values() if r.kind == "module_ref"]
        assert refs and refs[0].module == "other"

    def test_unknown_import(self):
        with pytest.raises(TLCheckError, match="unknown module"):
            check_src("module m export import nope end")

    def test_unknown_member(self):
        with pytest.raises(TLCheckError, match="no export"):
            check_src(
                """
                module m export
                import other
                let f() = other.missing(1)
                end
                """,
                self.other_interface(),
            )

    def test_imported_record_type(self):
        check_src(
            """
            module m export
            import other
            let f(t: other.T): Int = t.v
            end
            """,
            self.other_interface(),
        )

    def test_local_binding_shadows_import(self):
        # `other` as a parameter: other.x is a field access, not a module ref
        with pytest.raises(TLCheckError, match="unknown record shape"):
            check_src(
                """
                module m export
                import other
                let f(other) = other.helper
                end
                """,
                self.other_interface(),
            )


class TestQueryChecking:
    def test_select_var_scoping(self):
        check_src(
            """
            module m export
            type P = tuple age: Int end
            let f(people) = select p from people as p : P where p.age > 1 end
            end
            """
        )

    def test_exists_returns_bool(self):
        checked = check_src(
            """
            module m export f
            type P = tuple age: Int end
            let f(people): Bool = exists p : P in people : p.age > 1
            end
            """
        )
        assert checked.interface.functions["f"] is not None
