"""Tests for the TL lexer."""

import pytest

from repro.lang.errors import TLSyntaxError
from repro.lang.lexer import Token, tokenize


def kinds(source):
    return [t.kind for t in tokenize(source)]


def texts(source):
    return [t.text for t in tokenize(source) if t.kind != "eof"]


def test_keywords_vs_identifiers():
    tokens = tokenize("let letx = 1")
    assert tokens[0].kind == "keyword"
    assert tokens[1].kind == "ident"


def test_numbers():
    assert texts("0 42 12345") == ["0", "42", "12345"]


def test_operators_longest_match():
    assert texts("a := b == c <= d => e") == ["a", ":=", "b", "==", "c", "<=", "d", "=>", "e"]


def test_char_escapes():
    tokens = tokenize(r"'a' '\n' '\\'")
    assert [t.text for t in tokens[:-1]] == ["a", "\n", "\\"]


def test_string_escapes():
    tokens = tokenize(r'"tab\there"')
    assert tokens[0].text == "tab\there"


def test_comments_skipped():
    assert texts("a -- comment\nb // another\nc") == ["a", "b", "c"]


def test_positions():
    tokens = tokenize("a\n  b")
    assert (tokens[0].line, tokens[0].column) == (1, 1)
    assert (tokens[1].line, tokens[1].column) == (2, 3)


def test_unexpected_character():
    with pytest.raises(TLSyntaxError) as excinfo:
        tokenize("a ?? b")
    assert "line 1" in str(excinfo.value)


def test_eof_token_always_present():
    assert tokenize("")[-1].kind == "eof"


def test_query_keywords():
    assert kinds("select from where as exists")[:5] == ["keyword"] * 5
