"""End-to-end tests of every TL language feature: compile, link, run.

Each test compiles a small module through the full pipeline (checker, CPS
conversion, static optimizer, TAM codegen) and executes it on the VM.
"""

import pytest

from repro.lang import CompileOptions, TLError, TycoonSystem
from repro.machine.runtime import TmlVector, UncaughtTmlException
from repro.core.syntax import Char, UNIT


@pytest.fixture
def system():
    return TycoonSystem()


def run(system, source, fn, args, module="t"):
    system.compile(source)
    return system.call(module, fn, args)


class TestArithmeticAndLogic:
    def test_operator_precedence(self, system):
        src = "module t export f let f(): Int = 2 + 3 * 4 - 6 / 2 end"
        assert run(system, src, "f", []).value == 11

    def test_division_truncates_toward_zero(self, system):
        src = "module t export f let f(a: Int, b: Int): Int = a / b end"
        system.compile(src)
        assert system.call("t", "f", [-7, 2]).value == -3
        assert system.call("t", "f", [7, -2]).value == -3

    def test_mod_sign(self, system):
        src = "module t export f let f(a: Int, b: Int): Int = a % b end"
        system.compile(src)
        assert system.call("t", "f", [-7, 2]).value == -1

    def test_unary_minus(self, system):
        src = "module t export f let f(x: Int): Int = -x + 1 end"
        assert run(system, src, "f", [5]).value == -4

    def test_comparisons_and_equality(self, system):
        src = """
        module t export f
        let f(a: Int, b: Int): Int =
          if a < b and not (a == b) then 1 else 0 end
        end
        """
        system.compile(src)
        assert system.call("t", "f", [1, 2]).value == 1
        assert system.call("t", "f", [2, 2]).value == 0

    def test_short_circuit_and(self, system):
        # right operand would divide by zero; short-circuit must avoid it
        src = """
        module t export f
        let f(x: Int): Bool = x > 0 and (10 / x) > 1
        end
        """
        system.compile(src)
        assert system.call("t", "f", [0]).value is False

    def test_short_circuit_or(self, system):
        src = """
        module t export f
        let f(x: Int): Bool = x == 0 or (10 / x) > 1
        end
        """
        system.compile(src)
        assert system.call("t", "f", [0]).value is True

    def test_zero_divide_raises(self, system):
        src = "module t export f let f(x: Int): Int = 1 / x end"
        system.compile(src)
        with pytest.raises(UncaughtTmlException):
            system.call("t", "f", [0])


class TestControlFlow:
    def test_if_without_else_is_unit(self, system):
        src = "module t export f let f(x: Int) = if x > 0 then print(x) end end"
        assert run(system, src, "f", [0]).value == UNIT

    def test_elif_chain(self, system):
        src = """
        module t export f
        let f(x: Int): Int =
          if x < 0 then -1 elif x == 0 then 0 elif x < 10 then 1 else 2 end
        end
        """
        system.compile(src)
        assert [system.call("t", "f", [v]).value for v in (-5, 0, 5, 50)] == [-1, 0, 1, 2]

    def test_while_loop(self, system):
        src = """
        module t export f
        let f(n: Int): Int =
          var i := 0 in
          var total := 0 in
          begin
            while i < n do
              begin total := total + i; i := i + 1 end
            end;
            total
          end
        end
        """
        assert run(system, src, "f", [10]).value == 45

    def test_for_downto(self, system):
        src = """
        module t export f
        let f(n: Int): Int =
          var acc := 0 in
          begin
            for i = n downto 1 do acc := acc * 10 + i end;
            acc
          end
        end
        """
        assert run(system, src, "f", [3]).value == 321

    def test_nested_loops(self, system):
        src = """
        module t export f
        let f(n: Int): Int =
          var count := 0 in
          begin
            for i = 1 upto n do
              for j = 1 upto i do count := count + 1 end
            end;
            count
          end
        end
        """
        assert run(system, src, "f", [4]).value == 10

    def test_loop_body_sees_fresh_counter(self, system):
        src = """
        module t export f
        let f(n: Int): Int =
          var last := 0 in
          begin
            for i = 1 upto n do last := i end;
            last
          end
        end
        """
        assert run(system, src, "f", [7]).value == 7


class TestFunctions:
    def test_mutual_recursion(self, system):
        src = """
        module t export iseven
        let iseven(n: Int): Bool = if n == 0 then true else isodd(n - 1) end
        let isodd(n: Int): Bool = if n == 0 then false else iseven(n - 1) end
        end
        """
        system.compile(src)
        assert system.call("t", "iseven", [10]).value is True
        assert system.call("t", "iseven", [11]).value is False

    def test_first_class_lambda(self, system):
        src = """
        module t export f
        let apply(g, x: Int): Int = g(x)
        let f(n: Int): Int = apply(fn(v) => v * v, n)
        end
        """
        assert run(system, src, "f", [9]).value == 81

    def test_closure_captures_environment(self, system):
        src = """
        module t export f
        let apply(g, x: Int): Int = g(x)
        let f(n: Int): Int = let k = 100 in apply(fn(v) => v + k + n, 1)
        end
        """
        assert run(system, src, "f", [10]).value == 111

    def test_deep_recursion_is_stack_safe(self, system):
        """CPS tail calls: 100k-deep recursion must not blow the stack."""
        src = """
        module t export f
        let count(n: Int, acc: Int): Int =
          if n == 0 then acc else count(n - 1, acc + 1) end
        let f(n: Int): Int = count(n, 0)
        end
        """
        assert run(system, src, "f", [100_000]).value == 100_000

    def test_module_constant(self, system):
        src = """
        module t export f seven
        let seven = 7
        let f(): Int = seven * 2
        end
        """
        assert run(system, src, "f", []).value == 14


class TestDataStructures:
    def test_arrays(self, system):
        src = """
        module t export f
        let f(n: Int): Int =
          let a = array(n, 1) in
          begin
            a[0] := 10;
            a[n - 1] := 5;
            a[0] + a[n - 1] + size(a)
          end
        end
        """
        assert run(system, src, "f", [4]).value == 19

    def test_array_bounds_trap(self, system):
        src = "module t export f let f(i: Int): Int = array(2, 0)[i] end"
        system.compile(src)
        with pytest.raises(UncaughtTmlException):
            system.call("t", "f", [5])

    def test_records(self, system):
        src = """
        module t export f
        type Pair = tuple fst: Int, snd: Int end
        let mk(a: Int, b: Int): Pair = tuple fst = a, snd = b end
        let f(x: Int): Int =
          let p = mk(x, x * 2) in p.fst + p.snd
        end
        """
        assert run(system, src, "f", [5]).value == 15

    def test_records_are_immutable_vectors(self, system):
        src = """
        module t export f
        type P = tuple v: Int end
        let f(x: Int): P = tuple v = x end
        end
        """
        result = run(system, src, "f", [3])
        assert isinstance(result.value, TmlVector)

    def test_chars_and_strings(self, system):
        src = """
        module t export f g
        let f(c: Char): Int = ord(c) + 1
        let g(): Char = chr(66)
        end
        """
        system.compile(src)
        assert system.call("t", "f", [Char("a")]).value == 98
        assert system.call("t", "g", []).value == Char("B")

    def test_string_equality(self, system):
        src = 'module t export f let f(s: String): Bool = s == "yes" end'
        system.compile(src)
        assert system.call("t", "f", ["yes"]).value is True
        assert system.call("t", "f", ["no"]).value is False

    def test_min_max_builtins(self, system):
        src = "module t export f let f(a: Int, b: Int): Int = min(a, b) * 100 + max(a, b) end"
        assert run(system, src, "f", [7, 3]).value == 307


class TestExceptions:
    def test_raise_and_catch(self, system):
        src = """
        module t export f
        let f(x: Int): Int =
          try
            if x > 10 then raise x end;
            0
          catch(e) e + 1000 end
        end
        """
        system.compile(src)
        assert system.call("t", "f", [5]).value == 0
        assert system.call("t", "f", [50]).value == 1050

    def test_catch_runtime_trap(self, system):
        src = """
        module t export f
        let f(i: Int): Int =
          try array(2, 7)[i] catch(e) -1 end
        end
        """
        system.compile(src)
        assert system.call("t", "f", [1]).value == 7
        assert system.call("t", "f", [99]).value == -1

    def test_catch_zero_divide(self, system):
        src = """
        module t export f
        let f(d: Int): Int = try 100 / d catch(e) 0 end
        end
        """
        system.compile(src)
        assert system.call("t", "f", [4]).value == 25
        assert system.call("t", "f", [0]).value == 0

    def test_nested_try(self, system):
        src = """
        module t export f
        let f(x: Int): Int =
          try
            try raise 1 catch(a) raise a + 1 end
          catch(b) b + 10 end
        end
        """
        assert run(system, src, "f", [0]).value == 12

    def test_uncaught_raise_propagates_across_calls(self, system):
        src = """
        module t export f
        let boom(): Int = raise 99
        let f(): Int = boom() + 1
        end
        """
        system.compile(src)
        with pytest.raises(UncaughtTmlException) as excinfo:
            system.call("t", "f", [])
        assert excinfo.value.value == 99

    def test_handler_stack_balanced_after_try(self, system):
        src = """
        module t export f
        let f(n: Int): Int =
          var acc := 0 in
          begin
            for i = 1 upto n do
              acc := acc + (try 10 / (i % 3) catch(e) 0 end)
            end;
            acc
          end
        end
        """
        # i%3 cycles 1,2,0,...: 10/1=10, 10/2=5, caught 0
        assert run(system, src, "f", [6]).value == 30


class TestIO:
    def test_print_output(self, system):
        src = """
        module t export f
        let f(n: Int) =
          begin print(n); print("done"); unit end
        end
        """
        result = run(system, src, "f", [7])
        assert result.output == ["7", "done"]

    def test_sqrt_foreign(self, system):
        src = "module t export f let f(n: Int): Int = sqrt(n) end"
        assert run(system, src, "f", [144]).value == 12


class TestModuleSystem:
    def test_cross_module_calls(self, system):
        system.compile(
            """
            module mathx export square
            let square(x: Int): Int = x * x
            end
            """
        )
        system.compile(
            """
            module user export f
            import mathx
            let f(n: Int): Int = mathx.square(n) + 1
            end
            """
        )
        assert system.call("user", "f", [6]).value == 37

    def test_uncompiled_module_rejected(self, system):
        with pytest.raises(TLError, match="has not been compiled"):
            system.call("ghost", "f", [])

    def test_recompilation_invalidates_link(self, system):
        system.compile("module t export f let f(): Int = 1 end")
        assert system.call("t", "f", []).value == 1
        system.compile("module t export f let f(): Int = 2 end")
        assert system.call("t", "f", []).value == 2

    def test_unoptimized_options(self):
        system = TycoonSystem(options=CompileOptions(optimizer=None))
        system.compile("module t export f let f(x: Int): Int = x * 2 + 1 end")
        assert system.call("t", "f", [20]).value == 41

    def test_open_coded_ablation(self):
        system = TycoonSystem(options=CompileOptions(library_ops=False))
        system.compile("module t export f let f(x: Int): Int = x * 2 + 1 end")
        assert system.call("t", "f", [20]).value == 41
