"""Tests for the dynamically bound standard library (repro.lang.stdlib)."""

import pytest

from repro.core.wellformed import check
from repro.lang.modules import compile_stdlib, link_stdlib
from repro.lang.stdlib import (
    BUILTIN_FUNS,
    OP_FUNS,
    STDLIB_MODULE_NAMES,
    build_stdlib,
    stdlib_interfaces,
)
from repro.machine.vm import VM
from repro.primitives.registry import default_registry
from repro.store.serialize import Blob


def test_all_modules_present():
    definitions = build_stdlib()
    assert set(definitions) == set(STDLIB_MODULE_NAMES)


def test_every_definition_is_well_formed():
    registry = default_registry()
    for module in build_stdlib().values():
        for fn in module.functions:
            check(fn.term, registry)


def test_op_funs_reference_real_functions():
    interfaces = stdlib_interfaces()
    for op, (module, member) in OP_FUNS.items():
        assert member in interfaces[module].functions, f"{op} -> {module}.{member}"


def test_builtin_funs_reference_real_functions():
    interfaces = stdlib_interfaces()
    for name, (module, member, arity) in BUILTIN_FUNS.items():
        sig = interfaces[module].functions[member]
        assert sig.arity == arity, f"builtin {name}"


def test_compiled_stdlib_carries_ptml():
    compiled = compile_stdlib()
    for module in compiled.values():
        for fn in module.functions.values():
            assert isinstance(fn.code.ptml_ref, Blob), f"{module.name}.{fn.name}"


@pytest.mark.parametrize(
    "module,member,args,expected",
    [
        ("int", "add", [2, 3], 5),
        ("int", "sub", [2, 3], -1),
        ("int", "mul", [6, 7], 42),
        ("int", "div", [-7, 2], -3),
        ("int", "mod", [-7, 2], -1),
        ("int", "lt", [1, 2], True),
        ("int", "ge", [1, 2], False),
        ("int", "eq", [5, 5], True),
        ("int", "ne", [5, 5], False),
        ("int", "neg", [9], -9),
        ("int", "min", [4, 9], 4),
        ("int", "max", [4, 9], 9),
        ("bits", "band", [12, 10], 8),
        ("bits", "shl", [1, 8], 256),
        ("bits", "bnot", [0], -1),
    ],
)
def test_library_function_semantics(module, member, args, expected):
    linked = link_stdlib()
    vm = VM()
    assert vm.call(linked[module].member(member), args).value == expected


def test_arraylib_lifecycle():
    linked = link_stdlib()
    vm = VM()
    arr = vm.call(linked["arraylib"].member("new"), [3, 7]).value
    assert vm.call(linked["arraylib"].member("size"), [arr]).value == 3
    vm.call(linked["arraylib"].member("set"), [arr, 1, 99])
    assert vm.call(linked["arraylib"].member("get"), [arr, 1]).value == 99


def test_charlib():
    from repro.core.syntax import Char

    linked = link_stdlib()
    vm = VM()
    assert vm.call(linked["charlib"].member("ord"), [Char("A")]).value == 65
    assert vm.call(linked["charlib"].member("chr"), [97]).value == Char("a")


def test_math_sqrt_via_ccall():
    from repro.lang.foreign import default_foreign

    linked = link_stdlib()
    vm = VM(foreign=default_foreign())
    assert vm.call(linked["math"].member("sqrt"), [169]).value == 13


def test_io_print():
    linked = link_stdlib()
    vm = VM()
    result = vm.call(linked["io"].member("print"), ["hello"])
    assert vm.output == ["hello"]


def test_interfaces_cached():
    assert stdlib_interfaces() is stdlib_interfaces()


def test_stdlib_ptml_stored_in_heap():
    from repro.core.syntax import Oid
    from repro.store.heap import ObjectHeap

    heap = ObjectHeap()
    link_stdlib(heap=heap)
    module = heap.load_root("module:int")
    for name, code, _ in module.functions:
        assert isinstance(code.ptml_ref, Oid)
        assert isinstance(heap.load(code.ptml_ref), Blob)
