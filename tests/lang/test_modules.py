"""Tests for module compilation, linking and persistence (Fig. 3 lifecycle)."""

import pytest

from repro.core.syntax import Abs, Oid
from repro.lang import (
    CompileOptions,
    TLError,
    TycoonSystem,
    compile_module,
    link_module,
    load_module,
    store_module,
)
from repro.lang.modules import link_stdlib
from repro.machine.isa import VMClosure
from repro.machine.vm import VM
from repro.store.heap import ObjectHeap
from repro.store.serialize import Blob

SRC = """
module calc export inc fact
let inc(x: Int): Int = x + 1
let fact(n: Int): Int = if n <= 1 then 1 else n * fact(n - 1) end
end
"""


class TestCompilation:
    def test_compile_produces_terms_and_code(self):
        compiled = compile_module(SRC)
        assert set(compiled.functions) == {"inc", "fact"}
        fn = compiled.functions["inc"]
        assert isinstance(fn.term, Abs)
        assert fn.code.is_proc

    def test_ptml_attached_by_default(self):
        compiled = compile_module(SRC)
        assert isinstance(compiled.functions["inc"].code.ptml_ref, Blob)

    def test_ptml_can_be_disabled(self):
        compiled = compile_module(SRC, options=CompileOptions(attach_ptml=False))
        assert compiled.functions["inc"].code.ptml_ref is None

    def test_externals_cover_free_names(self):
        compiled = compile_module(SRC)
        fn = compiled.functions["fact"]
        assert set(fn.externals) == set(fn.code.free_names)

    def test_sibling_reference_recorded(self):
        compiled = compile_module(SRC)
        kinds = {ref.kind for ref in compiled.functions["fact"].externals.values()}
        assert "sibling" in kinds  # the recursive fact call
        assert "import" in kinds  # the int library ops

    def test_static_optimization_shrinks_local_redexes(self):
        from repro.core.syntax import term_size
        from repro.rewrite import OptimizerConfig

        # a locally bound lambda is a static redex the optimizer removes
        src = """
        module t export f
        let f(x: Int): Int = let g = fn(v) => v + 1 in g(x)
        end
        """
        plain = compile_module(src, options=CompileOptions(optimizer=None))
        optimized = compile_module(
            src, options=CompileOptions(optimizer=OptimizerConfig())
        )
        assert term_size(optimized.functions["f"].term) < term_size(
            plain.functions["f"].term
        )

    def test_static_optimization_cannot_shrink_library_code(self):
        """Section 6: library-call-only functions offer the static optimizer
        nothing to do — the abstraction barrier in action."""
        from repro.core.syntax import term_size
        from repro.rewrite import OptimizerConfig

        plain = compile_module(SRC, options=CompileOptions(optimizer=None))
        optimized = compile_module(
            SRC, options=CompileOptions(optimizer=OptimizerConfig())
        )
        assert term_size(optimized.functions["fact"].term) == term_size(
            plain.functions["fact"].term
        )


class TestLinking:
    def test_mutual_recursion_backpatched(self):
        compiled = compile_module(SRC)
        linked = link_module(compiled, link_stdlib())
        vm = VM()
        assert vm.call(linked.member("fact"), [6]).value == 720

    def test_missing_import_rejected(self):
        compiled = compile_module(SRC)
        with pytest.raises(TLError, match="not linked"):
            link_module(compiled, {})

    def test_member_access_errors(self):
        compiled = compile_module(SRC)
        linked = link_module(compiled, link_stdlib())
        with pytest.raises(TLError, match="no member"):
            linked.member("missing")

    def test_exported_closures_are_vm_closures(self):
        linked = link_module(compile_module(SRC), link_stdlib())
        assert isinstance(linked.member("inc"), VMClosure)


class TestPersistence:
    def test_store_load_roundtrip(self, tmp_path):
        path = str(tmp_path / "mods.tyc")
        heap = ObjectHeap(path)
        compiled = compile_module(SRC)
        store_module(heap, compiled)
        heap.commit()
        heap.close()

        heap2 = ObjectHeap(path)
        loaded = load_module(heap2, "calc")
        linked = link_module(loaded, link_stdlib())
        assert VM(store=heap2).call(linked.member("fact"), [5]).value == 120
        heap2.close()

    def test_ptml_blobs_become_oids(self, tmp_path):
        heap = ObjectHeap(str(tmp_path / "p.tyc"))
        compiled = compile_module(SRC)
        store_module(heap, compiled)
        for fn in compiled.functions.values():
            assert isinstance(fn.code.ptml_ref, Oid)
            assert isinstance(heap.load(fn.code.ptml_ref), Blob)
        heap.close()

    def test_module_registered_as_root(self, tmp_path):
        heap = ObjectHeap(str(tmp_path / "r.tyc"))
        store_module(heap, compile_module(SRC))
        assert "module:calc" in heap.root_names()
        heap.close()

    def test_system_persist_and_reload(self, tmp_path):
        path = str(tmp_path / "sys.tyc")
        heap = ObjectHeap(path)
        system = TycoonSystem(heap=heap)
        system.compile(SRC)
        system.persist("calc")
        system.commit()
        heap.close()

        heap2 = ObjectHeap(path)
        system2 = TycoonSystem(heap=heap2)
        system2.load("calc")
        assert system2.call("calc", "fact", [5]).value == 120
        heap2.close()
