"""Tests for the pretty-printer and its round-trip with the parser."""

import pytest

from repro.core.parser import parse_term
from repro.core.pretty import PrettyOptions, pretty, pretty_compact
from repro.core.syntax import Char, Lit, Oid, UNIT


SOURCES = [
    "42",
    "'a'",
    '"str"',
    "true",
    "unit",
    "<oid 0x005b4780>",
    "(f x y)",
    "(+ 1 2 ^ce ^cc)",
    "proc(x ce cc) (+ x 1 ce cc)",
    "cont(t) (halt t)",
    "λ(x ^k) (k x)",
    "(== x 1 2 3 ^c1 ^c2 ^c3 ^celse)",
    "(Y λ(^c0 loop ^c) (c cont() (loop 1) cont(i) (halt i)))",
    "(λ(v) (f v)  proc(a b ce cc) (cc a))",
]


@pytest.mark.parametrize("source", SOURCES)
def test_roundtrip(source):
    term = parse_term(source)
    assert parse_term(pretty(term)) == term


@pytest.mark.parametrize("source", SOURCES)
def test_roundtrip_compact(source):
    term = parse_term(source)
    assert parse_term(pretty_compact(term)) == term


def test_literal_styles():
    assert pretty_compact(Lit(Char("z"))) == "'z'"
    assert pretty_compact(Lit(Oid(0x5B4780))) == "<oid 0x005b4780>"
    assert pretty_compact(Lit(UNIT)) == "unit"
    assert pretty_compact(Lit(True)) == "true"
    assert pretty_compact(Lit("a\\b")) == '"a\\\\b"'


def test_sugar_keywords_used():
    term = parse_term("proc(x ce cc) (cc x)")
    assert pretty(term).startswith("proc(")
    cont = parse_term("cont(t) (halt t)")
    assert pretty(cont).startswith("cont(")


def test_no_sugar_option():
    term = parse_term("proc(x ce cc) (cc x)")
    text = pretty(term, PrettyOptions(sugar=False))
    assert text.startswith("λ(")
    assert parse_term(text) == term


def test_long_terms_wrap():
    source = "(f {})".format(" ".join(f"x{i}" for i in range(40)))
    term = parse_term(source)
    text = pretty(term, PrettyOptions(width=40))
    assert "\n" in text
    assert parse_term(text) == term


def test_hide_uids_is_readable():
    term = parse_term("proc(value ce cc) (+ value 1 ce cc)")
    text = pretty(term, PrettyOptions(show_uids=False))
    assert "value_" not in text
    assert "value" in text
