"""Tests for free-variable and binding analysis (repro.core.freevars)."""

from repro.core.freevars import (
    applications_of,
    binding_analysis,
    escaping_uses,
    free_in,
    free_names,
    independent_of,
    is_closed,
)
from repro.core.parser import parse_term


def test_free_names_basic():
    term = parse_term("(λ(x) (f x g))")
    names = {n.base for n in free_names(term)}
    assert names == {"f", "g"}


def test_bound_names_are_not_free():
    term = parse_term("(λ(x) (λ(y) (x y) x))")
    assert not free_names(term)
    assert is_closed(term)


def test_free_in_matches_trivial_exists_precondition():
    # |p|_x = 0 : the predicate does not mention the range variable
    pred = parse_term("proc(x ce cc) (> limit 100 cont()(cc true) cont()(cc false))")
    x = pred.params[0]
    assert not free_in(x, pred.body)
    assert free_in([n for n in free_names(pred) if n.base == "limit"][0], pred)


def test_binding_analysis():
    term = parse_term("(λ(x y) (f x x))")
    info = binding_analysis(term)
    x, y = term.fn.params
    assert info.binder_of[x] is term.fn
    assert info.occurrences[x] == 2
    assert y in info.unreferenced
    assert x in info.multiply_referenced
    assert {n.base for n in info.free} == {"f"}


def test_independent_of():
    term = parse_term("(f a b)")
    a = [n for n in free_names(term) if n.base == "a"][0]
    c_other = [n for n in free_names(term) if n.base == "f"][0]
    assert not independent_of(term, {a})
    assert independent_of(term, set())


def test_applications_of_finds_call_sites():
    term = parse_term("(λ(g) (g 1 ^ce cont(t) (g t ^ce2 ^cc2)))")
    g = term.fn.params[0]
    sites = applications_of(term, g)
    assert len(sites) == 2


def test_escaping_uses():
    # g used once as a call and once passed as an argument (escapes)
    term = parse_term("(λ(g) (g 1 ^ce cont(t) (h g t)))")
    g = term.fn.params[0]
    escapes = escaping_uses(term, g)
    assert len(escapes) == 1
