"""Tests for TML abstract syntax (repro.core.syntax)."""

import pytest

from repro.core.names import Name, NameSupply
from repro.core.syntax import (
    Abs,
    App,
    Char,
    Lit,
    Oid,
    PrimApp,
    UNIT,
    Unit,
    Var,
    bound_names,
    is_application,
    is_value,
    iter_abstractions,
    iter_applications,
    iter_subterms,
    max_uid,
    term_size,
)


def _simple_abs():
    x = Name("x", 0)
    cc = Name("cc", 1, "cont")
    return Abs((x, cc), App(Var(cc), (Var(x),)))


class TestLiterals:
    def test_int_bool_char_str_unit_oid(self):
        for payload in (3, True, Char("a"), "text", UNIT, Oid(5)):
            assert Lit(payload).value == payload

    def test_invalid_payload_rejected(self):
        with pytest.raises(TypeError):
            Lit(3.14)
        with pytest.raises(TypeError):
            Lit([1, 2])

    def test_oid_rendering(self):
        assert str(Oid(0x5B4780)) == "<oid 0x005b4780>"

    def test_oid_negative_rejected(self):
        with pytest.raises(ValueError):
            Oid(-1)

    def test_char_must_be_single(self):
        with pytest.raises(ValueError):
            Char("ab")

    def test_unit_is_singleton(self):
        assert Unit() is UNIT
        assert Unit() == UNIT

    def test_is_oid(self):
        assert Lit(Oid(1)).is_oid
        assert not Lit(1).is_oid


class TestAbs:
    def test_duplicate_params_rejected(self):
        x = Name("x", 0)
        with pytest.raises(ValueError):
            Abs((x, x), App(Var(x), ()))

    def test_body_must_be_application(self):
        x = Name("x", 0)
        with pytest.raises(TypeError):
            Abs((x,), Var(x))

    def test_cont_vs_proc_classification(self):
        cont_abs = Abs((Name("t", 0),), App(Var(Name("k", 1, "cont")), ()))
        assert cont_abs.is_cont_abs and not cont_abs.is_proc_abs

        proc = _simple_abs()
        assert proc.is_proc_abs and not proc.is_cont_abs

    def test_value_and_cont_params(self):
        proc = _simple_abs()
        assert [n.base for n in proc.value_params] == ["x"]
        assert [n.base for n in proc.cont_params] == ["cc"]


class TestApp:
    def test_literal_fn_rejected(self):
        with pytest.raises(TypeError):
            App(Lit(1), ())

    def test_nested_application_argument_rejected(self):
        k = Var(Name("k", 0, "cont"))
        inner = App(k, ())
        with pytest.raises(TypeError):
            App(k, (inner,))

    def test_primapp_requires_name(self):
        with pytest.raises(TypeError):
            PrimApp("", ())

    def test_arity(self):
        app = App(Var(Name("f", 0)), (Lit(1), Lit(2)))
        assert app.arity == 2
        assert PrimApp("+", (Lit(1), Lit(2))).arity == 2


class TestTraversal:
    def test_term_size(self):
        term = _simple_abs()
        # Abs + App + Var(cc) + Var(x) = 4
        assert term_size(term) == 4

    def test_iter_subterms_preorder(self):
        term = _simple_abs()
        kinds = [type(t).__name__ for t in iter_subterms(term)]
        assert kinds == ["Abs", "App", "Var", "Var"]

    def test_iter_applications_and_abstractions(self):
        term = _simple_abs()
        assert len(list(iter_applications(term))) == 1
        assert len(list(iter_abstractions(term))) == 1

    def test_deep_chain_does_not_recurse(self):
        # 50_000-deep CPS chain must traverse without RecursionError
        supply = NameSupply()
        k = supply.fresh_cont("k")
        app = App(Var(k), (Lit(0),))
        for _ in range(50_000):
            t = supply.fresh_val("t")
            app = App(Abs((t,), app), (Lit(1),))
        assert term_size(app) > 100_000

    def test_bound_names_and_max_uid(self):
        term = _simple_abs()
        assert {n.base for n in bound_names(term)} == {"x", "cc"}
        assert max_uid(term) == 1
        assert max_uid(Lit(1)) == -1

    def test_is_value_is_application(self):
        assert is_value(Lit(1))
        assert is_value(Var(Name("x", 0)))
        assert is_value(_simple_abs())
        assert is_application(PrimApp("+", ()))
        assert not is_value(PrimApp("+", ()))
        assert not is_application(Lit(1))
