"""Tests for substitution E[val/v] and alpha renaming (repro.core.substitution)."""

import pytest

from repro.core.freevars import free_names
from repro.core.names import NameSupply
from repro.core.occurrences import count
from repro.core.parser import parse_term
from repro.core.substitution import alpha_rename, rename_free, substitute, substitute_many
from repro.core.syntax import Abs, App, Lit, Var, bound_names, term_size
from repro.core.wellformed import is_well_formed


def test_substitute_literal():
    term = parse_term("(λ(x) (+ x 1 ^ce ^cc))")
    x = term.fn.params[0]
    out = substitute(term.fn.body, Lit(41), x)
    assert count(out, x) == 0
    assert Lit(41) in list(out.args)


def test_substitute_variable():
    term = parse_term("(λ(x) (f x x))")
    x = term.fn.params[0]
    free_y = Var(NameSupply(start=100).fresh_val("y"))
    out = substitute(term.fn.body, free_y, x)
    assert count(out, x) == 0
    assert count(out, free_y.name) == 2


def test_substitution_rejects_applications():
    term = parse_term("(f x)")
    x = [n for n in free_names(term) if n.base == "x"][0]
    with pytest.raises(TypeError):
        substitute_many(term, {x: term})


def test_substitute_many_is_simultaneous():
    term = parse_term("(λ(a b) (f a b))")
    a, b = term.fn.params
    # a := b, b := 1 must not chain into b := 1 for the first substitution
    out = substitute_many(term.fn.body, {a: Var(b), b: Lit(1)})
    assert count(out, b) == 1
    assert Lit(1) in out.args


def test_substitute_shares_unchanged_subtrees():
    term = parse_term("(λ(x) (f λ(y) (g y) 1))")
    x = term.fn.params[0]
    out = substitute(term.fn.body, Lit(9), x)
    # x does not occur; the result must be the very same object
    assert out is term.fn.body


def test_empty_substitution_is_identity():
    term = parse_term("(f x)")
    assert substitute_many(term, {}) is term


class TestAlphaRename:
    def test_renames_all_binders(self):
        term = parse_term("(λ(x) (f x λ(y) (g y x)))")
        supply = NameSupply(start=1000)
        renamed = alpha_rename(term, supply)
        old = {n.uid for n in bound_names(term)}
        new = {n.uid for n in bound_names(renamed)}
        assert old.isdisjoint(new)
        assert all(uid >= 1000 for uid in new)

    def test_preserves_free_names(self):
        term = parse_term("(λ(x) (f x g))")
        renamed = alpha_rename(term, NameSupply(start=500))
        assert free_names(renamed) == free_names(term)

    def test_preserves_structure_and_size(self):
        term = parse_term("(λ(x) (+ x 1 ^ce cont(t) (halt t)))").fn
        renamed = alpha_rename(term, NameSupply(start=99))
        assert term_size(renamed) == term_size(term)
        assert is_well_formed(renamed)

    def test_two_copies_do_not_collide(self):
        """The expansion pass relies on alpha-renamed copies being disjoint."""
        term = parse_term("(λ(x) (f x))").fn
        supply = NameSupply(start=100)
        copy1 = alpha_rename(term, supply)
        copy2 = alpha_rename(term, supply)
        names1 = {n.uid for n in bound_names(copy1)}
        names2 = {n.uid for n in bound_names(copy2)}
        assert names1.isdisjoint(names2)

    def test_sorts_preserved(self):
        term = parse_term("proc(x ce cc) (cc x)")
        renamed = alpha_rename(term, NameSupply(start=10))
        assert [p.is_cont for p in renamed.params] == [False, True, True]


def test_rename_free():
    term = parse_term("(f x x)")
    old = [n for n in free_names(term) if n.base == "x"][0]
    new = NameSupply(start=77).fresh_val("z")
    out = rename_free(term, {old: new})
    assert count(out, old) == 0
    assert count(out, new) == 2


def test_rename_free_empty_identity():
    term = parse_term("(f x)")
    assert rename_free(term, {}) is term
