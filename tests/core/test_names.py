"""Tests for the unique-name machinery (repro.core.names)."""

import pytest

from repro.core.names import CONT_SORT, VAL_SORT, Name, NameMap, NameSupply, fresh_supply_above


class TestName:
    def test_equality_is_by_uid(self):
        assert Name("x", 1) == Name("y", 1)
        assert Name("x", 1) != Name("x", 2)

    def test_hash_follows_equality(self):
        assert hash(Name("x", 7)) == hash(Name("z", 7))

    def test_str_matches_paper_style(self):
        assert str(Name("t", 12)) == "t_12"

    def test_cont_sort_flag(self):
        assert Name("cc", 0, CONT_SORT).is_cont
        assert not Name("x", 0, VAL_SORT).is_cont

    def test_invalid_sort_rejected(self):
        with pytest.raises(ValueError):
            Name("x", 0, "weird")

    def test_empty_base_rejected(self):
        with pytest.raises(ValueError):
            Name("", 0)


class TestNameSupply:
    def test_fresh_names_never_repeat(self):
        supply = NameSupply()
        seen = {supply.fresh("t").uid for _ in range(100)}
        assert len(seen) == 100

    def test_fresh_val_and_cont_sorts(self):
        supply = NameSupply()
        assert not supply.fresh_val("x").is_cont
        assert supply.fresh_cont("k").is_cont

    def test_fresh_like_preserves_base_and_sort(self):
        supply = NameSupply()
        original = Name("loop", 3, CONT_SORT)
        fresh = supply.fresh_like(original)
        assert fresh.base == "loop"
        assert fresh.is_cont
        assert fresh != original

    def test_fresh_many_is_positionally_consistent(self):
        supply = NameSupply()
        originals = [Name("a", 0), Name("b", 1, CONT_SORT)]
        fresh = supply.fresh_many(originals)
        assert [n.base for n in fresh] == ["a", "b"]
        assert [n.is_cont for n in fresh] == [False, True]

    def test_start_offset(self):
        supply = NameSupply(start=50)
        assert supply.fresh().uid == 50

    def test_fresh_supply_above(self):
        supply = fresh_supply_above([3, 17, 5])
        assert supply.fresh().uid == 18

    def test_fresh_supply_above_empty(self):
        assert fresh_supply_above([]).fresh().uid == 0

    def test_thread_safety(self):
        import threading

        supply = NameSupply()
        out: list[int] = []
        lock = threading.Lock()

        def worker():
            local = [supply.fresh().uid for _ in range(200)]
            with lock:
                out.extend(local)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(set(out)) == 800


class TestNameMap:
    def test_lookup_falls_through(self):
        mapping = NameMap()
        name = Name("x", 1)
        assert mapping.lookup(name) == name

    def test_bind_and_lookup(self):
        mapping = NameMap()
        old, new = Name("x", 1), Name("x", 9)
        mapping.bind(old, new)
        assert mapping.lookup(old) == new
        assert old in mapping
        assert len(mapping) == 1

    def test_bind_rejects_sort_change(self):
        mapping = NameMap()
        with pytest.raises(ValueError):
            mapping.bind(Name("x", 1, VAL_SORT), Name("x", 2, CONT_SORT))
