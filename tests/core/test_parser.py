"""Tests for TML concrete syntax parsing (repro.core.parser)."""

import pytest

from repro.core.names import NameSupply
from repro.core.parser import ParseError, parse_application, parse_term
from repro.core.syntax import Abs, App, Char, Lit, Oid, PrimApp, UNIT, Var


class TestLiterals:
    def test_integers(self):
        assert parse_term("42") == Lit(42)
        assert parse_term("-7") == Lit(-7)

    def test_booleans_and_unit(self):
        assert parse_term("true") == Lit(True)
        assert parse_term("false") == Lit(False)
        assert parse_term("unit") == Lit(UNIT)

    def test_chars(self):
        assert parse_term("'a'") == Lit(Char("a"))
        assert parse_term(r"'\n'") == Lit(Char("\n"))

    def test_strings(self):
        assert parse_term('"hello"') == Lit("hello")
        assert parse_term(r'"with \"quote\""') == Lit('with "quote"')

    def test_oids(self):
        assert parse_term("<oid 0x005b4780>") == Lit(Oid(0x5B4780))
        assert parse_term("#oid:99") == Lit(Oid(99))


class TestAbstractions:
    def test_lambda_and_sugar_equivalence(self):
        lam = parse_term("λ(t1 t2) (f t1 t2)")
        cont = parse_term("cont(t1 t2) (f t1 t2)")
        assert isinstance(lam, Abs) and isinstance(cont, Abs)
        assert lam.is_cont_abs and cont.is_cont_abs

    def test_proc_sugar_marks_continuations(self):
        proc = parse_term("proc(x ce cc) (cc x)")
        assert proc.is_proc_abs
        assert [p.is_cont for p in proc.params] == [False, True, True]

    def test_caret_marks_continuations_in_lambda(self):
        lam = parse_term("λ(x ^k) (k x)")
        assert [p.is_cont for p in lam.params] == [False, True]

    def test_proc_requires_two_params(self):
        with pytest.raises(ParseError):
            parse_term("proc(x) (f x)")

    def test_cont_params_cannot_be_conts(self):
        with pytest.raises(ParseError):
            parse_term("cont(^k) (k)")

    def test_scoping_resolves_to_binder(self):
        term = parse_term("λ(x) (f x λ(y) (g x y))")
        outer_x = term.params[0]
        inner = term.body.args[1]
        x_use = inner.body.args[0]
        assert x_use.name == outer_x


class TestApplications:
    def test_prim_vs_value_application(self):
        prim = parse_term("(+ 1 2 ^ce ^cc)")
        assert isinstance(prim, PrimApp) and prim.prim == "+"
        call = parse_term("(f 1 2)")
        assert isinstance(call, App)

    def test_local_binding_shadows_primitive(self):
        term = parse_term("λ(size) (size 1)")
        assert isinstance(term.body, App)  # not a PrimApp

    def test_nested_application_argument_rejected(self):
        with pytest.raises(ParseError):
            parse_term("(f (g 1) 2)")

    def test_literal_head_rejected(self):
        with pytest.raises(ParseError):
            parse_term("(42 x)")

    def test_parse_application_requires_application(self):
        with pytest.raises(ParseError):
            parse_application("42")
        assert isinstance(parse_application("(f x)"), App)


class TestUidHandling:
    def test_explicit_uids_preserved(self):
        term = parse_term("λ(x_7) (f_9 x_7)")
        assert term.params[0].uid == 7
        assert term.body.fn.name.uid == 9

    def test_fresh_supply_avoids_explicit_uids(self):
        term = parse_term("λ(x_7) (f x_7)")
        f = term.body.fn.name
        assert f.uid > 7

    def test_free_identifiers_interned_per_parse(self):
        term = parse_term("(f g g)")
        a, b = term.args
        assert a.name == b.name

    def test_explicit_supply(self):
        supply = NameSupply(start=1000)
        term = parse_term("λ(x) (f x)", supply=supply)
        assert term.params[0].uid >= 1000


class TestErrors:
    def test_unbalanced_parens(self):
        with pytest.raises(ParseError):
            parse_term("(f x")

    def test_trailing_input(self):
        with pytest.raises(ParseError):
            parse_term("(f x) (g y)")

    def test_error_carries_position(self):
        with pytest.raises(ParseError) as excinfo:
            parse_term("(f \x01)")
        assert "line 1" in str(excinfo.value)

    def test_comments_skipped(self):
        term = parse_term("(f x) ; trailing comment")
        assert isinstance(term, App)

    def test_abstraction_body_must_be_application(self):
        with pytest.raises(ParseError):
            parse_term("λ(x) x")


def test_paper_example_loop_shape():
    """The for-loop example of section 2.3 parses into a Y fixpoint."""
    src = """
    (Y λ(^c0 for ^c)
       (c cont() (for 1)
          cont(i)
            (> i 10 cont() (halt 0)
                    cont() (+ i 1 ^ce cont(t2) (for t2)))))
    """
    term = parse_term(src)
    assert isinstance(term, PrimApp) and term.prim == "Y"
    fixfun = term.args[0]
    assert isinstance(fixfun, Abs)
    assert fixfun.params[0].is_cont and fixfun.params[-1].is_cont
