"""Tests for the well-formedness checker (paper section 2.2, constraints 1-5)."""

import pytest

from repro.core.names import Name, NameSupply
from repro.core.parser import parse_term
from repro.core.syntax import Abs, App, Lit, PrimApp, Var
from repro.core.wellformed import WellFormednessError, check, is_well_formed, violations
from repro.primitives.registry import default_registry


@pytest.fixture
def registry():
    return default_registry()


def test_good_proc_passes(registry):
    term = parse_term("proc(x ce cc) (+ x 1 ce cc)")
    check(term, registry)


def test_constraint4_unique_binding():
    x = Name("x", 0)
    inner = Abs((x,), App(Var(x), ()))
    # binding x again in an enclosing abstraction violates unique binding
    outer = Abs((x,), App(inner, (Lit(1),)))
    found = violations(outer)
    assert any(v.constraint == 4 for v in found)


def test_constraint1_direct_arity():
    term = parse_term("(λ(x y) (f x) 1)")  # 2-ary abstraction, 1 argument
    found = violations(term)
    assert any(v.constraint == 1 for v in found)


def test_constraint2_unknown_primitive(registry):
    term = PrimApp("no-such-prim", ())
    found = violations(term, registry)
    assert any(v.constraint == 2 for v in found)


def test_constraint2_bad_arity(registry):
    term = parse_term("(+ 1 2 ^cc)")  # + needs 2 values + 2 continuations
    found = violations(term, registry)
    assert any(v.constraint == 2 for v in found)


def test_constraint3_escaping_continuation(registry):
    # a continuation variable in a value position of a primitive
    term = parse_term("proc(x ce cc) ([]:= arr 0 ce cc)")
    found = violations(term, registry)
    assert any(v.constraint == 3 for v in found)


def test_constraint5_proc_needs_two_conts():
    # an abstraction with one continuation parameter used as a value argument
    supply = NameSupply()
    x, k = supply.fresh_val("x"), supply.fresh_cont("k")
    one_cont = Abs((x, k), App(Var(k), (Var(x),)))
    f = supply.fresh_val("f")
    term = Abs((f,), App(Var(f), (one_cont,)))
    found = violations(term)
    assert any(v.constraint == 5 for v in found)


def test_constraint5_fn_position_exempt():
    # binding a handler continuation via a direct application is legal
    term = parse_term("(λ(^h) (pushHandler h cont() (halt 0))  cont(x) (halt x))")
    assert is_well_formed(term, default_registry())


def test_y_fixpoint_shape_ok(registry):
    term = parse_term(
        "(Y λ(^c0 ^loop ^c) (c cont() (loop) cont() (halt 0)))"
    )
    assert is_well_formed(term, registry)


def test_y_fixpoint_bad_shape():
    # first parameter of the fixpoint function must be a continuation
    supply = NameSupply()
    a = supply.fresh_val("a")
    c = supply.fresh_cont("c")
    bad = PrimApp("Y", (Abs((a, c), App(Var(c), (Lit(1),))),))
    found = violations(bad)
    assert any(v.constraint == 5 for v in found)


def test_check_raises_with_message():
    x = Name("x", 0)
    bad = Abs((x,), App(Var(x), ()))
    nested = Abs((x,), App(bad, ()))
    with pytest.raises(WellFormednessError) as excinfo:
        check(nested)
    assert "constraint 4" in str(excinfo.value)


def test_literal_after_continuation_argument():
    term = parse_term("(f ^cc 3)")
    found = violations(term)
    assert any(v.constraint == 1 for v in found)
