"""Tests for occurrence counting |E|_v (repro.core.occurrences)."""

from repro.core.names import Name, NameSupply
from repro.core.occurrences import OccurrenceCensus, count, count_all, count_many
from repro.core.parser import parse_term


def test_paper_base_cases():
    x = Name("x", 0)
    y = Name("y", 1)
    from repro.core.syntax import Lit, Var

    assert count(Var(x), x) == 1  # |v|_v = 1
    assert count(Lit(5), x) == 0  # |lit|_v = 0
    assert count(Var(y), x) == 0  # |v'|_v = 0


def test_counts_through_abstractions():
    term = parse_term("(λ(x) (f x x ^ce x))")
    x = term.fn.params[0]
    assert count(term, x) == 3


def test_count_many_single_pass():
    term = parse_term("(λ(x y) (f x y x))")
    x, y = term.fn.params
    counts = count_many(term, [x, y])
    assert counts[x] == 2
    assert counts[y] == 1


def test_count_all_census():
    term = parse_term("(λ(x y) (f x y x))")
    census = count_all(term)
    x, y = term.fn.params
    assert census[x] == 2
    assert census[y] == 1
    # f is free but still counted
    f = [n for n in census if n.base == "f"][0]
    assert census[f] == 1


class TestOccurrenceCensus:
    def test_incremental_forget_and_add(self):
        term = parse_term("(λ(x) (f x x))")
        x = term.fn.params[0]
        census = OccurrenceCensus(term)
        assert census.occurrences(x) == 2

        census.forget_subtree(term.fn.body)
        assert census.occurrences(x) == 0

        census.add_subtree(term.fn.body)
        assert census.occurrences(x) == 2

    def test_zero_and_add(self):
        term = parse_term("(λ(x) (f x x))")
        x = term.fn.params[0]
        census = OccurrenceCensus(term)
        census.add(x, 5)
        assert census.occurrences(x) == 7
        census.add(x, -10)
        assert census.occurrences(x) == 0
        census.zero(x)
        assert census.occurrences(x) == 0

    def test_snapshot_is_independent(self):
        term = parse_term("(λ(x) (f x))")
        x = term.fn.params[0]
        census = OccurrenceCensus(term)
        snap = census.snapshot()
        census.zero(x)
        assert snap[x] == 1
