"""Tests for the TML construction helpers (repro.core.builder)."""

import pytest

from repro.core.builder import TmlBuilder, char_lit, int_lit, lit, oid_lit, unit_lit
from repro.core.syntax import Abs, App, Char, Lit, Oid, PrimApp, UNIT, Var
from repro.core.wellformed import is_well_formed
from repro.machine.cps_interp import Interpreter


def test_literal_helpers():
    assert int_lit(5) == Lit(5)
    assert char_lit("x") == Lit(Char("x"))
    assert oid_lit(9) == Lit(Oid(9))
    assert unit_lit() == Lit(UNIT)
    assert lit(True) == Lit(True)


def test_let_builds_binding_redex():
    b = TmlBuilder()
    term = b.let(Lit(5), "x", lambda x: PrimApp("halt", (x,)))
    assert isinstance(term, App)
    assert isinstance(term.fn, Abs)
    assert Interpreter().run(term).value == 5


def test_let_many():
    b = TmlBuilder()
    term = b.let_many(
        [Lit(2), Lit(3)],
        ["a", "b"],
        lambda vs: PrimApp(
            "+", (vs[0], vs[1], b.cont1("e", lambda e: PrimApp("halt", (Lit(-1),))),
                  b.cont1("t", lambda t: PrimApp("halt", (t,))))
        ),
    )
    assert Interpreter().run(term).value == 5


def test_let_many_length_mismatch():
    b = TmlBuilder()
    with pytest.raises(ValueError):
        b.let_many([Lit(1)], ["a", "b"], lambda vs: PrimApp("halt", (vs[0],)))


def test_proc_builds_two_continuations():
    b = TmlBuilder()
    x = b.val_name("x")
    proc = b.proc([x], lambda ce, cc: App(Var(cc), (Var(x),)))
    assert proc.is_proc_abs
    assert len(proc.cont_params) == 2
    assert is_well_formed(proc)


def test_cont_rejects_cont_params():
    b = TmlBuilder()
    k = b.cont_name("k")
    with pytest.raises(ValueError):
        b.cont([k], App(Var(k), ()))


def test_fix_builds_paper_shape():
    b = TmlBuilder()
    loop = b.cont_name("loop")
    head = Abs((b.val_name("i"),), PrimApp("halt", (Lit(1),)))
    entry = b.cont0(App(Var(loop), (Lit(0),)))
    term = b.fix(entry, [(loop, head)])
    assert isinstance(term, PrimApp) and term.prim == "Y"
    fixfun = term.args[0]
    assert fixfun.params[0].is_cont and fixfun.params[-1].is_cont
    assert Interpreter().run(term).value == 1


def test_fix_rejects_nonnullary_entry():
    b = TmlBuilder()
    bad_entry = Abs((b.val_name("x"),), PrimApp("halt", (Lit(0),)))
    with pytest.raises(ValueError):
        b.fix(bad_entry, [])


def test_call_appends_continuations():
    b = TmlBuilder()
    f = b.val_name("f")
    ce, cc = b.cont_name("ce"), b.cont_name("cc")
    call = b.call(Var(f), [Lit(1)], Var(ce), Var(cc))
    assert call.arity == 3
