"""Tests for bit-operation and conversion primitive folds."""

import pytest

from repro.core.parser import parse_term
from repro.core.syntax import Char, Lit, Var
from repro.primitives._util import wrap_int
from repro.primitives.registry import default_registry


@pytest.fixture
def registry():
    return default_registry()


def fold(registry, source):
    call = parse_term(source)
    return registry.lookup(call.prim).meta_evaluate(call)


@pytest.mark.parametrize(
    "source,expected",
    [
        ("(band 12 10 ^k)", 8),
        ("(bor 12 10 ^k)", 14),
        ("(bxor 12 10 ^k)", 6),
        ("(shl 1 10 ^k)", 1024),
        ("(shr 1024 3 ^k)", 128),
        ("(shr -8 1 ^k)", -4),  # arithmetic shift
        ("(bnot 0 ^k)", -1),
    ],
)
def test_literal_bit_folds(registry, source, expected):
    out = fold(registry, source)
    assert out.args == (Lit(expected),)


def test_shift_wraps_to_64_bits(registry):
    out = fold(registry, "(shl 1 63 ^k)")
    assert out.args == (Lit(wrap_int(1 << 63)),)
    assert out.args[0].value < 0  # two's complement sign bit


def test_shift_count_mod_64(registry):
    out = fold(registry, "(shl 3 64 ^k)")
    assert out.args == (Lit(3),)


class TestBitIdentities:
    def test_band_same_var(self, registry):
        out = fold(registry, "(band x x ^k)")
        assert isinstance(out.args[0], Var)

    def test_band_zero(self, registry):
        assert fold(registry, "(band x 0 ^k)").args == (Lit(0),)

    def test_bor_zero_identity(self, registry):
        out = fold(registry, "(bor x 0 ^k)")
        assert isinstance(out.args[0], Var) and out.args[0].name.base == "x"

    def test_bxor_same_var_is_zero(self, registry):
        assert fold(registry, "(bxor x x ^k)").args == (Lit(0),)

    def test_unknown_does_not_fold(self, registry):
        assert fold(registry, "(band x y ^k)") is None


class TestConversions:
    def test_char2int(self, registry):
        out = fold(registry, "(char2int 'A' ^k)")
        assert out.args == (Lit(65),)

    def test_int2char(self, registry):
        out = fold(registry, "(int2char 66 ^k)")
        assert out.args == (Lit(Char("B")),)

    def test_int2char_truncates_to_byte(self, registry):
        out = fold(registry, "(int2char 321 ^k)")
        assert out.args == (Lit(Char(chr(321 & 0xFF))),)

    def test_variable_does_not_fold(self, registry):
        assert fold(registry, "(char2int c ^k)") is None
        assert fold(registry, "(int2char i ^k)") is None
