"""Tests for the ``==`` identity-case primitive and its meta-evaluation."""

import pytest

from repro.core.parser import parse_term
from repro.core.syntax import App, Var
from repro.primitives.control import case_parts
from repro.primitives.registry import default_registry


@pytest.fixture
def registry():
    return default_registry()


def fold(registry, source):
    call = parse_term(source)
    return registry.lookup("==").meta_evaluate(call)


def test_paper_example():
    """(== 2 1 2 3 c1 c2 c3) -> (c2), the paper's fold example."""
    out = fold(default_registry(), "(== 2 1 2 3 ^c1 ^c2 ^c3)")
    assert isinstance(out, App)
    assert out.fn.name.base == "c2"
    assert out.args == ()


def test_else_branch_taken_when_no_tag_matches(registry):
    out = fold(registry, "(== 9 1 2 ^c1 ^c2 ^celse)")
    assert out.fn.name.base == "celse"


def test_no_else_and_no_match_does_not_fold(registry):
    # a runtime caseError cannot be folded away
    assert fold(registry, "(== 9 1 2 ^c1 ^c2)") is None


def test_variable_scrutinee_does_not_fold(registry):
    assert fold(registry, "(== x 1 2 ^c1 ^c2)") is None


def test_variable_tag_blocks_fold(registry):
    # an earlier unknown tag might match first at runtime
    assert fold(registry, "(== 2 y 2 ^c1 ^c2)") is None


def test_variable_tag_after_literal_match_still_folds(registry):
    out = fold(registry, "(== 2 2 y ^c1 ^c2)")
    assert out.fn.name.base == "c1"


def test_bool_and_int_tags_do_not_conflate(registry):
    # identity distinguishes true from 1
    out = fold(registry, "(== true 1 true ^c1 ^c2 ^celse)")
    assert out.fn.name.base == "c2"


def test_char_tags(registry):
    out = fold(registry, "(== 'x' 'x' ^c1 ^celse)")
    assert out.fn.name.base == "c1"


class TestCaseParts:
    def test_without_else(self):
        call = parse_term("(== v 1 2 ^c1 ^c2)")
        scrutinee, tags, branches, else_branch = case_parts(call)
        assert len(tags) == 2 and len(branches) == 2
        assert else_branch is None

    def test_with_else(self):
        call = parse_term("(== v 1 2 ^c1 ^c2 ^celse)")
        _, tags, branches, else_branch = case_parts(call)
        assert len(tags) == 2 and len(branches) == 2
        assert isinstance(else_branch, Var)

    def test_single_branch(self):
        call = parse_term("(== v 1 ^c1)")
        _, tags, branches, else_branch = case_parts(call)
        assert len(tags) == 1 and len(branches) == 1 and else_branch is None
