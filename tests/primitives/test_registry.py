"""Tests for the primitive registry, signatures and attributes (§2.3)."""

import pytest

from repro.primitives.effects import EffectClass, is_discardable, may_commute, mutates, observes
from repro.primitives.registry import (
    Attributes,
    Primitive,
    PrimitiveRegistry,
    Signature,
    default_registry,
)


class TestSignature:
    def test_suffix_layout(self):
        sig = Signature(value_args=2, cont_args=2)
        assert sig.accepts_arity(4)
        assert not sig.accepts_arity(3)
        assert sig.cont_positions(4) == frozenset({2, 3})
        assert sig.value_positions(4) == frozenset({0, 1})

    def test_variadic_layout(self):
        sig = Signature(value_args=0, cont_args=1, variadic=True)
        assert sig.accepts_arity(1)
        assert sig.accepts_arity(10)
        assert not sig.accepts_arity(0)
        assert sig.cont_positions(5) == frozenset({4})

    def test_case_layout_odd_no_else(self):
        sig = Signature(layout="case")
        # (== v t1 t2 c1 c2): 5 args, last 2 are continuations
        assert sig.cont_positions(5) == frozenset({3, 4})

    def test_case_layout_even_with_else(self):
        sig = Signature(layout="case")
        # (== v t1 t2 c1 c2 celse): 6 args, last 3 are continuations
        assert sig.cont_positions(6) == frozenset({3, 4, 5})
        assert not sig.accepts_arity(2)

    def test_fixpoint_layout(self):
        sig = Signature(layout="fixpoint")
        assert sig.accepts_arity(1)
        assert not sig.accepts_arity(2)
        assert sig.cont_positions(1) == frozenset()

    def test_describe(self):
        assert "continuations" in Signature(value_args=1, cont_args=1).describe()
        assert Signature(layout="case").describe().startswith("(==")


class TestRegistry:
    def test_default_contains_figure_2(self):
        registry = default_registry()
        for name in [
            "+", "-", "*", "/", "%", "<", ">", "<=", ">=",
            "band", "bor", "bxor", "shl", "shr", "bnot",
            "char2int", "int2char",
            "array", "vector", "new", "$new",
            "[]", "[]:=", "$[]", "$[]:=", "size", "move", "$move",
            "==", "Y", "pushHandler", "popHandler", "raise", "ccall",
        ]:
            assert name in registry, f"missing Fig. 2 primitive {name}"

    def test_duplicate_registration_rejected(self):
        registry = PrimitiveRegistry()
        prim = Primitive("p", Signature(value_args=1, cont_args=1))
        registry.register(prim)
        with pytest.raises(ValueError):
            registry.register(prim)
        registry.register(prim, replace_existing=True)

    def test_extension_registration(self):
        """New primitives can be added for specialized languages (§2.3)."""
        registry = default_registry().copy()
        registry.register(
            Primitive("mystats", Signature(value_args=1, cont_args=2), cost=30)
        )
        assert "mystats" in registry
        assert "mystats" not in default_registry()

    def test_lookup_and_get(self):
        registry = default_registry()
        assert registry.lookup("+").name == "+"
        assert registry.get("no-such") is None
        with pytest.raises(KeyError):
            registry.lookup("no-such")

    def test_set_interp_and_emitter_hooks(self):
        registry = PrimitiveRegistry([Primitive("p", Signature(cont_args=1))])
        handler = lambda machine, args: None
        registry.set_interp("p", handler)
        registry.set_emitter("p", handler)
        assert registry.lookup("p").interp is handler
        assert registry.lookup("p").emit is handler

    def test_worst_case_attribute_defaults(self):
        attrs = Attributes()
        assert attrs.effect == EffectClass.UNKNOWN
        assert not attrs.commutative

    def test_commutativity_attribute(self):
        registry = default_registry()
        assert registry.lookup("+").attrs.commutative
        assert registry.lookup("*").attrs.commutative
        assert not registry.lookup("-").attrs.commutative

    def test_costs_are_positive(self):
        for prim in default_registry():
            assert prim.cost >= 1

    def test_meta_evaluate_name_mismatch(self):
        from repro.core.parser import parse_term

        registry = default_registry()
        call = parse_term("(+ 1 2 ^ce ^cc)")
        with pytest.raises(ValueError):
            registry.lookup("-").meta_evaluate(call)


class TestEffects:
    def test_pure_commutes_with_everything(self):
        for effect in EffectClass:
            assert may_commute(EffectClass.PURE, effect)

    def test_write_does_not_commute_with_read(self):
        assert not may_commute(EffectClass.WRITE, EffectClass.READ)
        assert not may_commute(EffectClass.READ, EffectClass.WRITE)

    def test_reads_commute(self):
        assert may_commute(EffectClass.READ, EffectClass.READ)

    def test_unknown_never_commutes(self):
        assert not may_commute(EffectClass.UNKNOWN, EffectClass.READ)
        assert not may_commute(EffectClass.CONTROL, EffectClass.ALLOC)

    def test_discardability(self):
        assert is_discardable(EffectClass.PURE)
        assert is_discardable(EffectClass.READ)
        assert not is_discardable(EffectClass.WRITE)
        assert not is_discardable(EffectClass.IO)

    def test_observes_and_mutates(self):
        assert observes(EffectClass.READ)
        assert mutates(EffectClass.WRITE)
        assert not mutates(EffectClass.READ)
        assert not observes(EffectClass.ALLOC)
