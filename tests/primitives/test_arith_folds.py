"""Tests for meta-evaluation of arithmetic/comparison primitives (§2.3 item 2)."""

import pytest

from repro.core.parser import parse_term
from repro.core.syntax import App, Lit, Var
from repro.primitives._util import INT_MAX, INT_MIN
from repro.primitives.arith import OVERFLOW, ZERO_DIVIDE, int_div, int_rem
from repro.primitives.registry import default_registry


@pytest.fixture
def registry():
    return default_registry()


def fold(registry, source):
    call = parse_term(source)
    return registry.lookup(call.prim).meta_evaluate(call)


class TestPaperExamples:
    def test_plus_1_2_reduces_to_cc_3(self, registry):
        """(+ 1 2 ce cc) -> (cc 3), the paper's own fold example."""
        out = fold(registry, "(+ 1 2 ^ce ^cc)")
        assert isinstance(out, App)
        assert out.args == (Lit(3),)
        assert isinstance(out.fn, Var) and out.fn.name.base == "cc"


class TestConstantFolding:
    @pytest.mark.parametrize(
        "op,a,b,expected",
        [
            ("+", 2, 3, 5),
            ("-", 10, 4, 6),
            ("*", 6, 7, 42),
            ("/", 7, 2, 3),
            ("/", -7, 2, -3),  # truncation toward zero
            ("%", 7, 2, 1),
            ("%", -7, 2, -1),  # sign follows the dividend
        ],
    )
    def test_binary_folds(self, registry, op, a, b, expected):
        out = fold(registry, f"({op} {a} {b} ^ce ^cc)")
        assert out.args == (Lit(expected),)
        assert out.fn.name.base == "cc"

    def test_division_identity_holds(self):
        for a in (-9, -1, 0, 5, 13):
            for b in (-4, -1, 1, 3):
                assert a == int_div(a, b) * b + int_rem(a, b)

    def test_no_fold_with_variables(self, registry):
        assert fold(registry, "(+ x y ^ce ^cc)") is None


class TestExceptionFolds:
    def test_zero_divide(self, registry):
        out = fold(registry, "(/ 5 0 ^ce ^cc)")
        assert out.fn.name.base == "ce"
        assert out.args == (Lit(ZERO_DIVIDE),)

    def test_rem_zero_divide(self, registry):
        out = fold(registry, "(% 5 0 ^ce ^cc)")
        assert out.args == (Lit(ZERO_DIVIDE),)

    def test_add_overflow(self, registry):
        out = fold(registry, f"(+ {INT_MAX} 1 ^ce ^cc)")
        assert out.fn.name.base == "ce"
        assert out.args == (Lit(OVERFLOW),)

    def test_sub_overflow(self, registry):
        out = fold(registry, f"(- {INT_MIN} 1 ^ce ^cc)")
        assert out.args == (Lit(OVERFLOW),)

    def test_mul_overflow(self, registry):
        out = fold(registry, f"(* {INT_MAX} 2 ^ce ^cc)")
        assert out.args == (Lit(OVERFLOW),)

    def test_intmin_div_minus_one_overflows(self, registry):
        out = fold(registry, f"(/ {INT_MIN} -1 ^ce ^cc)")
        assert out.fn.name.base == "ce"


class TestAlgebraicIdentities:
    @pytest.mark.parametrize(
        "source,arg_base",
        [
            ("(+ x 0 ^ce ^cc)", "x"),
            ("(+ 0 x ^ce ^cc)", "x"),
            ("(- x 0 ^ce ^cc)", "x"),
            ("(* x 1 ^ce ^cc)", "x"),
            ("(* 1 x ^ce ^cc)", "x"),
            ("(/ x 1 ^ce ^cc)", "x"),
        ],
    )
    def test_identity_operand(self, registry, source, arg_base):
        out = fold(registry, source)
        assert isinstance(out.args[0], Var)
        assert out.args[0].name.base == arg_base

    def test_mul_by_zero(self, registry):
        out = fold(registry, "(* x 0 ^ce ^cc)")
        assert out.args == (Lit(0),)

    def test_sub_same_variable(self, registry):
        out = fold(registry, "(- x x ^ce ^cc)")
        assert out.args == (Lit(0),)

    def test_rem_by_one(self, registry):
        out = fold(registry, "(% x 1 ^ce ^cc)")
        assert out.args == (Lit(0),)


class TestComparisonFolds:
    @pytest.mark.parametrize(
        "source,taken",
        [
            ("(< 1 2 ^t ^e)", "t"),
            ("(< 2 1 ^t ^e)", "e"),
            ("(> 3 1 ^t ^e)", "t"),
            ("(<= 2 2 ^t ^e)", "t"),
            ("(>= 1 2 ^t ^e)", "e"),
        ],
    )
    def test_literal_comparisons(self, registry, source, taken):
        out = fold(registry, source)
        assert out.args == ()
        assert out.fn.name.base == taken

    def test_same_variable_le_is_true(self, registry):
        out = fold(registry, "(<= x x ^t ^e)")
        assert out.fn.name.base == "t"

    def test_same_variable_lt_is_false(self, registry):
        out = fold(registry, "(< x x ^t ^e)")
        assert out.fn.name.base == "e"

    def test_unknown_comparison_does_not_fold(self, registry):
        assert fold(registry, "(< x 1 ^t ^e)") is None


def test_fold_disabled_by_attribute(registry):
    disabled = registry.with_disabled_fold(["+"])
    call = parse_term("(+ 1 2 ^ce ^cc)")
    assert disabled.lookup("+").meta_evaluate(call) is None
    # the original registry is untouched
    assert registry.lookup("+").meta_evaluate(call) is not None
