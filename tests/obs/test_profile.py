"""VM profiler: determinism, per-closure attribution, merge, report."""

import pytest

from repro.lang import TycoonSystem
from repro.obs.profile import VMProfiler, profile_call

LOOP_MODULE = """
module loops export run helper
let helper(x: Int): Int = x * 2
let run(n: Int): Int =
  var s := 0 in var i := 0 in
  begin
    while i < n do begin s := s + helper(i); i := i + 1 end
  end; s end
end"""


def _fresh_system():
    system = TycoonSystem()
    system.compile(LOOP_MODULE)
    return system


def test_profile_counts_match_vm_instruction_count():
    system = _fresh_system()
    result, profiler = profile_call(system, "loops", "run", [10])
    assert result.value == sum(2 * i for i in range(10))
    # every executed instruction is attributed exactly once, both to its
    # opcode and to its enclosing closure
    assert profiler.total_instructions == result.instructions
    assert (
        sum(stats.instructions for stats in profiler.closures.values())
        == result.instructions
    )


def test_profile_is_deterministic_across_runs():
    _, first = profile_call(_fresh_system(), "loops", "run", [12])
    _, second = profile_call(_fresh_system(), "loops", "run", [12])
    assert first.as_dict() == second.as_dict()


def test_profile_dict_is_sorted_and_versioned():
    _, profiler = profile_call(_fresh_system(), "loops", "run", [5])
    data = profiler.as_dict()
    assert data["schema"] == "repro.profile/v2"
    assert list(data["opcodes"]) == sorted(data["opcodes"])
    assert list(data["closures"]) == sorted(data["closures"])
    assert list(data["pairs"]) == sorted(data["pairs"])
    assert data["total_instructions"] == profiler.total_instructions


def test_adjacent_pair_counts_cover_fallthrough_only():
    _, profiler = profile_call(_fresh_system(), "loops", "run", [8])
    assert profiler.pairs, "straight-line CPS code must produce adjacent pairs"
    # a pair is two opcodes executed at consecutive pcs: its count can never
    # exceed either opcode's own execution count
    for (first, second), count in profiler.pairs.items():
        assert count <= profiler.opcodes[first], (first, second)
        assert count <= profiler.opcodes[second], (first, second)
    # hot_pairs ranks by count descending
    ranked = profiler.hot_pairs()
    assert [c for _, c in ranked] == sorted(profiler.pairs.values(), reverse=True)
    top1 = profiler.hot_pairs(top=1)
    assert len(top1) == 1 and top1[0][1] == max(profiler.pairs.values())


def test_entry_closure_and_invocations_recorded():
    _, profiler = profile_call(_fresh_system(), "loops", "run", [8])
    assert profiler.closures["loops.run"].invocations == 1
    # helper is a separate top-level function: one invocation per loop trip
    assert profiler.closures["loops.helper"].invocations == 8
    assert profiler.closures["loops.helper"].instructions > 0


def test_hot_closures_ranked_by_requested_key():
    _, profiler = profile_call(_fresh_system(), "loops", "run", [8])
    by_instr = profiler.hot_closures(key="instructions")
    assert [s.instructions for _, s in by_instr] == sorted(
        (s.instructions for s in profiler.closures.values()), reverse=True
    )
    by_calls = profiler.hot_closures(top=1, key="invocations")
    assert len(by_calls) == 1
    assert by_calls[0][1].invocations == max(
        s.invocations for s in profiler.closures.values()
    )
    with pytest.raises(ValueError):
        profiler.hot_closures(key="wallclock")


def test_profiler_accumulates_and_merges():
    system = _fresh_system()
    _, profiler = profile_call(system, "loops", "run", [4])
    once = profiler.as_dict()
    # accumulate a second run into the same profiler
    _, profiler = profile_call(system, "loops", "run", [4], profiler=profiler)
    assert profiler.closures["loops.run"].invocations == 2
    assert profiler.total_instructions == 2 * once["total_instructions"]

    # merging two single-run profilers gives the same totals
    _, a = profile_call(_fresh_system(), "loops", "run", [4])
    _, b = profile_call(_fresh_system(), "loops", "run", [4])
    a.merge(b)
    assert a.as_dict() == profiler.as_dict()


def test_primitive_calls_are_counted():
    system = TycoonSystem()
    system.compile(
        """
module m export f
import math
let f(n: Int): Int = math.sqrt(n * n)
end"""
    )
    _, profiler = profile_call(system, "m", "f", [9])
    assert profiler.primitives["ccall:isqrt"] == 1


def test_format_report_lists_closures_and_opcodes():
    _, profiler = profile_call(_fresh_system(), "loops", "run", [3])
    report = profiler.format_report()
    assert "loops.run" in report
    assert "opcode" in report
    assert str(profiler.total_instructions) in report
