"""Trace-context propagation: ids, sampling, activation, schema v2."""

import random

import pytest

from repro.obs.exporters import (
    SCHEMA_VERSION,
    ListRecorder,
    TraceSchemaError,
    event_to_dict,
    validate_event,
)
from repro.obs.trace import (
    TRACER,
    TraceContext,
    Tracer,
    new_span_id,
    new_trace_id,
)


def test_ids_are_16_hex():
    for make in (new_trace_id, new_span_id):
        value = make()
        assert len(value) == 16
        int(value, 16)  # parses as hex
    assert new_trace_id() != new_trace_id()


def test_child_ids_keep_trace_and_parent():
    ctx = TraceContext("a" * 16, "b" * 16)
    trace_id, span_id, parent_id = ctx.child_ids()
    assert trace_id == "a" * 16
    assert parent_id == "b" * 16
    assert span_id != "b" * 16 and len(span_id) == 16


def test_spans_nest_into_one_trace():
    tracer = Tracer(recorder=ListRecorder())
    with tracer.span("outer") as outer:
        with tracer.span("inner") as inner:
            assert inner.trace_id == outer.trace_id
            assert inner.parent_id == outer.span_id
    events = tracer.recorder.events
    assert [e.name for e in events] == ["inner", "outer"]
    assert len({e.trace_id for e in events}) == 1


def test_activate_adopts_foreign_context():
    tracer = Tracer(recorder=ListRecorder())
    with tracer.activate("c" * 16, "d" * 16):
        with tracer.span("adopted") as span:
            assert span.trace_id == "c" * 16
            assert span.parent_id == "d" * 16
    assert tracer.current() is None  # restored after the block


def test_activate_none_clears_context():
    tracer = Tracer(recorder=ListRecorder())
    with tracer.activate("e" * 16, "f" * 16):
        with tracer.activate(None):
            assert tracer.current() is None
        assert tracer.current().trace_id == "e" * 16


def test_events_attach_to_the_enclosing_span():
    tracer = Tracer(recorder=ListRecorder())
    with tracer.span("work") as span:
        tracer.event("milestone", detail=1)
    (event,) = tracer.recorder.named("milestone")
    assert event.trace_id == span.trace_id
    assert event.parent_id == span.span_id
    assert event.span_id is None


def test_sampling_honors_rate():
    tracer = Tracer(recorder=ListRecorder(), sample_rate=0.0)
    assert not tracer.should_sample()
    tracer.sample_rate = 1.0
    assert tracer.should_sample()
    tracer.sample_rate = 0.5
    tracer.rng = random.Random(7)
    rolls = [tracer.should_sample() for _ in range(200)]
    assert 60 < sum(rolls) < 140  # ~100 expected, loose bounds


def test_span_events_serialize_as_schema_v2():
    tracer = Tracer(recorder=ListRecorder())
    with tracer.span("s"):
        pass
    (event,) = tracer.recorder.events
    data = event_to_dict(event)
    assert data["v"] == SCHEMA_VERSION == 2
    validate_event(data)
    assert data["trace_id"] and data["span_id"]
    assert data["parent_id"] is None


def test_validate_rejects_v1_events():
    tracer = Tracer(recorder=ListRecorder())
    with tracer.span("s"):
        pass
    data = event_to_dict(tracer.recorder.events[0])
    data["v"] = 1
    with pytest.raises(TraceSchemaError, match="version"):
        validate_event(data)


def test_validate_rejects_missing_context_keys():
    tracer = Tracer(recorder=ListRecorder())
    with tracer.span("s"):
        pass
    for key in ("trace_id", "span_id", "parent_id"):
        data = event_to_dict(tracer.recorder.events[0])
        del data[key]
        with pytest.raises(TraceSchemaError, match=key):
            validate_event(data)
        data = event_to_dict(tracer.recorder.events[0])
        data[key] = "short"
        with pytest.raises(TraceSchemaError, match=key):
            validate_event(data)


def test_listrecorder_traced_filters_one_trace():
    tracer = Tracer(recorder=ListRecorder())
    with tracer.span("a") as a:
        pass
    with tracer.span("b"):
        pass
    assert [e.name for e in tracer.recorder.traced(a.trace_id)] == ["a"]


def test_global_tracer_context_is_isolated_per_thread():
    import threading

    seen = {}
    with TRACER.activate("9" * 16, "8" * 16):

        def probe():
            seen["other"] = TRACER.current()

        thread = threading.Thread(target=probe)
        thread.start()
        thread.join()
        assert TRACER.current().trace_id == "9" * 16
    assert seen["other"] is None
