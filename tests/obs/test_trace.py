"""Tracer semantics and NDJSON schema round-trip."""

import json

import pytest

from repro.obs.exporters import (
    ListRecorder,
    NdjsonRecorder,
    TraceSchemaError,
    event_from_dict,
    event_to_dict,
    read_ndjson,
    validate_event,
    write_metrics_json,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NULL_SPAN, TRACER, TraceEvent, Tracer


def test_disabled_tracer_emits_nothing():
    tracer = Tracer()
    assert not tracer.enabled
    assert tracer.span("x", a=1) is NULL_SPAN
    tracer.event("x", a=1)  # dropped silently


def test_null_span_api_is_noop():
    with NULL_SPAN as span:
        assert span.set(a=1) is NULL_SPAN
    NULL_SPAN.finish()


def test_span_records_name_attrs_and_duration():
    tracer = Tracer()
    rec = ListRecorder()
    with tracer.recording(rec):
        with tracer.span("work", phase="setup") as span:
            span.set(items=3)
        tracer.event("tick", n=1)
    assert not tracer.enabled  # recorder detached afterwards
    (span_event,) = rec.named("work")
    assert span_event.kind == "span"
    assert span_event.attrs == {"phase": "setup", "items": 3}
    assert span_event.dur >= 0
    (point,) = rec.named("tick")
    assert point.kind == "event"
    assert point.dur is None


def test_span_context_manager_tags_errors():
    tracer = Tracer()
    rec = ListRecorder()
    with tracer.recording(rec):
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("nope")
    (event,) = rec.events
    assert event.attrs["error"] == "RuntimeError"


def test_recording_restores_previous_recorder():
    tracer = Tracer()
    outer, inner = ListRecorder(), ListRecorder()
    with tracer.recording(outer):
        with tracer.recording(inner):
            tracer.event("deep")
        tracer.event("shallow")
    assert [e.name for e in inner.events] == ["deep"]
    assert [e.name for e in outer.events] == ["shallow"]


def test_ndjson_round_trip(tmp_path):
    path = tmp_path / "trace.ndjson"
    events = [
        TraceEvent(
            "rewrite.pass", "span", 100.5, 0.002,
            {"fired": 3, "rules": {"beta": 2}},
            trace_id="a1" * 8, span_id="b2" * 8, parent_id="c3" * 8,
        ),
        TraceEvent("query.rule", "event", 101.0, None, {"rule": "index-select"}),
    ]
    with NdjsonRecorder(str(path)) as recorder:
        for event in events:
            recorder.record(event)
    decoded = read_ndjson(str(path))
    assert len(decoded) == 2
    restored = [event_from_dict(d) for d in decoded]
    assert restored == events


def test_event_to_dict_coerces_unsafe_attrs():
    class Opaque:
        def __repr__(self):
            return "<opaque>"

    event = TraceEvent("x", "event", 1.0, None, {"obj": Opaque(), "seq": (1, 2)})
    data = event_to_dict(event)
    assert data["attrs"] == {"obj": "<opaque>", "seq": [1, 2]}
    json.dumps(data)  # must be serializable


@pytest.mark.parametrize(
    "mutation, message",
    [
        ({"v": 1}, "version"),
        ({"v": 3}, "version"),
        ({"name": ""}, "name"),
        ({"kind": "metric"}, "kind"),
        ({"ts": "soon"}, "ts"),
        ({"dur": None}, "dur"),
        ({"attrs": []}, "attrs"),
    ],
)
def test_validate_event_rejects_malformed(mutation, message):
    good = event_to_dict(TraceEvent("x", "span", 1.0, 0.1, {}))
    validate_event(good)
    bad = {**good, **mutation}
    with pytest.raises(TraceSchemaError, match=message):
        validate_event(bad)


def test_point_event_must_not_carry_duration():
    data = event_to_dict(TraceEvent("x", "event", 1.0, None, {}))
    validate_event(data)
    with pytest.raises(TraceSchemaError):
        validate_event({**data, "dur": 0.5})


def test_read_ndjson_reports_bad_lines(tmp_path):
    path = tmp_path / "bad.ndjson"
    path.write_text('{"v": 1}\n')
    with pytest.raises(TraceSchemaError, match="line 1"):
        read_ndjson(str(path))
    path.write_text("not json\n")
    with pytest.raises(TraceSchemaError, match="not JSON"):
        read_ndjson(str(path))


def test_global_tracer_feeds_rewrite_spans(tmp_path):
    """End-to-end: optimizing a module under the global TRACER produces a
    schema-valid NDJSON trace containing rewrite spans."""
    from repro.lang import TycoonSystem

    path = tmp_path / "opt.ndjson"
    with NdjsonRecorder(str(path)) as recorder:
        with TRACER.recording(recorder):
            system = TycoonSystem()
            system.compile(
                """
module m export f
let f(x: Int): Int = (x + 0) * 2
end"""
            )
    events = read_ndjson(str(path))
    names = {e["name"] for e in events}
    assert "rewrite.optimize" in names
    assert "rewrite.pass" in names
    for event in events:
        assert event["v"] == 2
    # every span in the file belongs to a trace
    spans = [e for e in events if e["kind"] == "span"]
    assert spans and all(e["trace_id"] and e["span_id"] for e in spans)


def test_write_metrics_json(tmp_path):
    registry = MetricsRegistry()
    registry.counter("a").inc(5)
    path = tmp_path / "metrics.json"
    payload = write_metrics_json(str(path), registry, meta={"scale": 0.5})
    on_disk = json.loads(path.read_text())
    assert on_disk == payload
    assert on_disk["schema"] == "repro.metrics/v1"
    assert on_disk["metrics"]["a"]["value"] == 5
    assert on_disk["meta"]["scale"] == 0.5
