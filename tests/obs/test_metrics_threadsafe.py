"""Thread-safety of the metrics registry (server workers share instruments)."""

import threading

from repro.obs.metrics import MetricsRegistry


def _hammer(threads_n, worker):
    threads = [threading.Thread(target=worker) for _ in range(threads_n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60)


def test_counter_increments_are_not_lost():
    registry = MetricsRegistry()
    counter = registry.counter("t.counter", "test")
    per_thread = 20_000

    def worker():
        for _ in range(per_thread):
            counter.inc()

    _hammer(8, worker)
    assert counter.value == 8 * per_thread


def test_counter_bulk_increments():
    registry = MetricsRegistry()
    counter = registry.counter("t.bulk", "test")

    def worker():
        for _ in range(5_000):
            counter.inc(3)

    _hammer(8, worker)
    assert counter.value == 8 * 5_000 * 3


def test_gauge_inc_dec_balance():
    registry = MetricsRegistry()
    gauge = registry.gauge("t.gauge", "test")

    def worker():
        for _ in range(10_000):
            gauge.inc()
            gauge.dec()

    _hammer(8, worker)
    assert gauge.value == 0


def test_histogram_observation_count_is_exact():
    registry = MetricsRegistry()
    histogram = registry.histogram("t.hist", "test")
    per_thread = 10_000

    def worker():
        for i in range(per_thread):
            histogram.observe(i % 7)

    _hammer(8, worker)
    snapshot = histogram.snapshot()
    assert snapshot["count"] == 8 * per_thread
    assert snapshot["total"] == 8 * sum(i % 7 for i in range(per_thread))
    assert snapshot["min"] == 0
    assert snapshot["max"] == 6


def test_get_or_create_races_return_one_instrument():
    registry = MetricsRegistry()
    seen = []
    barrier = threading.Barrier(8)

    def worker():
        barrier.wait()
        seen.append(registry.counter("t.race", "test"))

    _hammer(8, worker)
    assert len(seen) == 8
    assert all(instrument is seen[0] for instrument in seen)


def test_reset_while_incrementing_keeps_consistency():
    """reset() under concurrent inc() must not corrupt internal state."""
    registry = MetricsRegistry()
    counter = registry.counter("t.reset", "test")
    stop = threading.Event()

    def incrementer():
        while not stop.is_set():
            counter.inc()

    threads = [threading.Thread(target=incrementer) for _ in range(4)]
    for t in threads:
        t.start()
    for _ in range(50):
        registry.reset()
    stop.set()
    for t in threads:
        t.join(timeout=30)
    assert isinstance(counter.value, int)
    assert counter.value >= 0
