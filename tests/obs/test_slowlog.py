"""SlowLog: a bounded ring that keeps only the slowest requests."""

from repro.obs.slowlog import SlowLog


def test_records_until_capacity():
    log = SlowLog(capacity=4)
    for i in range(4):
        assert log.record("get", latency_us=100 + i)
    assert len(log) == 4
    assert log.stats() == {"capacity": 4, "kept": 4, "recorded": 4}


def test_keeps_only_the_slowest():
    log = SlowLog(capacity=3)
    for latency in (10, 500, 20, 900, 30, 700):
        log.record("call", latency_us=latency)
    kept = [entry["latency_us"] for entry in log.entries()]
    assert kept == [900, 700, 500]  # slowest first
    assert log.stats()["recorded"] == 6
    assert log.stats()["kept"] == 3


def test_fast_requests_do_not_evict_slow_ones():
    log = SlowLog(capacity=2)
    log.record("set", latency_us=1000)
    log.record("set", latency_us=2000)
    assert not log.record("set", latency_us=5)  # below the floor: dropped
    assert [e["latency_us"] for e in log.entries()] == [2000, 1000]


def test_threshold_tracks_the_ring_floor():
    log = SlowLog(capacity=2)
    assert log.threshold_us() is None  # not full: everything enters
    log.record("get", latency_us=50)
    log.record("get", latency_us=80)
    assert log.threshold_us() == 50


def test_entry_carries_request_context():
    log = SlowLog(capacity=8)
    log.record(
        "call",
        latency_us=1234,
        outcome="step_limit",
        trace_id="deadbeefdeadbeef",
        session=7,
        steps=10_000,
        lock_wait_us=55,
    )
    (entry,) = log.entries()
    assert entry["op"] == "call"
    assert entry["latency_us"] == 1234
    assert entry["outcome"] == "step_limit"
    assert entry["trace_id"] == "deadbeefdeadbeef"
    assert entry["session"] == 7
    assert entry["steps"] == 10_000
    assert entry["lock_wait_us"] == 55


def test_entries_n_limits_from_the_slow_end():
    log = SlowLog(capacity=8)
    for latency in (10, 80, 40, 90):
        log.record("get", latency_us=latency)
    assert [e["latency_us"] for e in log.entries(2)] == [90, 80]


def test_clear_resets_the_ring_but_not_the_counter():
    log = SlowLog(capacity=4)
    log.record("get", latency_us=10)
    log.clear()
    assert len(log) == 0
    assert log.entries() == []
    assert log.stats()["recorded"] == 1


def test_equal_latencies_all_kept_in_insertion_tiebreak():
    log = SlowLog(capacity=3)
    for _ in range(3):
        log.record("get", latency_us=42)
    assert [e["latency_us"] for e in log.entries()] == [42, 42, 42]
