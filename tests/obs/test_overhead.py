"""Disabled-mode overhead guard.

The observability layer promises near-zero cost while tracing is off and no
profiler is attached.  These tests pin the mechanisms that keep that true
(no allocation on the disabled path, profiler defaulting to None) and put a
deliberately generous wall-clock ceiling on the disabled fast path so a
regression that adds real work per call (formatting, allocation, locking)
fails loudly without making CI flaky.
"""

import time

from repro.lang import TycoonSystem
from repro.obs.trace import NULL_SPAN, TRACER, Tracer

PROGRAM = """
module m export run
let run(n: Int): Int =
  var s := 0 in var i := 0 in
  begin while i < n do begin s := s + i; i := i + 1 end end; s end
end"""


def test_disabled_span_is_shared_singleton():
    tracer = Tracer()
    a = tracer.span("one", x=1)
    b = tracer.span("two")
    assert a is NULL_SPAN and b is NULL_SPAN  # zero allocations when off


def test_global_tracer_disabled_by_default():
    assert TRACER.enabled is False
    assert TRACER.span("anything") is NULL_SPAN


def test_vm_runs_unprofiled_by_default():
    system = TycoonSystem()
    system.compile(PROGRAM)
    vm = system.vm()
    assert vm.profiler is None
    result = vm.call(system.closure("m", "run"), [10])
    assert result.value == 45


def test_disabled_tracing_calls_are_cheap():
    tracer = Tracer()
    iterations = 100_000
    t0 = time.perf_counter()
    for _ in range(iterations):
        tracer.span("hot.path", a=1)
        tracer.event("hot.event")
    elapsed = time.perf_counter() - t0
    # ~0.05 us/call on any recent CPython; the 5 us/call ceiling only trips
    # if the disabled path starts doing real work
    assert elapsed < iterations * 5e-6, f"disabled tracer too slow: {elapsed:.3f}s"


def test_profiled_run_matches_unprofiled_semantics():
    """Profiling must not change results or instruction counts."""
    from repro.obs.profile import profile_call

    system = TycoonSystem()
    system.compile(PROGRAM)
    plain = system.vm().call(system.closure("m", "run"), [50])
    profiled, profiler = profile_call(system, "m", "run", [50])
    assert profiled.value == plain.value
    assert profiled.instructions == plain.instructions
    assert profiler.total_instructions == plain.instructions
