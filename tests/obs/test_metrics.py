"""Metrics registry: counters, gauges, histograms, deterministic snapshots."""

import pytest

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry


def test_counter_inc_and_snapshot():
    registry = MetricsRegistry()
    c = registry.counter("vm.test", "test counter")
    c.inc()
    c.inc(41)
    assert c.value == 42
    assert registry.snapshot()["vm.test"] == {"type": "counter", "value": 42}


def test_counter_get_or_create_returns_same_object():
    registry = MetricsRegistry()
    a = registry.counter("x", "first")
    b = registry.counter("x")
    assert a is b


def test_metric_kind_conflict_raises():
    registry = MetricsRegistry()
    registry.counter("m", "a counter")
    with pytest.raises(TypeError):
        registry.gauge("m")


def test_gauge_set_inc_dec():
    registry = MetricsRegistry()
    g = registry.gauge("depth")
    g.set(7)
    g.inc(2)
    g.dec()
    assert registry.snapshot()["depth"]["value"] == 8


def test_histogram_buckets_power_of_two():
    h = Histogram("sizes")
    values = (0, 1, 2, 3, 4, 1000, 1 << 40)
    for value in values:
        h.observe(value)
    snap = h.snapshot()
    assert snap["count"] == 7
    assert snap["min"] == 0
    assert snap["max"] == 1 << 40
    assert snap["total"] == sum(values)
    # small values get exact one-integer buckets; a value past the last
    # fixed bound goes to the +inf overflow bucket
    assert snap["buckets"]["0"] == 1
    assert snap["buckets"]["1"] == 1
    assert snap["buckets"]["+inf"] == 1
    assert h.mean == sum(values) / len(values)


def test_histogram_snapshot_deterministic():
    a, b = Histogram("a"), Histogram("b")
    for h in (a, b):
        for value in (3, 17, 17, 260):
            h.observe(value)
    assert a.snapshot() == b.snapshot()


def test_snapshot_sorted_and_repeatable():
    registry = MetricsRegistry()
    registry.counter("z.last").inc()
    registry.counter("a.first").inc(3)
    registry.histogram("m.sizes").observe(5)
    snap1 = registry.snapshot()
    snap2 = registry.snapshot()
    assert snap1 == snap2
    assert list(snap1) == sorted(snap1)


def test_reset_clears_values_keeps_registration():
    registry = MetricsRegistry()
    c = registry.counter("n", "described")
    c.inc(9)
    h = registry.histogram("h")
    h.observe(12)
    registry.reset()
    assert c.value == 0
    assert h.count == 0 and h.min is None
    assert [row[0] for row in registry.describe()] == ["h", "n"]
    assert dict((name, kind) for name, kind, _ in registry.describe()) == {
        "n": "counter",
        "h": "histogram",
    }


def test_global_vm_counters_track_execution():
    from repro.lang import TycoonSystem
    from repro.machine import vm as vm_mod

    system = TycoonSystem()
    system.compile(
        """
module m export f
let f(x: Int): Int = x + 1
end"""
    )
    before = vm_mod._VM_INSTRUCTIONS.value
    runs_before = vm_mod._VM_RUNS.value
    result = system.vm().call(system.closure("m", "f"), [1])
    assert result.value == 2
    assert vm_mod._VM_RUNS.value == runs_before + 1
    assert vm_mod._VM_INSTRUCTIONS.value - before == result.instructions


def test_standalone_counter_and_gauge():
    c = Counter("c")
    c.inc(2)
    assert c.snapshot()["value"] == 2
    g = Gauge("g")
    g.set(-3)
    assert g.snapshot()["value"] == -3
