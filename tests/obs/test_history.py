"""MetricsHistory: the in-image ring of metric snapshots (``obs:history``)."""

from repro.obs.history import (
    HISTORY_ROOT,
    MetricsHistory,
    read_history,
    sanitize_snapshot,
)
from repro.obs.metrics import MetricsRegistry
from repro.store.heap import ObjectHeap


def make_registry():
    registry = MetricsRegistry()
    registry.counter("test.requests").inc(5)
    registry.gauge("test.depth").set(3)
    registry.histogram("test.latency_us").observe(120)
    return registry


# ------------------------------------------------------------- sanitizing


def test_sanitize_rounds_floats_and_freezes_lists():
    value = {
        "mean": 12.7,
        "tags": ["a", "b"],
        "nested": {"p99": 1500.2, "ok": True, "none": None},
        7: "int-key",
    }
    clean = sanitize_snapshot(value)
    assert clean["mean"] == 13
    assert clean["tags"] == ("a", "b")
    assert clean["nested"] == {"p99": 1500, "ok": True, "none": None}
    assert clean["7"] == "int-key"  # keys become strings


def test_sanitize_degrades_unknown_types_to_repr():
    class Odd:
        def __repr__(self):
            return "<odd>"

    assert sanitize_snapshot({"x": Odd()}) == {"x": "<odd>"}


# -------------------------------------------------------------- the ring


def test_record_assigns_monotone_seq_and_keeps_meta():
    history = MetricsHistory(capacity=8)
    registry = make_registry()
    first = history.record(registry, ts_ms=1000, role="primary")
    second = history.record(registry, ts_ms=2000, role="primary")
    assert (first["seq"], second["seq"]) == (0, 1)
    assert first["metrics"]["test.requests"]["value"] == 5
    assert first["meta"]["role"] == "primary"
    assert len(history) == 2


def test_ring_trims_to_capacity():
    history = MetricsHistory(capacity=3)
    registry = make_registry()
    for i in range(7):
        history.record(registry, ts_ms=i)
    kept = history.entries()
    assert [e["seq"] for e in kept] == [4, 5, 6]
    stats = history.stats()
    assert stats["kept"] == 3
    assert stats["recorded"] == 7


def test_entries_n_returns_most_recent():
    history = MetricsHistory(capacity=8)
    registry = make_registry()
    for i in range(4):
        history.record(registry, ts_ms=i)
    assert [e["seq"] for e in history.entries(2)] == [2, 3]


# ------------------------------------------------------------ persistence


def test_flush_and_read_round_trip(tmp_path):
    path = str(tmp_path / "history.tyc")
    history = MetricsHistory(capacity=8)
    registry = make_registry()
    history.record(registry, ts_ms=1111, role="primary", version=4)
    with ObjectHeap(path) as heap:
        history.flush(heap)
        heap.commit()
    with ObjectHeap(path) as heap:
        assert heap.root(HISTORY_ROOT) is not None
        stored = read_history(heap)
    assert len(stored) == 1
    entry = stored[0]
    assert entry["seq"] == 0
    assert entry["ts_ms"] == 1111
    assert entry["meta"] == {"role": "primary", "version": 4}
    assert entry["metrics"]["test.requests"]["value"] == 5


def test_flush_is_noop_when_clean(tmp_path):
    path = str(tmp_path / "clean.tyc")
    history = MetricsHistory()
    with ObjectHeap(path) as heap:
        history.flush(heap)  # never recorded: nothing to persist
        heap.commit()
    with ObjectHeap(path) as heap:
        assert heap.root(HISTORY_ROOT) is None
        assert read_history(heap) == []


def test_attach_continues_seq_across_restart(tmp_path):
    path = str(tmp_path / "restart.tyc")
    registry = make_registry()
    first = MetricsHistory(capacity=8)
    first.record(registry, ts_ms=1)
    first.record(registry, ts_ms=2)
    with ObjectHeap(path) as heap:
        first.flush(heap)
        heap.commit()

    # "restart": a fresh ring attaches to the same image
    second = MetricsHistory(capacity=8)
    with ObjectHeap(path) as heap:
        assert second.attach(heap) == 2
        entry = second.record(registry, ts_ms=3)
        assert entry["seq"] == 2  # continues after the persisted ring
        second.flush(heap)
        heap.commit()
    with ObjectHeap(path) as heap:
        stored = read_history(heap)
    assert [e["seq"] for e in stored] == [0, 1, 2]


def test_attach_respects_capacity(tmp_path):
    path = str(tmp_path / "cap.tyc")
    registry = make_registry()
    big = MetricsHistory(capacity=16)
    for i in range(6):
        big.record(registry, ts_ms=i)
    with ObjectHeap(path) as heap:
        big.flush(heap)
        heap.commit()
    small = MetricsHistory(capacity=2)
    with ObjectHeap(path) as heap:
        assert small.attach(heap) == 2
    assert [e["seq"] for e in small.entries()] == [4, 5]
