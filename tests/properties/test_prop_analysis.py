"""Property-based tests for the static analysis layer (hypothesis)."""

from hypothesis import given, settings

from repro.analysis import infer_effect, lint_term, verify_code
from repro.analysis.effects import effect_le
from repro.core.names import NameSupply
from repro.core.syntax import Abs, max_uid
from repro.core.wellformed import violations
from repro.machine.codegen import compile_function
from repro.primitives.registry import default_registry
from repro.rewrite import optimize, reduce_only
from repro.rewrite.reduction import reduce_to_fixpoint

from tests.properties.test_prop_core import straightline_terms

_REGISTRY = default_registry()


def _wrap_proc(term):
    """Close a straight-line body into the Abs shape codegen expects."""
    supply = NameSupply(start=max_uid(term) + 1)
    return Abs((supply.fresh_cont("ce"), supply.fresh_cont("cc")), term)


@given(straightline_terms())
@settings(max_examples=100)
def test_linearity_agrees_with_wellformed(term):
    assert lint_term(term, _REGISTRY, include_usage=False) == []
    assert violations(term, _REGISTRY) == []


@given(straightline_terms())
@settings(max_examples=100)
def test_every_reduction_pass_preserves_wf_and_effect(term):
    """Per-pass invariant, not just end-to-end: checked via the on_pass hook."""
    effect_at_entry = infer_effect(term, _REGISTRY)

    def check_pass(before, after, fired):
        assert sum(fired.values()) > 0
        assert violations(after, _REGISTRY) == []
        assert effect_le(infer_effect(after, _REGISTRY), effect_at_entry)

    reduce_to_fixpoint(term, _REGISTRY, on_pass=check_pass)


@given(straightline_terms())
@settings(max_examples=100)
def test_checked_pipeline_accepts_sound_rules(term):
    """The real rule set never trips the checked pipeline."""
    checked = optimize(term, _REGISTRY, check=True).term
    plain = optimize(term, _REGISTRY).term
    assert checked == plain


@given(straightline_terms())
@settings(max_examples=100)
def test_optimizer_never_increases_effect(term):
    before = infer_effect(term, _REGISTRY)
    after = infer_effect(optimize(term, _REGISTRY).term, _REGISTRY)
    assert effect_le(after, before)


@given(straightline_terms())
@settings(max_examples=100)
def test_verifier_accepts_everything_codegen_emits(term):
    code = compile_function(_wrap_proc(term), _REGISTRY, name="prop")
    assert verify_code(code, name="prop") == []


@given(straightline_terms())
@settings(max_examples=60)
def test_verifier_accepts_optimized_code_too(term):
    reduced = reduce_only(_wrap_proc(term), _REGISTRY).term
    code = compile_function(reduced, _REGISTRY, name="prop-reduced")
    assert verify_code(code, name="prop-reduced") == []
