"""Property-based soundness tests for the rewrite engine."""

from hypothesis import given, settings

from repro.core.syntax import term_size
from repro.core.wellformed import violations
from repro.machine.cps_interp import Interpreter
from repro.machine.codegen import compile_function
from repro.machine.runtime import UncaughtTmlException
from repro.machine.vm import VM, instantiate
from repro.primitives.registry import default_registry
from repro.rewrite import OptimizerConfig, RuleConfig, optimize, reduce_only

from tests.properties.test_prop_core import straightline_terms

_REGISTRY = default_registry()


def _observe(term):
    try:
        return ("value", Interpreter(registry=_REGISTRY).run(term).value)
    except UncaughtTmlException as exc:
        return ("raise", exc.value)


@given(straightline_terms())
@settings(max_examples=100)
def test_reduction_preserves_semantics(term):
    before = _observe(term)
    reduced = reduce_only(term, _REGISTRY).term
    assert _observe(reduced) == before


@given(straightline_terms())
@settings(max_examples=100)
def test_full_optimizer_preserves_semantics(term):
    before = _observe(term)
    optimized = optimize(term, _REGISTRY).term
    assert _observe(optimized) == before


@given(straightline_terms())
@settings(max_examples=100)
def test_rewrites_preserve_well_formedness(term):
    optimized = optimize(term, _REGISTRY).term
    assert violations(optimized, _REGISTRY) == []


@given(straightline_terms())
@settings(max_examples=100)
def test_reduction_never_grows(term):
    reduced = reduce_only(term, _REGISTRY).term
    assert term_size(reduced) <= term_size(term)


@given(straightline_terms())
@settings(max_examples=60)
def test_optimizer_idempotent(term):
    once = optimize(term, _REGISTRY).term
    twice = optimize(once, _REGISTRY).term
    assert once == twice


@given(straightline_terms())
@settings(max_examples=60)
def test_each_single_rule_ablation_stays_sound(term):
    before = _observe(term)
    for rule in ("subst", "fold", "remove", "eta-reduce"):
        config = OptimizerConfig(rules=RuleConfig.without(rule))
        out = optimize(term, _REGISTRY, config).term
        assert _observe(out) == before, rule


@given(straightline_terms())
@settings(max_examples=60, deadline=None)
def test_optimized_code_agrees_on_vm(term):
    """Closed straight-line programs run identically on the VM pre/post opt."""
    from repro.core.freevars import free_names
    from repro.core.names import NameSupply
    from repro.core.syntax import Abs

    if free_names(term):
        return
    before = _observe(term)
    supply = NameSupply(start=10_000_000)
    wrapped = Abs((supply.fresh_cont("ce"), supply.fresh_cont("cc")), term)
    code = compile_function(wrapped, _REGISTRY)

    def vm_observe(code_obj):
        try:
            return ("value", VM().call(instantiate(code_obj), []).value)
        except UncaughtTmlException as exc:
            return ("raise", exc.value)

    assert vm_observe(code) == before
    optimized = optimize(wrapped, _REGISTRY).term
    if isinstance(optimized, Abs):
        assert vm_observe(compile_function(optimized, _REGISTRY)) == before
