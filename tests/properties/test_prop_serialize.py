"""Property-based round-trip tests for the store codecs."""

from hypothesis import given, settings

from repro.core.syntax import Char, Oid, Unit
from repro.machine.runtime import TmlArray, TmlByteArray, TmlVector
from repro.store.serialize import decode_value, encode_value

from tests.conftest import runtime_values


def _equivalent(a, b) -> bool:
    if isinstance(a, TmlArray):
        return isinstance(b, TmlArray) and len(a.slots) == len(b.slots) and all(
            _equivalent(x, y) for x, y in zip(a.slots, b.slots)
        )
    if isinstance(a, TmlVector):
        return isinstance(b, TmlVector) and len(a.slots) == len(b.slots) and all(
            _equivalent(x, y) for x, y in zip(a.slots, b.slots)
        )
    if isinstance(a, TmlByteArray):
        return isinstance(b, TmlByteArray) and bytes(a.data) == bytes(b.data)
    if isinstance(a, tuple):
        return (
            isinstance(b, tuple)
            and len(a) == len(b)
            and all(_equivalent(x, y) for x, y in zip(a, b))
        )
    if isinstance(a, dict):
        if not isinstance(b, dict) or set(a) != set(b):
            return False
        return all(_equivalent(a[k], b[k]) for k in a)
    if isinstance(a, bool) or isinstance(b, bool):
        return type(a) is type(b) and a == b
    return type(a) is type(b) and a == b or (a is None and b is None)


@given(runtime_values())
@settings(max_examples=200)
def test_value_roundtrip(value):
    assert _equivalent(decode_value(encode_value(value)), value)


@given(runtime_values())
@settings(max_examples=100)
def test_encoding_deterministic(value):
    assert encode_value(value) == encode_value(value)
