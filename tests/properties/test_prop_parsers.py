"""Fuzz properties: parsers fail cleanly on arbitrary input."""

from hypothesis import given, settings, strategies as st

from repro.core.parser import ParseError, parse_term
from repro.lang.errors import TLError
from repro.lang.lexer import tokenize
from repro.lang.parser import parse_expression, parse_module


@given(st.text(max_size=200))
@settings(max_examples=200)
def test_tml_parser_never_crashes(text):
    """Arbitrary input either parses or raises ParseError — nothing else."""
    try:
        parse_term(text)
    except ParseError:
        pass


@given(st.text(max_size=200))
@settings(max_examples=200)
def test_tl_parser_never_crashes(text):
    try:
        parse_module(text)
    except TLError:
        pass


@given(st.text(max_size=200))
@settings(max_examples=150)
def test_tl_expression_parser_never_crashes(text):
    try:
        parse_expression(text)
    except TLError:
        pass


#: token soup: syntactically plausible fragments, harder than raw text
_FRAGMENTS = st.sampled_from(
    [
        "module", "export", "let", "var", "end", "if", "then", "else",
        "begin", "while", "do", "for", "upto", "in", "tuple", "try",
        "catch", "raise", "select", "from", "where", "as", "exists", "fn",
        "(", ")", "[", "]", ",", ";", ":", "=", ":=", "=>", "+", "-", "*",
        "/", "==", "<", "x", "y", "f", "42", '"s"', "'c'", "true", "Int",
    ]
)


@given(st.lists(_FRAGMENTS, max_size=30))
@settings(max_examples=200)
def test_tl_parser_survives_token_soup(fragments):
    source = " ".join(fragments)
    try:
        parse_module(source)
    except TLError:
        pass


@given(st.lists(_FRAGMENTS, max_size=30))
@settings(max_examples=150)
def test_lexer_total_on_fragments(fragments):
    tokens = tokenize(" ".join(fragments))
    assert tokens[-1].kind == "eof"
