"""Property-based tests on core TML invariants (hypothesis)."""

from hypothesis import given, settings, strategies as st

from repro.core.freevars import free_names
from repro.core.names import NameSupply
from repro.core.occurrences import count, count_all
from repro.core.parser import parse_term
from repro.core.pretty import PrettyOptions, pretty
from repro.core.substitution import alpha_rename, substitute
from repro.core.syntax import (
    Abs,
    App,
    Lit,
    PrimApp,
    Var,
    bound_names,
    iter_subterms,
    max_uid,
    term_size,
)
from repro.core.wellformed import violations
from repro.store.ptml import decode_ptml, encode_ptml

# ---------------------------------------------------------------------------
# a strategy for random well-formed executable TML programs: straight-line
# CPS chains of arithmetic over bound variables, ending in halt
# ---------------------------------------------------------------------------


@st.composite
def straightline_terms(draw):
    supply = NameSupply()
    steps = draw(st.lists(st.sampled_from(["+", "-", "*", "band", "bor"]), min_size=0, max_size=8))
    bound: list = []

    def value():
        if bound and draw(st.booleans()):
            return Var(draw(st.sampled_from(bound)))
        return Lit(draw(st.integers(-100, 100)))

    def build(index: int):
        if index == len(steps):
            return PrimApp("halt", (value(),))
        op = steps[index]
        t = supply.fresh_val("t")
        rest_bound_marker = len(bound)
        bound.append(t)
        rest = build(index + 1)
        del bound[rest_bound_marker:]
        if op in ("band", "bor"):
            return PrimApp(op, (value(), value(), Abs((t,), rest)))
        err = supply.fresh_val("e")
        handler = Abs((err,), PrimApp("halt", (Lit(-1),)))
        return PrimApp(op, (value(), value(), handler, Abs((t,), rest)))

    return build(0)


@given(straightline_terms())
@settings(max_examples=120)
def test_generated_terms_are_well_formed(term):
    from repro.primitives.registry import default_registry

    assert violations(term, default_registry()) == []


@given(straightline_terms())
@settings(max_examples=120)
def test_alpha_rename_invariants(term):
    supply = NameSupply(start=max_uid(term) + 1)
    renamed = alpha_rename(term, supply)
    assert term_size(renamed) == term_size(term)
    assert free_names(renamed) == free_names(term)
    old_bound = {n.uid for n in bound_names(term)}
    new_bound = {n.uid for n in bound_names(renamed)}
    assert old_bound.isdisjoint(new_bound) or not old_bound


@given(straightline_terms())
@settings(max_examples=120)
def test_ptml_roundtrip_exact(term):
    assert decode_ptml(encode_ptml(term)).term == term


@given(straightline_terms())
@settings(max_examples=80)
def test_pretty_parse_roundtrip(term):
    text = pretty(term, PrettyOptions(show_uids=True))
    assert parse_term(text) == term


@given(straightline_terms(), st.integers(-5, 5))
@settings(max_examples=80)
def test_substitution_eliminates_all_occurrences(term, payload):
    binders = bound_names(term)
    if not binders:
        return
    target = binders[0]
    out = substitute(term, Lit(payload), target)
    assert count(out, target) == 0


@given(straightline_terms())
@settings(max_examples=80)
def test_census_matches_individual_counts(term):
    census = count_all(term)
    for name in set(census):
        assert census[name] == count(term, name)


@given(straightline_terms())
@settings(max_examples=80)
def test_size_equals_subterm_count(term):
    assert term_size(term) == sum(1 for _ in iter_subterms(term))
