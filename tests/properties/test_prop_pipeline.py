"""The grand differential property: Python oracle ≡ interpreter ≡ VM ≡
optimized VM ≡ reflectively optimized VM, on random TL expressions.

This is the strongest whole-pipeline guarantee in the suite: any unsound
rewrite rule, codegen bug or machine divergence shows up as a counterexample.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.lang import CompileOptions, TycoonSystem
from repro.machine.runtime import UncaughtTmlException
from repro.reflect import optimize_function
from repro.rewrite import OptimizerConfig

from tests.conftest import tl_int_expression


def _build_systems():
    return (
        TycoonSystem(options=CompileOptions(optimizer=None)),
        TycoonSystem(options=CompileOptions(optimizer=OptimizerConfig())),
    )


_SYSTEMS = _build_systems()
_counter = [0]


def _observe(call):
    try:
        return ("value", call().value)
    except UncaughtTmlException as exc:
        return ("raise", exc.value)


@given(tl_int_expression(max_depth=3))
@settings(max_examples=60, deadline=None)
def test_pipeline_matches_oracle(case):
    source_expr, expected = case
    _counter[0] += 1
    module = f"gen{_counter[0]}"
    source = f"module {module} export f\nlet f(): Int = {source_expr}\nend"

    unopt, opt = _SYSTEMS
    unopt.compile(source)
    opt.compile(source)

    outcomes = {
        "unoptimized": _observe(lambda: unopt.call(module, "f", [])),
        "static": _observe(lambda: opt.call(module, "f", [])),
    }
    fast = optimize_function(opt, module, "f")
    outcomes["dynamic"] = _observe(lambda: opt.vm().call(fast, []))

    if isinstance(expected, int):
        want = ("value", expected)
    else:
        want = ("raise", expected)

    for label, outcome in outcomes.items():
        assert outcome == want, (label, source_expr, outcome, want)


@given(tl_int_expression(max_depth=2), st.integers(-50, 50))
@settings(max_examples=40, deadline=None)
def test_expression_with_parameter(case, arg):
    """The expression appears under a parameter binding; all engines agree
    with each other (oracle-free self-consistency with runtime inputs)."""
    source_expr, _ = case
    _counter[0] += 1
    module = f"par{_counter[0]}"
    source = (
        f"module {module} export f\n"
        f"let f(p0: Int): Int = p0 + ({source_expr})\n"
        "end"
    )
    unopt, opt = _SYSTEMS
    unopt.compile(source)
    opt.compile(source)

    base = _observe(lambda: unopt.call(module, "f", [arg]))
    static = _observe(lambda: opt.call(module, "f", [arg]))
    fast = optimize_function(opt, module, "f")
    dynamic = _observe(lambda: opt.vm().call(fast, [arg]))
    assert base == static == dynamic, (source_expr, base, static, dynamic)
