"""Differential soundness of the abstract interpreter (hypothesis).

The contract under test: whatever kind of value the *live VM* actually
delivers for a program, the abstract interpreter's summary must predict a
kind at least that high in the lattice (``observed <= predicted``).  A
negative control proves the harness would catch an unsound summary.
"""

from hypothesis import given, settings

from repro.analysis.absint import (
    Summary,
    analyze_code,
    kind_le,
    kind_of_value,
)
from repro.analysis.effects import EFFECT_RANK, infer_effect
from repro.core.syntax import Lit, PrimApp
from repro.machine.codegen import compile_function
from repro.machine.vm import VM, instantiate
from repro.primitives.effects import EffectClass
from repro.primitives.registry import default_registry

from tests.properties.test_prop_analysis import _wrap_proc
from tests.properties.test_prop_core import straightline_terms

_REGISTRY = default_registry()


def _compile_and_analyze(term):
    code = compile_function(_wrap_proc(term), _REGISTRY, name="prop")
    return code, analyze_code(code, name="prop", registry=_REGISTRY)


@given(straightline_terms())
@settings(max_examples=120)
def test_vm_result_kind_is_below_the_predicted_kind(term):
    """Soundness: observed result kind <= summary's observable kind."""
    code, analysis = _compile_and_analyze(term)
    result = VM().call(instantiate(code), [])
    observed = kind_of_value(result.value)
    predicted = analysis.summary.observable
    assert kind_le(observed, predicted), (
        f"VM delivered {observed} but the summary only admits {predicted}"
    )


@given(straightline_terms())
@settings(max_examples=120)
def test_absint_never_flags_honest_codegen_output(term):
    _, analysis = _compile_and_analyze(term)
    assert [d for d in analysis.diagnostics if d.is_error] == []


@given(straightline_terms())
@settings(max_examples=100)
def test_code_effect_never_exceeds_term_effect(term):
    """The TAM105 relation holds on honestly-compiled code."""
    _, analysis = _compile_and_analyze(term)
    code_effect = EffectClass(analysis.summary.effect)
    term_effect = infer_effect(term, _REGISTRY)
    assert EFFECT_RANK[code_effect] <= EFFECT_RANK[term_effect]


def test_negative_control_unsound_summary_is_caught():
    """The differential harness has teeth: a lying summary fails it."""
    term = PrimApp("halt", (Lit(7),))
    code = compile_function(_wrap_proc(term), _REGISTRY, name="ctrl")
    result = VM().call(instantiate(code), [])
    observed = kind_of_value(result.value)
    lying = Summary(
        name="ctrl", arity=2, is_proc=True,
        result="bot", halts="str", raises="bot", effect="pure",
    )
    assert not kind_le(observed, lying.observable)
    # while the real analysis passes the same check
    honest = analyze_code(code, name="ctrl", registry=_REGISTRY).summary
    assert kind_le(observed, honest.observable)
