"""Backup/restore and commit-log archiving: segment sealing, manifest
bookkeeping, full + incremental backups of a live daemon, point-in-time
restore by version and by timestamp, and the crash-safety envelope.

Offline pieces (archiver, segment codec, manifest) run against a bare
:class:`~repro.store.commitlog.CommitLog`; the backup/restore paths run
against an in-process daemon, as ``make recovery-sim`` does at scale.
"""

import json
import os
import time

import pytest

from repro.server import ReproServer, ServerConfig, connect
from repro.store.commitlog import ChangeRecord, CommitLog
from repro.store.faults import FaultPlan
from repro.store.fsck import fsck_image
from repro.store.heap import ObjectHeap
from repro.store.recovery import (
    ArchiveError,
    LogArchiver,
    archive_dir,
    backup_info,
    commitlog_path,
    full_backup,
    incremental_backup,
    iter_archive,
    load_manifest,
    read_segment,
    restore_image,
)


def _record(version, *, ts_us=0, key=b"payload"):
    return ChangeRecord(
        version=version,
        term=1,
        oid_counter=version + 10,
        objects=((version, key + str(version).encode()),),
        roots={"r": version},
        node="test",
        committed_ts_us=ts_us or version * 1000,
    )


def _log_with(path, versions):
    log = CommitLog(path)
    for v in versions:
        log.append(_record(v))
    return log


# ---------------------------------------------------------------- archiver


class TestLogArchiver:
    def test_seal_writes_segment_and_manifest(self, tmp_path):
        image = str(tmp_path / "db.tyc")
        with _log_with(commitlog_path(image), [1, 2, 3]) as log:
            archiver = LogArchiver(image)
            assert archiver.seal(log) == 3  # three records sealed
        assert archiver.sealed_version == 3
        manifest = load_manifest(archive_dir(image))
        assert manifest["sealed_version"] == 3
        (entry,) = manifest["segments"]
        assert entry["first_version"] == 1
        assert entry["last_version"] == 3
        records = list(
            read_segment(os.path.join(archive_dir(image), entry["name"]))
        )
        assert [r.version for r in records] == [1, 2, 3]
        assert records[0].objects == ((1, b"payload1"),)

    def test_seal_is_incremental_and_idempotent(self, tmp_path):
        image = str(tmp_path / "db.tyc")
        with _log_with(commitlog_path(image), [1, 2]) as log:
            archiver = LogArchiver(image)
            archiver.seal(log)
            # nothing new: no second segment
            archiver.seal(log)
            assert len(load_manifest(archive_dir(image))["segments"]) == 1
            log.append(_record(3))
            log.append(_record(4))
            assert archiver.seal(log) == 2  # only the two new records
            assert archiver.sealed_version == 4
        manifest = load_manifest(archive_dir(image))
        assert manifest["sealed_version"] == 4
        assert [e["first_version"] for e in manifest["segments"]] == [1, 3]

    def test_iter_archive_dedups_overlapping_seals(self, tmp_path):
        image = str(tmp_path / "db.tyc")
        archiver = LogArchiver(image)
        with _log_with(commitlog_path(image), [1, 2, 3]) as log:
            archiver.seal(log)
        # a second log whose tail overlaps the first seal
        with _log_with(str(tmp_path / "other.tylg"), [2, 3, 4, 5]) as log:
            archiver.seal(log)
        versions = [r.version for r in iter_archive(archive_dir(image))]
        assert versions == [1, 2, 3, 4, 5]
        assert [
            r.version for r in iter_archive(archive_dir(image), from_version=4)
        ] == [4, 5]

    def test_torn_segment_tail_ends_iteration(self, tmp_path):
        image = str(tmp_path / "db.tyc")
        with _log_with(commitlog_path(image), [1, 2, 3]) as log:
            archiver = LogArchiver(image)
            archiver.seal(log)
        (entry,) = load_manifest(archive_dir(image))["segments"]
        seg = os.path.join(archive_dir(image), entry["name"])
        with open(seg, "r+b") as f:
            f.truncate(os.path.getsize(seg) - 5)
        assert [r.version for r in read_segment(seg)] == [1, 2]


# ----------------------------------------------------------- backup/restore


def _make_server(tmp_path, **overrides):
    config = ServerConfig(
        workers=2, queue_size=32, lock_timeout=10.0, pgo_interval=None,
        history_interval=None, profile=False, replicate=True, node_id="p1",
        **overrides,
    )
    server = ReproServer(str(tmp_path / "db.tyc"), config)
    server.start()
    return server


def _backup_kwargs(server):
    return {
        "txns": server.txns,
        "log": server.replication.log,
        "archiver": server.archiver,
    }


def _digest(image_path):
    heap = ObjectHeap(image_path)
    try:
        return heap.logical_digest(), {
            name: heap.load_root(name) for name in heap.root_names()
        }
    finally:
        heap.close()


class TestBackupRestore:
    def test_full_then_incremental_then_restore(self, tmp_path):
        server = _make_server(tmp_path)
        dest = str(tmp_path / "backups")
        try:
            with connect(server.port) as db:
                for i in range(8):
                    db.set(f"k{i}", i)
            full = full_backup(server.image_path, dest, **_backup_kwargs(server))
            assert full["mode"] == "full"
            assert fsck_image(os.path.join(dest, "base.tyc")).ok
            with connect(server.port) as db:
                for i in range(8, 16):
                    db.set(f"k{i}", i)
            incr = incremental_backup(
                server.image_path, dest, **_backup_kwargs(server)
            )
            assert incr["mode"] == "incremental"
            assert incr["epoch"] == 2
            expected = server.heap.logical_digest()
        finally:
            server.stop()
        out = str(tmp_path / "restored.tyc")
        restored = restore_image(dest, out)
        assert restored["records_applied"] > 0
        digest, roots = _digest(out)
        assert digest == expected
        assert roots["k15"] == 15

    def test_point_in_time_by_version_and_ts(self, tmp_path):
        server = _make_server(tmp_path)
        dest = str(tmp_path / "backups")
        try:
            with connect(server.port) as db:
                db.set("victim", "clean")
            full_backup(server.image_path, dest, **_backup_kwargs(server))
            with connect(server.port) as db:
                db.set("keep", 1)
            point_version = server.repl_version()
            point_digest = server.heap.logical_digest()
            time.sleep(0.002)
            point_ts = time.time()
            time.sleep(0.002)
            with connect(server.port) as db:
                db.set("victim", "POISON")
            incremental_backup(server.image_path, dest, **_backup_kwargs(server))
        finally:
            server.stop()

        by_version = restore_image(
            dest, str(tmp_path / "byv.tyc"), to_version=point_version
        )
        assert by_version["restored_version"] == point_version
        digest, roots = _digest(str(tmp_path / "byv.tyc"))
        assert digest == point_digest
        assert roots["victim"] == "clean"
        assert roots["keep"] == 1

        restore_image(
            dest, str(tmp_path / "byts.tyc"), to_ts_us=int(point_ts * 1e6)
        )
        digest, roots = _digest(str(tmp_path / "byts.tyc"))
        assert digest == point_digest
        assert roots["victim"] == "clean"

    def test_restore_refuses_point_before_base(self, tmp_path):
        server = _make_server(tmp_path)
        dest = str(tmp_path / "backups")
        try:
            with connect(server.port) as db:
                for i in range(4):
                    db.set(f"k{i}", i)
            base_version = server.repl_version()
            full_backup(server.image_path, dest, **_backup_kwargs(server))
        finally:
            server.stop()
        with pytest.raises(ArchiveError, match="base full backup"):
            restore_image(
                dest, str(tmp_path / "out.tyc"), to_version=base_version - 1
            )

    def test_lost_restore_point_is_an_error(self, tmp_path):
        server = _make_server(tmp_path)
        dest = str(tmp_path / "backups")
        try:
            with connect(server.port) as db:
                db.set("a", 1)
            full_backup(server.image_path, dest, **_backup_kwargs(server))
            with connect(server.port) as db:
                db.set("b", 2)
            beyond = server.repl_version() + 10
        finally:
            server.stop()
        # the archive never reached `beyond`: restore must refuse, loudly
        with pytest.raises(ArchiveError, match="restore point lost"):
            restore_image(dest, str(tmp_path / "out.tyc"), to_version=beyond)

    def test_incremental_requires_full_first(self, tmp_path):
        server = _make_server(tmp_path)
        try:
            with pytest.raises((ArchiveError, OSError)):
                incremental_backup(
                    server.image_path,
                    str(tmp_path / "nothing"),
                    **_backup_kwargs(server),
                )
        finally:
            server.stop()

    def test_crash_mid_backup_never_claims_completeness(self, tmp_path):
        server = _make_server(tmp_path)
        dest = str(tmp_path / "backups")
        plan = FaultPlan()
        try:
            with connect(server.port) as db:
                for i in range(6):
                    db.set(f"k{i}", i)
            plan.arm_write_failure(2)
            with pytest.raises((OSError, ArchiveError)):
                full_backup(
                    server.image_path,
                    dest,
                    **_backup_kwargs(server),
                    file_factory=plan.file_factory,
                )
            # either no base at all, or a verified base with no backup.json
            base = os.path.join(dest, "base.tyc")
            if os.path.exists(base):
                assert fsck_image(base).ok
                with pytest.raises((OSError, ArchiveError)):
                    backup_info(dest)
            plan.heal()
            full_backup(server.image_path, dest, **_backup_kwargs(server))
            expected = server.heap.logical_digest()
        finally:
            server.stop()
        out = str(tmp_path / "restored.tyc")
        restore_image(dest, out)
        digest, _ = _digest(out)
        assert digest == expected

    def test_crash_mid_restore_never_publishes(self, tmp_path):
        server = _make_server(tmp_path)
        dest = str(tmp_path / "backups")
        plan = FaultPlan()
        try:
            with connect(server.port) as db:
                for i in range(6):
                    db.set(f"k{i}", i)
            full_backup(server.image_path, dest, **_backup_kwargs(server))
            with connect(server.port) as db:
                db.set("later", 7)
            incremental_backup(server.image_path, dest, **_backup_kwargs(server))
            expected = server.heap.logical_digest()
        finally:
            server.stop()
        out = str(tmp_path / "restored.tyc")
        plan.arm_write_failure(2)
        with pytest.raises((OSError, ArchiveError)):
            restore_image(dest, out, file_factory=plan.file_factory)
        assert not os.path.exists(out)
        plan.heal()
        restore_image(dest, out)
        digest, roots = _digest(out)
        assert digest == expected
        assert roots["later"] == 7

    def test_backup_info_rejects_missing_and_corrupt_meta(self, tmp_path):
        with pytest.raises((OSError, ArchiveError)):
            backup_info(str(tmp_path / "nope"))
        dest = tmp_path / "bad"
        dest.mkdir()
        (dest / "backup.json").write_text("{not json")
        with pytest.raises((ArchiveError, json.JSONDecodeError)):
            backup_info(str(dest))


class TestServerArchiving:
    def test_daemon_archives_on_log_reset(self, tmp_path):
        server = _make_server(tmp_path)
        try:
            with connect(server.port) as db:
                for i in range(10):
                    db.set(f"k{i}", i)
            assert server.archiver is not None
            tip = server.repl_version()
            # whatever trims the log (gap recovery, resync, retention)
            # goes through reset(), whose hook must seal the tail first
            server.replication.log.reset()
            sealed = server.archiver.sealed_version
            assert sealed == tip
            versions = [
                r.version for r in iter_archive(archive_dir(server.image_path))
            ]
            assert versions == list(range(1, sealed + 1))
        finally:
            server.stop()

    def test_no_archive_flag_disables_attachment(self, tmp_path):
        server = _make_server(tmp_path, archive=False)
        try:
            assert server.archiver is None
        finally:
            server.stop()
