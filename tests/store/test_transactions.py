"""Crash-consistency and transactional behaviour of the object heap.

The commit protocol is shadow-paging-lite: data pages and the new object
table are written first, the header write is the single commit point.  These
tests simulate crashes at each stage and require the previous committed
state to remain fully reachable.
"""

import os

import pytest

from repro.machine.runtime import TmlArray
from repro.store.heap import ObjectHeap, Transaction
from repro.store.pager import Pager


@pytest.fixture
def path(tmp_path):
    return str(tmp_path / "tx.tyc")


class _CrashBeforeHeader(Exception):
    pass


def _commit_crashing_before_header(heap: ObjectHeap) -> None:
    """Run commit but crash at the header write (the commit point)."""
    original = heap._pager.sync_header

    def boom():
        raise _CrashBeforeHeader()

    heap._pager.sync_header = boom
    try:
        with pytest.raises(_CrashBeforeHeader):
            heap.commit()
    finally:
        heap._pager.sync_header = original


def test_crash_before_commit_point_preserves_old_state(path):
    heap = ObjectHeap(path)
    oid = heap.store(TmlArray(["v1"]))
    heap.set_root("data", oid)
    heap.commit()

    # second transaction crashes before the header write
    heap.update(oid, TmlArray(["v2"]))
    _commit_crashing_before_header(heap)
    heap._pager.close()

    recovered = ObjectHeap(path)
    assert recovered.load_root("data").slots == ["v1"]
    recovered.close()


def test_crash_before_first_commit_leaves_empty_store(path):
    heap = ObjectHeap(path)
    heap.set_root("x", heap.store("lost"))
    _commit_crashing_before_header(heap)
    heap._pager.close()

    recovered = ObjectHeap(path)
    assert recovered.root_names() == []
    recovered.close()


def test_successful_commit_then_crash_is_durable(path):
    heap = ObjectHeap(path)
    heap.set_root("k", heap.store(TmlArray([1, 2, 3])))
    heap.commit()
    # simulate a hard stop: no close(), just drop the handles
    heap._pager._file.flush()
    del heap

    recovered = ObjectHeap(path)
    assert recovered.load_root("k").slots == [1, 2, 3]
    recovered.close()


def test_repeated_updates_do_not_leak_pages(path):
    heap = ObjectHeap(path)
    oid = heap.store(TmlArray([0] * 1000))
    heap.commit()
    stable_size = None
    for version in range(10):
        heap.update(oid, TmlArray([version] * 1000))
        heap.commit()
        if version == 3:
            stable_size = heap.file_size
    # superseded versions were recycled: the file stops growing
    assert heap.file_size == stable_size
    heap.close()


def test_transaction_isolation_of_new_objects(path):
    heap = ObjectHeap(path)
    with Transaction(heap):
        keep = heap.store("kept")
        heap.set_root("keep", keep)
    with pytest.raises(RuntimeError):
        with Transaction(heap):
            heap.set_root("gone", heap.store("discarded"))
            raise RuntimeError("rollback")
    # the aborted root assignment is *not* rolled back for root names set
    # before the failure? — set_root mutates the in-memory directory; commit
    # never ran, so reopening shows only the committed root
    heap.close()
    recovered = ObjectHeap(path)
    assert recovered.root_names() == ["keep"]
    recovered.close()


def test_sequential_sessions_accumulate(path):
    for session in range(3):
        heap = ObjectHeap(path)
        heap.set_root(f"s{session}", heap.store(f"value{session}"))
        heap.commit()
        heap.close()
    heap = ObjectHeap(path)
    assert heap.root_names() == ["s0", "s1", "s2"]
    assert heap.load_root("s1") == "value1"
    heap.close()


def test_large_object_spans_many_pages(path):
    heap = ObjectHeap(path, page_size=4096)
    big = TmlArray(list(range(20_000)))
    heap.set_root("big", heap.store(big))
    heap.commit()
    heap.close()

    recovered = ObjectHeap(path)
    assert recovered.load_root("big").slots == list(range(20_000))
    recovered.close()


def test_compiled_module_transactional(path):
    """A realistic unit of work: compile + persist a module atomically."""
    from repro.lang import TycoonSystem

    heap = ObjectHeap(path)
    system = TycoonSystem(heap=heap)
    system.compile("module tx export f let f(x: Int): Int = x + 1 end")
    with Transaction(heap):
        system.persist("tx")
    heap.close()

    heap2 = ObjectHeap(path)
    system2 = TycoonSystem(heap=heap2)
    system2.load("tx")
    assert system2.call("tx", "f", [41]).value == 42
    heap2.close()
