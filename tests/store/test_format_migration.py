"""Format v1 → v2 migration (repro.store.format).

The v1 writer below reproduces the seed on-disk layout byte-for-byte
(single ``<4sIQQQQQ`` header, 8-byte chain links, no checksums), so these
tests prove real pre-upgrade images — which no current code can produce —
still open: explicitly via :func:`migrate_v1_image`, implicitly through
``Pager``/``ObjectHeap``, and via ``fsck --repair``.
"""

import struct

import pytest

from repro.store.format import migrate_v1_image, read_v1_image
from repro.store.fsck import fsck_image
from repro.store.heap import ObjectHeap
from repro.store.pager import MAGIC, PageError, Pager
from repro.store.serialize import Encoder, decode_value, encode_value

V1_PAGE_SIZE = 256


def write_v1_image(path, objects, roots, page_size=V1_PAGE_SIZE, oid_counter=None):
    """Emit a format-v1 image file: ``objects`` is oid -> payload bytes."""
    capacity = page_size - 8
    pages = {}
    npages = 1

    def write_chain(payload):
        nonlocal npages
        chunks = [
            payload[i : i + capacity] for i in range(0, len(payload), capacity)
        ] or [b""]
        ids = list(range(npages, npages + len(chunks)))
        npages += len(chunks)
        for index, (pid, chunk) in enumerate(zip(ids, chunks)):
            nxt = ids[index + 1] if index + 1 < len(ids) else 0
            pages[pid] = struct.pack("<Q", nxt) + chunk
        return ids[0]

    entries = [(oid, write_chain(payload), len(payload))
               for oid, payload in objects.items()]
    table = Encoder()
    table.uvarint(len(entries))
    for oid, head, length in entries:
        table.uvarint(oid)
        table.uvarint(head)
        table.uvarint(length)
    table.uvarint(len(roots))
    for name, oid in roots.items():
        table.text(name)
        table.uvarint(oid)
    raw = table.getvalue()
    table_page = write_chain(raw)

    if oid_counter is None:
        oid_counter = max(objects, default=0) + 1
    header = struct.pack(
        "<4sIQQQQQ", b"TYC1", page_size, npages, 0, table_page, len(raw), oid_counter
    )
    with open(path, "wb") as f:
        f.write(header + b"\x00" * (page_size - len(header)))
        for pid in range(1, npages):
            body = pages.get(pid, b"")
            f.write(body + b"\x00" * (page_size - len(body)))
    return path


@pytest.fixture
def v1_image(tmp_path):
    """A v1 image with a small object, a multi-page blob, and two roots."""
    path = str(tmp_path / "legacy.tyc")
    objects = {
        1: encode_value(("alpha", 42)),
        2: encode_value("V" * 900),  # spans several 256-byte v1 pages
    }
    write_v1_image(path, objects, {"a": 1, "blob": 2}, oid_counter=3)
    return path


class TestReadV1:
    def test_lifts_objects_and_roots(self, v1_image):
        image = read_v1_image(v1_image)
        assert image.page_size == V1_PAGE_SIZE
        assert image.roots == {"a": 1, "blob": 2}
        assert decode_value(image.objects[1]) == ("alpha", 42)
        assert decode_value(image.objects[2]) == "V" * 900
        assert image.oid_counter == 3

    def test_rejects_non_v1_file(self, tmp_path):
        path = str(tmp_path / "not-v1.tyc")
        with open(path, "wb") as f:
            f.write(b"NOPE" + b"\x00" * 300)
        with pytest.raises(PageError, match="not a format v1 image"):
            read_v1_image(path)


class TestMigration:
    def test_explicit_migration_preserves_everything(self, v1_image):
        summary = migrate_v1_image(v1_image)
        assert summary["from_format"] == 1 and summary["to_format"] == 2
        assert summary["objects"] == 2 and summary["roots"] == 2
        with open(v1_image, "rb") as f:
            assert f.read(4) == MAGIC
        heap = ObjectHeap(v1_image, V1_PAGE_SIZE)
        try:
            assert heap.load_root("a") == ("alpha", 42)
            assert heap.load_root("blob") == "V" * 900
            assert int(heap.root("a")) == 1  # OIDs preserved, not renumbered
        finally:
            heap.close()

    def test_pager_migrates_automatically(self, v1_image):
        with Pager(v1_image) as pager:
            assert pager.image_info()["format"] == 2

    def test_heap_opens_v1_image_transparently(self, v1_image):
        heap = ObjectHeap(v1_image)  # default page size: tolerated on reopen
        try:
            assert heap.load_root("a") == ("alpha", 42)
            heap.set_root("new", heap.store("post-migration"))
            heap.commit()
        finally:
            heap.close()
        assert fsck_image(v1_image, page_size=V1_PAGE_SIZE).ok

    def test_migrate_false_refuses_v1(self, v1_image):
        with pytest.raises(PageError, match="format v1"):
            Pager(v1_image, migrate=False)

    def test_migrated_image_is_fsck_clean(self, v1_image):
        migrate_v1_image(v1_image)
        result = fsck_image(v1_image, page_size=V1_PAGE_SIZE)
        assert result.ok
        assert result.objects_checked == 2

    def test_oid_counter_survives(self, v1_image):
        migrate_v1_image(v1_image)
        heap = ObjectHeap(v1_image, V1_PAGE_SIZE)
        try:
            fresh = heap.store("new object")
            assert int(fresh) >= 3  # never collides with migrated OIDs
        finally:
            heap.close()

    def test_empty_v1_image(self, tmp_path):
        path = str(tmp_path / "empty.tyc")
        write_v1_image(path, {}, {})
        migrate_v1_image(path)
        heap = ObjectHeap(path, V1_PAGE_SIZE)
        try:
            assert heap.root_names() == []
        finally:
            heap.close()


class TestFsckOnV1:
    def test_fsck_reports_v1_without_touching_it(self, v1_image):
        result = fsck_image(v1_image)
        assert result.format == 1
        assert result.ok
        with open(v1_image, "rb") as f:
            assert f.read(4) == b"TYC1"  # check alone never rewrites

    def test_fsck_repair_migrates(self, v1_image):
        result = fsck_image(v1_image, repair=True)
        assert result.repaired
        after = fsck_image(v1_image, page_size=V1_PAGE_SIZE)
        assert after.format == 2 and after.ok
