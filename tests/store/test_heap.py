"""Tests for the object heap: OIDs, roots, commit/abort (repro.store.heap)."""

import pytest

from repro.core.syntax import Oid
from repro.machine.runtime import TmlArray, TmlVector
from repro.store.heap import HeapError, ObjectHeap, Transaction


@pytest.fixture
def path(tmp_path):
    return str(tmp_path / "heap.tyc")


class TestInMemory:
    def test_store_and_load(self):
        heap = ObjectHeap()
        oid = heap.store(TmlArray([1, 2]))
        assert heap.load(oid).slots == [1, 2]

    def test_identity_interning(self):
        heap = ObjectHeap()
        obj = TmlArray([1])
        assert heap.store(obj) == heap.store(obj)
        assert heap.oid_of(obj) is not None

    def test_unknown_oid(self):
        with pytest.raises(HeapError):
            ObjectHeap().load(Oid(404))

    def test_commit_is_noop(self):
        heap = ObjectHeap()
        oid = heap.store("value")
        heap.commit()
        assert heap.load(oid) == "value"


class TestPersistence:
    def test_commit_and_reopen(self, path):
        heap = ObjectHeap(path)
        oid = heap.store(TmlArray(["persisted", 1]))
        heap.set_root("data", oid)
        heap.commit()
        heap.close()

        heap2 = ObjectHeap(path)
        assert heap2.load_root("data").slots == ["persisted", 1]
        heap2.close()

    def test_nested_references_swizzle(self, path):
        heap = ObjectHeap(path)
        inner = TmlArray([42])
        outer = TmlArray([heap.store(inner), "x"])
        heap.set_root("outer", heap.store(outer))
        heap.commit()
        heap.close()

        heap2 = ObjectHeap(path)
        loaded = heap2.load_root("outer")
        assert loaded.slots[0].slots == [42]
        heap2.close()

    def test_loaded_objects_cached(self, path):
        heap = ObjectHeap(path)
        oid = heap.store(TmlArray([1]))
        heap.commit()
        heap.close()

        heap2 = ObjectHeap(path)
        assert heap2.load(oid) is heap2.load(oid)
        heap2.close()

    def test_update_rewrites_object(self, path):
        heap = ObjectHeap(path)
        oid = heap.store(TmlArray([1]))
        heap.commit()
        heap.update(oid, TmlArray([2, 3]))
        heap.commit()
        heap.close()

        heap2 = ObjectHeap(path)
        assert heap2.load(oid).slots == [2, 3]
        heap2.close()

    def test_in_place_mutation_with_update(self, path):
        heap = ObjectHeap(path)
        arr = TmlArray([1])
        oid = heap.store(arr)
        heap.commit()
        arr.slots.append(2)
        heap.update(oid)
        heap.commit()
        heap.close()

        heap2 = ObjectHeap(path)
        assert heap2.load(oid).slots == [1, 2]
        heap2.close()

    def test_oid_counter_survives(self, path):
        heap = ObjectHeap(path)
        first = heap.store("a")
        heap.commit()
        heap.close()
        heap2 = ObjectHeap(path)
        second = heap2.store("b")
        assert int(second) > int(first)
        heap2.close()

    def test_uncommitted_objects_lost_on_reopen(self, path):
        heap = ObjectHeap(path)
        committed = heap.store("yes")
        heap.commit()
        lost = heap.store("no")
        heap.close()

        heap2 = ObjectHeap(path)
        assert heap2.load(committed) == "yes"
        with pytest.raises(HeapError):
            heap2.load(lost)
        heap2.close()


class TestAbort:
    def test_abort_discards_new_objects(self, path):
        heap = ObjectHeap(path)
        oid = heap.store("temp")
        heap.abort()
        with pytest.raises(HeapError):
            heap.load(oid)
        heap.close()

    def test_transaction_context_manager(self, path):
        heap = ObjectHeap(path)
        with Transaction(heap):
            oid = heap.store("committed")
            heap.set_root("t", oid)
        heap.close()
        heap2 = ObjectHeap(path)
        assert heap2.load_root("t") == "committed"
        heap2.close()

    def test_transaction_aborts_on_exception(self, path):
        heap = ObjectHeap(path)
        with pytest.raises(RuntimeError):
            with Transaction(heap):
                heap.store("doomed")
                raise RuntimeError("boom")
        assert not list(heap.oids())
        heap.close()


class TestRoots:
    def test_root_names(self, path):
        heap = ObjectHeap(path)
        heap.set_root("b", heap.store(1))
        heap.set_root("a", heap.store(2))
        assert heap.root_names() == ["a", "b"]
        assert heap.root("missing") is None
        with pytest.raises(HeapError):
            heap.load_root("missing")
        heap.close()


class TestMetrics:
    def test_stored_size(self, path):
        heap = ObjectHeap(path)
        oid = heap.store(TmlVector(list(range(100))))
        size_estimate = heap.stored_size(oid)  # uncommitted: estimate
        heap.commit()
        assert heap.stored_size(oid) == size_estimate
        assert size_estimate > 100
        heap.close()

    def test_file_size_grows(self, path):
        heap = ObjectHeap(path)
        before = heap.file_size
        heap.store(TmlVector([0] * 5000))
        heap.commit()
        assert heap.file_size > before
        heap.close()

    def test_closed_heap_rejects_operations(self, path):
        heap = ObjectHeap(path)
        heap.close()
        with pytest.raises(HeapError):
            heap.store(1)
