"""Unit tests for the durable, checksummed commit log (repro.store.commitlog)."""

import os

import pytest

from repro.store.commitlog import ChangeRecord, CommitLog, CommitLogError


def record(version, term=1, node="n1"):
    return ChangeRecord(
        version=version,
        term=term,
        oid_counter=100 + version,
        objects=((7, b"payload-%d" % version), (8, b"\x00\x01\x02")),
        roots={"root": 7, "other": 8},
        node=node,
    )


class TestRoundtrip:
    def test_binary_encode_decode(self):
        original = record(3)
        assert ChangeRecord.decode(original.encode()) == original

    def test_wire_roundtrip(self):
        original = record(5, term=2)
        assert ChangeRecord.from_wire(original.as_wire()) == original

    def test_malformed_wire_is_structured(self):
        with pytest.raises(CommitLogError):
            ChangeRecord.from_wire({"version": 1})


class TestAppendRead:
    def test_append_then_read_from(self, tmp_path):
        path = tmp_path / "log"
        with CommitLog(path) as log:
            for v in range(1, 6):
                log.append(record(v))
            assert log.first_version == 1
            assert log.last_version == 5
            got = log.read_from(3)
        assert [r.version for r in got] == [3, 4, 5]

    def test_non_contiguous_append_is_refused(self, tmp_path):
        with CommitLog(tmp_path / "log") as log:
            log.append(record(1))
            with pytest.raises(CommitLogError):
                log.append(record(3))

    def test_read_before_first_version_is_an_error(self, tmp_path):
        with CommitLog(tmp_path / "log") as log:
            log.append(record(4))
            log.append(record(5))
            with pytest.raises(CommitLogError):
                log.read_from(2)  # predates the log: caller must resync

    def test_read_past_end_is_empty(self, tmp_path):
        with CommitLog(tmp_path / "log") as log:
            log.append(record(1))
            assert log.read_from(2) == []

    def test_term_at_tracks_fencing_lineage(self, tmp_path):
        with CommitLog(tmp_path / "log") as log:
            log.append(record(1, term=1))
            log.append(record(2, term=3))
            assert log.term_at(1) == 1
            assert log.term_at(2) == 3
            assert log.term_at(9) is None


class TestRecovery:
    def test_reopen_recovers_index(self, tmp_path):
        path = tmp_path / "log"
        with CommitLog(path) as log:
            for v in range(1, 4):
                log.append(record(v))
        with CommitLog(path) as log:
            assert log.last_version == 3
            assert [r.version for r in log.read_from(1)] == [1, 2, 3]

    def test_torn_tail_is_truncated(self, tmp_path):
        path = tmp_path / "log"
        with CommitLog(path) as log:
            log.append(record(1))
            log.append(record(2))
            size = os.path.getsize(path)
        # simulate a crash mid-append: garbage half-frame at the tail
        with open(path, "ab") as f:
            f.write(b"\xff" * 11)
        with CommitLog(path) as log:
            assert log.last_version == 2
        assert os.path.getsize(path) == size  # garbage gone, records kept

    def test_corrupt_payload_drops_tail(self, tmp_path):
        path = tmp_path / "log"
        with CommitLog(path) as log:
            log.append(record(1))
            keep = os.path.getsize(path)
            log.append(record(2))
        with open(path, "r+b") as f:
            f.seek(keep + 10)  # flip a byte inside record 2's payload
            byte = f.read(1)
            f.seek(keep + 10)
            f.write(bytes([byte[0] ^ 0xFF]))
        with CommitLog(path) as log:
            assert log.last_version == 1  # record 2 failed its CRC

    def test_not_a_log_is_refused(self, tmp_path):
        path = tmp_path / "bogus"
        path.write_bytes(b"definitely not a commit log")
        with pytest.raises(CommitLogError):
            CommitLog(path)


class TestReset:
    def test_reset_discards_history(self, tmp_path):
        path = tmp_path / "log"
        with CommitLog(path) as log:
            log.append(record(1))
            log.append(record(2))
            log.reset()
            assert log.last_version is None
            assert log.read_from(1) == []
            # a fresh history may start anywhere (post-snapshot versions)
            log.append(record(40))
            assert log.first_version == 40
