"""Unit tests for the durable, checksummed commit log (repro.store.commitlog)."""

import os

import pytest

from repro.store.commitlog import ChangeRecord, CommitLog, CommitLogError


def record(version, term=1, node="n1"):
    return ChangeRecord(
        version=version,
        term=term,
        oid_counter=100 + version,
        objects=((7, b"payload-%d" % version), (8, b"\x00\x01\x02")),
        roots={"root": 7, "other": 8},
        node=node,
    )


class TestRoundtrip:
    def test_binary_encode_decode(self):
        original = record(3)
        assert ChangeRecord.decode(original.encode()) == original

    def test_wire_roundtrip(self):
        original = record(5, term=2)
        assert ChangeRecord.from_wire(original.as_wire()) == original

    def test_malformed_wire_is_structured(self):
        with pytest.raises(CommitLogError):
            ChangeRecord.from_wire({"version": 1})


class TestAppendRead:
    def test_append_then_read_from(self, tmp_path):
        path = tmp_path / "log"
        with CommitLog(path) as log:
            for v in range(1, 6):
                log.append(record(v))
            assert log.first_version == 1
            assert log.last_version == 5
            got = list(log.read_from(3))
        assert [r.version for r in got] == [3, 4, 5]

    def test_read_from_streams_in_bounded_batches(self, tmp_path):
        with CommitLog(tmp_path / "log") as log:
            for v in range(1, 8):
                log.append(record(v))
            it = log.read_from(1, batch=2)
            # lazily iterable: records appended after batches were read
            # are still picked up by later batches
            first = [next(it), next(it), next(it)]
            log.append(record(8))
            rest = list(it)
        assert [r.version for r in first + rest] == list(range(1, 9))

    def test_non_contiguous_append_is_refused(self, tmp_path):
        with CommitLog(tmp_path / "log") as log:
            log.append(record(1))
            with pytest.raises(CommitLogError):
                log.append(record(3))

    def test_read_before_first_version_is_an_error(self, tmp_path):
        with CommitLog(tmp_path / "log") as log:
            log.append(record(4))
            log.append(record(5))
            with pytest.raises(CommitLogError):
                log.read_from(2)  # predates the log: caller must resync

    def test_read_past_end_is_empty(self, tmp_path):
        with CommitLog(tmp_path / "log") as log:
            log.append(record(1))
            assert list(log.read_from(2)) == []

    def test_term_at_tracks_fencing_lineage(self, tmp_path):
        with CommitLog(tmp_path / "log") as log:
            log.append(record(1, term=1))
            log.append(record(2, term=3))
            assert log.term_at(1) == 1
            assert log.term_at(2) == 3
            assert log.term_at(9) is None


class TestRecovery:
    def test_reopen_recovers_index(self, tmp_path):
        path = tmp_path / "log"
        with CommitLog(path) as log:
            for v in range(1, 4):
                log.append(record(v))
        with CommitLog(path) as log:
            assert log.last_version == 3
            assert [r.version for r in log.read_from(1)] == [1, 2, 3]

    def test_read_before_first_raises_eagerly(self, tmp_path):
        # the predates-the-log error must raise at the call, not at the
        # first next() — subscribe() branches to a snapshot resync on it
        with CommitLog(tmp_path / "log") as log:
            log.append(record(4))
            try:
                log.read_from(1)
            except CommitLogError:
                pass
            else:
                pytest.fail("read_from(1) did not raise eagerly")

    def test_torn_tail_is_truncated(self, tmp_path):
        path = tmp_path / "log"
        with CommitLog(path) as log:
            log.append(record(1))
            log.append(record(2))
            size = os.path.getsize(path)
        # simulate a crash mid-append: garbage half-frame at the tail
        with open(path, "ab") as f:
            f.write(b"\xff" * 11)
        with CommitLog(path) as log:
            assert log.last_version == 2
        assert os.path.getsize(path) == size  # garbage gone, records kept

    def test_corrupt_payload_drops_tail(self, tmp_path):
        path = tmp_path / "log"
        with CommitLog(path) as log:
            log.append(record(1))
            keep = os.path.getsize(path)
            log.append(record(2))
        with open(path, "r+b") as f:
            f.seek(keep + 10)  # flip a byte inside record 2's payload
            byte = f.read(1)
            f.seek(keep + 10)
            f.write(bytes([byte[0] ^ 0xFF]))
        with CommitLog(path) as log:
            assert log.last_version == 1  # record 2 failed its CRC

    def test_not_a_log_is_refused(self, tmp_path):
        path = tmp_path / "bogus"
        path.write_bytes(b"definitely not a commit log")
        with pytest.raises(CommitLogError):
            CommitLog(path)


class TestReset:
    def test_reset_discards_history(self, tmp_path):
        path = tmp_path / "log"
        with CommitLog(path) as log:
            log.append(record(1))
            log.append(record(2))
            log.reset()
            assert log.last_version is None
            assert list(log.read_from(1)) == []
            # a fresh history may start anywhere (post-snapshot versions)
            log.append(record(40))
            assert log.first_version == 40

    def test_reset_runs_retention_hook_before_discarding(self, tmp_path):
        sealed = []
        with CommitLog(tmp_path / "log") as log:
            log.retention = lambda lg: sealed.extend(lg.read_from(lg.first_version))
            log.append(record(1))
            log.append(record(2))
            log.reset()
            assert [r.version for r in sealed] == [1, 2]
            log.reset()  # empty log: the hook must not fire again
            assert len(sealed) == 2

    def test_reset_survives_a_failing_retention_hook(self, tmp_path):
        def bad_hook(_log):
            raise OSError(28, "archive volume full")

        with CommitLog(tmp_path / "log") as log:
            log.retention = bad_hook
            log.append(record(1))
            log.reset()  # must not raise: reset wins over archiving
            assert log.last_version is None

    def test_deposed_primary_term_at_after_reset(self, tmp_path):
        """A deposed primary whose log was reset (snapshot resync from the
        new leader) must not serve stale term_at answers: the archiver and
        lineage checks key on term_at, so a reset log answers None for the
        discarded versions and only the new lineage after re-append."""
        with CommitLog(tmp_path / "log") as log:
            # old lineage: this node led at term 1
            log.append(record(1, term=1))
            log.append(record(2, term=1))
            assert log.term_at(2) == 1
            # deposed: another node promoted to term 2, our history was
            # replaced by a snapshot resync which resets the log
            log.reset()
            assert log.term_at(1) is None
            assert log.term_at(2) is None
            assert log.last_term == 0
            # following the new primary: records arrive under term 2 at
            # the resync's version horizon
            log.append(record(7, term=2))
            assert log.term_at(7) == 2
            assert log.term_at(2) is None  # old version stays gone
            assert log.last_term == 2
