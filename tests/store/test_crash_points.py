"""Fault injection and the exhaustive crash-point harness.

Two layers under test: the :class:`FaultFile` primitives themselves (torn
writes, write-back buffering, adversarial crash persistence, short reads,
fsync failures), and :func:`run_crash_sim` — the SQLite-style sweep that
crashes at every I/O operation and asserts the image always reopens to an
adjacent commit's state.  A negative control proves the harness actually
detects a broken commit protocol.
"""

import pytest

from repro.store.crashsim import MODES, run_crash_sim
from repro.store.faults import CrashPoint, FaultFile, FaultPlan, FileDead
from repro.store.heap import ObjectHeap
from repro.store.pager import Pager


@pytest.fixture
def path(tmp_path):
    return str(tmp_path / "fault.bin")


class TestFaultFilePrimitives:
    def test_passthrough_roundtrip(self, path):
        plan = FaultPlan()
        f = FaultFile(path, "w+b", plan=plan)
        f.write(b"hello")
        f.seek(0)
        assert f.read(5) == b"hello"
        f.close()
        assert plan.ops == 2  # one write, one read

    def test_crash_kills_the_file(self, path):
        plan = FaultPlan(crash_at=0)
        f = FaultFile(path, "w+b", plan=plan)
        with pytest.raises(CrashPoint):
            f.write(b"doomed")
        assert plan.crashed
        with pytest.raises(FileDead):
            f.read(1)
        with pytest.raises(FileDead):
            f.fsync()
        # write-through but the crashing op itself never lands
        with open(path, "rb") as check:
            assert check.read() == b""

    def test_torn_write_persists_a_prefix(self, path):
        plan = FaultPlan(crash_at=0, torn=True)
        f = FaultFile(path, "w+b", plan=plan)
        with pytest.raises(CrashPoint):
            f.write(b"AAAABBBB")
        f.close()  # post-crash cleanup, as the harness's close_all() does
        with open(path, "rb") as check:
            assert check.read() == b"AAAA"  # first half only

    def test_writeback_buffers_until_fsync(self, path):
        plan = FaultPlan(writeback=True)
        f = FaultFile(path, "w+b", plan=plan)
        f.write(b"buffered")
        with open(path, "rb") as check:
            assert check.read() == b""  # nothing durable yet
        f.seek(0)
        assert f.read(8) == b"buffered"  # but the process sees its own write
        f.fsync()
        with open(path, "rb") as check:
            assert check.read() == b"buffered"
        f.close()

    def test_writeback_close_drops_pending(self, path):
        plan = FaultPlan(writeback=True)
        f = FaultFile(path, "w+b", plan=plan)
        f.write(b"lost")
        f.close()
        with open(path, "rb") as check:
            assert check.read() == b""

    def test_writeback_crash_is_adversarial(self, path):
        """At a crash, the *later* pending writes persist, not the earlier.

        This models out-of-order kernel flushing: only an fsync barrier
        orders a write before its dependents, so a protocol that skips the
        data fsync is caught (the header 'survives' without its data).
        """
        plan = FaultPlan(crash_at=2, writeback=True)
        f = FaultFile(path, "w+b", plan=plan)
        f.seek(0)
        f.write(b"11111111")  # op 0: earlier pending write
        f.seek(8)
        f.write(b"22222222")  # op 1: later pending write
        with pytest.raises(CrashPoint):
            f.fsync()  # op 2: crash before the barrier applies
        f.close()  # post-crash cleanup, as the harness's close_all() does
        with open(path, "rb") as check:
            data = check.read()
        assert b"22222222" in data  # the later half persisted...
        assert b"11111111" not in data  # ...the earlier half is gone

    def test_short_read_returns_fewer_bytes_once(self, path):
        with open(path, "wb") as setup:
            setup.write(b"x" * 100)
        plan = FaultPlan(short_read_at=0)
        f = FaultFile(path, "r+b", plan=plan)
        first = f.read(100)
        assert len(first) == 50  # the transient short read
        rest = f.read(100 - len(first))
        assert first + rest == b"x" * 100
        f.close()

    def test_fsync_failure_is_transient(self, path):
        plan = FaultPlan(fail_fsync_at=1)
        f = FaultFile(path, "w+b", plan=plan)
        f.write(b"data")  # op 0
        with pytest.raises(OSError, match="fsync"):
            f.fsync()  # op 1
        f.fsync()  # op 2: works again
        with open(path, "rb") as check:
            assert check.read() == b"data"
        f.close()

    def test_close_all_cleans_up_after_a_crash(self, path):
        plan = FaultPlan(crash_at=0)
        f = plan.file_factory(path, "w+b")
        with pytest.raises(CrashPoint):
            f.write(b"x")
        plan.close_all()
        assert f.closed


class TestFaultsUnderThePager:
    def test_pager_survives_short_reads(self, path):
        Pager(path, page_size=256).close()
        plan = FaultPlan(short_read_at=0)
        with Pager(path, page_size=256, file_factory=plan.file_factory) as pager:
            assert pager.header.npages >= 1  # header read looped, not failed

    def test_heap_crash_mid_commit_recovers(self, tmp_path):
        """A single spot-check of the invariant the full sweep proves."""
        image = str(tmp_path / "crash.tyc")
        heap = ObjectHeap(image, page_size=256)
        heap.set_root("k", heap.store(("v", 1)))
        heap.commit()
        heap.close()

        plan = FaultPlan(crash_at=30, torn=True)
        heap = ObjectHeap(image, page_size=256, io_factory=plan.file_factory)
        try:
            with pytest.raises(CrashPoint):
                heap.update(heap.root("k"), ("v", 2))
                heap.set_root("big", heap.store("Z" * 2000))
                heap.commit()
        finally:
            plan.close_all()

        recovered = ObjectHeap(image, page_size=256)
        value = recovered.load_root("k")
        assert value in (("v", 1), ("v", 2))  # pre- or post-commit, no third state
        recovered.close()


class TestCrashSimHarness:
    def test_exhaustive_sweep_is_clean(self, tmp_path):
        """Every crash point in every failure mode recovers — the tentpole."""
        report = run_crash_sim(tmp_path, page_size=256, fsck=True)
        assert report.failures == []
        assert report.commits == 5
        assert report.io_ops > 0
        assert report.scenarios == report.io_ops * len(MODES)
        assert report.fsck_runs == report.scenarios
        summary = report.as_dict()
        assert summary["ok"] is True
        assert summary["scenarios"] == report.scenarios

    def test_unknown_mode_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown crash-sim mode"):
            run_crash_sim(tmp_path, modes=("lightning",))

    def test_negative_control_detects_broken_protocol(self, tmp_path, monkeypatch):
        """Remove the durability barriers and the harness must notice.

        With ``Pager._fsync`` a no-op there is no ordering between data
        pages and the header slot; the adversarial write-back crash model
        then persists headers whose data never landed.
        """
        monkeypatch.setattr(Pager, "_fsync", lambda self: None)
        report = run_crash_sim(
            tmp_path, page_size=256, modes=("writeback",), fsck=False
        )
        assert not report.ok
        assert report.failures
