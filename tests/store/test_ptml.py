"""Tests for the PTML persistent code encoding (paper section 4.1)."""

import pytest

from repro.core.names import NameSupply
from repro.core.parser import parse_term
from repro.core.syntax import Abs, App, Lit, PrimApp, Var, term_size
from repro.store.ptml import PtmlError, decode_ptml, encode_ptml, ptml_size
from repro.store.serialize import Blob

SOURCES = [
    "42",
    "x",
    "(halt 1)",
    "(+ 1 2 ^ce ^cc)",
    "proc(x ce cc) (+ x 1 ce cc)",
    "(λ(g) (g 1 ^e cont(t) (halt t))  proc(v ce cc) (cc v))",
    "(== v 1 2 cont() (halt 1) cont() (halt 2) cont() (halt 3))",
    """
    (Y λ(^c0 loop ^c)
       (c cont() (loop 1 0)
          cont(i acc)
            (> i 10 cont() (halt acc)
                    cont() (+ acc i ^ce cont(a) (loop a a)))))
    """,
    '(print "strings and chars" cont(u) (halt \'c\'))',
    "(f <oid 0x00000042> unit true)",
]


@pytest.mark.parametrize("source", SOURCES)
def test_exact_roundtrip(source):
    """decode(encode(t)) == t including every name uid and sort."""
    term = parse_term(source)
    decoded = decode_ptml(encode_ptml(term))
    assert decoded.term == term


def test_free_names_reported_in_canonical_order():
    term = parse_term("(f a b ^k)")
    decoded = decode_ptml(encode_ptml(term))
    assert [n.uid for n in decoded.free] == sorted(n.uid for n in decoded.free)
    assert {n.base for n in decoded.free} == {"f", "a", "b", "k"}


def test_bound_names_not_in_free_list():
    term = parse_term("proc(x ce cc) (f x ce cc)")
    decoded = decode_ptml(encode_ptml(term))
    assert {n.base for n in decoded.free} == {"f"}


def test_encoding_is_compact():
    """PTML interns strings: many occurrences of one name stay cheap."""
    term = parse_term("(verylongfunctionname x x x x x x x x x x)")
    size = ptml_size(term)
    assert size < 120  # far below the textual representation


def test_deep_term_roundtrip():
    """50k-deep CPS chains encode and decode without recursion errors."""
    supply = NameSupply()
    k = supply.fresh_cont("k")
    app = App(Var(k), (Lit(0),))
    for _ in range(50_000):
        t = supply.fresh_val("t")
        app = App(Abs((t,), app), (Lit(1),))
    decoded = decode_ptml(encode_ptml(app))
    assert term_size(decoded.term) == term_size(app)


def test_corrupt_blob_rejected():
    from repro.store.serialize import SerializeError

    blob = encode_ptml(parse_term("(halt 1)"))
    with pytest.raises(SerializeError):  # PtmlError or a lower-level decode error
        decode_ptml(Blob(blob.data[:-2]))


def test_trailing_garbage_rejected():
    blob = encode_ptml(parse_term("(halt 1)"))
    with pytest.raises(PtmlError):
        decode_ptml(Blob(blob.data + b"\x00\x01"))


def test_sorts_preserved():
    term = parse_term("proc(x ce cc) (cc x)")
    decoded = decode_ptml(encode_ptml(term))
    assert [p.is_cont for p in decoded.term.params] == [False, True, True]


def test_blob_accepts_raw_bytes():
    term = parse_term("(halt 9)")
    blob = encode_ptml(term)
    assert decode_ptml(blob.data).term == term


def test_ptml_size_scales_linearly():
    small = parse_term("(f x)")
    big = parse_term("(f {})".format(" ".join(f"x{i}" for i in range(100))))
    assert ptml_size(big) > ptml_size(small)
    assert ptml_size(big) < 100 * ptml_size(small)
