"""The bit-flip corruption matrix for ``python -m repro fsck``.

Every page role gets a flipped bit — a header slot, the object table
chain, a data chain — and the tests assert three things each time: the
corruption is *detected at read time* by the checksums, *reported* by
fsck with the right finding, and (where applicable) *repaired* by
``--repair`` without losing any intact object.
"""

import os

import pytest

from repro.store.fsck import QUARANTINE_ROOT, fsck_image
from repro.store.heap import ObjectHeap
from repro.store.pager import SLOT_SIZE, PageError, Pager

PAGE_SIZE = 256


@pytest.fixture
def image(tmp_path):
    """A committed image with two roots: a small tuple and a 2000-byte blob."""
    path = str(tmp_path / "fsck.tyc")
    heap = ObjectHeap(path, PAGE_SIZE)
    heap.set_root("small", heap.store(("keep", 1)))
    heap.set_root("blob", heap.store("D" * 2000))
    heap.commit()
    heap.close()
    return path


def _flip_byte(path, offset):
    with open(path, "r+b") as f:
        f.seek(offset)
        byte = f.read(1)
        f.seek(offset)
        f.write(bytes([byte[0] ^ 0xFF]))


def _chain_of(path, root):
    """(oid, pages) of the object a root names, via a read-only open."""
    heap = ObjectHeap(path, PAGE_SIZE)
    try:
        oid = int(heap.root(root))
        head, length = heap._table[oid]
        return oid, heap._pager.chain_pages(head, length)
    finally:
        heap.close()


def _findings(result, code):
    return [f for f in result.findings if f.code == code]


class TestCleanImage:
    def test_clean_image_is_ok(self, image):
        result = fsck_image(image, page_size=PAGE_SIZE)
        assert result.ok
        assert result.errors == []
        assert result.format == 2
        assert result.objects_checked >= 2
        assert _findings(result, "geometry")

    def test_missing_image_is_an_error(self, tmp_path):
        result = fsck_image(str(tmp_path / "nope.tyc"))
        assert not result.ok
        assert _findings(result, "missing")

    def test_as_dict_is_json_shaped(self, image):
        import json

        summary = fsck_image(image, page_size=PAGE_SIZE).as_dict()
        json.dumps(summary)  # must be serializable as-is
        assert summary["ok"] is True
        assert summary["errors"] == 0


class TestDataPageFlip:
    def test_read_time_detection(self, image):
        _, pages = _chain_of(image, "blob")
        _flip_byte(image, pages[1] * PAGE_SIZE + 40)
        heap = ObjectHeap(image, PAGE_SIZE)
        try:
            with pytest.raises(PageError, match="checksum mismatch"):
                heap.load_root("blob")
            assert heap.load_root("small") == ("keep", 1)  # others unharmed
        finally:
            heap.close()

    def test_fsck_reports_the_corrupt_object(self, image):
        oid, pages = _chain_of(image, "blob")
        _flip_byte(image, pages[1] * PAGE_SIZE + 40)
        result = fsck_image(image, page_size=PAGE_SIZE)
        assert not result.ok
        assert any(f.oid == oid for f in _findings(result, "chain-corrupt"))
        assert any(f.oid == oid for f in _findings(result, "root-corrupt"))

    def test_repair_quarantines_without_losing_intact_objects(self, image):
        oid, pages = _chain_of(image, "blob")
        _flip_byte(image, pages[1] * PAGE_SIZE + 40)
        result = fsck_image(image, page_size=PAGE_SIZE, repair=True)
        assert result.repaired
        assert oid in result.quarantined

        # the repaired image is fully clean again
        after = fsck_image(image, page_size=PAGE_SIZE)
        assert after.ok and not after.warnings

        heap = ObjectHeap(image, PAGE_SIZE)
        try:
            assert heap.load_root("small") == ("keep", 1)
            assert heap.root("blob") is None  # detached, not dangling
            quarantine = heap.load_root(QUARANTINE_ROOT)
            assert str(oid) in quarantine
        finally:
            heap.close()

    def test_repaired_image_accepts_new_commits(self, image):
        _, pages = _chain_of(image, "blob")
        _flip_byte(image, pages[1] * PAGE_SIZE + 40)
        fsck_image(image, page_size=PAGE_SIZE, repair=True)
        heap = ObjectHeap(image, PAGE_SIZE)
        try:
            heap.set_root("fresh", heap.store("after repair"))
            heap.commit()
        finally:
            heap.close()
        heap = ObjectHeap(image, PAGE_SIZE)
        try:
            assert heap.load_root("fresh") == "after repair"
        finally:
            heap.close()


class TestTablePageFlip:
    def test_fsck_reports_unreadable_table(self, image):
        pager = Pager(image, PAGE_SIZE)
        pages = pager.chain_pages(pager.header.table_page, pager.header.table_len)
        pager.close()
        _flip_byte(image, pages[0] * PAGE_SIZE + 20)
        result = fsck_image(image, page_size=PAGE_SIZE)
        assert not result.ok
        assert _findings(result, "table-unreadable")

    def test_heap_refuses_to_open_on_corrupt_table(self, image):
        pager = Pager(image, PAGE_SIZE)
        pages = pager.chain_pages(pager.header.table_page, pager.header.table_len)
        pager.close()
        _flip_byte(image, pages[0] * PAGE_SIZE + 20)
        with pytest.raises(PageError, match="checksum mismatch"):
            ObjectHeap(image, PAGE_SIZE)


class TestHeaderSlotFlip:
    def test_torn_slot_is_a_warning_not_an_error(self, image):
        # the image's newest header slot; dual-slot recovery rolls back
        pager = Pager(image, PAGE_SIZE)
        active = pager._active_slot
        pager.close()
        _flip_byte(image, active * SLOT_SIZE + 10)
        result = fsck_image(image, page_size=PAGE_SIZE)
        assert result.ok  # recovered: degraded, not broken
        assert _findings(result, "torn-header-slot")

    def test_repair_heals_the_torn_slot(self, image):
        pager = Pager(image, PAGE_SIZE)
        active = pager._active_slot
        pager.close()
        _flip_byte(image, active * SLOT_SIZE + 10)
        fsck_image(image, page_size=PAGE_SIZE, repair=True)
        after = fsck_image(image, page_size=PAGE_SIZE)
        assert after.ok
        assert not _findings(after, "torn-header-slot")


class TestReferenceIntegrity:
    def test_dangling_root_reported_and_detached(self, image):
        heap = ObjectHeap(image, PAGE_SIZE)
        heap.set_root("ghost", 9999)
        heap.commit()
        heap.close()
        result = fsck_image(image, page_size=PAGE_SIZE)
        assert not result.ok
        assert any(f.oid == 9999 for f in _findings(result, "dangling-root"))

        fsck_image(image, page_size=PAGE_SIZE, repair=True)
        heap = ObjectHeap(image, PAGE_SIZE)
        try:
            assert heap.root("ghost") is None
            assert heap.load_root("small") == ("keep", 1)
            assert "9999" in heap.load_root(QUARANTINE_ROOT)
        finally:
            heap.close()

    def test_unreachable_object_is_a_warning(self, image):
        heap = ObjectHeap(image, PAGE_SIZE)
        orphan = heap.store(("orphan", 1))
        heap.commit()  # stored but never bound to a root
        heap.close()
        result = fsck_image(image, page_size=PAGE_SIZE)
        assert result.ok  # warn-only
        assert any(f.oid == int(orphan) for f in _findings(result, "unreachable"))

    def test_repair_keeps_unreachable_objects_triageable(self, image):
        heap = ObjectHeap(image, PAGE_SIZE)
        orphan = heap.store(("orphan", 1))
        heap.commit()
        heap.close()
        fsck_image(image, page_size=PAGE_SIZE, repair=True)
        heap = ObjectHeap(image, PAGE_SIZE)
        try:
            assert heap.load(orphan) == ("orphan", 1)  # still present
            assert str(int(orphan)) in heap.load_root(QUARANTINE_ROOT)
        finally:
            heap.close()
        assert fsck_image(image, page_size=PAGE_SIZE).ok


class TestLeakedPages:
    def test_repair_reclaims_leaked_pages(self, image):
        # orphan a chain by writing it without ever publishing a reference
        pager = Pager(image, PAGE_SIZE)
        pager.write_chain(b"L" * 600)
        pager.sync_header()
        pager.close()
        result = fsck_image(image, page_size=PAGE_SIZE)
        assert result.ok  # leaks are info, not errors
        assert result.leaked_pages

        fsck_image(image, page_size=PAGE_SIZE, repair=True)
        after = fsck_image(image, page_size=PAGE_SIZE)
        assert after.leaked_pages == []


class TestFsckCli:
    def test_cli_exit_codes_and_json(self, image, tmp_path, capsys):
        from repro.cli import main

        out = str(tmp_path / "report.json")
        assert main(["fsck", image, "--json", out]) == 0
        assert os.path.exists(out)
        assert "0 error(s)" in capsys.readouterr().out

        _, pages = _chain_of(image, "blob")
        _flip_byte(image, pages[0] * PAGE_SIZE + 40)
        assert main(["fsck", image]) == 1  # errors -> nonzero
        assert main(["fsck", image, "--repair"]) == 0
        assert main(["fsck", image]) == 0
