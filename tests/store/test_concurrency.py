"""Tests for single-writer / snapshot-reader control (repro.store.concurrency)."""

import threading
import time

import pytest

from repro.store.concurrency import LockTimeout, RWLock, TransactionManager
from repro.store.heap import HeapError, ObjectHeap


class TestRWLock:
    def test_readers_share(self):
        lock = RWLock()
        assert lock.acquire_read(timeout=1)
        assert lock.acquire_read(timeout=1)
        lock.release_read()
        lock.release_read()

    def test_writer_excludes_readers(self):
        lock = RWLock()
        assert lock.acquire_write(timeout=1)
        assert not lock.acquire_read(timeout=0.05)
        lock.release_write()
        assert lock.acquire_read(timeout=1)
        lock.release_read()

    def test_writer_excludes_writer(self):
        lock = RWLock()
        assert lock.acquire_write(timeout=1)
        assert not lock.acquire_write(timeout=0.05)
        lock.release_write()

    def test_reader_blocks_writer_until_done(self):
        lock = RWLock()
        assert lock.acquire_read(timeout=1)
        assert not lock.acquire_write(timeout=0.05)
        lock.release_read()
        assert lock.acquire_write(timeout=1)
        lock.release_write()

    def test_waiting_writer_blocks_new_readers(self):
        """Writer preference: a queued writer must not be starved by reads."""
        lock = RWLock()
        lock.acquire_read()
        got_write = threading.Event()

        def writer():
            lock.acquire_write()
            got_write.set()
            lock.release_write()

        thread = threading.Thread(target=writer)
        thread.start()
        # give the writer time to queue, then try to sneak a new reader in
        time.sleep(0.05)
        assert not lock.acquire_read(timeout=0.05)
        lock.release_read()
        thread.join(timeout=5)
        assert got_write.is_set()
        # after the writer is done, readers flow again
        assert lock.acquire_read(timeout=1)
        lock.release_read()

    def test_release_across_threads(self):
        """Sessions migrate between pool workers: acquire here, release there."""
        lock = RWLock()
        lock.acquire_write()
        thread = threading.Thread(target=lock.release_write)
        thread.start()
        thread.join(timeout=5)
        assert lock.acquire_write(timeout=1)
        lock.release_write()

    def test_unbalanced_release_raises(self):
        lock = RWLock()
        with pytest.raises(RuntimeError):
            lock.release_read()
        with pytest.raises(RuntimeError):
            lock.release_write()

    def test_context_managers(self):
        lock = RWLock()
        with lock.read_locked():
            with lock.read_locked():
                pass
        with lock.write_locked():
            with pytest.raises(LockTimeout):
                with lock.read_locked(timeout=0.05):
                    pass


class TestTransactionManager:
    def test_write_commit_is_durable(self, tmp_path):
        path = str(tmp_path / "txn.tyc")
        heap = ObjectHeap(path)
        txns = TransactionManager(heap)
        with txns.write():
            heap.set_root("x", heap.store((1, 2, 3)))
        assert txns.version == 1
        heap.close()
        reopened = ObjectHeap(path)
        assert reopened.load_root("x") == (1, 2, 3)
        reopened.close()

    def test_write_abort_discards(self):
        heap = ObjectHeap()
        txns = TransactionManager(heap)
        with pytest.raises(RuntimeError):
            with txns.write():
                heap.set_root("x", heap.store("gone"))
                raise RuntimeError("boom")
        assert txns.version == 0

    def test_read_does_not_bump_version(self):
        heap = ObjectHeap()
        txns = TransactionManager(heap)
        with txns.read() as txn:
            assert txn.mode == "read"
            assert txn.version == 0
        assert txns.version == 0

    def test_write_lock_timeout(self):
        heap = ObjectHeap()
        txns = TransactionManager(heap)
        txn = txns.begin("write")
        with pytest.raises(LockTimeout):
            txns.begin("write", timeout=0.05)
        txn.abort()
        txns.begin("write", timeout=1).abort()

    def test_unknown_mode(self):
        with pytest.raises(HeapError):
            TransactionManager(ObjectHeap()).begin("banana")

    def test_txn_handle_is_idempotent(self):
        heap = ObjectHeap()
        txns = TransactionManager(heap)
        txn = txns.begin("write")
        txn.commit()
        txn.commit()  # no-op, must not double-release
        txn.abort()  # no-op
        assert txns.version == 1

    def test_commit_failure_aborts_and_releases(self, monkeypatch):
        heap = ObjectHeap()
        txns = TransactionManager(heap)

        def failing_commit():
            raise HeapError("injected")

        txn = txns.begin("write")
        heap.set_root("x", heap.store("v"))
        monkeypatch.setattr(heap, "commit", failing_commit)
        with pytest.raises(HeapError, match="injected"):
            txn.commit()
        monkeypatch.undo()
        # lock must have been released and the dirty state dropped
        with txns.write():
            pass
        assert txns.version == 1

    def test_concurrent_increments_are_serialized(self):
        heap = ObjectHeap()
        txns = TransactionManager(heap)
        with txns.write():
            oid = heap.store((0,))
            heap.set_root("counter", oid)
        threads_n, per_thread = 8, 25

        def worker():
            for _ in range(per_thread):
                with txns.write():
                    value = heap.load_root("counter")[0]
                    heap.update(heap.root("counter"), (value + 1,))

        threads = [threading.Thread(target=worker) for _ in range(threads_n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert heap.load_root("counter")[0] == threads_n * per_thread
        assert txns.version == 1 + threads_n * per_thread
