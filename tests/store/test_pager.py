"""Tests for the page file layer (repro.store.pager)."""

import os

import pytest

from repro.store.pager import DEFAULT_PAGE_SIZE, PageError, Pager


@pytest.fixture
def path(tmp_path):
    return str(tmp_path / "test.tyc")


class TestLifecycle:
    def test_create_and_reopen(self, path):
        with Pager(path) as pager:
            assert pager.header.npages == 1
        with Pager(path) as pager:
            assert pager.header.page_size == DEFAULT_PAGE_SIZE

    def test_bad_magic_rejected(self, path):
        with open(path, "wb") as f:
            f.write(b"NOPE" + b"\x00" * 100)
        with pytest.raises(PageError):
            Pager(path)

    def test_tiny_page_size_rejected(self, path):
        with pytest.raises(PageError):
            Pager(path, page_size=16)


class TestAllocation:
    def test_allocate_grows_file(self, path):
        with Pager(path) as pager:
            first = pager.allocate()
            second = pager.allocate()
            assert first == 1 and second == 2
            assert pager.header.npages == 3

    def test_release_and_reuse(self, path):
        with Pager(path) as pager:
            a = pager.allocate()
            b = pager.allocate()
            pager.release(a)
            assert pager.allocate() == a  # from the free list
            assert pager.allocate() == 3  # then fresh

    def test_free_list_survives_reopen(self, path):
        with Pager(path) as pager:
            a = pager.allocate()
            pager.allocate()
            pager.release(a)
            pager.sync_header()
        with Pager(path) as pager:
            assert pager.allocate() == a

    def test_release_header_rejected(self, path):
        with Pager(path) as pager:
            with pytest.raises(PageError):
                pager.release(0)


class TestPageIO:
    def test_write_read_roundtrip(self, path):
        with Pager(path) as pager:
            pid = pager.allocate()
            pager.write(pid, b"hello world")
            assert pager.read(pid).startswith(b"hello world")

    def test_out_of_range_read(self, path):
        with Pager(path) as pager:
            with pytest.raises(PageError):
                pager.read(99)

    def test_oversized_write_rejected(self, path):
        with Pager(path) as pager:
            pid = pager.allocate()
            with pytest.raises(PageError):
                pager.write(pid, b"x" * (DEFAULT_PAGE_SIZE + 1))


class TestChains:
    def test_small_record(self, path):
        with Pager(path) as pager:
            head = pager.write_chain(b"small")
            assert pager.read_chain(head, 5) == b"small"

    def test_multi_page_record(self, path):
        payload = bytes(range(256)) * 64  # 16 KiB, spans several pages
        with Pager(path) as pager:
            head = pager.write_chain(payload)
            assert pager.read_chain(head, len(payload)) == payload

    def test_empty_record(self, path):
        with Pager(path) as pager:
            head = pager.write_chain(b"")
            assert pager.read_chain(head, 0) == b""

    def test_release_chain_recycles_pages(self, path):
        payload = b"z" * (DEFAULT_PAGE_SIZE * 3)
        with Pager(path) as pager:
            before = pager.header.npages
            head = pager.write_chain(payload)
            used = pager.header.npages - before
            pager.release_chain(head, len(payload))
            # a new same-sized record reuses the freed pages
            pager.write_chain(payload)
            assert pager.header.npages == before + used

    def test_chain_survives_reopen(self, path):
        payload = b"persist me" * 1000
        with Pager(path) as pager:
            head = pager.write_chain(payload)
            pager.sync_header()
        with Pager(path) as pager:
            assert pager.read_chain(head, len(payload)) == payload
