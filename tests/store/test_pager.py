"""Tests for the page file layer (repro.store.pager)."""

import os
import struct

import pytest

from repro.store.checksum import crc32
from repro.store.pager import (
    DEFAULT_PAGE_SIZE,
    FORMAT_VERSION,
    HEADER_SLOTS,
    MAGIC,
    MIN_PAGE_SIZE,
    SLOT_SIZE,
    Header,
    PageError,
    Pager,
)


@pytest.fixture
def path(tmp_path):
    return str(tmp_path / "test.tyc")


def _flip_byte(path, offset):
    """Flip one byte of the file in place (simulated media corruption)."""
    with open(path, "r+b") as f:
        f.seek(offset)
        byte = f.read(1)
        f.seek(offset)
        f.write(bytes([byte[0] ^ 0xFF]))


class TestLifecycle:
    def test_create_and_reopen(self, path):
        with Pager(path) as pager:
            assert pager.header.npages == 1
        with Pager(path) as pager:
            assert pager.header.page_size == DEFAULT_PAGE_SIZE

    def test_bad_magic_rejected(self, path):
        with open(path, "wb") as f:
            f.write(b"NOPE" + b"\x00" * 100)
        with pytest.raises(PageError):
            Pager(path)

    def test_tiny_page_size_rejected(self, path):
        with pytest.raises(PageError):
            Pager(path, page_size=16)


class TestAllocation:
    def test_allocate_grows_file(self, path):
        with Pager(path) as pager:
            first = pager.allocate()
            second = pager.allocate()
            assert first == 1 and second == 2
            assert pager.header.npages == 3

    def test_release_and_reuse(self, path):
        with Pager(path) as pager:
            a = pager.allocate()
            b = pager.allocate()
            pager.release(a)
            assert pager.allocate() == a  # from the free list
            assert pager.allocate() == 3  # then fresh

    def test_free_list_survives_reopen(self, path):
        with Pager(path) as pager:
            a = pager.allocate()
            pager.allocate()
            pager.release(a)
            pager.sync_header()
        with Pager(path) as pager:
            assert pager.allocate() == a

    def test_release_header_rejected(self, path):
        with Pager(path) as pager:
            with pytest.raises(PageError):
                pager.release(0)


class TestPageIO:
    def test_write_read_roundtrip(self, path):
        with Pager(path) as pager:
            pid = pager.allocate()
            pager.write(pid, b"hello world")
            assert pager.read(pid).startswith(b"hello world")

    def test_out_of_range_read(self, path):
        with Pager(path) as pager:
            with pytest.raises(PageError):
                pager.read(99)

    def test_oversized_write_rejected(self, path):
        with Pager(path) as pager:
            pid = pager.allocate()
            with pytest.raises(PageError):
                pager.write(pid, b"x" * (DEFAULT_PAGE_SIZE + 1))


class TestChains:
    def test_small_record(self, path):
        with Pager(path) as pager:
            head = pager.write_chain(b"small")
            assert pager.read_chain(head, 5) == b"small"

    def test_multi_page_record(self, path):
        payload = bytes(range(256)) * 64  # 16 KiB, spans several pages
        with Pager(path) as pager:
            head = pager.write_chain(payload)
            assert pager.read_chain(head, len(payload)) == payload

    def test_empty_record(self, path):
        with Pager(path) as pager:
            head = pager.write_chain(b"")
            assert pager.read_chain(head, 0) == b""

    def test_release_chain_recycles_pages(self, path):
        payload = b"z" * (DEFAULT_PAGE_SIZE * 3)
        with Pager(path) as pager:
            before = pager.header.npages
            head = pager.write_chain(payload)
            used = pager.header.npages - before
            pager.release_chain(head, len(payload))
            # a new same-sized record reuses the freed pages
            pager.write_chain(payload)
            assert pager.header.npages == before + used

    def test_chain_survives_reopen(self, path):
        payload = b"persist me" * 1000
        with Pager(path) as pager:
            head = pager.write_chain(payload)
            pager.sync_header()
        with Pager(path) as pager:
            assert pager.read_chain(head, len(payload)) == payload


def _packed_slot(**overrides):
    """A raw header slot with a *valid* checksum over possibly absurd fields."""
    fields = {
        "magic": MAGIC,
        "version": FORMAT_VERSION,
        "kind_id": 1,  # crc32
        "page_size": 4096,
        "epoch": 1,
        "npages": 10,
        "free_page": 0,
        "free_len": 0,
        "table_page": 0,
        "table_len": 0,
        "oid_counter": 1,
    }
    fields.update(overrides)
    packed = struct.pack(
        "<4sHHIQQQQQQQ",
        fields["magic"],
        fields["version"],
        fields["kind_id"],
        fields["page_size"],
        fields["epoch"],
        fields["npages"],
        fields["free_page"],
        fields["free_len"],
        fields["table_page"],
        fields["table_len"],
        fields["oid_counter"],
    )
    return packed + struct.pack("<I", crc32(packed))


class TestHeaderValidation:
    """Header.unpack rejects every class of garbage with a clear PageError."""

    def test_valid_slot_roundtrips(self):
        header = Header.unpack(_packed_slot(epoch=7, npages=42, oid_counter=9))
        assert header.epoch == 7
        assert header.npages == 42
        assert header.oid_counter == 9
        assert Header.unpack(header.pack()) == header

    def test_truncated_slot(self):
        with pytest.raises(PageError, match="truncated"):
            Header.unpack(_packed_slot()[: SLOT_SIZE - 1])

    def test_bad_magic(self):
        with pytest.raises(PageError, match="magic"):
            Header.unpack(_packed_slot(magic=b"NOPE"))

    def test_v1_magic_named_explicitly(self):
        with pytest.raises(PageError, match="v1"):
            Header.unpack(_packed_slot(magic=b"TYC1"))

    def test_unsupported_version(self):
        with pytest.raises(PageError, match="version"):
            Header.unpack(_packed_slot(version=99))

    def test_unknown_checksum_kind(self):
        with pytest.raises(PageError, match="checksum kind"):
            Header.unpack(_packed_slot(kind_id=200))

    def test_checksum_mismatch(self):
        raw = bytearray(_packed_slot())
        raw[20] ^= 0x01  # flip a bit inside the covered region
        with pytest.raises(PageError, match="checksum"):
            Header.unpack(bytes(raw))

    @pytest.mark.parametrize("page_size", [0, 1, MIN_PAGE_SIZE - 1, 1 << 30])
    def test_absurd_page_size(self, page_size):
        with pytest.raises(PageError, match="page size"):
            Header.unpack(_packed_slot(page_size=page_size))

    def test_zero_page_count(self):
        with pytest.raises(PageError, match="page count"):
            Header.unpack(_packed_slot(npages=0))

    def test_free_record_beyond_file(self):
        with pytest.raises(PageError, match="free-list"):
            Header.unpack(_packed_slot(npages=10, free_page=10))

    def test_table_beyond_file(self):
        with pytest.raises(PageError, match="table"):
            Header.unpack(_packed_slot(npages=10, table_page=99))

    def test_record_length_beyond_file(self):
        with pytest.raises(PageError, match="length"):
            Header.unpack(_packed_slot(npages=2, table_len=1 << 40))


class TestDualHeader:
    """Dual-slot commits: a torn header rolls back, never bricks."""

    def _image_with_two_commits(self, path):
        """epoch 1 = empty, epoch 2 -> "first", epoch 3 -> "second"."""
        pager = Pager(path, page_size=256)
        for payload in (b"first", b"second"):
            head = pager.write_chain(payload)
            pager.header.table_page = head
            pager.header.table_len = len(payload)
            pager.sync_header()
        pager.close()

    def test_epoch_increments_per_sync(self, path):
        with Pager(path, page_size=256) as pager:
            assert pager.header.epoch == 1  # creation sync
            pager.sync_header()
            pager.sync_header()
            assert pager.header.epoch == 3

    def test_both_slots_populated_after_two_syncs(self, path):
        self._image_with_two_commits(path)
        with Pager(path, page_size=256) as pager:
            assert pager.header.epoch == 3
            statuses = [err for _, err in pager.slot_status]
            assert statuses == [None, None]

    def test_torn_newest_slot_rolls_back_one_commit(self, path):
        self._image_with_two_commits(path)
        # epoch 1 went to slot 0, epoch 2 to slot 1, epoch 3 to slot 0:
        # corrupting slot 0 tears the newest commit
        _flip_byte(path, 10)
        with Pager(path, page_size=256) as pager:
            assert pager.header.epoch == 2
            assert pager.slot_status[0][1] is not None  # the torn slot
            assert pager.slot_status[1][1] is None
            raw = pager.read_chain(pager.header.table_page, pager.header.table_len)
            assert raw == b"first"

    def test_torn_older_slot_keeps_newest_commit(self, path):
        self._image_with_two_commits(path)
        _flip_byte(path, SLOT_SIZE + 10)  # slot 1 holds epoch 2
        with Pager(path, page_size=256) as pager:
            assert pager.header.epoch == 3
            raw = pager.read_chain(pager.header.table_page, pager.header.table_len)
            assert raw == b"second"

    def test_next_sync_heals_a_torn_slot(self, path):
        self._image_with_two_commits(path)
        _flip_byte(path, 10)
        with Pager(path, page_size=256) as pager:
            pager.sync_header()  # writes the inactive slot = the torn one
        with Pager(path, page_size=256) as pager:
            assert [err for _, err in pager.slot_status] == [None, None]

    def test_both_slots_torn_is_unopenable(self, path):
        self._image_with_two_commits(path)
        _flip_byte(path, 10)
        _flip_byte(path, SLOT_SIZE + 10)
        with pytest.raises(PageError, match="no valid header slot"):
            Pager(path, page_size=256)


class TestChecksums:
    def test_bit_flip_detected_on_read(self, path):
        with Pager(path, page_size=256) as pager:
            head = pager.write_chain(b"x" * 600)
            pages = pager.chain_pages(head, 600)
            pager.sync_header()
        _flip_byte(path, pages[1] * 256 + 40)
        with Pager(path, page_size=256) as pager:
            with pytest.raises(PageError, match="checksum mismatch"):
                pager.read_chain(head, 600)

    def test_torn_page_write_detected(self, path):
        with Pager(path, page_size=256) as pager:
            pid = pager.allocate()
            pager.write(pid, b"A" * 200)
            pager.sync_header()
        # overwrite only the first half of the page: a torn sector
        with open(path, "r+b") as f:
            f.seek(pid * 256)
            f.write(b"B" * 128)
        with Pager(path, page_size=256) as pager:
            with pytest.raises(PageError, match="checksum mismatch"):
                pager.read(pid)

    def test_crc32c_image_roundtrip(self, path):
        with Pager(path, page_size=256, checksum="crc32c") as pager:
            head = pager.write_chain(b"payload")
            pager.sync_header()
        with Pager(path, page_size=256) as pager:  # kind auto-detected
            assert pager.header.checksum_kind == "crc32c"
            assert pager.read_chain(head, 7) == b"payload"

    def test_checksum_kind_mismatch_rejected(self, path):
        Pager(path, page_size=256, checksum="crc32c").close()
        with pytest.raises(PageError, match="checksum"):
            Pager(path, page_size=256, checksum="crc32")

    def test_unknown_checksum_kind_rejected(self, path):
        with pytest.raises(PageError, match="unknown checksum"):
            Pager(path, checksum="md5")


class TestChainHardening:
    """Corrupt next-pointers are detected, not followed forever."""

    def _two_page_chain(self, pager):
        head = pager.write_chain(b"y" * 400)
        return head, pager.chain_pages(head, 400)

    def test_cycle_detected(self, path):
        with Pager(path, page_size=256) as pager:
            head, pages = self._two_page_chain(pager)
            # rewrite the tail page to point back at the head
            pager.write(pages[1], struct.pack("<Q", pages[0]) + b"y" * 100)
            with pytest.raises(PageError, match="cycle"):
                pager.read_chain(head, 10_000)

    def test_out_of_range_link_detected(self, path):
        with Pager(path, page_size=256) as pager:
            head, pages = self._two_page_chain(pager)
            pager.write(pages[0], struct.pack("<Q", 9999) + b"y" * 100)
            with pytest.raises(PageError, match="out of range"):
                pager.read_chain(head, 400)

    def test_release_chain_with_cycle_raises_cleanly(self, path):
        with Pager(path, page_size=256) as pager:
            head, pages = self._two_page_chain(pager)
            pager.write(pages[1], struct.pack("<Q", pages[0]) + b"y" * 100)
            free_before = set(pager.free_pages())
            with pytest.raises(PageError, match="cycle"):
                pager.release_chain(head, 10_000)
            # nothing was double-freed by the failed walk
            assert set(pager.free_pages()) == free_before

    def test_truncated_chain_detected(self, path):
        with Pager(path, page_size=256) as pager:
            head = pager.write_chain(b"short")
            with pytest.raises(PageError, match="truncated"):
                pager.read_chain(head, 100_000)

    def test_double_free_rejected(self, path):
        with Pager(path) as pager:
            pid = pager.allocate()
            pager.release(pid)
            with pytest.raises(PageError, match="double free"):
                pager.release(pid)


class TestShadowPagedFreeList:
    def test_repeated_sync_does_not_grow_file(self, path):
        """The free-list record must not ratchet the file larger forever."""
        with Pager(path, page_size=256) as pager:
            head = pager.write_chain(b"z" * 2000)
            pager.release_chain(head, 2000)
            pager.sync_header()
            size_after_first = pager.header.npages
            for _ in range(20):
                pager.sync_header()
            assert pager.header.npages == size_after_first

    def test_free_list_record_never_swallows_last_free_page(self, path):
        with Pager(path, page_size=256) as pager:
            pid = pager.allocate()
            pager.release(pid)
            pager.sync_header()
        with Pager(path, page_size=256) as pager:
            assert pager.allocate() == pid  # still reusable after reopen

    def test_unreadable_free_record_degrades_to_leak(self, path):
        with Pager(path, page_size=256) as pager:
            for pid in [pager.allocate() for _ in range(5)]:
                pager.release(pid)
            pager.sync_header()
            record_page = pager.header.free_page
            assert record_page
        _flip_byte(path, record_page * 256 + 30)
        with Pager(path, page_size=256) as pager:
            # open succeeds; the record's pages leak instead of corrupting
            assert pager.free_list_error is not None
            assert pager.free_pages() == []
            pid = pager.allocate()  # allocator still works (grows)
            assert pid >= 1


class TestImageInfo:
    def test_reports_geometry_and_epoch(self, path):
        with Pager(path, page_size=256) as pager:
            pager.sync_header()
            info = pager.image_info()
        assert info["format"] == FORMAT_VERSION
        assert info["page_size"] == 256
        assert info["epoch"] == 2
        assert info["checksum"] == "crc32"
        assert info["active_slot"] in range(HEADER_SLOTS)

    def test_page_size_mismatch_rejected(self, path):
        Pager(path, page_size=256).close()
        with pytest.raises(PageError, match="page size"):
            Pager(path, page_size=512)
