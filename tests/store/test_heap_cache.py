"""Tests for the bounded clean-object cache (ObjectHeap(cache_limit=N))."""

import pytest

from repro.store.heap import HeapError, ObjectHeap


@pytest.fixture
def path(tmp_path):
    return str(tmp_path / "cache.tyc")


def test_cache_limit_must_be_positive(path):
    with pytest.raises(HeapError):
        ObjectHeap(path, cache_limit=0)


def test_clean_objects_evicted_past_limit(path):
    heap = ObjectHeap(path, cache_limit=4)
    oids = [heap.store((i,)) for i in range(10)]
    heap.commit()  # everything clean now; eviction may drop to the bound
    assert len(heap._cache) <= 4
    # every object transparently reloads from its page chain
    for i, oid in enumerate(oids):
        assert heap.load(oid) == (i,)
    assert len(heap._cache) <= 4
    heap.close()


def test_dirty_objects_never_evicted(path):
    heap = ObjectHeap(path, cache_limit=2)
    dirty_oids = [heap.store((i,)) for i in range(8)]
    # nothing committed: all 8 are dirty, the bound must yield
    assert len(heap._cache) == 8
    heap.commit()
    assert len(heap._cache) <= 2
    for i, oid in enumerate(dirty_oids):
        assert heap.load(oid) == (i,)
    heap.close()


def test_eviction_is_lru(path):
    heap = ObjectHeap(path, cache_limit=3)
    oids = [heap.store((i,)) for i in range(3)]
    heap.commit()
    heap.load(oids[0])  # 0 becomes most-recent; 1 is now the LRU victim
    heap.store(("fresh",))  # push one more in (dirty, not evictable)
    assert int(oids[1]) not in heap._cache
    assert int(oids[0]) in heap._cache
    heap.close()


def test_evicted_object_loses_identity_mapping(path):
    heap = ObjectHeap(path, cache_limit=1)
    obj = tuple(["unique"])  # built at runtime: not the interned constant
    oid = heap.store(obj)
    heap.commit()
    # push enough committed objects through to evict obj
    for i in range(3):
        heap.store((i,))
    heap.commit()
    assert int(oid) not in heap._cache
    assert heap.oid_of(obj) is None  # a stale identity would corrupt store()
    # the reloaded copy is a fresh equal object
    assert heap.load(oid) == ("unique",)
    heap.close()


def test_update_after_eviction_roundtrips(path):
    heap = ObjectHeap(path, cache_limit=2)
    oid = heap.store(("v1", 0))
    heap.commit()
    for i in range(4):
        heap.store((i,))
    heap.commit()  # oid's object likely evicted now
    heap.update(oid, ("v2", 0))  # resupplying the value works regardless
    heap.commit()
    heap.close()
    reopened = ObjectHeap(path)
    assert reopened.load(oid) == ("v2", 0)
    reopened.close()


def test_unbounded_default_keeps_everything(path):
    heap = ObjectHeap(path)
    oids = [heap.store((i,)) for i in range(50)]
    heap.commit()
    assert len(heap._cache) == len(oids)
    heap.close()


def test_in_memory_heap_accepts_limit():
    # path=None has no page backing, so nothing is ever evictable — the
    # limit is simply inert instead of an error
    heap = ObjectHeap(cache_limit=2)
    oids = [heap.store((i,)) for i in range(5)]
    heap.commit()
    for i, oid in enumerate(oids):
        assert heap.load(oid) == (i,)
