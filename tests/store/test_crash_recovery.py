"""Crash-recovery fault injection: a commit that dies must not corrupt.

The heap's commit protocol is shadow-paging-lite: dirty objects and the new
object table go to fresh pages first; the single header sync is the commit
point.  These tests kill the process model at the worst moments — after the
data pages are written but before the header is published, and mid-file via
truncation — and assert that reopening the image yields exactly the
previous committed state, fully reachable.
"""

import os

import pytest

from repro.store.heap import HeapError, ObjectHeap
from repro.store.pager import Pager


@pytest.fixture
def path(tmp_path):
    return str(tmp_path / "crash.tyc")


def _committed_image(path):
    """An image with one committed generation: roots a=(1,2), b="keep"."""
    heap = ObjectHeap(path)
    heap.set_root("a", heap.store((1, 2)))
    heap.set_root("b", heap.store("keep"))
    heap.commit()
    return heap


class _SyncCrash(RuntimeError):
    """Injected power-loss at the commit point."""


def test_crash_before_header_sync_preserves_previous_commit(path):
    heap = _committed_image(path)

    # second transaction dies after writing data pages, before the header
    # sync publishes them
    real_sync = Pager.sync_header

    def dying_sync(self):
        raise _SyncCrash("power loss at the commit point")

    heap.set_root("a", heap.store((3, 4, 5)))
    heap.set_root("c", heap.store("new"))
    Pager.sync_header = dying_sync
    try:
        with pytest.raises(_SyncCrash):
            heap.commit()
    finally:
        Pager.sync_header = real_sync
    # simulate the process dying: no further writes, just drop the handle
    heap._pager._file.close()

    reopened = ObjectHeap(path)
    assert reopened.root_names() == ["a", "b"]
    assert reopened.load_root("a") == (1, 2)
    assert reopened.load_root("b") == "keep"
    reopened.close()


def test_crash_between_commits_keeps_latest_published_state(path):
    heap = _committed_image(path)
    # a second, successful commit supersedes the first generation
    heap.update(heap.root("a"), (10, 20, 30))
    heap.set_root("c", heap.store({"k": 1}))
    heap.commit()

    # the third one crashes at the commit point
    real_sync = Pager.sync_header
    heap.update(heap.root("a"), ("must", "not", "survive"))
    Pager.sync_header = lambda self: (_ for _ in ()).throw(_SyncCrash())
    try:
        with pytest.raises(_SyncCrash):
            heap.commit()
    finally:
        Pager.sync_header = real_sync
    heap._pager._file.close()

    reopened = ObjectHeap(path)
    assert reopened.load_root("a") == (10, 20, 30)
    assert reopened.load_root("b") == "keep"
    assert reopened.load_root("c") == {"k": 1}
    reopened.close()


def test_truncated_tail_after_commit_point_is_harmless(path):
    """Pages appended after the last header sync are garbage, not damage."""
    heap = _committed_image(path)
    size_after_commit = os.path.getsize(path)
    # a crashed follow-up commit appended data pages but never published
    real_sync = Pager.sync_header
    heap.set_root("a", heap.store(tuple(range(100))))
    Pager.sync_header = lambda self: (_ for _ in ()).throw(_SyncCrash())
    try:
        with pytest.raises(_SyncCrash):
            heap.commit()
    finally:
        Pager.sync_header = real_sync
    heap._pager._file.close()
    assert os.path.getsize(path) >= size_after_commit

    reopened = ObjectHeap(path)
    assert reopened.load_root("a") == (1, 2)
    # and the image still accepts new transactions after recovery
    reopened.set_root("d", reopened.store("after-recovery"))
    reopened.commit()
    reopened.close()

    final = ObjectHeap(path)
    assert final.load_root("d") == "after-recovery"
    assert final.load_root("a") == (1, 2)
    final.close()


def test_failed_commit_keeps_in_memory_session_consistent(path):
    """After an injected crash the surviving process can retry and commit."""
    heap = _committed_image(path)
    real_sync = Pager.sync_header
    heap.update(heap.root("a"), (7, 7, 7))
    Pager.sync_header = lambda self: (_ for _ in ()).throw(_SyncCrash())
    try:
        with pytest.raises(_SyncCrash):
            heap.commit()
    finally:
        Pager.sync_header = real_sync
    # same process retries with the pager intact: the data pages of the
    # failed attempt are already on disk, the retry republishes the table
    heap.commit()
    heap.close()

    reopened = ObjectHeap(path)
    assert reopened.load_root("a") == (7, 7, 7)
    reopened.close()


def test_commit_refuses_dirty_oid_without_object(path):
    """The silent-skip bug: dirty OIDs missing from the cache must fail loudly."""
    heap = ObjectHeap(path)
    oid = heap.store(("v1",))
    heap.set_root("x", oid)
    heap.commit()
    # mark dirty, then make the cached object vanish (models the eviction /
    # bookkeeping bug class that used to lose the update silently)
    heap.update(oid)
    del heap._cache[int(oid)]
    with pytest.raises(HeapError, match="no cached object"):
        heap.commit()
    # the failed commit wrote nothing: reopening sees the old value
    heap._pager._file.close()
    reopened = ObjectHeap(path)
    assert reopened.load_root("x") == ("v1",)
    reopened.close()
