"""Tests for the store value codec (repro.store.serialize)."""

import pytest

from repro.core.names import Name
from repro.core.syntax import Char, Oid, UNIT
from repro.machine.codegen import compile_function
from repro.machine.runtime import TmlArray, TmlByteArray, TmlVector
from repro.core.parser import parse_term
from repro.store.serialize import (
    Blob,
    SerializeError,
    decode_value,
    encode_value,
    register_codec,
)


def roundtrip(value):
    return decode_value(encode_value(value))


class TestScalars:
    @pytest.mark.parametrize(
        "value",
        [0, 1, -1, 2**62, -(2**62), True, False, "", "text", "üñíçødé",
         Char("x"), Char("\n"), UNIT, None],
    )
    def test_roundtrip(self, value):
        back = roundtrip(value)
        assert back == value
        assert type(back) is type(value)

    def test_bigint(self):
        value = 2**100
        assert roundtrip(value) == value
        assert roundtrip(-(2**100)) == -(2**100)

    def test_bool_int_distinction(self):
        assert roundtrip(True) is True
        assert roundtrip(1) == 1 and roundtrip(1) is not True


class TestContainers:
    def test_array(self):
        back = roundtrip(TmlArray([1, "two", TmlVector([3])]))
        assert isinstance(back, TmlArray)
        assert back.slots[0] == 1
        assert back.slots[2].slots == (3,)

    def test_bytearray(self):
        back = roundtrip(TmlByteArray(b"\x00\xff\x80"))
        assert bytes(back.data) == b"\x00\xff\x80"

    def test_tuple_and_dict(self):
        back = roundtrip(({"a": 1, 2: "b"}, (3, 4)))
        assert back == ({"a": 1, 2: "b"}, (3, 4))

    def test_blob(self):
        assert roundtrip(Blob(b"\x01\x02")) == Blob(b"\x01\x02")


class TestOids:
    def test_unresolved_oid_stays_reference(self):
        assert roundtrip(Oid(42)) == Oid(42)

    def test_resolver_swizzles(self):
        target = TmlArray([99])
        back = decode_value(encode_value(Oid(7)), resolver=lambda oid: target)
        assert back is target

    def test_nested_oids_swizzled(self):
        objects = {5: "resolved!"}
        data = encode_value(TmlArray([Oid(5), 1]))
        back = decode_value(data, resolver=lambda oid: objects[oid.value])
        assert back.slots == ["resolved!", 1]


class TestNames:
    def test_name_roundtrip(self):
        name = Name("loop", 17, "cont")
        back = roundtrip(name)
        assert back == name and back.base == "loop" and back.is_cont


class TestCodeObjects:
    def test_code_roundtrip(self):
        term = parse_term(
            "proc(n ce cc) (Y λ(^c0 loop ^c) (c cont() (loop n) cont(i) (cc i)))"
        )
        code = compile_function(term, name="m.f")
        back = roundtrip(code)
        assert back.name == "m.f"
        assert back.instrs == code.instrs
        assert back.nregs == code.nregs
        assert [c.instrs for c in back.codes] == [c.instrs for c in code.codes]
        assert back.free_names == code.free_names
        assert back.is_proc == code.is_proc

    def test_ptml_ref_not_swizzled(self):
        term = parse_term("proc(x ce cc) (cc x)")
        code = compile_function(term)
        code.ptml_ref = Oid(123)
        back = decode_value(
            encode_value(code), resolver=lambda oid: "SHOULD NOT RESOLVE"
        )
        assert back.ptml_ref == Oid(123)

    def test_code_executes_after_roundtrip(self):
        from repro.machine.vm import VM, instantiate

        term = parse_term("proc(x ce cc) (* x 3 ce cc)")
        back = roundtrip(compile_function(term))
        assert VM().call(instantiate(back), [7]).value == 21


class TestExtensionCodecs:
    def test_unknown_type_rejected(self):
        class Mystery:
            pass

        with pytest.raises(SerializeError):
            encode_value(Mystery())

    def test_register_and_roundtrip(self):
        class Point:
            def __init__(self, x, y):
                self.x, self.y = x, y

        register_codec(
            "test-point",
            Point,
            lambda p, enc: (enc.value(p.x), enc.value(p.y)),
            lambda dec: Point(dec.value(), dec.value()),
        )
        back = roundtrip(Point(3, 4))
        assert (back.x, back.y) == (3, 4)

    def test_conflicting_tag_rejected(self):
        class A:
            pass

        class B:
            pass

        register_codec("test-conflict", A, lambda o, e: None, lambda d: A())
        with pytest.raises(SerializeError):
            register_codec("test-conflict", B, lambda o, e: None, lambda d: B())


class TestCorruption:
    def test_truncated_data(self):
        data = encode_value("some string")
        with pytest.raises(SerializeError):
            decode_value(data[:3])

    def test_trailing_bytes(self):
        with pytest.raises(SerializeError):
            decode_value(encode_value(1) + b"\x00")

    def test_unknown_tag(self):
        with pytest.raises(SerializeError):
            decode_value(b"\xee")
