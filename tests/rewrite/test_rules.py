"""Tests for the eight core rewrite rules of paper section 3.

Each test exercises one rule through the reduction pass and checks both the
resulting term shape and that the rule counter fired — so the optimization
demonstrably happened through the intended rule.
"""

import pytest

from repro.core.parser import parse_term
from repro.core.pretty import pretty_compact
from repro.core.syntax import Abs, App, Lit, PrimApp, Var, term_size
from repro.core.wellformed import check
from repro.primitives.registry import default_registry
from repro.rewrite import RuleConfig, reduce_only


@pytest.fixture
def registry():
    return default_registry()


def reduce_term(source, registry, rules=None):
    term = parse_term(source)
    result = reduce_only(term, registry, rules)
    check(result.term, registry)
    return result


class TestSubst:
    def test_literal_substitution(self, registry):
        result = reduce_term("(λ(x) (f x x)  5)", registry)
        assert result.stats.count("subst") >= 1
        # both occurrences replaced, binding gone
        assert pretty_compact(result.term).count("5") == 2

    def test_variable_copy_propagation(self, registry):
        result = reduce_term("(λ(x) (f x x)  y)", registry)
        assert result.stats.count("subst") >= 1
        assert "y" in pretty_compact(result.term)

    def test_once_used_abstraction_moved(self, registry):
        result = reduce_term(
            "(λ(g) (g 7 ^ce ^cc)  proc(v ce2 cc2) (cc2 v))", registry
        )
        # after subst the direct application reduces to (cc 7)
        assert isinstance(result.term, App)
        assert result.term.args == (Lit(7),)

    def test_multiply_used_abstraction_not_substituted(self, registry):
        """The |app|_v = 1 precondition prevents code growth."""
        result = reduce_term(
            "(λ(g) (g 1 ^e1 cont(t) (g t ^e2 ^cc))  proc(v ce cc2) (cc2 v))",
            registry,
        )
        # the binding must survive (an Abs bound to a twice-used variable)
        assert isinstance(result.term, App)
        assert isinstance(result.term.fn, Abs)

    def test_subst_disabled(self, registry):
        result = reduce_term(
            "(λ(x) (f x)  5)", registry, RuleConfig.without("subst")
        )
        assert result.stats.count("subst") == 0
        assert isinstance(result.term.fn, Abs)


class TestRemove:
    def test_dead_binding_struck(self, registry):
        result = reduce_term("(λ(x y) (f x)  1 2)", registry)
        assert result.stats.count("remove") == 1

    def test_dead_abstraction_value_removed(self, registry):
        result = reduce_term(
            "(λ(g) (f 1)  proc(v ce cc) (cc v))", registry
        )
        assert result.stats.count("remove") == 1
        assert "proc" not in pretty_compact(result.term)

    def test_remove_is_safe_for_values_only(self, registry):
        # arguments are values by construction; removal loses no effects —
        # the removed value here contains no primitive calls at all
        result = reduce_term("(λ(x) (f 1)  y)", registry)
        assert result.stats.count("remove") == 1


class TestReduce:
    def test_nullary_application_collapses(self, registry):
        result = reduce_term("(λ() (f 1))", registry)
        assert result.stats.count("reduce") == 1
        assert isinstance(result.term, App)
        assert isinstance(result.term.fn, Var)

    def test_reduce_after_all_bindings_consumed(self, registry):
        result = reduce_term("(λ(x) (f x)  2)", registry)
        assert result.stats.count("reduce") == 1


class TestEtaReduce:
    def test_forwarding_wrapper_removed(self, registry):
        result = reduce_term(
            "(f cont(t) (k t))", registry
        )
        assert result.stats.count("eta-reduce") == 1
        assert pretty_compact(result.term) == "(f_0 k_2)" or "cont" not in pretty_compact(result.term)

    def test_eta_blocked_when_target_uses_param(self, registry):
        # λ(t)(t t) is not an eta-redex
        result = reduce_term("(f cont(t) (t t))", registry)
        assert result.stats.count("eta-reduce") == 0

    def test_eta_blocked_on_arg_mismatch(self, registry):
        result = reduce_term("(f cont(t u) (k u t))", registry)
        assert result.stats.count("eta-reduce") == 0

    def test_eta_skipped_in_cont_var_applications(self, registry):
        """Arguments of a continuation-variable application may be Y-group
        members; eta-reducing one to its own recursive name would create the
        ill-defined binding v := v (regression: `while true do ... end`)."""
        result = reduce_term("(^c cont() (halt 0) cont() (^loop))", registry)
        assert result.stats.count("eta-reduce") == 0

    def test_while_true_compiles_and_bounds(self, registry):
        """End-to-end regression: an infinite loop must compile and spin."""
        from repro.lang import TycoonSystem
        from repro.machine.vm import StepLimitExceeded

        system = TycoonSystem()
        system.compile(
            """
            module spin export f
            let f(): Int = begin while true do 0 end; 1 end
            end
            """
        )
        with pytest.raises(StepLimitExceeded):
            system.call("spin", "f", [], step_limit=2000)

    def test_eta_never_fires_on_y_fixfun(self, registry):
        # the Y argument must stay an abstraction even when eta-shaped
        result = reduce_term("(Y λ(^c0 ^c) (k c0 c))", registry)
        assert result.stats.count("eta-reduce") == 0
        assert isinstance(result.term, PrimApp) and result.term.prim == "Y"


class TestFold:
    def test_constant_folding_cascades(self, registry):
        # (+ 1 2) -> 3, then (* 3 3) -> 9 after substitution
        result = reduce_term(
            "(+ 1 2 ^ce cont(t) (* t 3 ^ce2 cont(u) (halt u)))", registry
        )
        assert result.stats.count("fold") == 2
        assert pretty_compact(result.term) == "(halt 9)"

    def test_fold_disabled(self, registry):
        result = reduce_term(
            "(+ 1 2 ^ce ^cc)", registry, RuleConfig.without("fold")
        )
        assert result.stats.count("fold") == 0
        assert isinstance(result.term, PrimApp)


class TestCaseSubst:
    def test_scrutinee_refined_in_branch(self, registry):
        """(== v 1 c1) with v used in the branch: v becomes 1 there."""
        result = reduce_term(
            "(== v 1 cont() (halt v) cont() (halt 0))", registry
        )
        assert result.stats.count("case-subst") == 1
        # the taken branch now halts with the literal
        text = pretty_compact(result.term)
        assert "(halt 1)" in text

    def test_no_substitution_into_else(self, registry):
        result = reduce_term(
            "(== v 1 cont() (halt 7) cont() (halt v))", registry
        )
        # v only occurs in the else branch: nothing to substitute
        assert result.stats.count("case-subst") == 0

    def test_case_subst_disabled(self, registry):
        result = reduce_term(
            "(== v 1 cont() (halt v) cont() (halt 0))",
            registry,
            RuleConfig.without("case-subst"),
        )
        assert result.stats.count("case-subst") == 0


class TestYRules:
    def test_y_remove_dead_binding(self, registry):
        src = """
        (Y λ(^c0 dead ^c)
           (c cont() (halt 1)
              cont(i) (dead i)))
        """
        result = reduce_term(src, registry)
        assert result.stats.count("Y-remove") == 1

    def test_y_remove_keeps_live_bindings(self, registry):
        src = """
        (Y λ(^c0 ^loop ^c)
           (c cont() (loop)
              cont() (loop)))
        """
        result = reduce_term(src, registry)
        assert result.stats.count("Y-remove") == 0

    def test_y_reduce_empty_group(self, registry):
        result = reduce_term("(Y λ(^c0 ^c) (c cont() (halt 5)))", registry)
        assert result.stats.count("Y-reduce") == 1
        assert pretty_compact(result.term) == "(halt 5)"

    def test_y_reduce_blocked_when_c0_used(self, registry):
        result = reduce_term("(Y λ(^c0 ^c) (c cont() (c0)))", registry)
        assert result.stats.count("Y-reduce") == 0

    def test_y_cascade_remove_then_reduce(self, registry):
        """Removing the last dead binding enables Y-reduce."""
        src = """
        (Y λ(^c0 dead ^c)
           (c cont() (halt 3)
              cont(i) (halt i)))
        """
        result = reduce_term(src, registry)
        assert result.stats.count("Y-remove") == 1
        assert result.stats.count("Y-reduce") == 1
        assert pretty_compact(result.term) == "(halt 3)"


class TestTermination:
    def test_every_rule_shrinks_the_tree(self, registry):
        sources = [
            "(λ(x) (f x)  5)",
            "(λ(x) (f 1)  2)",
            "(λ() (f 1))",
            "(f cont(t) (k t))",
            "(+ 1 2 ^ce ^cc)",
            "(Y λ(^c0 ^c) (c cont() (halt 5)))",
        ]
        for source in sources:
            term = parse_term(source)
            result = reduce_only(term, registry)
            assert term_size(result.term) < term_size(term), source

    def test_reduction_reaches_fixpoint(self, registry):
        term = parse_term("(+ 1 2 ^ce cont(t) (* t t ^ce2 cont(u) (halt u)))")
        once = reduce_only(term, registry).term
        twice = reduce_only(once, registry).term
        assert once == twice
