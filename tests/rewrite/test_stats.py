"""RewriteStats merge/export semantics and the RuleTimer."""

from repro.rewrite.stats import RewriteStats, RuleTimer


def _stats(**kwargs):
    stats = RewriteStats()
    for name, value in kwargs.items():
        setattr(stats, name, value)
    return stats


def test_merge_accumulates_counters():
    a = _stats(reduction_passes=2, rounds=1, inlined_sites=3)
    a.fired("beta", 4)
    b = _stats(reduction_passes=1, expansion_passes=1, penalty=5)
    b.fired("beta")
    b.fired("eta", 2)
    a.merge(b)
    assert a.count("beta") == 5
    assert a.count("eta") == 2
    assert a.total_rewrites == 7
    assert a.reduction_passes == 3
    assert a.expansion_passes == 1
    assert a.penalty == 5


def test_merge_keeps_first_size_before_and_last_size_after():
    """Sequential composition: the merged summary describes input of the
    first run and output of the last (previously both were dropped)."""
    first = _stats(size_before=120, size_after=90)
    second = _stats(size_before=90, size_after=70)
    first.merge(second)
    assert first.size_before == 120
    assert first.size_after == 70


def test_merge_into_empty_adopts_other_sizes():
    empty = RewriteStats()
    ran = _stats(size_before=50, size_after=40)
    empty.merge(ran)
    assert empty.size_before == 50
    assert empty.size_after == 40


def test_merge_with_sizeless_run_keeps_existing_size_after():
    stats = _stats(size_before=30, size_after=25)
    stats.merge(RewriteStats())  # e.g. a pass that fired nothing
    assert stats.size_before == 30
    assert stats.size_after == 25


def test_as_dict_is_sorted_and_complete():
    stats = _stats(size_before=10, size_after=8, rounds=2)
    stats.fired("eta")
    stats.fired("beta")
    data = stats.as_dict()
    assert list(data["rules"]) == ["beta", "eta"]
    assert data["size_before"] == 10
    assert data["size_after"] == 8
    assert data["rounds"] == 2


def test_rule_timer_credits_pending_rules():
    timer = RuleTimer()
    timer.pending.extend(["beta", "beta", "eta"])
    timer.credit(0.3)
    assert timer.pending == []
    assert timer.timed_fires == {"beta": 2, "eta": 1}
    assert abs(timer.totals["beta"] - 0.2) < 1e-9
    assert abs(timer.totals["eta"] - 0.1) < 1e-9
    # crediting with nothing pending is a no-op
    timer.credit(1.0)
    assert timer.timed_fires == {"beta": 2, "eta": 1}


def test_rule_timer_rows_sorted_by_total_time():
    timer = RuleTimer()
    timer.pending.append("cheap")
    timer.credit(0.1)
    timer.pending.append("hot")
    timer.credit(0.9)
    rows = timer.as_rows()
    assert [row[0] for row in rows] == ["hot", "cheap"]
