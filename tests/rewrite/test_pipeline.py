"""Tests for the two-pass optimizer pipeline and cost model (section 3)."""

import pytest

from repro.core.parser import parse_term
from repro.core.pretty import pretty_compact
from repro.core.syntax import Abs, Lit, term_size
from repro.primitives.registry import default_registry
from repro.rewrite import OptimizerConfig, RuleConfig, optimize, reduce_only
from repro.rewrite.cost import (
    CALL_COST,
    CLOSURE_COST,
    DEFAULT_PRIM_COST,
    InlineDecision,
    site_decision,
    term_cost,
)


@pytest.fixture
def registry():
    return default_registry()


class TestTermCost:
    def test_prim_costs_summed(self, registry):
        term = parse_term("(+ a b ^ce ^cc)")
        assert term_cost(term, registry) == registry.lookup("+").cost

    def test_call_and_closure_costs(self, registry):
        term = parse_term("(f cont(t) (k t))")
        # one App + one Abs + the inner App
        assert term_cost(term, registry) == 2 * CALL_COST + CLOSURE_COST

    def test_unknown_prim_gets_worst_case(self, registry):
        term = parse_term("(frobnicate a ^k)", prims={"frobnicate"})
        assert term_cost(term, registry) == DEFAULT_PRIM_COST


class TestSiteDecision:
    def test_small_body_inlined(self, registry):
        body = parse_term("proc(x ce cc) (+ x 1 ce cc)")
        decision = site_decision(body, (Lit(1),), registry, growth_budget=24)
        assert decision.inline

    def test_literal_args_increase_savings(self, registry):
        body = parse_term("proc(x ce cc) (+ x 1 ce cc)")
        with_lit = site_decision(body, (Lit(1),), registry, 0)
        var = parse_term("v")
        without = site_decision(body, (var,), registry, 0)
        assert with_lit.savings > without.savings

    def test_budget_zero_rejects_large_bodies(self, registry):
        big = parse_term(
            "proc(x ce cc) (f x ce cont(a) (g a ce cont(b) (h b ce cont(d) "
            "(i d ce cont(e2) (j e2 ce cc)))))"
        )
        decision = site_decision(big, (), registry, growth_budget=0)
        assert not decision.inline
        assert decision.growth > 0


class TestOptimizeDriver:
    def test_reduction_only_config(self, registry):
        term = parse_term(
            "(λ(g) (g 1 ^e1 cont(t) (g t ^e2 ^cc))  proc(v ce cc) (+ v 1 ce cc))"
        )
        result = optimize(term, registry, OptimizerConfig.reduction_only())
        assert result.stats.inlined_sites == 0

    def test_alternation_beats_single_pass(self, registry):
        """Expansion exposes folds reduction alone cannot reach (section 3)."""
        source = """
        (λ(inc) (inc 1 ^e1 cont(a) (inc a ^e2 cont(b) (halt b)))
         proc(v ce cc) (+ v 1 ce cc))
        """
        reduced = reduce_only(parse_term(source), registry)
        both = optimize(parse_term(source), registry)
        assert term_size(both.term) < term_size(reduced.term)
        assert pretty_compact(both.term) == "(halt 3)"

    def test_size_accounting(self, registry):
        term = parse_term("(+ 1 2 ^ce ^cc)")
        result = optimize(term, registry)
        assert result.stats.size_before == term_size(term)
        assert result.stats.size_after == term_size(result.term)
        assert result.stats.size_after < result.stats.size_before

    def test_rounds_bounded(self, registry):
        term = parse_term("(halt 1)")
        result = optimize(term, registry, OptimizerConfig(max_rounds=3))
        assert result.stats.rounds <= 3

    def test_idempotent_on_optimized_term(self, registry):
        term = parse_term(
            "(λ(g) (g 1 ^e1 cont(t) (g t ^e2 ^cc))  proc(v ce cc) (+ v 1 ce cc))"
        )
        once = optimize(term, registry).term
        twice = optimize(once, registry).term
        assert once == twice

    def test_rule_config_threads_through(self, registry):
        term = parse_term("(+ 1 2 ^ce ^cc)")
        config = OptimizerConfig(rules=RuleConfig.without("fold"))
        result = optimize(term, registry, config)
        assert result.stats.count("fold") == 0

    def test_stats_summary_is_readable(self, registry):
        result = optimize(parse_term("(+ 1 2 ^ce ^cc)"), registry)
        summary = result.stats.summary()
        assert "fold" in summary and "->" in summary


class TestRuleConfig:
    def test_unknown_rule_rejected(self):
        with pytest.raises(ValueError):
            RuleConfig(frozenset({"definitely-not-a-rule"}))

    def test_without(self):
        config = RuleConfig.without("fold", "subst")
        assert not config.allows("fold")
        assert not config.allows("subst")
        assert config.allows("remove")
