"""Tests for the expansion (inlining) pass of paper section 3."""

import pytest

from repro.core.parser import parse_term
from repro.core.pretty import pretty_compact
from repro.core.syntax import term_size
from repro.core.wellformed import check
from repro.machine.cps_interp import Interpreter
from repro.primitives.registry import default_registry
from repro.rewrite import ExpansionConfig, OptimizerConfig, expand_pass, optimize
from repro.rewrite.stats import RewriteStats


@pytest.fixture
def registry():
    return default_registry()


#: g is bound once but called twice: subst cannot move it, expansion copies it
TWICE_CALLED = """
(λ(g) (g 1 ^e1 cont(t) (g t ^e2 cont(u) (halt u)))
 proc(v ce cc) (+ v 10 ce cc))
"""


def test_expansion_copies_into_call_sites(registry):
    term = parse_term(TWICE_CALLED)
    stats = RewriteStats()
    out = expand_pass(term, registry, ExpansionConfig(), stats)
    assert stats.inlined_sites == 2
    check(out, registry)


def test_expansion_preserves_unique_binding(registry):
    """Copies must be alpha-renamed (the subst-variant with renaming)."""
    term = parse_term(TWICE_CALLED)
    out = expand_pass(term, registry, ExpansionConfig(), RewriteStats())
    check(out, registry)  # unique-binding violations would be reported


def test_full_optimize_folds_through_inlined_copies(registry):
    result = optimize(parse_term(TWICE_CALLED), registry)
    # (1+10)+10 = 21 fully computed at compile time
    assert pretty_compact(result.term) == "(halt 21)"


def test_expansion_respects_growth_budget(registry):
    term = parse_term(TWICE_CALLED)
    config = OptimizerConfig(
        expansion=ExpansionConfig(growth_budget=-1000)  # nothing fits
    )
    result = optimize(parse_term(TWICE_CALLED), registry, config)
    assert result.stats.inlined_sites == 0


def test_recursive_unrolling_disabled_by_default(registry):
    src = """
    (Y λ(^c0 fact ^c)
       (c cont() (fact 5 1 ^ce ^cc)
          proc(n acc ce cc)
            (> n 1 cont() (* acc n ce cont(a) (- n 1 ce cont(m) (fact m a ce cc)))
                   cont() (cc acc))))
    """
    term = parse_term(src)
    result = optimize(term, registry)
    assert result.stats.count("expand-inline") == 0


def test_recursive_unrolling_when_enabled(registry):
    src = """
    (Y λ(^c0 fact ^c)
       (c cont() (fact 5 1 ^ce cont(r) (halt r))
          proc(n acc ce cc)
            (> n 1 cont() (* acc n ce cont(a) (- n 1 ce cont(m) (fact m a ce cc)))
                   cont() (cc acc))))
    """
    config = OptimizerConfig(
        expansion=ExpansionConfig(
            unroll_recursive=True, recursive_growth_budget=100
        ),
        penalty_limit=40,
    )
    term = parse_term(src)
    result = optimize(term, registry, config)
    assert result.stats.inlined_sites > 0
    check(result.term, registry)
    # unrolled program still computes 5! = 120
    assert Interpreter().run(result.term).value == 120


def test_penalty_bounds_the_alternation(registry):
    """Section 3: accumulated penalty stops reduce/expand in obscure cases."""
    src = """
    (Y λ(^c0 spin ^c)
       (c cont() (spin 3 ^ce cont(r) (halt r))
          proc(n ce cc) (spin n ce cc)))
    """
    config = OptimizerConfig(
        expansion=ExpansionConfig(unroll_recursive=True, recursive_growth_budget=100),
        penalty_limit=5,
        max_rounds=50,
    )
    result = optimize(parse_term(src), registry, config)
    # must terminate; penalty mechanism capped the unrolling
    assert result.stats.penalty <= 5 + 10  # one round may overshoot slightly


def test_escaping_function_keeps_binding(registry):
    # g escapes (passed as a value); call sites are inlined but the binding stays
    src = """
    (λ(g) (g 1 ^e1 cont(t) (h g t))
     proc(v ce cc) (+ v 10 ce cc))
    """
    result = optimize(parse_term(src), registry)
    assert "proc" in pretty_compact(result.term)


def test_nonrecursive_y_member_inlined(registry):
    """A Y-bound member that references no group name is plain inlining."""
    src = """
    (Y λ(^c0 helper ^c)
       (c cont() (helper 4 ^ce cont(r) (halt r))
          proc(v ce cc) (* v v ce cc)))
    """
    result = optimize(parse_term(src), registry)
    assert pretty_compact(result.term) == "(halt 16)"


def test_semantics_preserved_under_expansion(registry):
    closed = """
    (λ(g) (g 1 cont(e) (halt -1) cont(t) (g t cont(e2) (halt -2) cont(u) (halt u)))
     proc(v ce cc) (+ v 10 ce cc))
    """
    term = parse_term(closed)
    before = Interpreter().run(term).value
    after = Interpreter().run(optimize(term, registry).term).value
    assert before == after == 21
