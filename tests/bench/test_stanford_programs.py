"""Correctness tests for the Stanford suite TL programs (the §6 workload)."""

import pytest

from repro.bench.stanford import PROGRAMS
from repro.bench.harness import CONFIG_NONE, CONFIG_STATIC, geometric_mean, run_stanford
from repro.lang import TycoonSystem
from repro.reflect import optimize_function


@pytest.fixture(scope="module")
def systems():
    none = TycoonSystem(options=CONFIG_NONE)
    static = TycoonSystem(options=CONFIG_STATIC)
    for program in PROGRAMS.values():
        none.compile(program.source)
        static.compile(program.source)
    return none, static


@pytest.mark.parametrize("name", sorted(PROGRAMS))
def test_checksum_unoptimized(systems, name):
    none, _ = systems
    program = PROGRAMS[name]
    got = none.call(name, "run", [program.test_n]).value
    assert got == program.reference(program.test_n)


@pytest.mark.parametrize("name", sorted(PROGRAMS))
def test_checksum_static(systems, name):
    _, static = systems
    program = PROGRAMS[name]
    got = static.call(name, "run", [program.test_n]).value
    assert got == program.reference(program.test_n)


@pytest.mark.parametrize("name", sorted(PROGRAMS))
def test_checksum_dynamic(systems, name):
    _, static = systems
    program = PROGRAMS[name]
    fast = optimize_function(static, name, "run")
    got = static.vm().call(fast, [program.test_n]).value
    assert got == program.reference(program.test_n)


@pytest.mark.parametrize("name", sorted(PROGRAMS))
def test_dynamic_optimization_reduces_instructions(systems, name):
    """E2's noise-free core: dynamic optimization cuts executed instructions."""
    _, static = systems
    program = PROGRAMS[name]
    baseline = static.call(name, "run", [program.test_n])
    fast = optimize_function(static, name, "run")
    optimized = static.vm().call(fast, [program.test_n])
    assert optimized.value == baseline.value
    assert optimized.instructions < baseline.instructions, name


def test_suite_covers_ten_programs():
    assert len(PROGRAMS) >= 10


def test_references_scale():
    for program in PROGRAMS.values():
        assert isinstance(program.reference(program.test_n), int)


def test_geometric_mean():
    assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)
    assert geometric_mean([]) != geometric_mean([])  # NaN


@pytest.mark.slow
def test_harness_smoke():
    rows = run_stanford(names=["fib", "towers"], scale=0.3)
    assert len(rows) == 2
    for row in rows:
        assert row.instr_ratio >= 1.0
