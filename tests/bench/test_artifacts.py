"""BENCH_vm.json / BENCH_opt.json artifact emission."""

import json

from repro.bench.artifacts import opt_payload, vm_payload, write_bench_artifacts
from repro.bench.harness import run_stanford

NAMES = ["fib"]


def test_write_bench_artifacts(tmp_path):
    vm_path, opt_path = write_bench_artifacts(
        out_dir=str(tmp_path), names=NAMES, scale=0.05, repeats=1
    )
    vm_doc = json.loads(open(vm_path).read())
    opt_doc = json.loads(open(opt_path).read())

    assert vm_doc["schema"] == "repro.bench.vm/v1"
    assert opt_doc["schema"] == "repro.bench.opt/v1"
    assert [p["program"] for p in vm_doc["programs"]] == NAMES
    assert [p["program"] for p in opt_doc["programs"]] == NAMES

    row = vm_doc["programs"][0]
    assert set(row["wall_s"]) == {"none", "static", "dynamic"}
    assert row["instructions"]["none"] >= row["instructions"]["static"]
    assert vm_doc["geomean"]["dynamic_speedup"] > 0

    opt_row = opt_doc["programs"][0]
    assert opt_row["cost_before"] >= opt_row["cost_after"]
    assert opt_row["term_size_before"] > 0
    assert isinstance(opt_row["rules"], dict)

    # both embed a process metrics snapshot (the always-on counters)
    assert "vm.instructions" in vm_doc["metrics"]
    assert "vm.instructions" in opt_doc["metrics"]


def test_payloads_from_precomputed_rows():
    rows = run_stanford(names=NAMES, scale=0.05, repeats=1)
    vm_doc = vm_payload(rows, scale=0.05, repeats=1)
    assert vm_doc["meta"]["scale"] == 0.05
    assert vm_doc["programs"][0]["checksum"] == rows[0].checksum

    opt_doc = opt_payload(NAMES, scale=0.05, repeats=1)
    assert opt_doc["programs"][0]["program"] == "fib"
    assert json.dumps(opt_doc)  # JSON-serializable end to end
