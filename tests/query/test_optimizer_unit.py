"""Unit tests for the integrated optimizer driver and rewrite statistics."""

import pytest

from repro.core.parser import parse_term
from repro.query.algebra import query_registry
from repro.query.optimizer import IntegratedResult, integrated_optimize
from repro.query.rules import QueryRewriteStats
from repro.rewrite.stats import RewriteStats


@pytest.fixture
def registry():
    return query_registry()


def test_plain_program_converges_in_one_round(registry):
    term = parse_term("proc(x ce cc) (+ x 1 ce cc)", prims=registry.names())
    result = integrated_optimize(term, registry)
    assert result.rounds == 1  # no query rewrites: stop immediately
    assert result.query_stats.total == 0


def test_query_rewrite_triggers_another_program_round(registry):
    src = """
    proc(rel ce cc)
      (select proc(x ce1 cc1) (cc1 true)
              rel ce
              cont(t) (select proc(y ce2 cc2) (cc2 true) t ce cc))
    """
    term = parse_term(src, prims=registry.names())
    result = integrated_optimize(term, registry)
    assert result.query_stats.count("merge-select") == 1
    assert result.rounds >= 2  # the rewrite forced a second program round


def test_stats_alias(registry):
    term = parse_term("proc(x ce cc) (cc x)", prims=registry.names())
    result = integrated_optimize(term, registry)
    assert result.stats is result.program_stats
    assert result.size > 0


def test_enabled_rule_subset(registry):
    src = """
    proc(rel ce cc)
      (select proc(x ce1 cc1) (cc1 true)
              rel ce
              cont(t) (select proc(y ce2 cc2) (cc2 true) t ce cc))
    """
    term = parse_term(src, prims=registry.names())
    result = integrated_optimize(
        term, registry, query_rules=frozenset({"trivial-exists"})
    )
    assert result.query_stats.count("merge-select") == 0


class TestQueryRewriteStats:
    def test_counts(self):
        stats = QueryRewriteStats()
        stats.fired("merge-select")
        stats.fired("merge-select")
        stats.fired("index-select")
        assert stats.count("merge-select") == 2
        assert stats.total == 3
        assert stats.count("never") == 0


class TestRewriteStats:
    def test_merge(self):
        a, b = RewriteStats(), RewriteStats()
        a.fired("subst", 2)
        b.fired("subst")
        b.fired("fold", 3)
        b.inlined_sites = 4
        a.merge(b)
        assert a.count("subst") == 3
        assert a.count("fold") == 3
        assert a.inlined_sites == 4
        assert a.total_rewrites == 6

    def test_summary_mentions_sizes(self):
        stats = RewriteStats()
        stats.size_before, stats.size_after = 10, 5
        assert "10 -> 5" in stats.summary()
