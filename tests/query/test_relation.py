"""Tests for relations and indexes (repro.query.relation / .index)."""

import pytest

from repro.core.syntax import Char, Oid
from repro.machine.runtime import TmlVector
from repro.query.index import HashIndex, OrderedIndex, index_key
from repro.query.relation import QueryError, Relation
from repro.store.heap import ObjectHeap


@pytest.fixture
def people():
    rel = Relation("people", ["id", "name", "age"])
    rel.insert_many(
        [(1, "ann", 34), (2, "bob", 12), (3, "cy", 19), (4, "dee", 12)]
    )
    return rel


class TestSchema:
    def test_fields_and_positions(self, people):
        assert people.arity == 3
        assert people.field_position("age") == 2
        assert people.field_at(1) == "name"
        assert people.field_at(9) is None

    def test_unknown_field(self, people):
        with pytest.raises(QueryError):
            people.field_position("salary")

    def test_duplicate_fields_rejected(self):
        with pytest.raises(QueryError):
            Relation("bad", ["a", "a"])


class TestRows:
    def test_insert_sequences_and_vectors(self, people):
        people.insert(TmlVector([5, "el", 40]))
        people.insert((6, "fi", 50))
        assert len(people) == 6

    def test_arity_mismatch(self, people):
        with pytest.raises(QueryError):
            people.insert((1, 2))

    def test_rows_are_vectors(self, people):
        assert all(isinstance(row, TmlVector) for row in people)

    def test_to_tuples(self, people):
        assert people.to_tuples()[0] == (1, "ann", 34)

    def test_scan_counts(self, people):
        assert people.scans == 0
        list(people.scan())
        list(people.scan())
        assert people.scans == 2

    def test_project_fields(self, people):
        names = people.project_fields(["name"])
        assert names.to_tuples() == [("ann",), ("bob",), ("cy",), ("dee",)]


class TestIndexes:
    def test_hash_index_lookup(self, people):
        people.create_index("age")
        rows = people.index_lookup("age", 12)
        assert {r.slots[1] for r in rows} == {"bob", "dee"}

    def test_index_maintained_on_insert(self, people):
        people.create_index("age")
        people.insert((5, "el", 12))
        assert len(people.index_lookup("age", 12)) == 3

    def test_ordered_index_range(self, people):
        people.create_index("age", ordered=True)
        rows = people.index_range("age", 12, 20)
        assert {r.slots[1] for r in rows} == {"bob", "cy", "dee"}

    def test_range_needs_ordered_index(self, people):
        people.create_index("age")  # hash
        with pytest.raises(QueryError):
            people.index_range("age", 0, 100)

    def test_no_index_error(self, people):
        with pytest.raises(QueryError):
            people.index_lookup("name", "ann")

    def test_has_index(self, people):
        assert not people.has_index("id")
        people.create_index("id")
        assert people.has_index("id")


class TestIndexStructures:
    def test_hash_index_duplicates(self):
        index = HashIndex()
        index.add(1, "a")
        index.add(1, "b")
        assert index.lookup(1) == ["a", "b"]
        assert len(index) == 2
        assert index.lookups == 1

    def test_ordered_index_sorted(self):
        index = OrderedIndex()
        for key in (5, 1, 3, 2, 4):
            index.add(key, key * 10)
        assert index.range(2, 4) == [20, 30, 40]
        assert index.lookup(3) == [30]

    def test_index_key_type_separation(self):
        assert index_key(1) != index_key(True)
        assert index_key("1") != index_key(1)
        assert index_key(Char("a")) != index_key("a")
        assert index_key(Oid(3))[0] == "oid"

    def test_unhashable_key_rejected(self):
        with pytest.raises(TypeError):
            index_key(TmlVector([1]))


class TestPersistence:
    def test_relation_codec_roundtrip(self, people, tmp_path):
        people.create_index("age", ordered=True)
        heap = ObjectHeap(str(tmp_path / "rel.tyc"))
        oid = heap.store(people)
        heap.set_root("people", oid)
        heap.commit()
        heap.close()

        heap2 = ObjectHeap(str(tmp_path / "rel.tyc"))
        loaded = heap2.load_root("people")
        assert loaded.to_tuples() == people.to_tuples()
        assert loaded.has_index("age")
        assert loaded.index_range("age", 12, 13) is not None
        heap2.close()
