"""Tests for the relational-algebra extension primitives (§4.2, §2.3)."""

import pytest

from repro.core.parser import parse_term
from repro.core.syntax import Abs, UNIT
from repro.machine.codegen import compile_function
from repro.machine.cps_interp import Interpreter
from repro.machine.runtime import TmlVector, UncaughtTmlException
from repro.machine.vm import VM, instantiate
from repro.query.algebra import query_registry
from repro.query.relation import Relation


@pytest.fixture
def registry():
    return query_registry()


@pytest.fixture
def people():
    rel = Relation("people", ["name", "age"])
    rel.insert_many([("ann", 34), ("bob", 12), ("cy", 19)])
    return rel


def run_both(source, args, registry):
    """Run a proc on both engines; assert agreement; return the value."""
    term = parse_term(source, prims=registry.names())
    assert isinstance(term, Abs)

    interp = Interpreter(registry=registry)
    interp_result = interp.call(interp.make_closure(term), list(args))

    code = compile_function(term, registry)
    vm_result = VM().call(instantiate(code), list(args))

    if isinstance(interp_result.value, Relation):
        assert interp_result.value.to_tuples() == vm_result.value.to_tuples()
    else:
        assert interp_result.value == vm_result.value
    return vm_result.value


ADULTS = """
proc(rel ce cc)
  (select proc(x ce2 cc2)
            ([] x 1 cont(age) (>= age 18 cont() (cc2 true) cont() (cc2 false)))
          rel ce cc)
"""


def test_select(people, registry):
    out = run_both(ADULTS, [people], registry)
    assert out.to_tuples() == [("ann", 34), ("cy", 19)]


def test_project(people, registry):
    src = """
    proc(rel ce cc)
      (project proc(x ce2 cc2) ([] x 0 cont(n) (cc2 n))
               rel ce cc)
    """
    out = run_both(src, [people], registry)
    assert out.to_tuples() == [("ann",), ("bob",), ("cy",)]


def test_project_records(people, registry):
    src = """
    proc(rel ce cc)
      (project proc(x ce2 cc2)
                 ([] x 1 cont(a) ([] x 0 cont(n) (vector a n cc2)))
               rel ce cc)
    """
    out = run_both(src, [people], registry)
    assert out.to_tuples() == [(34, "ann"), (12, "bob"), (19, "cy")]


def test_join(registry):
    left = Relation("l", ["id", "v"])
    left.insert_many([(1, "a"), (2, "b")])
    right = Relation("r", ["key", "w"])
    right.insert_many([(2, "x"), (3, "y"), (2, "z")])
    src = """
    proc(l r ce cc)
      (join proc(a b ce2 cc2)
              ([] a 0 cont(x) ([] b 0 cont(y)
                (== x y cont() (cc2 true) cont() (cc2 false))))
            l r ce cc)
    """
    out = run_both(src, [left, right], registry)
    assert out.to_tuples() == [(2, "b", 2, "x"), (2, "b", 2, "z")]


def test_exists_short_circuits(people, registry):
    src = """
    proc(rel ce cc)
      (exists proc(x ce2 cc2)
                ([] x 1 cont(a) (> a 30 cont() (cc2 true) cont() (cc2 false)))
              rel ce cc)
    """
    assert run_both(src, [people], registry) is True


def test_empty_and_count(people, registry):
    src = "proc(rel ce cc) (empty rel cont(e) (count rel cont(n) (vector e n cc)))"
    out = run_both(src, [people], registry)
    assert out.slots == (False, 3)


def test_boolean_connectives(registry):
    src = "proc(a b ce cc) (and a b cont(x) (or x b cont(y) (not y cont(z) (cc z)))))"
    # fix paren count
    src = "proc(a b ce cc) (and a b cont(x) (not x cont(z) (cc z)))"
    assert run_both(src, [True, True], registry) is False
    assert run_both(src, [True, False], registry) is True


def test_insert(registry):
    rel = Relation("t", ["v"])
    src = """
    proc(rel ce cc)
      (vector 42 cont(row) (insert rel row ce cc))
    """
    term = parse_term(src, prims=registry.names())
    code = compile_function(term, registry)
    result = VM().call(instantiate(code), [rel])
    assert result.value == UNIT
    assert rel.to_tuples() == [(42,)]


def test_indexscan(people, registry):
    people.create_index("age")
    src = 'proc(rel ce cc) (indexscan rel "age" 12 ce cc)'
    out = run_both(src, [people], registry)
    assert out.to_tuples() == [("bob", 12)]


def test_indexscan_without_index_raises(people, registry):
    src = 'proc(rel ce cc) (indexscan rel "age" 12 ce cc)'
    with pytest.raises(UncaughtTmlException):
        run_both(src, [people], registry)


def test_rangescan(people, registry):
    people.create_index("age", ordered=True)
    src = 'proc(rel ce cc) (rangescan rel "age" 12 20 ce cc)'
    out = run_both(src, [people], registry)
    assert {t[0] for t in out.to_tuples()} == {"bob", "cy"}


def test_predicate_exception_reaches_ce(people, registry):
    src = """
    proc(rel ce cc)
      (select proc(x ce2 cc2) (ce2 "boom") rel cont(e) (cc e) cc)
    """
    # wrap: the select's ce is a cont delivering the error value
    term = parse_term(src, prims=registry.names())
    code = compile_function(term, registry)
    result = VM().call(instantiate(code), [people])
    assert result.value == "boom"


def test_predicate_type_error(people, registry):
    src = """
    proc(rel ce cc)
      (select proc(x ce2 cc2) (cc2 7) rel cont(e) (cc e) cc)
    """
    term = parse_term(src, prims=registry.names())
    code = compile_function(term, registry)
    result = VM().call(instantiate(code), [people])
    assert "boolean" in result.value


def test_non_relation_argument(registry):
    src = "proc(rel ce cc) (count rel cc)"
    with pytest.raises(UncaughtTmlException):
        run_both(src, [42], registry)


def test_boolean_folds_registered(registry):
    call = parse_term("(and true x ^k)", prims=registry.names())
    folded = registry.lookup("and").meta_evaluate(call)
    assert folded is not None

    call = parse_term("(and false x ^k)", prims=registry.names())
    folded = registry.lookup("and").meta_evaluate(call)
    from repro.core.syntax import Lit

    assert folded.args == (Lit(False),)

    call = parse_term("(not true ^k)", prims=registry.names())
    assert registry.lookup("not").meta_evaluate(call).args == (Lit(False),)
