"""Tests for the §4.2 query rewrite rules on CPS terms."""

import pytest

from repro.core.parser import parse_term
from repro.core.syntax import Abs, Lit, Oid, PrimApp
from repro.core.wellformed import check
from repro.machine.codegen import compile_function
from repro.machine.vm import VM, instantiate
from repro.query.algebra import query_registry
from repro.query.relation import Relation
from repro.query.rules import QueryRewriter, is_effect_safe
from repro.store.heap import ObjectHeap


@pytest.fixture
def registry():
    return query_registry()


def parse(source, registry):
    return parse_term(source, prims=registry.names())


#: σp(σq(R)) in the paper's CPS template
NESTED_SELECTS = """
proc(rel ce cc)
  (select proc(x ce1 cc1)
            ([] x 0 cont(v) (>= v 10 cont() (cc1 true) cont() (cc1 false)))
          rel ce
          cont(tempRel)
            (select proc(y ce2 cc2)
                      ([] y 0 cont(w) (<= w 20 cont() (cc2 true) cont() (cc2 false)))
                    tempRel ce cc))
"""


class TestMergeSelect:
    def test_fires_on_paper_shape(self, registry):
        term = parse(NESTED_SELECTS, registry)
        rewriter = QueryRewriter(registry)
        out = rewriter.rewrite(term)
        assert rewriter.stats.count("merge-select") == 1
        check(out, registry)
        # exactly one select remains
        selects = [
            n for n in _prims(out) if n.prim == "select"
        ]
        assert len(selects) == 1

    def test_merged_query_equivalent_and_single_scan(self, registry):
        rel = Relation("nums", ["v"])
        rel.insert_many([(i,) for i in range(0, 40, 3)])

        term = parse(NESTED_SELECTS, registry)
        rewriter = QueryRewriter(registry)
        merged = rewriter.rewrite(term)

        out_orig = _run(term, [rel], registry)
        scans_orig = rel.scans
        out_merged = _run(merged, [rel], registry)
        scans_merged = rel.scans - scans_orig

        assert out_orig.to_tuples() == out_merged.to_tuples()
        # the merged plan scans the base relation exactly once and never
        # materializes (and re-scans) a temporary relation
        assert scans_merged == 1
        assert len(out_orig) == len(out_merged)

    def test_short_circuit_preserved(self, registry):
        """p is evaluated only on q-passing rows: errors in p must not fire
        for rows q rejects."""
        src = """
        proc(rel ce cc)
          (select proc(x ce1 cc1)
                    ([] x 0 cont(v) (> v 0 cont() (cc1 true) cont() (cc1 false)))
                  rel ce
                  cont(t)
                    (select proc(y ce2 cc2)
                              ([] y 0 cont(w)
                                (/ 100 w ce2 cont(q)
                                  (> q 10 cont() (cc2 true) cont() (cc2 false))))
                            t ce cc))
        """
        rel = Relation("nums", ["v"])
        rel.insert_many([(0,), (5,), (50,)])  # 0 would divide-by-zero in p
        term = parse(src, registry)
        merged = QueryRewriter(registry).rewrite(term)
        out = _run(merged, [rel], registry)
        assert out.to_tuples() == [(5,)]

    def test_blocked_when_temp_used_elsewhere(self, registry):
        src = """
        proc(rel ce cc)
          (select proc(x ce1 cc1) (cc1 true)
                  rel ce
                  cont(t)
                    (select proc(y ce2 cc2) (cc2 true)
                            t ce cont(r) (join p t r ce cc)))
        """
        term = parse(src, registry)
        rewriter = QueryRewriter(registry)
        rewriter.rewrite(term)
        assert rewriter.stats.count("merge-select") == 0

    def test_blocked_on_different_exception_continuations(self, registry):
        src = """
        proc(rel ce cc)
          (select proc(x ce1 cc1) (cc1 true)
                  rel cont(e) (cc e)
                  cont(t)
                    (select proc(y ce2 cc2) (cc2 true) t ce cc))
        """
        term = parse(src, registry)
        rewriter = QueryRewriter(registry)
        rewriter.rewrite(term)
        assert rewriter.stats.count("merge-select") == 0


class TestMergeProject:
    def test_composition(self, registry):
        src = """
        proc(rel ce cc)
          (project proc(x ce1 cc1) ([] x 0 cont(v) (cc1 v))
                   rel ce
                   cont(t)
                     (project proc(y ce2 cc2) (* y y ce2 cc2)
                              t ce cc))
        """
        rel = Relation("nums", ["v"])
        rel.insert_many([(2,), (3,)])
        term = parse(src, registry)
        rewriter = QueryRewriter(registry)
        merged = rewriter.rewrite(term)
        assert rewriter.stats.count("merge-project") == 1
        assert _run(merged, [rel], registry).to_tuples() == [(4,), (9,)]


class TestTrivialExists:
    SRC = """
    proc(rel limit ce cc)
      (exists proc(x ce1 cc1)
                (> limit 100 cont() (cc1 true) cont() (cc1 false))
              rel ce cc)
    """

    def test_fires_when_var_unused(self, registry):
        term = parse(self.SRC, registry)
        rewriter = QueryRewriter(registry)
        out = rewriter.rewrite(term)
        assert rewriter.stats.count("trivial-exists") == 1
        # rewrites to an O(1) emptiness check + one predicate evaluation
        prims = {n.prim for n in _prims(out)}
        assert "exists" not in prims
        assert "empty" in prims

    def test_equivalence(self, registry):
        rel = Relation("r", ["v"])
        term = parse(self.SRC, registry)
        merged = QueryRewriter(registry).rewrite(term)

        # empty relation: false regardless of the predicate
        assert _run(merged, [rel, 500], registry) is False
        rel.insert((1,))
        assert _run(merged, [rel, 500], registry) is True
        assert _run(merged, [rel, 50], registry) is False

    def test_blocked_when_var_used(self, registry):
        src = """
        proc(rel ce cc)
          (exists proc(x ce1 cc1)
                    ([] x 0 cont(v) (> v 0 cont() (cc1 true) cont() (cc1 false)))
                  rel ce cc)
        """
        rewriter = QueryRewriter(registry)
        rewriter.rewrite(parse(src, registry))
        assert rewriter.stats.count("trivial-exists") == 0

    def test_blocked_on_effectful_predicate(self, registry):
        src = """
        proc(rel f ce cc)
          (exists proc(x ce1 cc1) (f 1 ce1 cc1) rel ce cc)
        """
        rewriter = QueryRewriter(registry)
        rewriter.rewrite(parse(src, registry))
        assert rewriter.stats.count("trivial-exists") == 0


class TestIndexSelect:
    def _stored_relation(self, tmp_path, indexed=True):
        heap = ObjectHeap()
        rel = Relation("items", ["id", "v"])
        rel.insert_many([(i, i * i) for i in range(50)])
        if indexed:
            rel.create_index("id")
        oid = heap.store(rel)
        return heap, rel, oid

    def _select_by_id(self, oid, registry):
        src = f"""
        proc(k ce cc)
          (select proc(x ce1 cc1)
                    ([] x 0 cont(t) (== t k cont() (cc1 true) cont() (cc1 false)))
                  #oid:{int(oid)} ce cc)
        """
        return parse(src, registry)

    def test_fires_with_index(self, registry, tmp_path):
        heap, rel, oid = self._stored_relation(tmp_path)
        term = self._select_by_id(oid, registry)
        rewriter = QueryRewriter(registry, heap=heap)
        out = rewriter.rewrite(term)
        assert rewriter.stats.count("index-select") == 1
        prims = {n.prim for n in _prims(out)}
        assert "indexscan" in prims and "select" not in prims

    def test_blocked_without_index(self, registry, tmp_path):
        heap, rel, oid = self._stored_relation(tmp_path, indexed=False)
        rewriter = QueryRewriter(registry, heap=heap)
        rewriter.rewrite(self._select_by_id(oid, registry))
        assert rewriter.stats.count("index-select") == 0

    def test_blocked_without_heap(self, registry, tmp_path):
        heap, rel, oid = self._stored_relation(tmp_path)
        rewriter = QueryRewriter(registry, heap=None)
        rewriter.rewrite(self._select_by_id(oid, registry))
        assert rewriter.stats.count("index-select") == 0

    def test_equivalence_and_no_scan(self, registry, tmp_path):
        heap, rel, oid = self._stored_relation(tmp_path)
        term = self._select_by_id(oid, registry)
        out = QueryRewriter(registry, heap=heap).rewrite(term)

        before = rel.scans
        result = _run(out, [7], registry, store=heap)
        assert result.to_tuples() == [(7, 49)]
        assert rel.scans == before  # index lookup, no full scan

    def test_commuted_equality_matches(self, registry, tmp_path):
        heap, rel, oid = self._stored_relation(tmp_path)
        src = f"""
        proc(k ce cc)
          (select proc(x ce1 cc1)
                    ([] x 0 cont(t) (== k t cont() (cc1 true) cont() (cc1 false)))
                  #oid:{int(oid)} ce cc)
        """
        rewriter = QueryRewriter(registry, heap=heap)
        rewriter.rewrite(parse(src, registry))
        assert rewriter.stats.count("index-select") == 1


class TestEffectSafety:
    def test_pure_and_read_safe(self, registry):
        term = parse(
            "([] x 0 cont(v) (> v 1 cont() (^k true) cont() (^k false)))", registry
        )
        assert is_effect_safe(term, registry)

    def test_write_unsafe(self, registry):
        term = parse("([]:= x 0 1 cont(u) (k u))", registry)
        assert not is_effect_safe(term, registry)

    def test_unknown_call_unsafe(self, registry):
        term = parse("(f 1 ^ce ^cc)", registry)
        assert not is_effect_safe(term, registry)

    def test_continuation_call_safe(self, registry):
        term = parse("(^k 1)", registry)
        assert is_effect_safe(term, registry)


def _prims(term):
    from repro.core.syntax import iter_subterms

    return [n for n in iter_subterms(term) if isinstance(n, PrimApp)]


def _run(term, args, registry, store=None):
    assert isinstance(term, Abs)
    code = compile_function(term, registry)
    return VM(store=store).call(instantiate(code), list(args)).value


class TestPushSelectJoin:
    def _setup(self, indexed_fields=()):
        heap = ObjectHeap()
        left = Relation("l", ["id", "v"])
        left.insert_many([(i, i * 2) for i in range(30)])
        right = Relation("r", ["key", "w"])
        right.insert_many([(i % 10, i * 5) for i in range(20)])
        loid = heap.store(left)
        return heap, left, right, loid

    def _query(self, loid, registry):
        # σ(v > 20)(L ⋈ S) with the join predicate l.id == r.key
        src = f"""
        proc(right ce cc)
          (join proc(a b cej ccj)
                  ([] a 0 cont(x) ([] b 0 cont(y)
                    (== x y cont() (ccj true) cont() (ccj false))))
                #oid:{int(loid)} right ce
                cont(t)
                  (select proc(row ce2 cc2)
                            ([] row 1 cont(val)
                              (> val 20 cont() (cc2 true) cont() (cc2 false)))
                          t ce cc))
        """
        return parse_term(src, prims=registry.names())

    def test_fires_when_predicate_is_left_only(self, registry):
        heap, left, right, loid = self._setup()
        term = self._query(loid, registry)
        rewriter = QueryRewriter(registry, heap=heap)
        out = rewriter.rewrite(term)
        assert rewriter.stats.count("push-select-join") == 1
        # select now sits on the base relation, inside-out
        prims = [n.prim for n in _prims(out)]
        assert prims.index("select") < prims.index("join")

    def test_equivalence_and_fewer_join_probes(self, registry):
        heap, left, right, loid = self._setup()
        term = self._query(loid, registry)
        pushed = QueryRewriter(registry, heap=heap).rewrite(term)

        out_orig = _run(term, [right], registry, store=heap)
        scans_orig = (left.scans, right.scans)
        out_pushed = _run(pushed, [right], registry, store=heap)

        assert sorted(out_orig.to_tuples()) == sorted(out_pushed.to_tuples())
        # pushed plan joins a pre-filtered left side: right gets scanned
        # once per surviving left row instead of once per left row
        assert right.scans - scans_orig[1] < scans_orig[1]

    def test_blocked_on_right_side_predicate(self, registry):
        heap, left, right, loid = self._setup()
        # the predicate touches column 2 (= right side of the join row)
        src = f"""
        proc(right ce cc)
          (join proc(a b cej ccj) (ccj true)
                #oid:{int(loid)} right ce
                cont(t)
                  (select proc(row ce2 cc2)
                            ([] row 2 cont(val)
                              (> val 20 cont() (cc2 true) cont() (cc2 false)))
                          t ce cc))
        """
        term = parse_term(src, prims=registry.names())
        rewriter = QueryRewriter(registry, heap=heap)
        rewriter.rewrite(term)
        assert rewriter.stats.count("push-select-join") == 0

    def test_blocked_without_heap(self, registry):
        heap, left, right, loid = self._setup()
        term = self._query(loid, registry)
        rewriter = QueryRewriter(registry, heap=None)
        rewriter.rewrite(term)
        assert rewriter.stats.count("push-select-join") == 0

    def test_blocked_when_row_escapes(self, registry):
        heap, left, right, loid = self._setup()
        src = f"""
        proc(right f ce cc)
          (join proc(a b cej ccj) (ccj true)
                #oid:{int(loid)} right ce
                cont(t)
                  (select proc(row ce2 cc2) (f row ce2 cc2)
                          t ce cc))
        """
        term = parse_term(src, prims=registry.names())
        rewriter = QueryRewriter(registry, heap=heap)
        rewriter.rewrite(term)
        assert rewriter.stats.count("push-select-join") == 0
