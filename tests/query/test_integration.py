"""Integration tests: embedded TL queries + the integrated optimizer (Fig. 4)."""

import pytest

from repro.core.syntax import PrimApp, iter_subterms
from repro.lang import TycoonSystem
from repro.machine.runtime import UncaughtTmlException
from repro.query import Relation, integrated_optimize, optimize_query_function
from repro.store.heap import ObjectHeap


@pytest.fixture
def setup(tmp_path):
    heap = ObjectHeap(str(tmp_path / "q.tyc"))
    system = TycoonSystem(heap=heap)
    people = Relation("people", ["id", "name", "age"])
    for i in range(300):
        people.insert((i, f"p{i}", (i * 7) % 90))
    people.create_index("id")
    heap.store(people)
    system.register_data_module("db", {"people": people})
    system.compile(
        """
        module q export adults names seniors_of_adults byid anyone count_demo
        import db
        type Person = tuple id: Int, name: String, age: Int end
        let adults(people) =
          select p from people as p : Person where p.age >= 18 end
        let names(people) =
          select p.name from people as p : Person end
        let seniors_of_adults() =
          select q from
            (select p from db.people as p : Person where p.age >= 18 end)
            as q : Person
          where q.age >= 65 end
        let byid(k: Int) =
          select p from db.people as p : Person where p.id == k end
        let anyone(limit: Int): Bool =
          exists p : Person in db.people : limit > 10
        let count_demo(people): Int =
          size(array(1, people)) -- placeholder arity exercise
        end
        """
    )
    return system, people


class TestEmbeddedQueries:
    def test_select_where(self, setup):
        system, people = setup
        out = system.call("q", "adults", [people]).value
        expected = [t for t in people.to_tuples() if t[2] >= 18]
        assert out.to_tuples() == expected

    def test_projection(self, setup):
        system, people = setup
        out = system.call("q", "names", [people]).value
        assert out.to_tuples()[:2] == [("p0",), ("p1",)]

    def test_programming_language_expression_in_where(self, setup):
        """§4.2's motivation: PL variables and calls inside query clauses."""
        system, people = setup
        system.compile(
            """
            module pl export f
            type Person = tuple id: Int, name: String, age: Int end
            let threshold(x: Int): Int = x * 2
            let f(people, lim: Int) =
              select p from people as p : Person where p.age >= threshold(lim) end
            end
            """
        )
        out = system.call("pl", "f", [people, 30]).value
        expected = [t for t in people.to_tuples() if t[2] >= 60]
        assert out.to_tuples() == expected

    def test_query_exception_propagates(self, setup):
        system, people = setup
        system.compile(
            """
            module err export f
            type Person = tuple id: Int, name: String, age: Int end
            let f(people) =
              select p from people as p : Person where (1 / (p.id - 5)) > 0 end
            end
            """
        )
        with pytest.raises(UncaughtTmlException):
            system.call("err", "f", [people])

    def test_query_exception_catchable(self, setup):
        system, people = setup
        system.compile(
            """
            module err2 export f
            type Person = tuple id: Int, name: String, age: Int end
            let f(people): Int =
              try
                begin
                  select p from people as p : Person where (1 / (p.id - 5)) > 0 end;
                  1
                end
              catch(e) -1 end
            end
            """
        )
        assert system.call("err2", "f", [people]).value == -1


class TestIntegratedOptimization:
    def test_merge_select_through_reflection(self, setup):
        system, people = setup
        result = optimize_query_function(system, "q", "seniors_of_adults")
        assert result.query_stats.count("merge-select") == 1
        slow = system.call("q", "seniors_of_adults", [])
        fast = system.vm().call(result.closure, [])
        assert slow.value.to_tuples() == fast.value.to_tuples()

    def test_index_select_through_reflection(self, setup):
        system, people = setup
        result = optimize_query_function(system, "q", "byid")
        assert result.query_stats.count("index-select") == 1
        prims = {
            n.prim for n in iter_subterms(result.term) if isinstance(n, PrimApp)
        }
        assert "indexscan" in prims

        before = people.scans
        out = system.vm().call(result.closure, [42])
        assert out.value.to_tuples() == [(42, "p42", (42 * 7) % 90)]
        assert people.scans == before  # no full scan

    def test_trivial_exists_through_reflection(self, setup):
        system, people = setup
        result = optimize_query_function(system, "q", "anyone")
        assert result.query_stats.count("trivial-exists") == 1
        assert system.vm().call(result.closure, [50]).value is True
        assert system.vm().call(result.closure, [5]).value is False

    def test_both_optimizers_interact(self, setup):
        """Fig. 4: program inlining exposes the query pattern, the query
        rewrite then replaces the access path — neither alone suffices."""
        system, people = setup
        result = optimize_query_function(system, "q", "byid")
        # program optimizer inlined library calls (int.eq et al.)...
        assert result.stats.inlined_sites + result.stats.count("subst") > 0
        # ...which enabled the runtime query rewrite
        assert result.query_stats.count("index-select") == 1

    def test_integrated_optimize_direct_api(self, setup):
        system, people = setup
        from repro.reflect.reach import term_of_closure

        closure = system.closure("q", "adults")
        term = term_of_closure(closure, system.heap)
        result = integrated_optimize(term, system.registry, heap=system.heap)
        assert result.rounds >= 1
        assert result.size > 0
