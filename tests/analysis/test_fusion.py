"""Tests for the fusion-safety certifier over profiled opcode pairs."""

import pytest

from repro.analysis.fusion import (
    FusionReport,
    certify_pair,
    certify_pairs,
    certify_profile,
)
from repro.bench.stanford import PROGRAMS
from repro.lang import TycoonSystem
from repro.machine.isa import OPCODE_TRAITS
from repro.obs import profile_call


class TestCertifyPair:
    def test_const_then_anything_known_is_safe(self):
        # const writes one register, cannot trap, observes nothing
        assert certify_pair("const", "add") is None
        assert certify_pair("const", "tailcall") is None
        assert certify_pair("move", "aget") is None

    def test_negative_control_trapping_first(self):
        # band can trap (typeError) to the handler stack mid-pair: the
        # intermediate state (handler dispatch) would be observable
        reason = certify_pair("band", "const")
        assert reason is not None and "trap" in reason
        # add is rejected even earlier: its overflow edge is a branch
        assert certify_pair("add", "const") is not None

    def test_negative_control_observable_first(self):
        reason = certify_pair("print", "const")
        assert reason is not None and "observable" in reason

    def test_negative_control_handler_delta(self):
        assert certify_pair("pushh", "const") is not None
        assert certify_pair("const", "pushh") is not None
        assert certify_pair("const", "poph") is not None

    def test_negative_control_branching_first(self):
        assert certify_pair("jump", "const") is not None
        assert certify_pair("case", "const") is not None

    def test_negative_control_memory_writer_first(self):
        reason = certify_pair("aset", "const")
        assert reason is not None

    def test_unknown_opcode_rejected(self):
        assert certify_pair("frobnicate", "const") is not None
        assert certify_pair("const", "frobnicate") is not None

    def test_every_certifiable_first_op_is_pure_register_traffic(self):
        # exhaustively: any opcode certify_pair accepts in first position
        # must have the no-observable-intermediate-state trait profile
        for op, traits in OPCODE_TRAITS.items():
            if certify_pair(op, "const") is None:
                assert not traits.terminal
                assert not traits.branches
                assert not traits.can_trap
                assert not traits.observable
                assert not traits.writes_memory
                assert traits.handler_delta == 0


class TestCertifyPairs:
    def test_ranked_by_count(self):
        report = certify_pairs(
            {("const", "add"): 5, ("move", "add"): 50, ("add", "const"): 99}
        )
        assert isinstance(report, FusionReport)
        certified = [(c.first, c.second) for c in report.certified]
        assert certified == [("move", "add"), ("const", "add")]
        assert [(r.first, r.second) for r in report.rejected] == [("add", "const")]
        assert report.rejected[0].reason

    def test_top_bounds_the_candidates(self):
        report = certify_pairs(
            {("const", "add"): 5, ("move", "add"): 50}, top=1
        )
        assert len(report.certified) + len(report.rejected) == 1

    def test_as_dict_shape(self):
        data = certify_pairs({("const", "add"): 3}).as_dict()
        assert data["certified"][0]["pair"] == ["const", "add"]
        assert data["certified"][0]["count"] == 3


@pytest.mark.parametrize("program", ["fib", "sieve", "queens"])
def test_stanford_profiles_certify_nonempty(program):
    """Acceptance: the certifier finds real fusion candidates in hot code."""
    spec = PROGRAMS[program]
    system = TycoonSystem()
    system.compile(spec.source)
    module = spec.source.split()[1]
    _, profiler = profile_call(system, module, "run", [spec.test_n])
    assert profiler.pairs, "VM must record adjacent-pair counts"
    report = certify_profile(profiler, top=16)
    assert report.certified, "hot Stanford code must yield certified pairs"
    for cert in report.certified:
        # every emitted pair independently re-passes the safety rules
        assert certify_pair(cert.first, cert.second) is None
        assert cert.count > 0


def test_certified_pairs_match_observed_adjacency():
    """A certified pair must actually occur as fall-through adjacency."""
    system = TycoonSystem()
    system.compile(PROGRAMS["fib"].source)
    _, profiler = profile_call(system, "fib", "run", [8])
    report = certify_profile(profiler)
    observed = set(profiler.pairs)
    for cert in report.certified:
        assert (cert.first, cert.second) in observed
