"""Tests for the checked rewrite pipeline (optimize(..., check=True))."""

from collections import Counter

import pytest

from repro.analysis.checked import PassChecker, RewriteCheckError, checked_registry
from repro.core.parser import parse_term
from repro.core.syntax import App, Lit, PrimApp
from repro.lang.modules import CompileOptions, compile_module
from repro.rewrite import optimize, reduce_only


class TestCheckedModeAcceptsSoundRewrites:
    def test_checked_optimize_matches_unchecked(self, registry):
        compiled = compile_module(
            """
            module t export f g
            let f(x: Int): Int = x + 1
            let g(n: Int): Int = if n <= 1 then 1 else n * g(n - 1) end
            end
            """,
            options=CompileOptions(optimizer=None),
        )
        for fn in compiled.functions.values():
            plain = optimize(fn.term, registry).term
            checked = optimize(fn.term, registry, check=True).term
            assert checked == plain

    def test_checked_reduce_only(self, registry):
        term = parse_term("(λ(x) (+ x 1 ^ce ^cc) 41)")
        result = reduce_only(term, registry, check=True)
        assert result.stats.size_after < result.stats.size_before


class TestInjectedUnsoundFold:
    """Acceptance scenario: a fold on an effectful primitive, caught by name."""

    def test_fold_on_print_caught(self, registry):
        registry.get("print").fold = lambda call: App(call.args[-1], ())
        term = parse_term("proc(x ce cc) (print x cont() (cc 0))")
        with pytest.raises(RewriteCheckError) as err:
            optimize(term, registry, check=True)
        assert err.value.rule == "fold"
        [d] = err.value.diagnostics
        assert d.code == "TML043"
        assert d.data["prim"] == "print"
        assert "print" in d.message
        # before/after pretty-printed terms ride along
        assert "print" in d.data["before"]

    def test_same_fold_is_silent_without_check(self, registry):
        registry.get("print").fold = lambda call: App(call.args[-1], ())
        term = parse_term("proc(x ce cc) (print x cont() (cc 0))")
        optimized = optimize(term, registry).term  # no error: the bug ships
        assert "print" not in repr(optimized)

    def test_growing_fold_caught(self, registry):
        plus = registry.get("+")

        def growing(call):
            # "fold" that duplicates the call instead of shrinking it
            return PrimApp("+", (Lit(0), Lit(0)) + call.args)

        plus.fold = growing
        term = parse_term("proc(ce cc) (+ 1 2 ce cc)")
        with pytest.raises(RewriteCheckError) as err:
            optimize(term, registry, check=True)
        assert err.value.diagnostics[0].code == "TML044"


class TestPassChecker:
    def test_wellformedness_break_tml040(self, registry):
        checker = PassChecker(registry)
        before = parse_term("proc(x ce cc) (+ x 1 ce cc)")
        after = parse_term("(+ 1 2 ^cc)")  # bad prim arity
        with pytest.raises(RewriteCheckError) as err:
            checker.reduction_pass_hook(before, after, Counter({"subst": 1}))
        codes = {d.code for d in err.value.diagnostics}
        assert "TML040" in codes
        assert err.value.rules == ("subst",)
        assert "subst" in err.value.diagnostics[0].message

    def test_no_shrink_tml041(self, registry):
        checker = PassChecker(registry)
        term = parse_term("proc(x ce cc) (+ x 1 ce cc)")
        with pytest.raises(RewriteCheckError) as err:
            checker.reduction_pass_hook(term, term, Counter({"eta": 1}))
        assert {d.code for d in err.value.diagnostics} == {"TML041"}

    def test_effect_increase_tml042(self, registry):
        checker = PassChecker(registry)
        before = parse_term("proc(x ce cc) (+ x 1 ce cc)")
        after = parse_term("proc(x ce cc) (print x cont() (cc 0))")
        with pytest.raises(RewriteCheckError) as err:
            checker.reduction_pass_hook(before, after, Counter({"fold": 1}))
        codes = {d.code for d in err.value.diagnostics}
        assert "TML042" in codes
        [d] = [d for d in err.value.diagnostics if d.code == "TML042"]
        assert d.data["effect_before"] == "pure"
        assert d.data["effect_after"] == "io"

    def test_expansion_check_allows_growth(self, registry):
        checker = PassChecker(registry)
        before = parse_term("proc(x ce cc) (+ x 1 ce cc)")
        after = parse_term("proc(x ce cc) (+ x 1 ce cont(t) (cc t))")
        checker.expansion_check(before, after)  # growth is fine; WF holds


class TestCheckedRegistry:
    def test_sound_folds_pass_through(self, registry):
        guarded = checked_registry(registry)
        call = parse_term("(+ 1 2 ^ce ^cc)")
        result = guarded.get("+").fold(call)
        assert result is not None  # the constant fold still fires

    def test_none_folds_stay_none(self, registry):
        guarded = checked_registry(registry)
        assert guarded.get("print").fold is None

    def test_query_round_check(self, registry):
        from repro.query.optimizer import integrated_optimize

        term = parse_term("proc(x ce cc) (+ x 1 ce cc)")
        result = integrated_optimize(term, check=True)
        assert result.term is not None
