"""Tests for dead-binding and unused-parameter detection."""

from repro.analysis.diagnostics import Severity
from repro.analysis.usage import analyze, unused_param_indices
from repro.core.names import NameSupply
from repro.core.parser import parse_term
from repro.core.syntax import Abs, App, Lit, Var


def by_code(found, code):
    return [d for d in found if d.code == code]


class TestUnusedParamIndices:
    def test_all_used(self):
        term = parse_term("proc(x ce cc) (+ x 1 ce cc)")
        assert unused_param_indices(term) == ()

    def test_reports_unused(self):
        supply = NameSupply()
        x, y = supply.fresh_val("x"), supply.fresh_val("y")
        cc = supply.fresh_cont("cc")
        term = Abs((x, y, cc), App(Var(cc), (Var(x),)))
        assert unused_param_indices(term) == (1,)


class TestAnalyze:
    def test_unused_value_param_warns(self):
        supply = NameSupply()
        x, y = supply.fresh_val("x"), supply.fresh_val("y")
        cc = supply.fresh_cont("cc")
        found = analyze(Abs((x, y, cc), App(Var(cc), (Var(x),))))
        [d] = by_code(found, "TML020")
        assert d.severity is Severity.WARNING
        assert str(y) in d.message

    def test_discard_binder_is_info(self):
        supply = NameSupply()
        u = supply.fresh_val("_")
        cc = supply.fresh_cont("cc")
        found = analyze(Abs((u, cc), App(Var(cc), (Lit(0),))))
        [d] = by_code(found, "TML020")
        assert d.severity is Severity.INFO

    def test_unused_exception_cont_is_info(self):
        term = parse_term("proc(x ce cc) (cc x)")
        found = analyze(term)
        infos = by_code(found, "TML020")
        assert infos and all(d.severity is Severity.INFO for d in infos)

    def test_never_returning_proc_tml022(self):
        term = parse_term("proc(x ce cc) (halt x)")
        found = analyze(term)
        [d] = by_code(found, "TML022")
        assert d.severity is Severity.WARNING
        assert "cannot return" in d.message

    def test_dead_direct_binding_tml021(self):
        supply = NameSupply()
        t = supply.fresh_val("t")
        cc = supply.fresh_cont("cc")
        # ((λ(t) (cc 0)) 42): binds t, ignores it
        term = Abs((cc,), App(Abs((t,), App(Var(cc), (Lit(0),))), (Lit(42),)))
        found = analyze(term)
        [d] = by_code(found, "TML021")
        assert d.path == "body.args[0]"
        assert d.subject == Lit(42)

    def test_clean_term_has_no_warnings(self):
        term = parse_term("proc(x ce cc) (+ x 1 ce cc)")
        assert all(d.severity is not Severity.WARNING for d in analyze(term))
