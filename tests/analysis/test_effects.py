"""Tests for effect inference and the registry attribute lint."""

from repro.analysis.effects import (
    EFFECT_RANK,
    effect_join,
    effect_le,
    infer_effect,
    lint_registry,
)
from repro.core.parser import parse_term
from repro.primitives.effects import EffectClass


class TestLattice:
    def test_rank_covers_every_class(self):
        assert set(EFFECT_RANK) == set(EffectClass)

    def test_join_is_max(self):
        assert effect_join(EffectClass.PURE, EffectClass.IO) is EffectClass.IO
        assert effect_join(EffectClass.WRITE, EffectClass.READ) is EffectClass.WRITE

    def test_le(self):
        assert effect_le(EffectClass.PURE, EffectClass.UNKNOWN)
        assert not effect_le(EffectClass.IO, EffectClass.READ)


class TestInference:
    def test_pure_arith(self, registry):
        term = parse_term("proc(x ce cc) (+ x 1 ce cc)")
        assert infer_effect(term, registry) is EffectClass.PURE

    def test_print_is_io(self, registry):
        term = parse_term("proc(x ce cc) (print x cont() (cc 0))")
        assert infer_effect(term, registry) is EffectClass.IO

    def test_array_write(self, registry):
        term = parse_term("proc(a ce cc) ([]:= a 0 7 cont() (cc 0))")
        assert infer_effect(term, registry) is EffectClass.WRITE

    def test_alloc(self, registry):
        term = parse_term("proc(n ce cc) (new n 0 cont(a) (cc a))")
        assert infer_effect(term, registry) is EffectClass.ALLOC

    def test_direct_application_binds_latents(self, registry):
        # the body invokes f, which is bound to a pure abstraction
        term = parse_term(
            "proc(x ce cc) (λ(f) (f x ce cc)  proc(y ce2 cc2) (+ y 1 ce2 cc2))"
        )
        assert infer_effect(term, registry) is EffectClass.PURE

    def test_call_through_free_value_var_is_unknown(self, registry):
        term = parse_term("proc(x ce cc) (g x ce cc)")
        assert infer_effect(term, registry) is EffectClass.UNKNOWN

    def test_y_loop_effect(self, registry):
        pure_loop = parse_term(
            "(Y λ(^c0 ^loop ^c) (c cont() (loop) cont() (halt 0)))"
        )
        # halt is CONTROL; the loop's latent includes the body's halt
        assert infer_effect(pure_loop, registry) is EffectClass.CONTROL

    def test_unknown_prim_is_unknown(self, registry):
        term = parse_term("proc(x ce cc) (no-such x ce cc)")
        assert infer_effect(term, registry) is EffectClass.UNKNOWN


class TestRegistryLint:
    def test_default_registry_is_clean(self, registry):
        assert lint_registry(registry) == []

    def test_fold_on_effectful_prim_flagged(self, registry):
        registry.get("print").fold = lambda call: call.args[-1]
        found = lint_registry(registry)
        assert [d.code for d in found] == ["TML030"]
        assert found[0].is_error
        assert found[0].data["prim"] == "print"
