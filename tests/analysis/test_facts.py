"""Tests for the persisted analysis-fact cache (heap root ``analysis:facts``)."""

from repro.analysis.absint import Summary
from repro.analysis.facts import FACTS_ROOT, FactRecord, FactStore
from repro.store.heap import ObjectHeap


def _record(key="k1", name="m.f", deps=()):
    return FactRecord(
        key=key,
        name=name,
        summary=Summary(name=name, arity=3, is_proc=True, result="int",
                        raises="str", effect="pure", ret_deltas=(0,)),
        verified=True,
        deps=tuple(deps),
    )


class TestStaleness:
    def test_valid_while_deps_match(self):
        record = _record(deps=[("m.f", "k1"), ("m.g", "k2")])
        assert record.valid_for({"m.f": "k1", "m.g": "k2"})

    def test_moved_dependency_invalidates(self):
        record = _record(deps=[("m.f", "k1"), ("m.g", "k2")])
        assert not record.valid_for({"m.f": "k1", "m.g": "k9"})

    def test_vanished_dependency_invalidates(self):
        record = _record(deps=[("m.g", "k2")])
        assert not record.valid_for({"m.f": "k1"})

    def test_lookup_with_current_rejects_stale(self):
        store = FactStore()
        store.install(_record(deps=[("m.g", "k2")]))
        assert store.lookup("k1") is not None
        assert store.lookup("k1", current={"m.g": "other"}) is None


class TestStoreOps:
    def test_install_lookup_invalidate(self):
        store = FactStore()
        assert store.lookup("k1") is None
        store.install(_record())
        assert store.lookup("k1").name == "m.f"
        assert store.invalidate("k1")
        assert not store.invalidate("k1")  # already gone
        assert store.lookup("k1") is None

    def test_prune_drops_dead_and_stale(self):
        store = FactStore()
        store.install(_record(key="k1", name="m.f", deps=[("m.f", "k1")]))
        store.install(_record(key="dead", name="m.old", deps=[("m.old", "dead")]))
        pruned = store.prune({"m.f": "k1"})
        assert pruned == ["m.old"]
        assert store.keys() == ["k1"]

    def test_stats_shape(self):
        stats = FactStore().stats()
        assert set(stats) >= {"entries", "hits", "misses", "stale", "invalidations"}


class TestImageResidence:
    def test_flush_and_attach_roundtrip(self, tmp_path):
        image = str(tmp_path / "facts.db")
        heap = ObjectHeap(image)
        store = FactStore()
        store.install(_record(key="k1", deps=[("m.f", "k1"), ("m.g", "k2")]))
        store.flush(heap)
        heap.commit()
        heap.close()

        heap = ObjectHeap(image)
        warm = FactStore()
        assert warm.attach(heap) == 1
        record = warm.lookup("k1")
        assert record.verified
        assert record.summary.result == "int"
        assert record.deps == (("m.f", "k1"), ("m.g", "k2"))
        heap.close()

    def test_flush_is_noop_when_clean(self, tmp_path):
        heap = ObjectHeap(str(tmp_path / "facts.db"))
        store = FactStore()
        store.flush(heap)  # nothing installed: no root created
        assert heap.root(FACTS_ROOT) is None
        heap.close()

    def test_unknown_schema_records_skipped(self, tmp_path):
        heap = ObjectHeap(str(tmp_path / "facts.db"))
        oid = heap.store({"k1": {"schema": "something/else"}})
        heap.set_root(FACTS_ROOT, oid)
        heap.commit()
        store = FactStore()
        assert store.attach(heap) == 0
        heap.close()
