"""Tests for the shared diagnostic records."""

import pytest

from repro.analysis.diagnostics import (
    DIAGNOSTIC_CODES,
    AnalysisError,
    Diagnostic,
    Severity,
    error_count,
    format_diagnostics,
    format_path,
    has_errors,
    raise_on_error,
    severity_counts,
)


def _diag(code="TML001", severity=Severity.ERROR, **kw):
    return Diagnostic(code=code, severity=severity, message="boom", **kw)


class TestFormatPath:
    def test_empty_path_is_root(self):
        assert format_path(()) == "<root>"

    def test_mixed_steps(self):
        assert format_path(("body", ("args", 2), "fn")) == "body.args[2].fn"


class TestDiagnostic:
    def test_str_contains_severity_code_path(self):
        d = _diag(path="body.fn", hint="do less")
        assert str(d) == "error[TML001] body.fn: boom (hint: do less)"

    def test_str_without_hint(self):
        assert str(_diag(severity=Severity.WARNING)) == "warning[TML001] <root>: boom"

    def test_is_error(self):
        assert _diag().is_error
        assert not _diag(severity=Severity.INFO).is_error

    def test_severity_ordering(self):
        assert max(Severity.INFO, Severity.ERROR, Severity.WARNING) is Severity.ERROR


class TestAggregation:
    def test_has_errors_and_count(self):
        diags = [_diag(severity=Severity.WARNING), _diag(), _diag()]
        assert has_errors(diags)
        assert error_count(diags) == 2
        assert not has_errors([_diag(severity=Severity.INFO)])

    def test_severity_counts_shape(self):
        diags = [_diag(), _diag(severity=Severity.INFO)]
        assert severity_counts(diags) == {"error": 1, "warning": 0, "info": 1}

    def test_raise_on_error(self):
        with pytest.raises(AnalysisError) as err:
            raise_on_error([_diag()], context="unit test")
        assert "unit test" in str(err.value)
        assert err.value.diagnostics[0].code == "TML001"

    def test_raise_on_error_passes_clean_lists_through(self):
        diags = [_diag(severity=Severity.WARNING)]
        assert raise_on_error(diags) is diags

    def test_format_orders_worst_first(self):
        report = format_diagnostics(
            [_diag(severity=Severity.INFO), _diag(severity=Severity.ERROR)]
        )
        first, second = report.splitlines()
        assert first.startswith("error[")
        assert second.startswith("info[")


def test_every_emitted_code_is_documented():
    """Each code constructed anywhere in the analysis package has a docs entry."""
    import pathlib
    import re

    package = pathlib.Path("src/repro/analysis")
    emitted = set()
    for path in package.glob("*.py"):
        emitted.update(re.findall(r"\"(T(?:ML|AM)\d{3})\"", path.read_text()))
    emitted -= set()  # codes referenced in tables/docstrings are fine too
    assert emitted <= set(DIAGNOSTIC_CODES), emitted - set(DIAGNOSTIC_CODES)
