"""Shared fixtures for the analysis tests."""

import dataclasses

import pytest

from repro.primitives.registry import PrimitiveRegistry, default_registry


def fresh_registry() -> PrimitiveRegistry:
    """A registry whose Primitive records are private copies.

    ``default_registry()`` is a shared singleton and even ``.copy()`` shares
    the mutable ``Primitive`` objects — tests that inject broken folds or
    emitters must not leak them into other tests.
    """
    clone = PrimitiveRegistry()
    for prim in default_registry():
        clone.register(dataclasses.replace(prim))
    return clone


@pytest.fixture
def registry() -> PrimitiveRegistry:
    return fresh_registry()
