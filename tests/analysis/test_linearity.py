"""Tests for the continuation-linearity/arity analysis (constraints 1-5)."""

import pytest

from repro.analysis.diagnostics import Severity
from repro.analysis.linearity import CONSTRAINT_OF_CODE, analyze
from repro.core.names import NameSupply
from repro.core.parser import parse_term
from repro.core.syntax import Abs, App, Lit, PrimApp, Var
from repro.core.wellformed import check, violations
from repro.primitives.registry import default_registry


@pytest.fixture
def registry():
    return default_registry()


def codes(found):
    return {d.code for d in found}


class TestCleanTerms:
    def test_good_proc(self, registry):
        term = parse_term("proc(x ce cc) (+ x 1 ce cc)")
        assert analyze(term, registry) == []

    def test_y_fixpoint_shape(self, registry):
        term = parse_term("(Y λ(^c0 ^loop ^c) (c cont() (loop) cont() (halt 0)))")
        assert analyze(term, registry) == []


class TestConstraintDiagnostics:
    def test_duplicate_binding_tml001(self):
        supply = NameSupply()
        x = supply.fresh_val("x")
        inner = Abs((x,), App(Var(x), ()))
        outer = Abs((x,), App(inner, (Lit(1),)))
        found = analyze(outer)
        assert codes(found) == {"TML001"}
        d = found[0]
        assert d.severity is Severity.ERROR
        assert d.data["constraint"] == 4
        assert "bound more than once" in d.message
        # the path points at the duplicate's binder, the data at the first
        assert "fn" in d.path

    def test_direct_arity_tml002(self):
        found = analyze(parse_term("(λ(x y) (f x) 1)"))
        assert "TML002" in codes(found)
        assert all(d.data["constraint"] == 1 for d in found if d.code == "TML002")

    def test_unknown_prim_tml005(self, registry):
        found = analyze(PrimApp("no-such-prim", ()), registry)
        assert codes(found) == {"TML005"}
        assert found[0].data["prim"] == "no-such-prim"

    def test_prim_arity_tml006(self, registry):
        found = analyze(parse_term("(+ 1 2 ^cc)"), registry)
        assert "TML006" in codes(found)

    def test_escaping_continuation_tml003(self, registry):
        found = analyze(parse_term("proc(x ce cc) ([]:= arr 0 ce cc)"), registry)
        assert "TML003" in codes(found)
        [d] = [d for d in found if d.code == "TML003"]
        assert d.data["constraint"] == 3
        assert d.path.startswith("body.args")

    def test_proc_needs_two_conts_tml007(self):
        supply = NameSupply()
        x, k = supply.fresh_val("x"), supply.fresh_cont("k")
        one_cont = Abs((x, k), App(Var(k), (Var(x),)))
        f = supply.fresh_val("f")
        term = Abs((f,), App(Var(f), (one_cont,)))
        found = analyze(term)
        assert "TML007" in codes(found)

    def test_cont_suffix_tml008(self):
        supply = NameSupply()
        ce, x, cc = supply.fresh_cont("ce"), supply.fresh_val("x"), supply.fresh_cont("cc")
        g = supply.fresh_val("g")
        # continuation parameter ce before value parameter x, used as a value
        bad = Abs((ce, x, cc), App(Var(cc), (Var(x),)))
        term = Abs((g,), App(Var(g), (bad,)))
        found = analyze(term)
        assert "TML008" in codes(found)

    def test_y_bad_shape_tml009(self, registry):
        supply = NameSupply()
        v, c = supply.fresh_val("v"), supply.fresh_cont("c")
        # leading parameter is value-sorted: not λ(c0 v1..vn c)
        fixfun = Abs((v, c), App(Var(c), (Lit(0),)))
        found = analyze(PrimApp("Y", (fixfun,)), registry)
        assert "TML009" in codes(found)

    def test_literal_after_continuation_tml004(self):
        supply = NameSupply()
        f, cc = supply.fresh_val("f"), supply.fresh_cont("cc")
        term = Abs((f, cc), App(Var(f), (Var(cc), Lit(1))))
        found = analyze(term)
        assert "TML004" in codes(found)
        [d] = [d for d in found if d.code == "TML004"]
        assert d.path.endswith("args[1]")


class TestWellformedBridge:
    """repro.core.wellformed must see exactly the same findings."""

    def test_constraint_mapping_is_total(self):
        assert set(CONSTRAINT_OF_CODE.values()) == {1, 2, 3, 4, 5}

    def test_violations_match_diagnostics(self, registry):
        term = parse_term("(λ(x y) (f x) 1)")
        found = analyze(term, registry)
        vs = violations(term, registry)
        assert len(vs) == len(found)
        assert [v.constraint for v in vs] == [d.data["constraint"] for d in found]
        assert [v.message for v in vs] == [d.message for d in found]

    def test_check_raises_with_constraint_text(self):
        supply = NameSupply()
        x = supply.fresh_val("x")
        dup = Abs((x,), App(Abs((x,), App(Var(x), ())), (Lit(1),)))
        with pytest.raises(Exception) as err:
            check(dup)
        assert "constraint 4" in str(err.value)
