"""Tests for the whole-image audit (``python -m repro audit``)."""

import json

import pytest

from repro.analysis.audit import audit_image
from repro.analysis.facts import FactStore
from repro.cli import main
from repro.lang import TycoonSystem
from repro.store.heap import ObjectHeap

SRC = """
module t
export fact main
let fact(n: Int): Int = if n < 2 then 1 else n * fact(n - 1) end
let main(): Int = fact(10)
end
"""

SRC_V2 = """
module t
export fact main
let fact(n: Int): Int = if n < 3 then n else n * fact(n - 1) end
let main(): Int = fact(10)
end
"""


def _build(path, source=SRC):
    system = TycoonSystem(heap=ObjectHeap(path))
    system.compile(source)
    system.persist("t")
    system.heap.commit()
    system.heap.close()


@pytest.fixture()
def image(tmp_path):
    path = str(tmp_path / "img.db")
    _build(path)
    return path


class TestColdWarm:
    def test_cold_audit_is_clean_and_analyzes_everything(self, image):
        report = audit_image(image)
        assert report.ok
        assert report.errors == 0
        assert report.modules >= 2  # user module + persisted stdlib
        assert report.functions > 0
        assert report.analyzed == report.functions
        assert report.reused == 0
        assert "t.fact" in report.summaries
        assert report.summaries["t.fact"].result == "int"

    def test_warm_audit_reuses_every_fact(self, image):
        audit_image(image)
        warm = audit_image(image)
        assert warm.ok
        assert warm.analyzed == 0
        assert warm.reused == warm.functions

    def test_facts_survive_reopen(self, image):
        audit_image(image)
        heap = ObjectHeap(image)
        store = FactStore()
        assert store.attach(heap) > 0
        heap.close()

    def test_no_update_keeps_audit_cold(self, image):
        audit_image(image, update_facts=False)
        second = audit_image(image, update_facts=False)
        assert second.reused == 0
        assert second.analyzed == second.functions


class TestInvalidation:
    def test_redefinition_reanalyzes_only_the_dirty_slice(self, image):
        audit_image(image)
        _build(image, SRC_V2)  # fact's body (and hash) moved; main's did not
        report = audit_image(image)
        assert report.ok
        # fact itself plus its dependent main — nothing else
        assert set(report.pruned) == {"t.fact", "t.main"}
        assert report.analyzed == 2
        assert report.reused == report.functions - 2

    def test_third_audit_is_fully_warm_again(self, image):
        audit_image(image)
        _build(image, SRC_V2)
        audit_image(image)
        third = audit_image(image)
        assert third.analyzed == 0
        assert third.reused == third.functions


class TestNegativeControl:
    def test_bit_flipped_bytecode_fails_the_audit(self, image):
        # flip one stored instruction's opcode — the structural verifier
        # must catch it and the audit must go red
        heap = ObjectHeap(image)
        oid = heap.root("module:t")
        stored = heap.load(oid)
        for fn_name, code, _externals in stored.functions:
            if fn_name == "fact":
                op, *rest = code.instrs[0]
                code.instrs[0] = (op[:-1] + chr(ord(op[-1]) ^ 1), *rest)
                break
        heap.update(oid, stored)
        heap.commit()
        heap.close()
        report = audit_image(image)
        assert not report.ok
        assert any(d.code == "TAM001" for d in report.diagnostics)

    def test_tampered_function_gets_no_fact(self, image):
        self.test_bit_flipped_bytecode_fails_the_audit(image)
        heap = ObjectHeap(image)
        store = FactStore()
        store.attach(heap)
        graph_keys = set(store.keys())
        heap.close()
        # the broken function's hash must not be vouched for
        report = audit_image(image)
        assert "t.fact" not in {
            store.lookup(k).name for k in graph_keys if store.lookup(k)
        }
        assert not report.ok


class TestCli:
    def test_audit_exits_zero_on_clean_image(self, image, capsys):
        assert main(["audit", image]) == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out

    def test_audit_writes_json_report(self, image, tmp_path, capsys):
        out_path = str(tmp_path / "audit.json")
        assert main(["audit", image, "--json", out_path]) == 0
        capsys.readouterr()
        data = json.loads(open(out_path).read())
        assert data["schema"] == "repro.audit/v1"
        assert data["ok"] is True
        assert data["counts"]["error"] == 0
        assert "t.fact" in data["summaries"]

    def test_audit_exits_nonzero_on_corrupt_image(self, image, capsys):
        TestNegativeControl().test_bit_flipped_bytecode_fails_the_audit(image)
        assert main(["audit", image]) == 1
        assert "TAM001" in capsys.readouterr().out

    def test_strict_promotes_warnings(self, tmp_path, capsys):
        path = str(tmp_path / "warn.db")
        system = TycoonSystem(heap=ObjectHeap(path))
        system.compile(
            "module u export top "
            "let helper(x: Int): Int = x + 1 "
            "let top(x: Int): Int = x end"
        )
        system.persist("u")
        system.heap.commit()
        system.heap.close()
        # helper is unexported and uncalled: TAM110 warning, no error
        assert main(["audit", path]) == 0
        assert main(["audit", path, "--strict"]) == 1
        out = capsys.readouterr().out
        assert "TAM110" in out
