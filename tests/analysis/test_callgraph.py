"""Tests for the image-wide call graph over frozen module bindings."""

import pytest

from repro.analysis.absint import closure_kind
from repro.analysis.callgraph import ImageGraph
from repro.lang import TycoonSystem
from repro.store.heap import ObjectHeap

SRC = """
module geo
export area unused_helper
let square(x: Int): Int = x * x
let area(side: Int): Int = square(side)
let unused_helper(x: Int): Int = x
end
"""


@pytest.fixture()
def system(tmp_path):
    system = TycoonSystem(heap=ObjectHeap(str(tmp_path / "img.db")))
    system.compile(SRC)
    system.persist("geo")
    system.heap.commit()
    yield system
    system.heap.close()


def test_from_heap_sees_every_stored_module(system):
    graph = ImageGraph.from_heap(system.heap)
    # user module plus the persisted stdlib
    assert "geo.area" in graph.nodes
    assert "geo.square" in graph.nodes
    assert any(q.startswith("int.") for q in graph.nodes)


def test_sibling_edges_resolved(system):
    graph = ImageGraph.from_heap(system.heap)
    assert "geo.square" in graph.edges.get("geo.area", set())


def test_import_edges_point_into_stdlib(system):
    # library_ops compiles `*` into a frozen reference to int.mul
    graph = ImageGraph.from_heap(system.heap)
    assert "int.mul" in graph.edges.get("geo.square", set())


def test_export_bit_and_hashes(system):
    graph = ImageGraph.from_heap(system.heap)
    assert graph.nodes["geo.area"].exported
    assert not graph.nodes["geo.square"].exported
    hashes = graph.current_hashes()
    assert hashes["geo.area"] is not None
    assert hashes["geo.area"] != hashes["geo.square"]


def test_bindings_carry_closure_kinds(system):
    graph = ImageGraph.from_heap(system.heap)
    node = graph.nodes["geo.area"]
    bindings = graph.bindings_for("geo.area")
    assert set(bindings) == set(node.externals)
    target = next(
        val for val in bindings.values() if val.callee == "geo.square"
    )
    arity = len(graph.nodes["geo.square"].code.params)
    assert target.kind == closure_kind(arity)


def test_reachability_from_exports(system):
    graph = ImageGraph.from_heap(system.heap)
    reachable = graph.reachable_from_exports()
    assert "geo.area" in reachable
    assert "geo.square" in reachable  # through area
    assert "geo.unused_helper" in reachable  # exported itself


def test_broken_reference_detected(system):
    graph = ImageGraph.from_heap(system.heap)
    assert graph.broken == set()
    # surgically retarget a frozen external at a missing member
    node = graph.nodes["geo.area"]
    name, ref = next(iter(node.externals.items()))
    node.externals[name] = type(ref)(
        kind="sibling", module="geo", member="no_such_member"
    )
    graph.edges.clear()
    graph.unresolved.clear()
    graph.broken.clear()
    graph._resolve_edges()
    assert any(target == "geo.no_such_member" for _, _, target in graph.broken)


def test_reference_into_absent_module_is_unresolved(system):
    graph = ImageGraph.from_heap(system.heap)
    node = graph.nodes["geo.area"]
    name, ref = next(iter(node.externals.items()))
    node.externals[name] = type(ref)(
        kind="import", module="ghost", member="f"
    )
    graph.edges.clear()
    graph.unresolved.clear()
    graph.broken.clear()
    graph._resolve_edges()
    assert ("geo.area", str(name)) in {(q, str(n)) for q, n in graph.unresolved}
