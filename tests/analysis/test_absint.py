"""Tests for the abstract interpreter over TAM code families."""

import pytest

from repro.analysis.absint import (
    ARRAY,
    BOOL,
    BOT,
    INT,
    NIL,
    STR,
    TOP,
    AbsVal,
    Summary,
    analyze_code,
    closure_kind,
    handler_diagnostics,
    join_kind,
    kind_from_token,
    kind_le,
    kind_of_value,
    summarize_graph,
)
from repro.analysis.callgraph import ImageGraph
from repro.analysis.diagnostics import Severity
from repro.core.names import NameSupply
from repro.core.syntax import UNIT
from repro.lang import TycoonSystem
from repro.machine.isa import CodeObject
from repro.machine.runtime import TmlArray, TmlVector
from repro.store.heap import ObjectHeap


# ---------------------------------------------------------------------- lattice


class TestKindLattice:
    def test_join_identities(self):
        assert join_kind(BOT, INT) == INT
        assert join_kind(INT, BOT) == INT
        assert join_kind(INT, INT) == INT
        assert join_kind(INT, STR) == TOP
        assert join_kind(TOP, BOT) == TOP

    def test_le_is_a_partial_order(self):
        kinds = [BOT, INT, STR, BOOL, ARRAY, closure_kind(2), closure_kind(), TOP]
        for k in kinds:
            assert kind_le(k, k)
            assert kind_le(BOT, k)
            assert kind_le(k, TOP)
        assert not kind_le(INT, STR)
        assert not kind_le(TOP, INT)

    def test_closure_arities(self):
        # closure/2 <= closure/? <= top, but closure/2 vs closure/3 -> closure/?
        assert kind_le(closure_kind(2), closure_kind())
        assert not kind_le(closure_kind(), closure_kind(2))
        joined = join_kind(closure_kind(2), closure_kind(3))
        assert joined == closure_kind()

    def test_join_le_consistency(self):
        kinds = [BOT, INT, BOOL, closure_kind(1), TOP]
        for a in kinds:
            for b in kinds:
                j = join_kind(a, b)
                assert kind_le(a, j) and kind_le(b, j)

    def test_token_roundtrip(self):
        for kind in (BOT, INT, STR, ARRAY, closure_kind(3), closure_kind(), TOP):
            assert kind_from_token(kind.token) == kind

    def test_unknown_token_widens(self):
        assert kind_from_token("no-such-kind") == TOP


class TestKindOfValue:
    def test_bool_is_not_int(self):
        # the VM's arith requires type(x) is int: True must not pass for 1
        assert kind_of_value(True) == BOOL
        assert kind_of_value(7) == INT

    def test_runtime_values(self):
        assert kind_of_value("s") == STR
        assert kind_of_value(UNIT) == NIL
        assert kind_of_value(TmlArray([1])) == ARRAY
        assert kind_of_value(TmlVector([1])) == ARRAY


class TestSummaryRoundtrip:
    def test_as_dict_from_dict(self):
        summary = Summary(
            name="m.f", arity=4, is_proc=True, result="int", halts="bot",
            raises="str", effect="pure", ret_deltas=(0, 1), escapes=(2,),
        )
        back = Summary.from_dict(summary.as_dict())
        assert back == summary

    def test_serialized_fields_are_tuples(self):
        # the heap serializer rejects python lists
        data = Summary.bottom("f", 3).as_dict()
        assert isinstance(data["ret_deltas"], tuple)
        assert isinstance(data["escapes"], tuple)

    def test_unknown_deltas_survive(self):
        data = Summary.top("f", 3).as_dict()
        assert data["ret_deltas"] is None
        assert Summary.from_dict(data).ret_deltas is None


# ---------------------------------------------------- hand-built code families


def _proc(supply, instrs, consts=(), nregs=8, free_names=(), codes=()):
    params = (
        supply.fresh_val("x"),
        supply.fresh_cont("ce"),
        supply.fresh_cont("cc"),
    )
    return CodeObject(
        name="t",
        params=params,
        nregs=nregs,
        instrs=list(instrs),
        consts=list(consts),
        codes=list(codes),
        free_names=tuple(free_names),
        is_proc=True,
    )


class TestGuaranteedTraps:
    def test_add_on_string_const_tam101(self):
        supply = NameSupply()
        code = _proc(
            supply,
            instrs=[
                ("const", 3, 0),
                ("add", 4, 3, 3, 5, 6),
                ("tailcall", 2, (4,)),
            ],
            consts=["boom"],
        )
        analysis = analyze_code(code, name="t")
        codes = {d.code for d in analysis.diagnostics if d.is_error}
        assert codes == {"TAM101"}
        # the trapping path delivers nothing via cc
        assert analysis.summary.result == "bot"
        assert analysis.summary.raises == "str"

    def test_honest_add_is_clean(self):
        supply = NameSupply()
        code = _proc(
            supply,
            instrs=[
                ("const", 3, 0),
                ("add", 4, 3, 3, 5, 6),
                ("tailcall", 2, (4,)),
            ],
            consts=[1],
        )
        analysis = analyze_code(code, name="t")
        assert [d for d in analysis.diagnostics if d.is_error] == []
        assert analysis.summary.result == "int"

    def test_resolved_arity_mismatch_tam102(self):
        supply = NameSupply()
        f = supply.fresh_val("f")
        code = _proc(
            supply,
            instrs=[
                ("free", 3, 0),
                ("tailcall", 3, (0, 2)),  # m.g wants 4 args, gets 2
            ],
            free_names=(f,),
        )
        analysis = analyze_code(
            code,
            name="t",
            bindings={f: AbsVal(closure_kind(4), callee="m.g")},
            summaries={"m.g": Summary.top("m.g", 4)},
        )
        assert {d.code for d in analysis.diagnostics if d.is_error} == {"TAM102"}

    def test_tailcall_on_non_closure_tam101(self):
        supply = NameSupply()
        code = _proc(
            supply,
            instrs=[("const", 3, 0), ("tailcall", 3, (0,))],
            consts=[42],
        )
        analysis = analyze_code(code, name="t")
        assert {d.code for d in analysis.diagnostics if d.is_error} == {"TAM101"}


class TestHandlerDepth:
    def test_bare_poph_fires_tam020(self):
        supply = NameSupply()
        code = _proc(supply, instrs=[("poph",), ("tailcall", 2, (0,))])
        found = handler_diagnostics(code)
        assert [d.code for d in found] == ["TAM020"]
        assert found[0].severity == Severity.WARNING

    def test_balanced_push_pop_is_clean(self):
        supply = NameSupply()
        code = _proc(
            supply,
            instrs=[("pushh", 0), ("poph",), ("tailcall", 2, (0,))],
        )
        assert handler_diagnostics(code) == []

    def test_double_pop_fires(self):
        supply = NameSupply()
        code = _proc(
            supply,
            instrs=[("pushh", 0), ("poph",), ("poph",), ("tailcall", 2, (0,))],
        )
        assert [d.code for d in handler_diagnostics(code)] == ["TAM020"]


# ----------------------------------------------------------- interprocedural


SRC = """
module t
export deep fact main
let add3(a: Int, b: Int, c: Int): Int = a + b + c
let deep(x: Int): Int = add3(x, x, x)
let fact(n: Int): Int = if n < 2 then 1 else n * fact(n - 1) end
let main(): Int = fact(6) + deep(4)
end
"""


@pytest.fixture(scope="module")
def analyses(tmp_path_factory):
    image = tmp_path_factory.mktemp("absint") / "img.db"
    system = TycoonSystem(heap=ObjectHeap(str(image)))
    system.compile(SRC)
    system.persist("t")
    system.heap.commit()
    graph = ImageGraph.from_system(system)
    result = summarize_graph(graph)
    system.heap.close()
    return result


class TestInterprocedural:
    def test_library_ops_resolve_to_int(self, analyses):
        # `+` compiles to a tailcall through the frozen `int.add` binding:
        # precision here *requires* the interprocedural fixpoint
        assert analyses["t.deep"].summary.result == "int"
        assert analyses["t.add3"].summary.result == "int"

    def test_recursion_converges(self, analyses):
        summary = analyses["t.fact"].summary
        assert summary.result == "int"
        assert summary.effect == "pure"
        assert summary.ret_deltas == (0,)

    def test_raises_tracks_trap_payloads(self, analyses):
        # overflow/type traps carry string payloads through ce
        assert analyses["t.fact"].summary.raises in ("str", "top")

    def test_stdlib_analyzed_clean(self, analyses):
        for qualified, analysis in analyses.items():
            assert [d for d in analysis.diagnostics if d.is_error] == [], qualified

    def test_seeded_summaries_are_final(self, analyses):
        # re-run with every summary seeded: nothing left to analyze
        image_summaries = {q: a.summary for q, a in analyses.items()}
        graph_like = type(
            "G", (), {"nodes": {}, "edges": {}, "bindings_for": lambda self, q: {}}
        )()
        assert summarize_graph(graph_like, seeded=image_summaries) == {}
