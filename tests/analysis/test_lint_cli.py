"""Tests for ``python -m repro lint`` exit codes and target resolution."""

import pytest

from repro.cli import main
from repro.core.names import NameSupply
from repro.core.syntax import Abs, PrimApp, Var
from repro.lang.modules import CompileOptions, compile_module, store_module
from repro.store.heap import ObjectHeap
from repro.store.ptml import encode_ptml


def test_lint_clean_file_exits_zero(capsys):
    assert main(["lint", "examples/sumto.tl"]) == 0
    out = capsys.readouterr().out
    assert "0 error(s)" in out


def test_lint_sieve_exits_zero(capsys):
    assert main(["lint", "examples/sieve.tl"]) == 0
    assert "0 error(s)" in capsys.readouterr().out


def test_lint_stdlib_exits_zero(capsys):
    assert main(["lint", "--stdlib"]) == 0
    assert "0 error(s)" in capsys.readouterr().out


def test_lint_verbose_shows_info(capsys):
    main(["lint", "--stdlib", "-v"])
    assert "info" in capsys.readouterr().out


def test_lint_no_target_refused():
    with pytest.raises(SystemExit):
        main(["lint"])


def test_lint_oid_without_store_refused():
    with pytest.raises(SystemExit):
        main(["lint", "--oid", "1"])


@pytest.fixture
def warn_file(tmp_path):
    path = tmp_path / "warn.tl"
    path.write_text(
        "module w export f let f(x: Int, y: Int): Int = x end"
    )
    return str(path)


class TestExitCodeDiscipline:
    """Pinned contract: errors exit 1, warnings exit 0 unless --strict."""

    def test_warnings_exit_zero_by_default(self, warn_file, capsys):
        assert main(["lint", warn_file]) == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out
        assert "1 warning(s)" in out

    def test_strict_promotes_warnings_to_failure(self, warn_file, capsys):
        assert main(["lint", warn_file, "--strict"]) == 1
        assert "warning" in capsys.readouterr().out

    def test_strict_on_clean_target_still_exits_zero(self, capsys):
        assert main(["lint", "examples/sumto.tl", "--strict"]) == 0
        assert "0 warning(s)" in capsys.readouterr().out

    def test_info_never_fails_even_strict(self, capsys):
        # the stdlib lint reports info findings only
        assert main(["lint", "--stdlib", "--strict"]) == 0
        capsys.readouterr()


@pytest.fixture
def store(tmp_path):
    return str(tmp_path / "lint.heap")


def test_lint_stored_module(store, capsys):
    compiled = compile_module(
        "module m export f let f(x: Int): Int = x + 1 end",
        options=CompileOptions(),
    )
    heap = ObjectHeap(store)
    oid = store_module(heap, compiled)
    heap.commit()
    heap.close()
    assert main(["lint", "--store", store, "--oid", str(int(oid))]) == 0
    assert "0 error(s)" in capsys.readouterr().out


def test_lint_stored_ill_formed_ptml_exits_one(store, capsys):
    supply = NameSupply()
    x = supply.fresh_val("x")
    # value-sorted binder used in continuation position: constraint 1 breaks
    bad = Abs((x,), PrimApp("halt", (Var(x), Var(x))))
    heap = ObjectHeap(store)
    oid = heap.store(encode_ptml(bad))
    heap.commit()
    heap.close()
    assert main(["lint", "--store", store, "--oid", str(int(oid))]) == 1
    out = capsys.readouterr().out
    assert "error" in out
