"""Differential regression: checked pipeline over the Stanford suite + stdlib.

Every unit is optimized with ``check=True`` (which raises if any rewrite rule
misbehaves), then linted at both the term and bytecode level.  The test
demands *zero error diagnostics* anywhere, and pins the exact warning/info
counts per unit in ``golden_warnings.json`` so a change in analysis output is
a visible, reviewable diff.

Regenerate the golden file after an intentional change with:

    PYTHONPATH=src:. python tests/analysis/test_golden.py --regenerate
"""

import json
from pathlib import Path

import pytest

from repro.analysis import lint_code, lint_term, severity_counts
from repro.bench.stanford.programs import PROGRAMS
from repro.lang.modules import CompileOptions, compile_module, compile_stdlib
from repro.primitives.registry import default_registry
from repro.rewrite import optimize

GOLDEN = Path(__file__).with_name("golden_warnings.json")

# compile without the optimizer so the checked pipeline sees the raw CPS
# terms and every rule application happens under supervision
_RAW = CompileOptions(optimizer=None, verify_code=False)


def _lint_unit(term, code, registry):
    diags = list(lint_term(term, registry))
    if code is not None:
        diags.extend(lint_code(code))
    return diags


def collect_counts() -> dict[str, dict[str, int]]:
    """label -> severity counts, across Stanford suite and stdlib."""
    registry = default_registry()
    counts: dict[str, dict[str, int]] = {}

    for prog_name, program in sorted(PROGRAMS.items()):
        compiled = compile_module(program.source, options=_RAW)
        for fn in compiled.functions.values():
            optimized = optimize(fn.term, registry, check=True).term
            diags = _lint_unit(optimized, fn.code, registry)
            counts[f"stanford/{prog_name}.{fn.name}"] = severity_counts(diags)

    for mod_name, module in sorted(compile_stdlib(_RAW).items()):
        for fn in module.functions.values():
            optimized = optimize(fn.term, registry, check=True).term
            diags = _lint_unit(optimized, fn.code, registry)
            counts[f"stdlib/{mod_name}.{fn.name}"] = severity_counts(diags)

    return counts


@pytest.fixture(scope="module")
def counts():
    return collect_counts()


def test_checked_pipeline_has_zero_errors(counts):
    offenders = {label: c for label, c in counts.items() if c["error"]}
    assert offenders == {}


def test_warning_counts_match_golden(counts):
    golden = json.loads(GOLDEN.read_text())
    assert counts == golden, (
        "analysis output drifted from golden_warnings.json; regenerate with "
        "`PYTHONPATH=src:. python tests/analysis/test_golden.py --regenerate` "
        "if the change is intentional"
    )


if __name__ == "__main__":
    import sys

    if "--regenerate" not in sys.argv:
        sys.exit("usage: python tests/analysis/test_golden.py --regenerate")
    data = collect_counts()
    GOLDEN.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    total = len(data)
    errors = sum(c["error"] for c in data.values())
    print(f"wrote {GOLDEN} ({total} units, {errors} errors)")
