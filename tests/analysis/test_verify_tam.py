"""Tests for the TAM bytecode verifier (abstract interpretation over machine.isa)."""

import dataclasses

import pytest

from repro.analysis.verify_tam import TamVerificationError, assert_verified, verify_code
from repro.lang.modules import CompileOptions, compile_module, compile_stdlib
from repro.machine.codegen import compile_function
from repro.primitives.registry import default_registry

SRC = """
module t export inc branchy looper
let inc(x: Int): Int = x + 1
let branchy(x: Int): Int = if x < 0 then 0 - x else x end
let looper(n: Int): Int =
  var acc := 0 in
  begin
    for i = 1 upto n do acc := acc + i end;
    acc
  end
end
"""


@pytest.fixture(scope="module")
def codes():
    compiled = compile_module(SRC)
    return {name: fn.code for name, fn in compiled.functions.items()}


def errors(found):
    return [d for d in found if d.is_error]


def mutate(code, pc, instr, **meta):
    instrs = list(code.instrs)
    instrs[pc] = instr
    return dataclasses.replace(code, instrs=instrs, **meta)


class TestAcceptsCodegenOutput:
    def test_compiled_module(self, codes):
        for name, code in codes.items():
            assert verify_code(code, name=name) == [], name

    def test_whole_stdlib(self):
        for module in compile_stdlib(CompileOptions()).values():
            for fn in module.functions.values():
                assert verify_code(fn.code, name=fn.name) == []

    def test_assert_verified_returns_code(self, codes):
        assert assert_verified(codes["inc"]) is codes["inc"]


class TestStructuralPhase:
    def test_unknown_opcode_tam001(self, codes):
        bad = mutate(codes["inc"], 0, ("frobnicate", 0))
        assert {d.code for d in errors(verify_code(bad))} == {"TAM001"}

    def test_wrong_operand_count_tam002(self, codes):
        code = codes["inc"]
        # find a const and drop its operand
        pc = next(i for i, ins in enumerate(code.instrs) if ins[0] == "const")
        bad = mutate(code, pc, ("const", code.instrs[pc][1]))
        assert {d.code for d in errors(verify_code(bad))} == {"TAM002"}

    def test_register_out_of_range_tam004(self, codes):
        code = codes["inc"]
        bad = mutate(code, 0, ("move", code.nregs + 5, 0))
        found = errors(verify_code(bad))
        assert {d.code for d in found} == {"TAM004"}
        assert "out of range" in found[0].message

    def test_const_index_out_of_range_tam005(self, codes):
        code = codes["inc"]
        pc = next(i for i, ins in enumerate(code.instrs) if ins[0] == "const")
        bad = mutate(code, pc, ("const", code.instrs[pc][1], len(code.consts) + 9))
        assert {d.code for d in errors(verify_code(bad))} == {"TAM005"}

    def test_jump_target_out_of_range_tam007(self, codes):
        code = codes["inc"]
        bad = mutate(code, 0, ("jump", len(code.instrs) + 3))
        found = errors(verify_code(bad))
        assert "TAM007" in {d.code for d in found}

    def test_operand_kind_tam003(self, codes):
        bad = mutate(codes["inc"], 0, ("move", "zero", 0))
        assert {d.code for d in errors(verify_code(bad))} == {"TAM003"}

    def test_metadata_tam011(self, codes):
        code = codes["inc"]
        bad = dataclasses.replace(code, nregs=len(code.params) - 1)
        assert "TAM011" in {d.code for d in verify_code(bad)}


class TestDataflowPhase:
    def test_read_before_definition_tam010(self, codes):
        code = codes["inc"]
        fresh = code.nregs  # a register nothing ever writes
        bad = mutate(code, 0, ("move", 0, fresh), nregs=code.nregs + 1)
        found = errors(verify_code(bad))
        assert "TAM010" in {d.code for d in found}
        assert any(str(fresh) in d.message for d in found)

    def test_exception_dst_not_counted_on_fallthrough(self):
        """arith writes its error register only on the exception edge."""
        from repro.core.parser import parse_term

        term = parse_term("proc(x ce cc) (+ x 1 ce cc)")
        code = compile_function(term, default_registry(), name="direct")
        pc, instr = next(
            (i, ins) for i, ins in enumerate(code.instrs) if ins[0] == "add"
        )
        ed = instr[5]
        # reading ed right after the add (fallthrough path) must be flagged
        instrs = list(code.instrs)
        instrs.insert(pc + 1, ("move", instr[1], ed))
        bad = dataclasses.replace(code, instrs=instrs)
        found = verify_code(bad)
        assert "TAM010" in {d.code for d in found}

    def test_fall_off_end_tam009(self, codes):
        code = codes["inc"]
        # replace the terminal tailcall with a non-terminal move
        pc = len(code.instrs) - 1
        bad = mutate(code, pc, ("move", 0, 0))
        assert "TAM009" in {d.code for d in errors(verify_code(bad))}


def _buggy_add_emitter(c, app):
    """The real ``+`` emitter with one register effect wrong.

    The result lands in ``err`` instead of ``dst``; the continuation then
    reads ``dst``, which no path defines — exactly the class of codegen bug
    the verifier's definite-assignment phase exists to catch.
    """
    a, b, ce, cc = app.args
    ra, rb = c.value_reg(a), c.value_reg(b)
    dst, err = c.fresh_reg(), c.fresh_reg()
    exc = c.block(ce, [err])
    c.emit("add", err, ra, rb, exc, err)
    c.continue_with(cc, [dst])


class TestInjectedCodegenBug:
    """Acceptance scenario: a buggy emitter whose register effect is wrong."""

    def test_wrong_destination_register_caught(self, monkeypatch):
        from repro.core.parser import parse_term
        from repro.machine import codegen

        monkeypatch.setitem(codegen._EMITTERS, "+", _buggy_add_emitter)
        term = parse_term("proc(x ce cc) (+ x 1 ce cc)")
        code = compile_function(term, default_registry(), name="buggy")
        found = verify_code(code, name="buggy")
        assert "TAM010" in {d.code for d in found}
        with pytest.raises(TamVerificationError):
            assert_verified(code, name="buggy")

    def test_compile_module_refuses_buggy_code(self, monkeypatch):
        from repro.machine import codegen

        monkeypatch.setitem(codegen._EMITTERS, "+", _buggy_add_emitter)
        with pytest.raises(TamVerificationError):
            compile_module(
                "module m export f let f(x: Int): Int = x + 1 end",
                options=CompileOptions(library_ops=False, optimizer=None),
            )


class TestNestedCodes:
    def test_bug_in_nested_code_reported_with_path(self, codes):
        code = codes["branchy"]
        assert code.codes, "expected nested continuation codes"
        child = code.codes[0]
        bad_child = mutate(child, 0, ("frobnicate",))
        nested = list(code.codes)
        nested[0] = bad_child
        bad = dataclasses.replace(code, codes=nested)
        found = errors(verify_code(bad, name="branchy"))
        assert found and all("codes[0]" in d.path for d in found)


class TestHandlerDepthPrecision:
    """TAM020 is a per-path proof over the whole code family.

    Regression suite for the materialized-continuation pattern: a nested
    closure that pops a handler its *parent* pushed is balanced — the old
    per-code heuristic could not see across the family boundary.
    """

    @staticmethod
    def _family(pops_in_child):
        from repro.core.names import NameSupply
        from repro.machine.isa import CodeObject

        supply = NameSupply()
        cc_free = supply.fresh_cont("cc")
        child_instrs = [("poph",)] * pops_in_child
        child_instrs += [("free", 1, 0), ("tailcall", 1, (0,))]
        child = CodeObject(
            name="k",
            params=(supply.fresh_val("v"),),
            nregs=4,
            instrs=child_instrs,
            free_names=(cc_free,),
        )
        f = supply.fresh_val("f")
        return CodeObject(
            name="with_handler",
            params=(
                supply.fresh_val("x"),
                supply.fresh_cont("ce"),
                supply.fresh_cont("cc"),
            ),
            nregs=8,
            instrs=[
                ("pushh", 0),
                ("closure", 3, 0, (("r", 2),)),  # k captures cc
                ("free", 4, 0),
                ("tailcall", 4, (0, 1, 3)),  # f(x, ce, k): k pops later
            ],
            codes=[child],
            free_names=(f,),
            is_proc=True,
        )

    def test_materialized_continuation_pop_is_balanced(self):
        # the child pops the handler the parent pushed before calling out:
        # depth at the child's poph is provably 1, so no finding
        code = self._family(pops_in_child=1)
        assert verify_code(code, name="with_handler") == []

    def test_double_pop_through_continuation_fires(self):
        # a second poph in the child provably reaches depth 0: it would pop
        # a handler installed by with_handler's own caller
        code = self._family(pops_in_child=2)
        found = verify_code(code, name="with_handler")
        assert [d.code for d in found] == ["TAM020"]
        assert not any(d.is_error for d in found)  # warning severity

    def test_pop_without_any_push_fires_at_root(self):
        import dataclasses as dc

        code = self._family(pops_in_child=1)
        bare = dc.replace(code, instrs=[("poph",)] + list(code.instrs[1:]))
        found = verify_code(bare, name="with_handler")
        assert "TAM020" in {d.code for d in found}
