"""End-to-end replication tests: commit-log shipping, read replicas,
promotion with fencing, and the failover-aware cluster client.

Everything runs in-process on loopback sockets (like test_server.py), so
these exercise the exact wire path — subscribe handshake, record push,
acks, snapshot resync — without subprocess orchestration.
"""

import time

import pytest

from repro.server import ReproServer, ServerConfig, connect
from repro.server.client import (
    ClusterClient,
    NotPrimaryError,
    RetryPolicy,
    StaleReadError,
)


def wait_until(predicate, timeout=20.0, interval=0.02, message="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(interval)
    raise AssertionError(f"timed out waiting for {message}")


def make_primary(tmp_path, name="primary", **overrides):
    config = ServerConfig(
        workers=2,
        queue_size=32,
        lock_timeout=10.0,
        pgo_interval=None,
        replicate=True,
        node_id=name,
        **overrides,
    )
    server = ReproServer(str(tmp_path / f"{name}.tyc"), config)
    server.start()
    return server


def make_replica(tmp_path, upstream, name, **overrides):
    config = ServerConfig(
        workers=2,
        queue_size=32,
        lock_timeout=10.0,
        pgo_interval=None,
        replica_of=("127.0.0.1", upstream.port),
        node_id=name,
        **overrides,
    )
    server = ReproServer(str(tmp_path / f"{name}.tyc"), config)
    server.start()
    return server


def converged(primary, replica):
    with connect(primary.port) as a, connect(replica.port) as b:
        sa = a.repl_status(digest=True)
        sb = b.repl_status(digest=True)
    return (
        sa["version"] == sb["version"]
        and sa.get("digest") == sb.get("digest")
    )


@pytest.fixture
def cluster(tmp_path):
    primary = make_primary(tmp_path)
    r1 = make_replica(tmp_path, primary, "r1")
    r2 = make_replica(tmp_path, primary, "r2")
    servers = [primary, r1, r2]
    yield primary, r1, r2
    for server in servers:
        try:
            server.stop()
        except Exception:
            pass


class TestShipping:
    def test_writes_reach_replicas_and_digests_match(self, cluster):
        primary, r1, r2 = cluster
        with connect(primary.port) as db:
            for i in range(5):
                db.set(f"k{i}", i * 11)
        wait_until(lambda: converged(primary, r1), message="r1 convergence")
        wait_until(lambda: converged(primary, r2), message="r2 convergence")
        with connect(r1.port) as db:
            values = db.get("k0", "k4")
        assert values == {"k0": 0, "k4": 44}

    def test_replica_rejects_writes_with_primary_hint(self, cluster):
        primary, r1, _ = cluster
        with connect(r1.port) as db:
            with pytest.raises(NotPrimaryError) as err:
                db.set("nope", 1)
        assert err.value.details["primary"]["port"] == primary.port

    def test_bounded_staleness_read(self, cluster):
        primary, r1, _ = cluster
        with connect(primary.port) as db:
            result = db.set("fresh", 123)
        version = result["repl_version"]
        with connect(r1.port) as db:
            # far-future floor: must fail no matter how fast the replica is
            with pytest.raises(StaleReadError):
                db.get("fresh", min_version=version + 1000)
            # and once caught up, the same floor succeeds
            wait_until(
                lambda: db.repl_status()["version"] >= version,
                message="replica catch-up",
            )
            assert db.get("fresh", min_version=version) == {"fresh": 123}

    def test_replica_restart_catches_up(self, tmp_path):
        primary = make_primary(tmp_path)
        r1 = make_replica(tmp_path, primary, "r1")
        try:
            with connect(primary.port) as db:
                db.set("before", 1)
            wait_until(lambda: converged(primary, r1), message="initial sync")
            r1.stop()
            with connect(primary.port) as db:
                db.set("while-down", 2)
            r1 = make_replica(tmp_path, primary, "r1")
            wait_until(lambda: converged(primary, r1), message="catch-up")
            with connect(r1.port) as db:
                assert db.get("while-down") == {"while-down": 2}
        finally:
            for server in (primary, r1):
                try:
                    server.stop()
                except Exception:
                    pass

    def test_sync_write_waits_for_ack(self, tmp_path):
        primary = make_primary(tmp_path, sync_replicas=1, replication_timeout=20.0)
        r1 = make_replica(tmp_path, primary, "r1")
        try:
            with connect(primary.port) as db:
                result = db.set("synced", 7)
            assert result["acked_replicas"] >= 1
            with connect(r1.port) as db:
                assert db.get("synced") == {"synced": 7}
        finally:
            for server in (primary, r1):
                try:
                    server.stop()
                except Exception:
                    pass


class TestFailover:
    def test_promote_bumps_term_and_accepts_writes(self, cluster):
        primary, r1, r2 = cluster
        with connect(primary.port) as db:
            db.set("a", 1)
        wait_until(lambda: converged(primary, r1), message="r1 sync")
        old_term = primary.replication.term
        primary.stop()
        with connect(r1.port) as db:
            promoted = db.promote()
        assert promoted["role"] == "primary"
        assert promoted["term"] > old_term
        # re-point the surviving replica at the new primary
        with connect(r2.port) as db:
            db.follow("127.0.0.1", r1.port)
        with connect(r1.port) as db:
            db.set("b", 2)
        wait_until(lambda: converged(r1, r2), message="r2 follows new primary")
        with connect(r2.port) as db:
            assert db.get("a", "b") == {"a": 1, "b": 2}

    def test_deposed_primary_stream_is_fenced(self, tmp_path):
        """A replica that accepted a higher term refuses the old stream."""
        primary = make_primary(tmp_path)
        r1 = make_replica(tmp_path, primary, "r1")
        try:
            with connect(primary.port) as db:
                db.set("x", 1)
            wait_until(lambda: converged(primary, r1), message="sync")
            with connect(r1.port) as db:
                promoted = db.promote()
            new_term = promoted["term"]
            # old primary keeps committing in its stale term
            with connect(primary.port) as db:
                db.set("stale", 99)
            # point the promoted node back at the deposed primary: fencing
            # must reject the stale-term stream, not regress the state
            with connect(r1.port) as db:
                db.follow("127.0.0.1", primary.port)
            time.sleep(1.0)
            with connect(r1.port) as db:
                status = db.repl_status()
                assert status["term"] >= new_term
                assert "stale" not in db.roots()
        finally:
            for server in (primary, r1):
                try:
                    server.stop()
                except Exception:
                    pass


class TestClusterClient:
    def test_writes_route_to_primary_reads_see_them(self, cluster):
        primary, r1, r2 = cluster
        endpoints = [("127.0.0.1", s.port) for s in (primary, r1, r2)]
        with ClusterClient(endpoints, retry=RetryPolicy(base_delay=0.02)) as db:
            db.set("routed", 5)
            # read-your-writes: the floor is the write's repl_version, so
            # this returns 5 whether a replica or the primary answers
            assert db.get("routed") == {"routed": 5}

    def test_failover_rediscovers_new_primary(self, cluster):
        primary, r1, r2 = cluster
        endpoints = [("127.0.0.1", s.port) for s in (primary, r1, r2)]
        with ClusterClient(
            endpoints, retry=RetryPolicy(base_delay=0.02, max_attempts=8)
        ) as db:
            db.set("pre", 1)
            wait_until(lambda: converged(primary, r1), message="sync")
            primary.stop()
            with connect(r1.port) as admin:
                admin.promote()
            with connect(r2.port) as admin:
                admin.follow("127.0.0.1", r1.port)
            db.set("post", 2)  # must reroute to the promoted node
            assert db.get("pre", "post") == {"pre": 1, "post": 2}
