"""End-to-end observability: trace propagation, introspection ops,
slowlog, runtime trace control and the in-image metrics history.

Most tests run the daemon in-process (like test_server.py); the final
class launches real ``python -m repro serve`` subprocesses to assert that
one client write produces NDJSON events sharing a single trace id in
*both* the primary's and the replica's export files.
"""

import json
import os
import subprocess
import sys
import time

import pytest

from repro.obs.exporters import ListRecorder, read_ndjson
from repro.obs.history import read_history
from repro.obs.trace import TRACER, new_span_id, new_trace_id
from repro.server import ReproServer, ServerConfig, connect
from repro.server.client import ClusterClient, RetryPolicy, ServerError
from repro.server.protocol import E_BAD_REQUEST, E_STEP_LIMIT
from repro.store.heap import ObjectHeap

BENCH = """
module bench export work
let work(n: Int): Int =
  var s := 0 in var i := 0 in
  begin while i < n do begin s := s + i; i := i + 1 end end; s end
end"""


def wait_until(predicate, timeout=20.0, interval=0.02, message="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(interval)
    raise AssertionError(f"timed out waiting for {message}")


@pytest.fixture
def server(tmp_path):
    instance = ReproServer(
        str(tmp_path / "obs.tyc"),
        ServerConfig(
            workers=2, queue_size=32, lock_timeout=30.0, pgo_interval=None,
            history_interval=None,  # snapshots driven explicitly by tests
        ),
    )
    instance.start()
    yield instance
    instance.stop()


@pytest.fixture
def client(server):
    with connect(server.port) as db:
        yield db


class TestStatsOp:
    def test_stats_reports_latency_percentiles_and_sections(self, client):
        for i in range(10):
            client.set("k", i)
            client.get("k")
        stats = client.stats()
        assert stats["role"] == "standalone"
        assert stats["uptime_s"] > 0
        assert stats["requests"]["total"] >= 20
        latency = stats["latency_us"]
        assert latency["count"] >= 20
        for key in ("p50", "p99", "p999", "max", "mean"):
            assert latency[key] is not None
        assert latency["p50"] <= latency["p99"] <= latency["p999"]
        # per-op histograms appear for every op that ran
        assert "set" in stats["ops"] and "get" in stats["ops"]
        assert stats["ops"]["set"]["count"] >= 10
        # the new introspection sections ride along
        assert stats["slowlog"]["capacity"] > 0
        assert stats["trace"]["recording"] is False
        assert stats["history"]["capacity"] > 0

    def test_ping_reports_cache_hit_rates(self, client):
        client.run(BENCH)
        for _ in range(3):
            client.call("bench", "work", [50])
        info = client.ping()
        caches = info["caches"]
        assert set(caches) == {"code", "facts"}
        for cache in caches.values():
            assert set(cache) == {"hits", "misses", "hit_rate"}
        assert caches["code"]["hits"] >= 2  # repeat calls hit the code cache
        assert caches["code"]["hit_rate"] > 0


class TestSlowlogOp:
    def test_slowlog_captures_requests_with_trace_ids(self, client):
        client.run(BENCH)
        client.call("bench", "work", [5000])
        result = client.slowlog()
        assert result["kept"] >= 1
        assert result["entries"][0]["latency_us"] >= result["entries"][-1]["latency_us"]
        calls = [e for e in result["entries"] if e["op"] == "call"]
        assert calls, "the call must be slow enough to enter the ring"
        entry = calls[0]
        assert entry["latency_us"] > 0
        assert entry["outcome"] == "ok"
        # the default client stamps every request: the trace id is the
        # join key into any NDJSON export
        assert isinstance(entry["trace_id"], str) and len(entry["trace_id"]) == 16
        assert entry["steps"] is not None  # call carried its VM step count

    def test_slowlog_clear(self, client):
        client.set("x", 1)
        assert client.slowlog()["kept"] >= 1
        cleared = client.slowlog(clear=True)
        assert cleared["entries"] == []
        # the clear request itself may repopulate the ring afterwards

    def test_slowlog_n_bounds_entries(self, client):
        for i in range(5):
            client.set("x", i)
        result = client.slowlog(n=2)
        assert len(result["entries"]) <= 2


class TestErrorTraceTagging:
    def test_error_payload_carries_trace_id(self, client):
        with pytest.raises(ServerError) as err:
            client.request("get", trace={"trace_id": "a" * 16, "span_id": "b" * 16})
        assert err.value.code == E_BAD_REQUEST
        assert err.value.details["trace_id"] == "a" * 16

    def test_step_limit_abort_lands_in_slowlog_with_trace(self, client):
        client.run(BENCH)
        client.slowlog(clear=True)
        with pytest.raises(ServerError) as err:
            client.call("bench", "work", [1_000_000], step_limit=500)
        assert err.value.code == E_STEP_LIMIT
        trace_id = err.value.details["trace_id"]
        assert isinstance(trace_id, str) and len(trace_id) == 16
        entries = client.slowlog()["entries"]
        aborted = [e for e in entries if e["outcome"] == E_STEP_LIMIT]
        assert aborted and aborted[0]["trace_id"] == trace_id
        assert aborted[0]["steps"] is not None


class TestTraceOp:
    def test_runtime_trace_export_round_trip(self, server, client, tmp_path):
        path = str(tmp_path / "live.ndjson")
        status = client.trace_ctl("start", path=path)
        assert status["recording"] is True
        assert status["managed"] is True
        assert status["path"] == path
        client.set("traced", 42)
        client.get("traced")
        status = client.trace_ctl("stop")
        assert status["recording"] is False
        events = read_ndjson(path)  # validates every line as schema v2
        spans = [e for e in events if e["name"] == "server.request"]
        assert spans, "server spans must be exported"
        for event in spans:
            assert event["v"] == 2
            assert event["trace_id"] and event["span_id"]
        # the client stamped the requests, so the server spans adopted the
        # client's trace ids rather than rooting their own
        ops = {e["attrs"]["op"] for e in spans}
        assert {"set", "get"} <= ops

    def test_trace_sample_action_clamps_rate(self, client):
        status = client.trace_ctl("sample", rate=0.25)
        assert status["sample_rate"] == 0.25
        status = client.trace_ctl("sample", rate=7.0)
        assert status["sample_rate"] == 1.0
        client.trace_ctl("sample", rate=1.0)  # restore for other tests

    def test_trace_start_refuses_double_attach(self, client, tmp_path):
        client.trace_ctl("start", path=str(tmp_path / "a.ndjson"))
        try:
            with pytest.raises(ServerError) as err:
                client.trace_ctl("start", path=str(tmp_path / "b.ndjson"))
            assert err.value.code == E_BAD_REQUEST
        finally:
            client.trace_ctl("stop")

    def test_trace_unknown_action_rejected(self, client):
        with pytest.raises(ServerError) as err:
            client.trace_ctl("explode")
        assert err.value.code == E_BAD_REQUEST


class TestDistributedTrace:
    def test_one_trace_spans_client_primary_and_replica(self, tmp_path):
        primary = ReproServer(
            str(tmp_path / "p.tyc"),
            ServerConfig(
                workers=2, queue_size=32, pgo_interval=None, replicate=True,
                node_id="p", history_interval=None,
            ),
        )
        primary.start()
        replica = ReproServer(
            str(tmp_path / "r.tyc"),
            ServerConfig(
                workers=2, queue_size=32, pgo_interval=None,
                replica_of=("127.0.0.1", primary.port), node_id="r",
                history_interval=None,
            ),
        )
        replica.start()
        recorder = ListRecorder()
        try:
            wait_until(
                lambda: replica.repl_version() == primary.repl_version(),
                message="replica catch-up",
            )
            with TRACER.recording(recorder):
                cluster = ClusterClient(
                    [("127.0.0.1", primary.port), ("127.0.0.1", replica.port)],
                    retry=RetryPolicy(max_attempts=4),
                )
                with cluster:
                    cluster.set("traced-root", 7)
                    wait_until(
                        lambda: any(
                            e.name == "server.repl.apply" for e in recorder.events
                        ),
                        message="replica apply span",
                    )
        finally:
            replica.stop()
            primary.stop()
        client_spans = recorder.named("client.request")
        assert client_spans, "the cluster client must span its requests"
        set_spans = [e for e in client_spans if e.attrs.get("op") == "set"]
        trace_id = set_spans[0].trace_id
        names = {e.name for e in recorder.traced(trace_id)}
        # one trace id joins all three hops of the write
        assert "client.request" in names
        assert "server.request" in names
        assert "server.repl.apply" in names

    def test_replication_lag_gauges_in_stats(self, tmp_path):
        primary = ReproServer(
            str(tmp_path / "lp.tyc"),
            ServerConfig(
                workers=2, queue_size=32, pgo_interval=None, replicate=True,
                node_id="lp", history_interval=None,
            ),
        )
        primary.start()
        replica = ReproServer(
            str(tmp_path / "lr.tyc"),
            ServerConfig(
                workers=2, queue_size=32, pgo_interval=None,
                replica_of=("127.0.0.1", primary.port), node_id="lr",
                history_interval=None,
            ),
        )
        replica.start()
        try:
            with connect(primary.port) as db:
                for i in range(3):
                    db.set("lag-key", i)
            wait_until(
                lambda: replica.repl_version() == primary.repl_version(),
                message="replica catch-up",
            )
            with connect(primary.port) as db:
                stats = db.stats()
            subscribers = stats["replication"]["subscribers"]
            assert subscribers
            assert subscribers[0]["bytes_behind"] == 0  # caught up
            with connect(replica.port) as db:
                rstats = db.stats()
            assert rstats["role"] == "replica"
            assert rstats["replication"]["lag"] == 0
            apply_lat = rstats["replication"].get("apply_latency_us")
            assert apply_lat and apply_lat["count"] >= 3
            assert apply_lat["p50"] is not None
        finally:
            replica.stop()
            primary.stop()


class TestMetricsHistory:
    def test_history_survives_restart_and_reads_offline(self, tmp_path):
        image = str(tmp_path / "hist.tyc")
        config = ServerConfig(
            workers=2, queue_size=32, pgo_interval=None, history_interval=None,
        )
        first = ReproServer(image, config)
        first.start()
        with connect(first.port) as db:
            db.set("h", 1)
        first.record_history_snapshot(reason="test")
        first.stop()  # flushes the ring into the image

        # offline: no server needed to read the persisted snapshots
        with ObjectHeap(image) as heap:
            stored = read_history(heap)
        assert len(stored) == 1
        assert stored[0]["meta"]["reason"] == "test"
        assert stored[0]["metrics"]["server.requests"]["value"] >= 1

        # restart: the ring attaches and seq continues monotonically
        second = ReproServer(image, config)
        second.start()
        try:
            second.record_history_snapshot(reason="after-restart")
            with connect(second.port) as db:
                stats = db.stats(history=True)
            entries = stats["history_entries"]
            assert [e["seq"] for e in entries] == [0, 1]
            assert entries[1]["meta"]["reason"] == "after-restart"
        finally:
            second.stop()
        with ObjectHeap(image) as heap:
            assert [e["seq"] for e in read_history(heap)] == [0, 1]

    def test_history_cli_reads_image(self, tmp_path, capsys):
        from repro.cli import main

        image = str(tmp_path / "cli-hist.tyc")
        server = ReproServer(
            image,
            ServerConfig(
                workers=2, queue_size=32, pgo_interval=None, history_interval=None,
            ),
        )
        server.start()
        with connect(server.port) as db:
            db.set("k", 1)
        server.record_history_snapshot()
        server.stop()
        assert main(["stats", image, "--history"]) == 0
        out = capsys.readouterr().out
        assert "seq" in out and "standalone" in out

    def test_replica_never_flushes_history_locally(self, tmp_path):
        primary = ReproServer(
            str(tmp_path / "hp.tyc"),
            ServerConfig(
                workers=2, queue_size=32, pgo_interval=None, replicate=True,
                node_id="hp", history_interval=None,
            ),
        )
        primary.start()
        replica_image = str(tmp_path / "hr.tyc")
        replica = ReproServer(
            replica_image,
            ServerConfig(
                workers=2, queue_size=32, pgo_interval=None,
                replica_of=("127.0.0.1", primary.port), node_id="hr",
                history_interval=None,
            ),
        )
        replica.start()
        try:
            with connect(primary.port) as db:
                db.set("k", 1)
            wait_until(
                lambda: replica.repl_version() == primary.repl_version(),
                message="replica catch-up",
            )
            replica.record_history_snapshot()  # in-memory only on a replica
        finally:
            replica.stop()
            primary.stop()
        with ObjectHeap(replica_image) as heap:
            assert read_history(heap) == []  # never flushed: image = primary's


class TestSubprocessExports:
    def test_one_trace_id_in_both_processes_ndjson(self, tmp_path):
        """A ClusterClient write is followable across two real processes."""
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env = dict(os.environ, PYTHONPATH=os.path.abspath(src))
        p_trace = str(tmp_path / "primary.ndjson")
        r_trace = str(tmp_path / "replica.ndjson")

        def launch(image, trace, *extra):
            proc = subprocess.Popen(
                [
                    sys.executable, "-m", "repro", "serve", str(tmp_path / image),
                    "--port", "0", "--no-pgo", "--trace", trace,
                    "--history-interval", "0", *extra,
                ],
                stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
                text=True, env=env,
            )
            line = proc.stdout.readline()
            assert "listening on" in line, line
            port = int(line.rsplit(":", 1)[1])
            return proc, port

        p_proc, p_port = launch("p.tyc", p_trace, "--replicate")
        r_proc = r_port = None
        try:
            r_proc, r_port = launch(
                "r.tyc", r_trace, "--replica-of", f"127.0.0.1:{p_port}"
            )
            trace_id = new_trace_id()
            with TRACER.activate(trace_id, new_span_id()):
                cluster = ClusterClient(
                    [("127.0.0.1", p_port), ("127.0.0.1", r_port)],
                    retry=RetryPolicy(max_attempts=4),
                )
                with cluster:
                    result = cluster.set("shared", 99)
            version = result["repl_version"]

            def replica_caught_up():
                with connect(r_port) as db:
                    return db.repl_status()["version"] >= version

            wait_until(replica_caught_up, message="replica apply")
            # graceful shutdown closes (and flushes) each --trace recorder
            for port in (r_port, p_port):
                with connect(port) as db:
                    db.shutdown()
            p_proc.wait(timeout=30)
            r_proc.wait(timeout=30)
        finally:
            for proc in (p_proc, r_proc):
                if proc is not None and proc.poll() is None:
                    proc.kill()
                    proc.wait(timeout=10)

        primary_events = read_ndjson(p_trace)
        replica_events = read_ndjson(r_trace)
        p_mine = [e for e in primary_events if e["trace_id"] == trace_id]
        r_mine = [e for e in replica_events if e["trace_id"] == trace_id]
        assert any(
            e["name"] == "server.request" and e["attrs"].get("op") == "set"
            for e in p_mine
        ), "the primary must span the traced write"
        assert any(
            e["name"] == "server.repl.apply" for e in r_mine
        ), "the replica must span the traced apply"
