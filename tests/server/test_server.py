"""End-to-end tests for the multi-session daemon (repro.server.daemon).

Everything runs the server in-process (real TCP sockets on an ephemeral
loopback port, real worker threads) so the tests exercise exactly the wire
path clients use, without subprocess flakiness.
"""

import threading
import time

import pytest

from repro.server import ReproServer, ServerConfig, connect
from repro.server.client import ServerError
from repro.server.protocol import (
    E_BACKPRESSURE,
    E_BUSY,
    E_NOT_FOUND,
    E_STEP_LIMIT,
    E_TXN_STATE,
    PROTOCOL_VERSION,
)

BENCH = """
module bench export work idle
let idle(x: Int): Int = x
let work(n: Int): Int =
  var s := 0 in var i := 0 in
  begin while i < n do begin s := s + i; i := i + 1 end end; s end
end"""


@pytest.fixture
def server(tmp_path):
    instance = ReproServer(
        str(tmp_path / "server.tyc"),
        ServerConfig(workers=4, queue_size=64, lock_timeout=30.0, pgo_interval=None),
    )
    instance.start()
    yield instance
    instance.stop()


@pytest.fixture
def client(server):
    with connect(server.port) as db:
        yield db


class TestBasics:
    def test_ping(self, client):
        result = client.ping()
        assert result["pong"] is True
        assert result["protocol"] == PROTOCOL_VERSION

    def test_run_and_call(self, client):
        assert client.run(BENCH) == ["bench"]
        assert client.call("bench", "work", [10]) == 45

    def test_call_unknown_function(self, client):
        with pytest.raises(ServerError) as err:
            client.call("nowhere", "nothing")
        assert err.value.code == E_NOT_FOUND

    def test_step_limit_is_structured(self, client):
        client.run(BENCH)
        with pytest.raises(ServerError) as err:
            client.call("bench", "work", [100_000], step_limit=50)
        assert err.value.code == E_STEP_LIMIT
        assert err.value.details["limit"] == 50

    def test_set_get_roots(self, client):
        client.set("answer", 42)
        assert client.get("answer") == {"answer": 42}
        assert "answer" in client.roots()

    def test_txn_state_errors(self, client):
        with pytest.raises(ServerError) as err:
            client.commit()
        assert err.value.code == E_TXN_STATE
        client.begin()
        with pytest.raises(ServerError) as err:
            client.begin()
        assert err.value.code == E_TXN_STATE
        client.abort()

    def test_stats_shape(self, client):
        stats = client.stats(metrics=True)
        assert "codecache" in stats and "metrics" in stats
        assert stats["sessions"] >= 1


class TestConcurrentSessions:
    SESSIONS = 8
    INCREMENTS = 5

    def test_no_lost_updates_across_8_sessions(self, server):
        """8 sessions increment one counter transactionally; none is lost."""
        with connect(server.port) as db:
            db.set("counter", 0)
        errors = []

        def worker():
            try:
                with connect(server.port) as db:
                    for _ in range(self.INCREMENTS):
                        with db.transaction():
                            value = db.get("counter")["counter"]
                            db.set("counter", value + 1)
            except Exception as exc:  # surfaced after join
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(self.SESSIONS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert errors == []
        with connect(server.port) as db:
            assert db.get("counter")["counter"] == self.SESSIONS * self.INCREMENTS

    def test_snapshot_readers_never_see_partial_commits(self, server):
        """Writers keep a=b invariant per commit; readers must never see a!=b."""
        with connect(server.port) as db:
            db.begin()
            db.set("a", 0)
            db.set("b", 0)
            db.commit()
        stop = threading.Event()
        violations = []
        errors = []

        def writer(base):
            try:
                with connect(server.port) as db:
                    for i in range(10):
                        with db.transaction():
                            value = base * 1000 + i
                            db.set("a", value)
                            db.set("b", value)
            except Exception as exc:
                errors.append(exc)

        def reader():
            try:
                with connect(server.port) as db:
                    while not stop.is_set():
                        snap = db.get("a", "b")
                        if snap["a"] != snap["b"]:
                            violations.append(snap)
                            return
            except Exception as exc:
                errors.append(exc)

        readers = [threading.Thread(target=reader) for _ in range(4)]
        writers = [threading.Thread(target=writer, args=(n,)) for n in range(4)]
        for t in readers + writers:
            t.start()
        for t in writers:
            t.join(timeout=120)
        stop.set()
        for t in readers:
            t.join(timeout=30)
        assert errors == []
        assert violations == []

    def test_explicit_write_txn_blocks_other_writer(self, server):
        with connect(server.port) as holder, connect(server.port) as waiter:
            holder.begin("write")
            holder.set("locked", 1)
            with pytest.raises(ServerError) as err:
                waiter.begin("write", timeout=0.1)
            assert err.value.code == E_BUSY
            holder.commit()
            waiter.begin("write", timeout=5)
            waiter.abort()
            assert waiter.get("locked") == {"locked": 1}

    def test_disconnect_aborts_open_transaction(self, server):
        db = connect(server.port)
        db.begin("write")
        db.set("orphan", 99)
        db.close()  # dies without commit
        deadline = time.monotonic() + 10
        with connect(server.port) as other:
            while time.monotonic() < deadline:
                try:
                    other.begin("write", timeout=1)
                    break
                except ServerError:
                    continue
            other.abort()
            with pytest.raises(ServerError) as err:
                other.get("orphan")
            assert err.value.code == E_NOT_FOUND


class TestBackpressure:
    def test_over_capacity_request_gets_structured_error(self, tmp_path):
        server = ReproServer(
            str(tmp_path / "bp.tyc"),
            ServerConfig(
                workers=1, queue_size=1, pgo_interval=None, enable_debug_ops=True
            ),
        )
        server.start()
        try:
            clients = [connect(server.port) for _ in range(6)]
            try:
                outcomes = []
                lock = threading.Lock()

                def one(db):
                    try:
                        db.request("sleep", seconds=0.5)
                        with lock:
                            outcomes.append("ok")
                    except ServerError as exc:
                        with lock:
                            outcomes.append(exc.code)

                threads = [
                    threading.Thread(target=one, args=(db,)) for db in clients
                ]
                for t in threads:
                    t.start()
                for t in threads:
                    t.join(timeout=60)
                assert len(outcomes) == 6
                # worker + queue hold 2; with 6 near-simultaneous requests at
                # least one must be rejected at the door, and the rejection
                # is the structured protocol error, not a hang or a close
                assert outcomes.count(E_BACKPRESSURE) >= 1
                assert outcomes.count("ok") >= 2
                assert set(outcomes) <= {"ok", E_BACKPRESSURE}
                # the server stays healthy after shedding load
                assert clients[0].ping()["pong"] is True
            finally:
                for db in clients:
                    db.close()
        finally:
            server.stop()


class TestCodeCacheAndPgo:
    def test_cache_hits_rise_across_sessions(self, server):
        with connect(server.port) as first:
            first.run(BENCH)
            before = first.stats()["codecache"]
            miss = first.call("bench", "work", [50], full=True)
            assert miss["cache"] == "miss"
        with connect(server.port) as second:
            hit = second.call("bench", "work", [50], full=True)
            assert hit["cache"] == "hit"
            with connect(server.port) as third:
                assert third.call("bench", "work", [50], full=True)["cache"] == "hit"
                after = third.stats()["codecache"]
        assert after["hits"] >= before["hits"] + 2

    def test_pgo_replaces_hot_function_while_serving(self, server):
        with connect(server.port) as db:
            db.run(BENCH)
            baseline = db.call("bench", "work", [300], full=True)
            # build profile evidence from several sessions
            for _ in range(3):
                with connect(server.port) as other:
                    other.call("bench", "work", [300])

            invalidations_before = db.stats()["codecache"]["invalidations"]
            report = db.pgo(top=1)
            optimized = {entry["function"] for entry in report["optimized"]}
            assert "bench.work" in optimized
            entry = next(
                e for e in report["optimized"] if e["function"] == "bench.work"
            )
            # measurably smaller TAM cost after reflective reoptimization
            assert entry["cost_after"] < entry["cost_before"]

            # the server never stopped: same session keeps working and the
            # replacement is live — fewer instructions, same result
            after = db.call("bench", "work", [300], full=True)
            assert after["value"] == baseline["value"]
            assert after["instructions"] < baseline["instructions"]
            assert (
                db.stats()["codecache"]["invalidations"] > invalidations_before
            )
            # other sessions observe the optimized code too
            with connect(server.port) as other:
                again = other.call("bench", "work", [300], full=True)
                assert again["instructions"] == after["instructions"]

    def test_pgo_with_no_evidence_is_empty(self, server):
        with connect(server.port) as db:
            db.pgo()  # drain whatever other tests left
            assert db.pgo() == {"optimized": []}


class TestPersistence:
    def test_image_survives_restart(self, tmp_path):
        path = str(tmp_path / "persist.tyc")
        config = ServerConfig(workers=2, pgo_interval=None)
        server = ReproServer(path, config)
        server.start()
        with connect(server.port) as db:
            db.run(BENCH)
            db.set("mark", 7)
        server.stop()

        reborn = ReproServer(path, config)
        reborn.start()
        try:
            with connect(reborn.port) as db:
                assert db.get("mark") == {"mark": 7}
                assert db.call("bench", "work", [10]) == 45
                # the image-resident code table warmed up from the image
                assert db.stats()["codecache"]["persisted_codes"] >= 1
        finally:
            reborn.stop()

    def test_shutdown_op_stops_server(self, tmp_path):
        server = ReproServer(
            str(tmp_path / "down.tyc"), ServerConfig(pgo_interval=None)
        )
        server.start()
        with connect(server.port) as db:
            assert db.shutdown() == {"stopping": True}
        assert server.wait(timeout=30)
