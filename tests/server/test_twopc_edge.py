"""2PC edge cases: coordinator crashes inside the commit window (both
sides of the decision point), participant term fencing, and duplicate
decision replay.

The crash tests use the coordinator's failpoints (``twopc_failpoint``)
to die at exact protocol points, then boot a fresh coordinator process
over the same image and node id and let presumed-abort recovery settle
the in-doubt transactions.
"""

import time

import pytest

from repro.server import ReproServer, ServerConfig, connect
from repro.server.client import ClientError, ServerError
from repro.server.protocol import E_STALE_TERM
from repro.server.sharding.ring import ShardTopology
from repro.server.sharding.twopc import DECISION_PREFIX, STAGING_PREFIX


def _config(**overrides):
    defaults = dict(
        workers=2, queue_size=32, lock_timeout=10.0, pgo_interval=None
    )
    defaults.update(overrides)
    return ServerConfig(**defaults)


class Deployment:
    """Two single-daemon shard groups plus a crashable coordinator."""

    def __init__(self, tmp_path):
        self.tmp_path = tmp_path
        self.shards = []
        self.groups = []
        for sid in range(2):
            server = ReproServer(
                str(tmp_path / f"shard{sid}.tyc"),
                _config(replicate=True, node_id=f"shard{sid}"),
            )
            server.start()
            self.shards.append(server)
            self.groups.append([("127.0.0.1", server.port)])
        self.coordinator = None
        self.start_coordinator()

    def start_coordinator(self):
        self.coordinator = ReproServer(
            str(self.tmp_path / "coordinator.tyc"),
            _config(
                coordinator=True, shards=self.groups, node_id="coordinator",
                resolver_interval=0.2,
            ),
        )
        self.coordinator.start()
        self.wait_recovered()

    def wait_recovered(self, timeout=20.0):
        deadline = time.monotonic() + timeout
        with connect(self.coordinator.port) as db:
            while not db.topology()["recovered"]:
                assert time.monotonic() < deadline, "coordinator never recovered"
                time.sleep(0.05)

    def wait_coordinator_dead(self, timeout=10.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            try:
                with connect(self.coordinator.port, timeout=1.0) as db:
                    db.ping()
            except (ClientError, ServerError, OSError):
                return
            time.sleep(0.05)
        raise AssertionError("coordinator survived its failpoint")

    def crash_restart_and_settle(self, timeout=20.0):
        self.wait_coordinator_dead()
        try:
            self.coordinator.stop()
        except Exception:
            pass
        self.start_coordinator()
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if not self.any_staging() and not self.coordinator_decisions():
                return
            time.sleep(0.1)
        raise AssertionError(
            f"2PC residue never drained: staging={self.any_staging()} "
            f"decisions={self.coordinator_decisions()}"
        )

    def staging(self, sid):
        with connect(self.shards[sid].port) as db:
            return [r for r in db.roots() if r.startswith(STAGING_PREFIX)]

    def any_staging(self):
        return [r for sid in (0, 1) for r in self.staging(sid)]

    def coordinator_decisions(self):
        with connect(self.coordinator.port) as db:
            return [r for r in db.roots() if r.startswith(DECISION_PREFIX)]

    def topology(self):
        with connect(self.coordinator.port) as db:
            return ShardTopology.from_dict(db.topology()["topology"])

    def cross_shard_batch(self, tag, n=8):
        topology = self.topology()
        writes = {f"{tag}{i}": i for i in range(n)}
        assert {topology.shard_for(k) for k in writes} == {0, 1}
        return writes

    def applied(self, writes):
        """How many of the batch's roots exist across the shards."""
        topology = self.topology()
        found = 0
        for name in writes:
            sid = topology.shard_for(name)
            with connect(self.shards[sid].port) as db:
                if name in db.roots():
                    found += 1
        return found

    def stop(self):
        for server in (self.coordinator, *self.shards):
            try:
                server.stop()
            except Exception:
                pass


@pytest.fixture
def deployment(tmp_path):
    dep = Deployment(tmp_path)
    yield dep
    dep.stop()


def _mset_expect_crash(deployment, writes):
    with pytest.raises((ClientError, ServerError)):
        with connect(deployment.coordinator.port, timeout=5.0) as db:
            db.mset(writes)


class TestCoordinatorCrashWindows:
    def test_crash_after_prepare_presumed_aborts(self, deployment):
        """Die after staging but before the decision record: no decision
        durably exists, so recovery must abort — no root may appear."""
        writes = deployment.cross_shard_batch("pa")
        deployment.coordinator.config.twopc_failpoint = "after-prepare"
        _mset_expect_crash(deployment, writes)
        # at least one shard holds staged writes while in doubt
        assert deployment.any_staging()
        deployment.crash_restart_and_settle()
        assert deployment.applied(writes) == 0

    def test_crash_after_decision_recovers_commit(self, deployment):
        """Die right after the decision record is durable: the txn passed
        its commit point, so recovery must finish applying everywhere."""
        writes = deployment.cross_shard_batch("ad")
        deployment.coordinator.config.twopc_failpoint = "after-decision"
        _mset_expect_crash(deployment, writes)
        deployment.crash_restart_and_settle()
        assert deployment.applied(writes) == len(writes)

    def test_crash_mid_decide_recovers_commit(self, deployment):
        """Die after phase two reached one participant but not the other:
        recovery replays the decision; the already-decided shard treats
        the replay as a no-op."""
        writes = deployment.cross_shard_batch("md")
        deployment.coordinator.config.twopc_failpoint = "mid-decide"
        _mset_expect_crash(deployment, writes)
        deployment.crash_restart_and_settle()
        assert deployment.applied(writes) == len(writes)

    def test_orphaned_staging_is_presumed_aborted(self, deployment):
        """A staged transaction whose coordinator has no decision record
        (e.g. it died before writing one) is aborted by the resolver."""
        topology = deployment.topology()
        name = next(
            f"or{i}" for i in range(1000) if topology.shard_for(f"or{i}") == 0
        )
        with connect(deployment.shards[0].port) as db:
            result = db._invoke(
                "shard.prepare", txn="orphan-1", coordinator="coordinator",
                participants=[0], writes={name: 1},
            )
            assert result["prepared"] is True
        deadline = time.monotonic() + 10
        while deployment.staging(0):
            assert time.monotonic() < deadline, "orphan never aborted"
            time.sleep(0.1)
        with connect(deployment.shards[0].port) as db:
            assert name not in db.roots()


class TestParticipantFencing:
    def test_prepare_with_stale_term_is_fenced(self, deployment):
        topology = deployment.topology()
        name = next(
            f"f{i}" for i in range(1000) if topology.shard_for(f"f{i}") == 0
        )
        with connect(deployment.shards[0].port) as db:
            current = db.stats()["replication"]["term"]
            with pytest.raises(ServerError) as info:
                db._invoke(
                    "shard.prepare", txn="fence-1", coordinator="nobody",
                    participants=[0], writes={name: 1}, term=current + 7,
                )
        assert info.value.code == E_STALE_TERM
        assert info.value.details["term"] == current
        # nothing was staged by the fenced prepare
        assert deployment.staging(0) == []

    def test_prepare_with_current_term_passes(self, deployment):
        topology = deployment.topology()
        name = next(
            f"g{i}" for i in range(1000) if topology.shard_for(f"g{i}") == 0
        )
        with connect(deployment.shards[0].port) as db:
            current = db.stats()["replication"]["term"]
            result = db._invoke(
                "shard.prepare", txn="fence-2", coordinator="nobody",
                participants=[0], writes={name: 1}, term=current,
            )
            assert result["prepared"] is True
            assert result["term"] == current
            # clean up so the resolver doesn't have to
            db._invoke("shard.decide", txn="fence-2", decision="abort")


class TestDecisionReplay:
    def _prepare(self, deployment, txn, tag):
        topology = deployment.topology()
        name = next(
            f"{tag}{i}" for i in range(1000)
            if topology.shard_for(f"{tag}{i}") == 0
        )
        with connect(deployment.shards[0].port) as db:
            db._invoke(
                "shard.prepare", txn=txn, coordinator="nobody",
                participants=[0], writes={name: 41},
            )
        return name

    def test_duplicate_commit_decision_is_idempotent(self, deployment):
        name = self._prepare(deployment, "replay-1", "r")
        with connect(deployment.shards[0].port) as db:
            first = db._invoke("shard.decide", txn="replay-1", decision="commit")
            assert first["applied"] is True
            second = db._invoke("shard.decide", txn="replay-1", decision="commit")
            assert second["already"] is True
            assert db.get(name) == {name: 41}

    def test_prepare_replay_is_idempotent(self, deployment):
        name = self._prepare(deployment, "replay-2", "s")
        with connect(deployment.shards[0].port) as db:
            again = db._invoke(
                "shard.prepare", txn="replay-2", coordinator="nobody",
                participants=[0], writes={name: 99},
            )
            assert again["already"] is True
            db._invoke("shard.decide", txn="replay-2", decision="commit")
            # the original staging wins; the replay's payload is ignored
            assert db.get(name) == {name: 41}

    def test_decide_unknown_txn_is_a_noop(self, deployment):
        with connect(deployment.shards[0].port) as db:
            result = db._invoke(
                "shard.decide", txn="never-prepared", decision="commit"
            )
            assert result["already"] is True

    def test_abort_discards_staged_writes(self, deployment):
        name = self._prepare(deployment, "replay-3", "t")
        with connect(deployment.shards[0].port) as db:
            result = db._invoke("shard.decide", txn="replay-3", decision="abort")
            assert result["applied"] is False
            assert name not in db.roots()
            assert deployment.staging(0) == []
