"""Resource-exhaustion robustness: degraded read-only mode, memory
governance, admission shedding, and the client/cluster failover story.

In-process daemons on loopback sockets (as in test_resilience.py).  Disk
faults are injected by sliding a :class:`~repro.store.faults.FaultPlan`
under the pager via ``ServerConfig.io_factory`` — the same machinery the
exhaustion chaos sweep (``make exhaustion-sim``) uses at scale; these
tests pin the individual mechanisms deterministically.
"""

import threading
import time

import pytest

from repro.server import ReproServer, ServerConfig, connect
from repro.server import protocol
from repro.server.client import (
    BusyError,
    ClusterClient,
    OverloadedError,
    ReadOnlyError,
    RetryPolicy,
    TwopcAbortedError,
    _ERROR_TYPES,
)
from repro.server.daemon import _IO_ERRORS
from repro.store.faults import FaultPlan


def _config(**overrides):
    defaults = dict(
        workers=2, queue_size=16, lock_timeout=10.0, pgo_interval=None,
        history_interval=None, profile=False, enable_debug_ops=True,
    )
    defaults.update(overrides)
    return ServerConfig(**defaults)


def wait_until(predicate, timeout=10.0, interval=0.02, message="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(interval)
    raise AssertionError(f"timed out waiting for {message}")


@pytest.fixture
def server(tmp_path):
    instance = ReproServer(str(tmp_path / "exhaust.tyc"), _config())
    instance.start()
    yield instance
    instance.stop()


def _faulty_server(tmp_path, **overrides):
    """A daemon whose pager I/O flows through a FaultPlan."""
    plan = FaultPlan()
    config = _config(
        io_factory=plan.file_factory,
        degraded_probe_interval=0.05,
        **overrides,
    )
    instance = ReproServer(str(tmp_path / "faulty.tyc"), config)
    instance.start()
    return instance, plan


class TestErrorTaxonomy:
    def test_read_only_is_not_retryable(self):
        assert ReadOnlyError.retryable is False
        assert _ERROR_TYPES[protocol.E_READ_ONLY] is ReadOnlyError

    def test_overloaded_is_retryable(self):
        assert OverloadedError.retryable is True
        assert _ERROR_TYPES[protocol.E_OVERLOADED] is OverloadedError


class TestDegradedMode:
    def test_degraded_rejects_writes_but_serves_reads(self, server):
        with connect(server.port) as db:
            db.set("k", 1)
            server.enter_degraded("test: simulated disk failure")
            with pytest.raises(ReadOnlyError) as err:
                db.set("k", 2)
            assert err.value.details["reason"] == "test: simulated disk failure"
            assert err.value.details["since"] is not None
            # reads and introspection keep answering while degraded
            assert db.get("k") == {"k": 1}
            info = db.ping()
            assert info["status"] == "ok"
            assert info["degraded"] is True
            assert "disk failure" in info["degraded_reason"]
            report = db.stats()
            assert report["degraded"]["active"] is True
            assert report["degraded"]["reason"] == "test: simulated disk failure"
            server.exit_degraded()
            db.set("k", 3)
            assert db.get("k") == {"k": 3}
            assert db.ping()["degraded"] is False

    def test_degraded_entry_is_idempotent(self, server):
        server.enter_degraded("first reason")
        server.enter_degraded("second reason")  # no-op: keeps the original
        assert server.degraded_info()["reason"] == "first reason"
        server.exit_degraded()
        server.exit_degraded()  # exit is idempotent too
        assert server.degraded_info()["active"] is False

    def test_manual_read_only_never_auto_recovers(self, tmp_path):
        instance = ReproServer(
            str(tmp_path / "manual.tyc"),
            _config(read_only=True, degraded_probe_interval=0.05),
        )
        instance.start()
        try:
            info = instance.degraded_info()
            assert info["active"] is True
            assert info["manual"] is True
            # many probe intervals pass; the manual override must hold
            # (nothing is wrong with the disk — the probe would succeed)
            time.sleep(0.4)
            assert instance.degraded_info()["active"] is True
            with connect(instance.port) as db:
                with pytest.raises(ReadOnlyError) as err:
                    db.set("nope", 1)
                assert err.value.details["manual"] is True
                assert db.ping()["degraded"] is True
        finally:
            instance.stop()


class TestCommitIoFailure:
    """Satellite: fsync failure driven through a live daemon commit."""

    def test_fsync_failure_degrades_and_auto_recovers(self, tmp_path):
        instance, plan = _faulty_server(tmp_path)
        try:
            with connect(instance.port) as db:
                db.set("k", 1)
                io_errors_before = _IO_ERRORS.value
                plan.arm_fsync_failure(1)
                with pytest.raises(ReadOnlyError) as err:
                    db.set("k", 2)
                assert "fsync" in err.value.details["reason"]
                assert err.value.details["retry_after"] == pytest.approx(0.05)
                assert db.ping()["degraded"] is True
                assert _IO_ERRORS.value > io_errors_before
                assert db.stats()["shed"]["io_errors"] == _IO_ERRORS.value
                # fault cleared: the probe must recover without a restart
                plan.heal()
                wait_until(
                    lambda: db.ping()["degraded"] is False,
                    message="degraded mode never cleared after heal",
                )
                assert db.stats()["degraded"]["recoveries"] >= 1
                db.set("k", 3)
                assert db.get("k") == {"k": 3}
        finally:
            instance.stop()
            plan.close_all()

    def test_write_failure_rolls_back_to_durable_state(self, tmp_path):
        instance, plan = _faulty_server(tmp_path)
        try:
            with connect(instance.port) as db:
                db.set("k", 1)
                plan.arm_write_failure(1)
                with pytest.raises(ReadOnlyError):
                    db.set("k", 2)
                # rolled back: the failed write is gone, the acked one isn't
                assert db.get("k") == {"k": 1}
                plan.heal()
                wait_until(
                    lambda: db.ping()["degraded"] is False,
                    message="degraded mode never cleared",
                )
                # a later commit must not resurrect the rolled-back value
                db.set("other", 5)
                assert db.get("k") == {"k": 1}
        finally:
            instance.stop()
            plan.close_all()

    def test_torn_header_write_is_not_resurrected(self, tmp_path):
        """Positive-path twin of the sweep's negative control: fail the
        commit-point header write specifically (in-memory table already
        mutated), then prove the next successful commit does NOT publish
        the torn state.  With ``unsafe_no_degraded`` the same arming
        resurrects the value — scripts/exhaustion_sim.py --negative-control.
        """
        instance, plan = _faulty_server(tmp_path)
        try:
            with connect(instance.port) as db:
                db.set("ctrl", 100)
                db.set("ctrl", 140)  # warm-up: free list reaches steady state
                writes = self._commit_writes(plan, db, 150)
                assert writes == self._commit_writes(plan, db, 160), \
                    "commit write count did not stabilize"
                # position writes-2 is the pre-commit-point header-slot
                # write (the last two writes are the post-commit free-list
                # resync): the durable image still holds 160 while the
                # in-memory heap table already points at the 200 chain
                plan.arm_write_failure(writes - 2)
                with pytest.raises(ReadOnlyError):
                    db.set("ctrl", 200)
                plan.heal()
                wait_until(
                    lambda: db.ping()["degraded"] is False,
                    message="degraded mode never cleared",
                )
                db.set("other", 1)  # would publish a torn table entry
                assert db.get("ctrl") == {"ctrl": 160}
        finally:
            instance.stop()
            plan.close_all()

    @staticmethod
    def _commit_writes(plan, db, value):
        plan.record_ops = True
        before = len(plan.op_log)
        db.set("ctrl", value)
        writes = plan.op_log[before:].count("write")
        plan.record_ops = False
        return writes


class TestMemoryGovernance:
    def test_budget_exceeded_sheds_busy_style(self, tmp_path):
        instance = ReproServer(
            str(tmp_path / "mem.tyc"),
            _config(mem_budget_bytes=16_384, mem_watchdog_interval=0.05),
        )
        instance.start()
        try:
            with connect(instance.port) as db:
                rejection = None
                for index in range(60):
                    try:
                        # raw single-shot: db.set would absorb the busy
                        # rejection through its retry loop
                        db.request("set", root=f"bulk{index}", value="x" * 1024)
                    except BusyError as exc:
                        rejection = exc
                        break
                assert rejection is not None, "memory budget never rejected"
                assert rejection.details["reason"] == "memory"
                assert rejection.details["retry_after"] > 0
                report = db.stats()
                assert report["memory"]["budget_bytes"] == 16_384
                assert report["shed"]["memory"] >= 1
                # memory pressure is shedding, not degradation
                assert db.ping()["degraded"] is False
                # the watchdog evicts clean objects; writes come back
                deadline = time.monotonic() + 10
                while True:
                    try:
                        db.request("set", root="after-shed", value=1)
                        break
                    except BusyError:
                        assert time.monotonic() < deadline, "never recovered"
                        time.sleep(0.05)
                assert db.get("after-shed") == {"after-shed": 1}
        finally:
            instance.stop()

    def test_per_transaction_object_budget(self, tmp_path):
        instance = ReproServer(
            str(tmp_path / "txncap.tyc"), _config(mem_txn_budget_objects=2)
        )
        instance.start()
        try:
            with connect(instance.port) as db:
                db.begin("write")
                rejection = None
                for index in range(10):
                    try:
                        db.request("set", root=f"t{index}", value=index)
                    except BusyError as exc:
                        rejection = exc
                        break
                assert rejection is not None, "txn budget never enforced"
                assert rejection.details["reason"] == "memory"
                db.abort()
                # outside a transaction the per-txn cap does not apply
                db.set("free", 1)
                assert db.get("free") == {"free": 1}
        finally:
            instance.stop()


class TestOverloadShedding:
    def test_queue_aged_request_sheds_overloaded(self, tmp_path):
        instance = ReproServer(
            str(tmp_path / "load.tyc"),
            _config(workers=1, queue_size=8, queue_wait_limit=0.05),
        )
        instance.start()
        try:
            blocker = connect(instance.port)
            done = threading.Event()

            def occupy():
                try:
                    blocker.request("sleep", seconds=0.6)
                finally:
                    done.set()

            worker = threading.Thread(target=occupy)
            worker.start()
            time.sleep(0.15)  # the sleep now owns the only pool worker
            try:
                with connect(instance.port) as db:
                    # introspection fast lane: answers while the pool is full
                    started = time.monotonic()
                    assert db.ping()["pong"] is True
                    assert time.monotonic() - started < 1.0
                    # a pooled request ages past queue_wait_limit and sheds
                    with pytest.raises(OverloadedError) as err:
                        db.request("roots")
                    assert err.value.details["queued_s"] > 0.05
                    assert err.value.details["retry_after"] > 0
                    assert db.stats()["shed"]["overloaded"] >= 1
            finally:
                done.wait(timeout=10)
                worker.join(timeout=10)
                blocker.close()
        finally:
            instance.stop()


class TestClusterFailover:
    def test_discover_prefers_healthy_over_degraded(self, tmp_path):
        degraded = ReproServer(
            str(tmp_path / "a.tyc"), _config(read_only=True)
        )
        healthy = ReproServer(str(tmp_path / "b.tyc"), _config())
        degraded.start()
        healthy.start()
        cluster = ClusterClient(
            [("127.0.0.1", degraded.port), ("127.0.0.1", healthy.port)],
            retry=RetryPolicy(base_delay=0.05, max_attempts=4),
        )
        try:
            cluster.discover()
            assert cluster._primary == ("127.0.0.1", healthy.port)
            assert cluster.set("k", 1)["root"] == "k"
            assert cluster.get("k") == {"k": 1}
        finally:
            cluster.close()
            degraded.stop()
            healthy.stop()

    def test_write_fails_over_when_primary_degrades(self, tmp_path):
        first = ReproServer(str(tmp_path / "a.tyc"), _config())
        second = ReproServer(str(tmp_path / "b.tyc"), _config())
        first.start()
        second.start()
        servers = {
            ("127.0.0.1", first.port): first,
            ("127.0.0.1", second.port): second,
        }
        cluster = ClusterClient(
            list(servers),
            retry=RetryPolicy(base_delay=0.05, max_attempts=4),
        )
        try:
            cluster.discover()
            elected = cluster._primary
            assert elected is not None
            servers[elected].enter_degraded("disk gone")
            # the write must reroute: read_only is never retried against
            # the same endpoint — rediscovery elects the healthy server
            assert cluster.set("k", 2)["root"] == "k"
            assert cluster._primary != elected
        finally:
            cluster.close()
            first.stop()
            second.stop()

    def test_fully_degraded_cluster_still_elects_for_reads(self, tmp_path):
        only = ReproServer(str(tmp_path / "solo.tyc"), _config())
        only.start()
        with connect(only.port) as db:
            db.set("k", 7)
        only.enter_degraded("disk gone")
        cluster = ClusterClient(
            [("127.0.0.1", only.port)],
            retry=RetryPolicy(base_delay=0.05, max_attempts=2),
        )
        try:
            cluster.discover()
            # no healthy primary anywhere: the degraded one is elected so
            # reads keep working; writes still fail typed
            assert cluster._primary == ("127.0.0.1", only.port)
            assert cluster.get("k") == {"k": 7}
            with pytest.raises(ReadOnlyError):
                cluster.set("k", 8)
        finally:
            cluster.close()
            only.stop()


class TestTopDashboard:
    def test_render_surfaces_degraded_memory_and_shed(self, server):
        from repro.server.top import render

        server.enter_degraded("disk full on /data")
        with connect(server.port) as db:
            frame = render(db.stats())
            assert "DEGRADED read-only: disk full on /data" in frame
            server.exit_degraded()
            frame = render(db.stats())
        assert "health   ok" in frame
        assert "recoveries=1" in frame
        assert "memory   " in frame
        assert "shed     " in frame


class TestReplicationDegradedPush:
    def test_follower_surfaces_primary_degraded(self, tmp_path):
        primary = ReproServer(
            str(tmp_path / "p.tyc"),
            _config(replicate=True, node_id="p"),
        )
        primary.start()
        replica = ReproServer(
            str(tmp_path / "r.tyc"),
            _config(replica_of=("127.0.0.1", primary.port), node_id="r"),
        )
        replica.start()
        try:
            with connect(primary.port) as db:
                db.set("seed", 1)
            wait_until(
                lambda: replica.follower is not None
                and replica.follower.version >= 1,
                message="replica never caught up",
            )
            primary.enter_degraded("primary disk failed")
            wait_until(
                lambda: replica.follower.primary_degraded,
                message="degraded push never reached the follower",
            )
            status = replica.follower.status()
            assert status["primary_degraded"] is True
            assert status["primary_degraded_reason"] == "primary disk failed"
            # recovery: the next shipped record clears the flag
            primary.exit_degraded()
            with connect(primary.port) as db:
                db.set("seed", 2)
            wait_until(
                lambda: not replica.follower.primary_degraded,
                message="follower never cleared primary_degraded",
            )
        finally:
            replica.stop()
            primary.stop()


class TestTwopcDegradedParticipant:
    def test_prepare_on_degraded_shard_aborts_cleanly(self, tmp_path):
        shards, groups = [], []
        for sid in range(2):
            shard = ReproServer(
                str(tmp_path / f"shard{sid}.tyc"),
                _config(replicate=True, node_id=f"shard{sid}"),
            )
            shard.start()
            shards.append(shard)
            groups.append([("127.0.0.1", shard.port)])
        coordinator = ReproServer(
            str(tmp_path / "coordinator.tyc"),
            _config(
                coordinator=True, shards=groups, node_id="coordinator",
                resolver_interval=0.2,
            ),
        )
        coordinator.start()
        try:
            with connect(coordinator.port) as db:
                wait_until(
                    lambda: db.topology()["recovered"],
                    message="coordinator recovery",
                )
                from repro.server.sharding.ring import ShardTopology
                topology = ShardTopology.from_dict(db.topology()["topology"])
                on0 = next(
                    f"k{i}" for i in range(1000)
                    if topology.shard_for(f"k{i}") == 0
                )
                on1 = next(
                    f"k{i}" for i in range(1000)
                    if topology.shard_for(f"k{i}") == 1
                )
                shards[1].enter_degraded("participant disk failed")
                with pytest.raises(TwopcAbortedError) as err:
                    db.mset({on0: "a", on1: "b"})
                assert err.value.details["shard"] == 1
                # nothing half-applied on the healthy shard
                with connect(shards[0].port) as s0:
                    assert on0 not in s0.roots()
                shards[1].exit_degraded()
                db.mset({on0: "a", on1: "b"})
                assert db.get(on0, on1) == {on0: "a", on1: "b"}
        finally:
            coordinator.stop()
            for shard in shards:
                shard.stop()
