"""End-to-end sharding tests: ring routing over the wire, cross-shard
mset through the coordinator, scatter-gather vs a single-node oracle,
and the ring-aware ClusterClient.

Everything runs in-process on loopback sockets (like test_server.py and
test_replication.py); shard groups are single-daemon primaries here —
group-internal replication and failover are covered by
test_replication.py and the sharding chaos sweep.
"""

import hashlib
import json
import random
import time

import pytest

from repro.server import ReproServer, ServerConfig, connect
from repro.server.client import (
    ClusterClient,
    RetryPolicy,
    ServerError,
    WrongShardError,
)
from repro.server.protocol import to_jsonable
from repro.server.sharding.ring import TOPOLOGY_ROOT, ShardTopology

SUM_MODULE = """
module shardsum export fold
let fold(v: Array(Int)): Int =
  var s := 0 in var i := 0 in
  begin while i < size(v) do begin s := s + v[i]; i := i + 1 end end; s end
end"""


def _config(**overrides):
    defaults = dict(
        workers=2, queue_size=32, lock_timeout=10.0, pgo_interval=None
    )
    defaults.update(overrides)
    return ServerConfig(**defaults)


class Deployment:
    def __init__(self, tmp_path, shards=2):
        self.shards = []
        groups = []
        for sid in range(shards):
            server = ReproServer(
                str(tmp_path / f"shard{sid}.tyc"),
                _config(replicate=True, node_id=f"shard{sid}"),
            )
            server.start()
            self.shards.append(server)
            groups.append([("127.0.0.1", server.port)])
        self.coordinator = ReproServer(
            str(tmp_path / "coordinator.tyc"),
            _config(
                coordinator=True, shards=groups, node_id="coordinator",
                resolver_interval=0.2,
            ),
        )
        self.coordinator.start()
        deadline = time.monotonic() + 20
        with connect(self.coordinator.port) as db:
            while not db.topology()["recovered"]:
                assert time.monotonic() < deadline, "coordinator never recovered"
                time.sleep(0.05)

    def stop(self):
        for server in (self.coordinator, *self.shards):
            try:
                server.stop()
            except Exception:
                pass


@pytest.fixture
def deployment(tmp_path):
    dep = Deployment(tmp_path)
    yield dep
    dep.stop()


class TestRouting:
    def test_set_routes_and_reports_shard(self, deployment):
        with connect(deployment.coordinator.port) as db:
            topology = ShardTopology.from_dict(db.topology()["topology"])
            for name in ("alpha", "bravo", "charlie"):
                result = db.set(name, {"n": name})
                assert result["shard"] == topology.shard_for(name)
            got = db.get("alpha", "bravo", "charlie")
            assert got == {n: {"n": n} for n in ("alpha", "bravo", "charlie")}

    def test_wrong_shard_rejection_carries_hint(self, deployment):
        with connect(deployment.coordinator.port) as db:
            topology = ShardTopology.from_dict(db.topology()["topology"])
        # find a root owned by shard 1, offer it to shard 0 directly
        name = next(
            f"k{i}" for i in range(1000) if topology.shard_for(f"k{i}") == 1
        )
        with connect(deployment.shards[0].port) as db:
            with pytest.raises(WrongShardError) as info:
                db.set(name, 1)
        assert info.value.details["shard"] == 1
        endpoints = info.value.details["endpoints"]
        assert endpoints[0]["port"] == deployment.shards[1].port

    def test_system_roots_stay_local(self, deployment):
        # a namespaced root is owned by whichever daemon it is written to
        for server in deployment.shards:
            with connect(server.port) as db:
                db.set("server:note", "local")
                assert db.get("server:note") == {"server:note": "local"}

    def test_mixed_get_rejected(self, deployment):
        with connect(deployment.coordinator.port) as db:
            db.set("plain", 1)
            with pytest.raises(ServerError) as info:
                db.get("plain", "server:note")
        assert info.value.code == "bad_request"

    def test_ping_reports_shard_position(self, deployment):
        for sid, server in enumerate(deployment.shards):
            with connect(server.port) as db:
                info = db.ping()["shard"]
            assert info["shard"] == sid
            assert info["shards"] == 2
            assert 0 < info["share"] < 1
        with connect(deployment.coordinator.port) as db:
            assert db.ping()["coordinator"] is True

    def test_topology_persists_across_shard_restart(self, deployment, tmp_path):
        server = deployment.shards[0]
        port = server.port
        server.stop()
        reborn = ReproServer(
            str(tmp_path / "shard0.tyc"),
            _config(replicate=True, node_id="shard0", port=port),
        )
        reborn.start()
        deployment.shards[0] = reborn
        with connect(reborn.port) as db:
            values = db.get(TOPOLOGY_ROOT)
            topology = ShardTopology.from_dict(
                json.loads(values[TOPOLOGY_ROOT])
            )
            assert len(topology.shards) == 2
            # ownership is enforced again without any re-adoption
            info = db.ping()["shard"]
            assert info["shard"] == 0


class TestCrossShardMset:
    def test_cross_shard_mset_commits_everywhere(self, deployment):
        with connect(deployment.coordinator.port) as db:
            topology = ShardTopology.from_dict(db.topology()["topology"])
            writes = {f"m{i}": i * 7 for i in range(12)}
            owners = {topology.shard_for(name) for name in writes}
            assert owners == {0, 1}, "want a genuinely cross-shard batch"
            result = db.mset(writes)
            assert result["committed"] is True
            assert result["participants"] == [0, 1]
            assert db.get(*writes.keys()) == writes
        # applied on the owning shards, visible in direct reads too
        for sid, server in enumerate(deployment.shards):
            mine = [n for n in writes if topology.shard_for(n) == sid]
            with connect(server.port) as db:
                assert db.get(*mine) == {n: writes[n] for n in mine}

    def test_single_shard_mset_fast_path(self, deployment):
        with connect(deployment.coordinator.port) as db:
            topology = ShardTopology.from_dict(db.topology()["topology"])
            names = [
                f"s{i}" for i in range(200)
                if topology.shard_for(f"s{i}") == 0
            ][:5]
            result = db.mset({n: 1 for n in names})
            assert result["committed"] is True
            assert result["txn"] is None  # no 2PC needed
            assert list(result["shards"].keys()) == ["0"]

    def test_no_staging_left_behind(self, deployment):
        with connect(deployment.coordinator.port) as db:
            db.mset({f"q{i}": i for i in range(8)})
        for server in deployment.shards:
            with connect(server.port) as db:
                staged = [
                    r for r in db.roots() if r.startswith("__2pc__:")
                ]
                assert staged == []
        with connect(deployment.coordinator.port) as db:
            assert [r for r in db.roots() if r.startswith("2pc:")] == []

    def test_stats_report_coordinator_and_shards(self, deployment):
        with connect(deployment.coordinator.port) as db:
            db.mset({f"t{i}": i for i in range(6)})
            stats = db.stats()
        assert stats["coordinator"]["recovered"] is True
        assert stats["coordinator"]["indoubt_decisions"] == 0
        assert set(stats["shards"].keys()) == {"0", "1"}
        for row in stats["shards"].values():
            assert row["role"] == "primary"
            assert row["indoubt"] == 0


class TestScatterGather:
    SEED = {f"v{i}": (i, f"name{i}", i % 2 == 0) for i in range(40)}

    def _digest(self, values: dict) -> str:
        payload = json.dumps(
            sorted((k, to_jsonable(v)) for k, v in values.items()),
            sort_keys=True, separators=(",", ":"),
        )
        return hashlib.sha256(payload.encode()).hexdigest()

    def test_scatter_matches_single_node_oracle(self, deployment, tmp_path):
        # the same keyspace in one unsharded image is the oracle
        oracle = ReproServer(str(tmp_path / "oracle.tyc"), _config())
        oracle.start()
        try:
            with connect(oracle.port) as db:
                db.mset(self.SEED)
                oracle_values = {
                    k: v for k, v in db.query(prefix="v")["values"].items()
                }
            with connect(deployment.coordinator.port) as db:
                db.mset(self.SEED)
                scattered = db.scatter(prefix="v")
            assert scattered["count"] == len(self.SEED)
            assert self._digest(scattered["values"]) == self._digest(
                oracle_values
            )
        finally:
            oracle.stop()

    def test_scatter_sum_matches_oracle_fold(self, deployment, tmp_path):
        seed = {f"n{i}": i * 3 for i in range(30)}
        oracle = ReproServer(str(tmp_path / "oracle.tyc"), _config())
        oracle.start()
        try:
            with connect(oracle.port) as db:
                db.run(SUM_MODULE)
                db.mset(seed)
                want = db.query(
                    prefix="n", module="shardsum", function="fold"
                )["value"]
            with connect(deployment.coordinator.port) as db:
                db.run(SUM_MODULE)  # broadcast to every shard
                db.mset(seed)
                result = db.scatter(
                    prefix="n", module="shardsum", function="fold",
                    merge="sum",
                )
            assert result["value"] == want == sum(seed.values())
        finally:
            oracle.stop()

    def test_scatter_concat_partials_per_shard(self, deployment):
        seed = {f"p{i}": i for i in range(10)}
        with connect(deployment.coordinator.port) as db:
            db.run(SUM_MODULE)
            db.mset(seed)
            result = db.scatter(
                prefix="p", module="shardsum", function="fold"
            )
        partials = {p["shard"]: p["value"] for p in result["partials"]}
        assert set(partials) == {0, 1}
        assert sum(partials.values()) == sum(seed.values())

    def test_scatter_rejects_unknown_merge(self, deployment):
        with connect(deployment.coordinator.port) as db:
            with pytest.raises(ServerError) as info:
                db.scatter(prefix="v", merge="median")
        assert info.value.code == "bad_request"


class TestRingAwareClient:
    def test_client_routes_after_discovery(self, deployment):
        client = ClusterClient(
            [("127.0.0.1", deployment.coordinator.port)],
            retry=RetryPolicy(max_attempts=3),
        )
        try:
            assert client.discover_topology() is not None
            assert client.topology is not None
            client.set("direct", 5)
            assert client.get("direct") == {"direct": 5}
            writes = {f"c{i}": i for i in range(8)}
            result = client.mset(writes)
            assert result.get("committed", True)
            assert client.get(*writes.keys()) == writes
            # child routers were built for the shards actually used
            assert set(client._shard_routers) <= {0, 1}
            assert len(client._shard_routers) >= 1
        finally:
            client.close()

    def test_client_follows_wrong_shard_hint(self, deployment):
        # seed the client with ONLY shard 0 and a stale single-shard ring:
        # writes owned by shard 1 bounce with a hint it must follow
        stale = ShardTopology.build(
            [[("127.0.0.1", deployment.shards[0].port)]]
        )
        with connect(deployment.coordinator.port) as db:
            real = ShardTopology.from_dict(db.topology()["topology"])
        name = next(
            f"h{i}" for i in range(1000) if real.shard_for(f"h{i}") == 1
        )
        client = ClusterClient(
            [("127.0.0.1", deployment.shards[0].port)],
            retry=RetryPolicy(max_attempts=3),
            topology=stale,
        )
        try:
            client.set(name, 77)
            # the hint also taught the client the fresher ring
            assert client.topology.epoch >= real.epoch
            assert 1 in client._shard_routers
            assert client.get(name) == {name: 77}
        finally:
            client.close()

    def test_seeded_retry_rng_is_reused(self):
        """Rediscovery/trace sampling reuse the injected RetryPolicy RNG,
        so chaos-sim runs replay identically under one seed."""
        rng = random.Random(1234)
        retry = RetryPolicy(rng=rng)
        client = ClusterClient([("127.0.0.1", 1)], retry=retry)
        assert client._trace_rng is rng
        # and without an injected RNG each client gets a private one
        other = ClusterClient([("127.0.0.1", 1)])
        assert other._trace_rng is not random
        assert other._trace_rng is not client._trace_rng
