"""Unit tests for the consistent-hash ring and topology (no sockets)."""

import json

import pytest

from repro.server.sharding.ring import (
    DEFAULT_VNODES,
    HashRing,
    RingError,
    ShardTopology,
    is_system_root,
    ring_hash,
)


class TestHashRing:
    def test_deterministic_placement(self):
        a = HashRing([0, 1, 2])
        b = HashRing([0, 1, 2])
        for i in range(200):
            name = f"root{i}"
            assert a.shard_for(name) == b.shard_for(name)

    def test_placement_covers_all_shards(self):
        ring = HashRing([0, 1, 2, 3])
        owners = {ring.shard_for(f"root{i}") for i in range(500)}
        assert owners == {0, 1, 2, 3}

    def test_minimal_movement_on_grow(self):
        """Adding a shard moves roughly 1/(N+1) of the keyspace, not all."""
        before = HashRing([0, 1])
        after = HashRing([0, 1, 2])
        names = [f"root{i}" for i in range(1000)]
        moved = sum(
            1 for n in names if before.shard_for(n) != after.shard_for(n)
        )
        # every moved key must have moved TO the new shard
        for n in names:
            if before.shard_for(n) != after.shard_for(n):
                assert after.shard_for(n) == 2
        assert 150 < moved < 550  # ~1/3 expected; generous bounds

    def test_shares_roughly_equal(self):
        ring = HashRing([0, 1, 2, 3])
        for sid in (0, 1, 2, 3):
            assert 0.1 < ring.share(sid) < 0.45
        assert sum(ring.share(s) for s in (0, 1, 2, 3)) == pytest.approx(1.0)

    def test_owned_ranges_partition_the_ring(self):
        ring = HashRing([0, 1], vnodes=8)
        arcs = sorted(
            arc for sid in (0, 1) for arc in ring.owned_ranges(sid)
        )
        # contiguous, non-overlapping, full coverage of [0, 2^64)
        assert arcs[0][0] == 0
        for (s1, e1), (s2, e2) in zip(arcs, arcs[1:]):
            assert s2 == e1 + 1
        assert arcs[-1][1] == (1 << 64) - 1

    def test_ownership_matches_ranges(self):
        ring = HashRing([0, 1, 2], vnodes=16)
        for i in range(100):
            name = f"k{i}"
            sid = ring.shard_for(name)
            point = ring_hash(name)
            assert any(
                start <= point <= end
                for start, end in ring.owned_ranges(sid)
            )

    def test_rejects_bad_input(self):
        with pytest.raises(RingError):
            HashRing([])
        with pytest.raises(RingError):
            HashRing([0, 0])
        with pytest.raises(RingError):
            HashRing([0], vnodes=0)


class TestSystemRoots:
    def test_dunder_and_namespaced_are_system(self):
        for name in (
            "__replication__", "__topology__", "__2pc__:t1",
            "module:bench", "server:history", "2pc:t1", "analysis:facts",
        ):
            assert is_system_root(name)

    def test_user_roots_are_not(self):
        for name in ("x", "counter", "w12", "alpha_beta"):
            assert not is_system_root(name)


class TestShardTopology:
    def _topology(self):
        return ShardTopology.build(
            [
                [("127.0.0.1", 7001), ("127.0.0.1", 7002)],
                [("127.0.0.1", 7003)],
            ]
        )

    def test_wire_roundtrip(self):
        topology = self._topology()
        wire = topology.as_dict()
        # wire form is JSON-clean (it is persisted as canonical text)
        reloaded = ShardTopology.from_dict(json.loads(json.dumps(wire)))
        assert reloaded == topology
        assert reloaded.shard_for("x") == topology.shard_for("x")

    def test_endpoints_and_ids(self):
        topology = self._topology()
        assert topology.shard_ids() == [0, 1]
        assert topology.endpoints(0) == [("127.0.0.1", 7001), ("127.0.0.1", 7002)]
        with pytest.raises(RingError):
            topology.endpoints(7)

    def test_system_roots_refuse_placement(self):
        topology = self._topology()
        with pytest.raises(RingError):
            topology.shard_for("__topology__")
        with pytest.raises(RingError):
            topology.shard_for("module:bench")

    def test_describe_shard(self):
        info = self._topology().describe_shard(0)
        assert info["shard"] == 0
        assert info["shards"] == 2
        assert info["vnodes"] == DEFAULT_VNODES
        assert 0 < info["share"] < 1
        assert len(info["widest_range"]) == 2
        int(info["widest_range"][0], 16)  # hex endpoints

    def test_malformed_wire_raises(self):
        with pytest.raises(RingError):
            ShardTopology.from_dict({"shards": "nope"})
        with pytest.raises(RingError):
            ShardTopology.from_dict([])
        with pytest.raises(RingError):
            ShardTopology.build([])
