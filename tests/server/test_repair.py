"""Integrity scrub and anti-entropy repair: bucket digests, the scrub
walker, the v6 ``repl.digest``/``repl.fetch`` wire ops, and the full
rot → scrub → degraded → repair → clean cycle on a live replica.

In-process daemons on loopback sockets (as in test_replication.py); bit
rot is injected by flipping a byte inside a committed page of a cold
replica image — the class of fault replication alone cannot catch.
"""

import os
import time

import pytest

from repro.server import ReproServer, ServerConfig, connect
from repro.server.client import ServerError
from repro.server.repair import (
    OID_BUCKET_BITS,
    bucket_digests,
    bucket_of,
    diff_buckets,
    digest_root,
    scrub_heap,
)


def _config(**overrides):
    defaults = dict(
        workers=2, queue_size=32, lock_timeout=10.0, pgo_interval=None,
        history_interval=None, profile=False,
    )
    defaults.update(overrides)
    return ServerConfig(**defaults)


def make_primary(tmp_path, **overrides):
    server = ReproServer(
        str(tmp_path / "primary.tyc"),
        _config(replicate=True, node_id="p1", **overrides),
    )
    server.start()
    return server


def make_replica(tmp_path, upstream, **overrides):
    server = ReproServer(
        str(tmp_path / "replica.tyc"),
        _config(
            replica_of=("127.0.0.1", upstream.port), node_id="r1", **overrides
        ),
    )
    server.start()
    return server


def wait_until(predicate, timeout=15.0, interval=0.02, message="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(interval)
    raise AssertionError(f"timed out waiting for {message}")


def wait_caught_up(primary, replica, timeout=15.0):
    wait_until(
        lambda: replica.repl_version() >= primary.repl_version(),
        timeout=timeout,
        message="replica catch-up",
    )


def flip_committed_page(server, image_path):
    """Flip one byte inside the page of the highest committed OID."""
    heap = server.heap
    oid = sorted(heap.committed_oids())[-1]
    head, length = heap._table[oid]
    page = heap._pager.chain_pages(head, length)[0]
    offset = page * heap._pager.header.page_size + 16
    with open(image_path, "r+b") as f:
        f.seek(offset)
        byte = f.read(1)
        f.seek(offset)
        f.write(bytes([byte[0] ^ 0xFF]))
    return oid


# ------------------------------------------------------------------ digests


class TestBucketDigests:
    def test_bucket_of_shifts(self):
        assert bucket_of(0) == 0
        assert bucket_of((1 << OID_BUCKET_BITS) - 1) == 0
        assert bucket_of(1 << OID_BUCKET_BITS) == 1

    def test_diff_buckets_handles_json_string_keys(self):
        local = {0: "aa", 1: "bb", 2: "cc"}
        remote = {"0": "aa", "1": "XX", "3": "dd"}
        assert diff_buckets(local, remote) == [1, 2, 3]
        assert diff_buckets(local, {str(k): v for k, v in local.items()}) == []

    def test_identical_images_agree(self, tmp_path):
        primary = make_primary(tmp_path)
        replica = make_replica(tmp_path, primary)
        try:
            with connect(primary.port) as db:
                for i in range(70):
                    db.set(f"k{i}", i)
            wait_caught_up(primary, replica)
            with primary.txns.read():
                local = bucket_digests(primary.heap)
            with replica.txns.read():
                remote = bucket_digests(replica.heap)
            assert digest_root(local) == digest_root(remote)
            assert diff_buckets(local, remote) == []
            assert len(local) > 1  # enough oids to span buckets
        finally:
            replica.stop()
            primary.stop()


# -------------------------------------------------------------------- scrub


class TestScrub:
    def test_clean_image_scrubs_clean(self, tmp_path):
        server = make_primary(tmp_path)
        try:
            with connect(server.port) as db:
                for i in range(10):
                    db.set(f"k{i}", i)
            report = scrub_heap(server.heap, server.txns)
            assert report.clean
            assert report.oids_checked == len(server.heap.committed_oids())
            assert report.pages_read >= report.oids_checked
        finally:
            server.stop()

    def test_scrub_detects_flipped_page(self, tmp_path):
        server = make_primary(tmp_path)
        try:
            with connect(server.port) as db:
                for i in range(10):
                    db.set(f"k{i}", i)
            rotted = flip_committed_page(server, server.image_path)
            report = scrub_heap(server.heap, server.txns)
            assert not report.clean
            assert rotted in report.corrupt_oids
        finally:
            server.stop()

    def test_scrub_cycle_enters_degraded_without_upstream(self, tmp_path):
        # a primary has nobody to repair from: scrub must still fence
        # writes by flipping degraded read-only mode
        server = make_primary(tmp_path)
        try:
            with connect(server.port) as db:
                for i in range(10):
                    db.set(f"k{i}", i)
            flip_committed_page(server, server.image_path)
            server.run_scrub_cycle()
            assert server.degraded_info()["active"]
            assert "scrub" in server.degraded_info()["reason"]
            assert server.scrub_info()["corrupt_total"] >= 1
        finally:
            server.stop()


# ----------------------------------------------------------------- wire ops


class TestWireOps:
    def test_repl_digest_and_fetch(self, tmp_path):
        server = make_primary(tmp_path)
        try:
            with connect(server.port) as db:
                for i in range(5):
                    db.set(f"k{i}", i)
                digest = db.request("repl.digest")
                assert digest["version"] == server.repl_version()
                assert digest["bucket_bits"] == OID_BUCKET_BITS
                assert digest["oids"] == len(server.heap.committed_oids())
                assert set(digest["buckets"]) == {
                    str(bucket_of(oid)) for oid in server.heap.committed_oids()
                }
                with server.txns.read():
                    local = bucket_digests(server.heap)
                assert digest["root"] == digest_root(local)

                fetched = db.request(
                    "repl.fetch", buckets=[int(b) for b in digest["buckets"]]
                )
                assert fetched["count"] == digest["oids"]
                oids = {oid for oid, _ in fetched["objects"]}
                assert oids == set(server.heap.committed_oids())
                for oid, payload_hex in fetched["objects"]:
                    assert (
                        bytes.fromhex(payload_hex)
                        == server.heap.committed_payload(oid)
                    )
        finally:
            server.stop()

    def test_repl_fetch_rejects_bad_operands(self, tmp_path):
        server = make_primary(tmp_path)
        try:
            with connect(server.port) as db:
                db.set("k", 1)
                for bad in ({"buckets": "0"}, {"buckets": [-1]}, {}):
                    with pytest.raises(ServerError):
                        db.request("repl.fetch", **bad)
        finally:
            server.stop()


# ------------------------------------------------------------------- repair


class TestAntiEntropyRepair:
    def test_rot_scrub_repair_cycle(self, tmp_path):
        primary = make_primary(tmp_path)
        replica = make_replica(tmp_path, primary)
        try:
            with connect(primary.port) as db:
                for i in range(70):
                    db.set(f"k{i}", {"i": i})
            wait_caught_up(primary, replica)
            total = len(replica.heap.committed_oids())
            flip_committed_page(replica, replica.image_path)

            final = replica.run_scrub_cycle()
            info = replica.scrub_info()
            assert info["corrupt_total"] >= 1
            repair = info["last_repair"]
            assert repair["converged"]
            # anti-entropy means fetching diverged buckets, not everything
            assert 0 < repair["objects_applied"] < total
            assert final["clean"]
            assert not replica.degraded_info()["active"]

            with connect(primary.port) as db:
                primary_root = db.request("repl.digest")["root"]
            with connect(replica.port) as db:
                replica_root = db.request("repl.digest")["root"]
            assert primary_root == replica_root
            # and the replica still follows new commits after repair
            with connect(primary.port) as db:
                db.set("after-repair", 1)
            wait_caught_up(primary, replica)
        finally:
            replica.stop()
            primary.stop()

    def test_scrub_daemon_thread_runs(self, tmp_path):
        server = make_primary(tmp_path, scrub_interval=0.05)
        try:
            with connect(server.port) as db:
                db.set("k", 1)
            wait_until(
                lambda: server.scrub_info()["cycles"] >= 2,
                message="background scrub cycles",
            )
            assert server.scrub_info()["last"]["clean"]
        finally:
            server.stop()
