"""Tests for the PTML-hash-keyed compiled-code cache (repro.server.codecache)."""

from repro.lang import TycoonSystem
from repro.server.codecache import CACHE_ROOT, CodeCache
from repro.store.heap import ObjectHeap

PROGRAM = """
module demo export double halve
let double(x: Int): Int = x + x
let halve(x: Int): Int = x / 2
end"""


def _stored_system(path):
    heap = ObjectHeap(path)
    system = TycoonSystem(heap=heap)
    system.compile(PROGRAM)
    system.persist("demo")
    heap.commit()
    return system, heap


def test_key_is_ptml_content_hash(tmp_path):
    system, heap = _stored_system(str(tmp_path / "a.tyc"))
    closure = system.closure("demo", "double")
    key = CodeCache.key_of(closure.code, heap)
    assert key is not None and len(key) == 64  # sha256 hex
    # deterministic: same code, same key
    assert CodeCache.key_of(closure.code, heap) == key
    # a different function has a different PTML, hence a different key
    other = CodeCache.key_of(system.closure("demo", "halve").code, heap)
    assert other != key
    heap.close()


def test_key_of_code_without_ptml_is_none():
    class Bare:
        ptml_ref = None

    assert CodeCache.key_of(Bare()) is None


def test_install_lookup_invalidate(tmp_path):
    system, heap = _stored_system(str(tmp_path / "b.tyc"))
    cache = CodeCache()
    closure = system.closure("demo", "double")
    key = CodeCache.key_of(closure.code, heap)
    assert cache.lookup(key) is None  # miss
    cache.install(key, closure)
    assert cache.lookup(key) is closure  # hit
    assert len(cache) == 1
    assert cache.invalidate(key)
    assert cache.lookup(key) is None
    assert not cache.invalidate(key)  # second drop is a no-op
    heap.close()


def test_flush_and_attach_roundtrip(tmp_path):
    path = str(tmp_path / "c.tyc")
    system, heap = _stored_system(path)
    cache = CodeCache()
    closure = system.closure("demo", "double")
    key = CodeCache.key_of(closure.code, heap)
    cache.install(key, closure)
    cache.flush(heap)
    heap.commit()
    heap.close()

    # a fresh process: the code half is warm, closures rebuild lazily
    reopened = ObjectHeap(path)
    warm = CodeCache()
    assert warm.attach(reopened) == 1
    assert warm.lookup(key) is None  # closure tier is process-local
    assert warm.stats()["persisted_codes"] == 1
    assert reopened.root(CACHE_ROOT) is not None
    reopened.close()


def test_flush_without_changes_is_noop(tmp_path):
    path = str(tmp_path / "d.tyc")
    system, heap = _stored_system(path)
    cache = CodeCache()
    cache.flush(heap)  # nothing installed, nothing dirty
    assert heap.root(CACHE_ROOT) is None
    heap.close()


def test_attach_on_empty_image_is_zero(tmp_path):
    heap = ObjectHeap(str(tmp_path / "e.tyc"))
    assert CodeCache().attach(heap) == 0
    heap.close()
