"""Server integration of the analysis-fact cache (daemon + PGO + audit)."""

import pytest

from repro.analysis.audit import audit_heap
from repro.server import ReproServer, ServerConfig, connect

BENCH = """
module bench export work idle
let idle(x: Int): Int = x
let work(n: Int): Int =
  var s := 0 in var i := 0 in
  begin while i < n do begin s := s + i; i := i + 1 end end; s end
end"""

BENCH_V2 = """
module bench export work idle
let idle(x: Int): Int = x + 0
let work(n: Int): Int =
  var s := 0 in var i := 0 in
  begin while i < n do begin s := s + i; i := i + 1 end end; s end
end"""


def _config():
    return ServerConfig(workers=2, lock_timeout=30.0, pgo_interval=None)


def test_stats_reports_the_fact_store(tmp_path):
    server = ReproServer(str(tmp_path / "img.tyc"), _config())
    server.start()
    try:
        with connect(server.port) as db:
            stats = db.stats()
            assert "facts" in stats
            assert set(stats["facts"]) >= {"entries", "hits", "invalidations"}
    finally:
        server.stop()


def test_facts_persist_across_daemon_restart(tmp_path):
    """Acceptance: a warm restart reuses the audited facts from the image."""
    path = str(tmp_path / "img.tyc")
    server = ReproServer(path, _config())
    server.start()
    try:
        with connect(server.port) as db:
            db.run(BENCH)
        # audit through the live daemon's heap: facts land in its store
        with server.txns.write():
            report = audit_heap(server.heap, facts=server.fact_store)
        assert report.ok and report.analyzed > 0
        entries = server.fact_store.stats()["entries"]
        assert entries > 0
    finally:
        server.stop()  # flushes the fact store into the image

    reborn = ReproServer(path, _config())
    reborn.start()
    try:
        assert reborn.fact_store.stats()["entries"] >= entries
        # warm audit over the reborn daemon re-verifies nothing
        with reborn.txns.write():
            warm = audit_heap(reborn.heap, facts=reborn.fact_store)
        assert warm.analyzed == 0
        assert warm.reused == warm.functions
    finally:
        reborn.stop()


def test_redefinition_invalidates_the_functions_fact(tmp_path):
    path = str(tmp_path / "img.tyc")
    server = ReproServer(path, _config())
    server.start()
    try:
        with connect(server.port) as db:
            db.run(BENCH)
            db.call("bench", "idle", [1])  # resolve: daemon learns the key
        with server.txns.write():
            audit_heap(server.heap, facts=server.fact_store)
        invalidations = server.fact_store.stats()["invalidations"]
        with connect(server.port) as db:
            db.run(BENCH_V2)  # redefines bench.idle
        assert server.fact_store.stats()["invalidations"] > invalidations
        # the next audit recomputes only the dirty slice
        with server.txns.write():
            report = audit_heap(server.heap, facts=server.fact_store)
        assert report.ok
        assert report.analyzed >= 1  # bench.idle (at least) recomputed
        assert report.reused == report.functions - report.analyzed
        assert "bench.idle" in report.summaries
    finally:
        server.stop()


def test_pgo_round_flushes_and_invalidates_facts(tmp_path):
    path = str(tmp_path / "img.tyc")
    server = ReproServer(path, _config())
    server.start()
    try:
        with connect(server.port) as db:
            db.run(BENCH)
        with server.txns.write():
            audit_heap(server.heap, facts=server.fact_store)
        with connect(server.port) as db:
            for _ in range(3):
                db.call("bench", "work", [300])
            report = db.pgo(top=1)
            assert report["optimized"]
        # the rewritten function's old fact is gone from the store
        stats = server.fact_store.stats()
        assert stats["invalidations"] >= 1
    finally:
        server.stop()
