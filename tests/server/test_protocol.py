"""Tests for framing and wire value conversion (repro.server.protocol)."""

import socket
import threading

import pytest

from repro.core.syntax import Char, Oid, UNIT
from repro.machine.runtime import TmlArray, TmlByteArray, TmlVector
from repro.server.protocol import (
    ProtocolError,
    from_jsonable,
    recv_frame,
    send_frame,
    to_jsonable,
)


@pytest.fixture
def pair():
    a, b = socket.socketpair()
    yield a, b
    a.close()
    b.close()


class TestFraming:
    def test_roundtrip(self, pair):
        a, b = pair
        send_frame(a, {"id": 1, "op": "ping"})
        assert recv_frame(b) == {"id": 1, "op": "ping"}

    def test_multiple_frames_in_order(self, pair):
        a, b = pair
        for i in range(5):
            send_frame(a, {"id": i})
        for i in range(5):
            assert recv_frame(b) == {"id": i}

    def test_clean_eof_returns_none(self, pair):
        a, b = pair
        a.close()
        assert recv_frame(b) is None

    def test_mid_frame_close_raises(self, pair):
        a, b = pair
        a.sendall(b"\x00\x00\x00\x10partial")  # announces 16, sends 7
        a.close()
        with pytest.raises(ProtocolError, match="mid-frame"):
            recv_frame(b)

    def test_oversized_announcement_rejected(self, pair):
        a, b = pair
        a.sendall(b"\xff\xff\xff\xff")
        with pytest.raises(ProtocolError, match="exceeds"):
            recv_frame(b, max_frame=1024)

    def test_bad_json_rejected(self, pair):
        a, b = pair
        payload = b"not json"
        a.sendall(len(payload).to_bytes(4, "big") + payload)
        with pytest.raises(ProtocolError, match="bad JSON"):
            recv_frame(b)

    def test_non_object_payload_rejected(self, pair):
        a, b = pair
        payload = b"[1,2,3]"
        a.sendall(len(payload).to_bytes(4, "big") + payload)
        with pytest.raises(ProtocolError, match="not a JSON object"):
            recv_frame(b)

    def test_large_frame_roundtrip(self, pair):
        a, b = pair
        message = {"blob": "x" * 300_000}
        received = {}
        done = threading.Event()

        def reader():
            received.update(recv_frame(b))
            done.set()

        thread = threading.Thread(target=reader)
        thread.start()
        send_frame(a, message)
        assert done.wait(10)
        thread.join(timeout=5)
        assert received == message


class TestValueConversion:
    @pytest.mark.parametrize(
        "value",
        [None, True, False, 0, -7, 2**62, "text", 3.5],
    )
    def test_scalars_pass_through(self, value):
        assert to_jsonable(value) == value
        assert from_jsonable(value) == value

    def test_char_roundtrip(self):
        wire = to_jsonable(Char("k"))
        assert wire == {"$char": "k"}
        assert from_jsonable(wire) == Char("k")

    def test_unit_roundtrip(self):
        assert from_jsonable(to_jsonable(UNIT)) is UNIT

    def test_oid_roundtrip(self):
        assert from_jsonable(to_jsonable(Oid(42))) == Oid(42)

    def test_vector_roundtrip(self):
        vector = TmlVector([1, Char("a"), TmlVector([2])])
        back = from_jsonable(to_jsonable(vector))
        assert isinstance(back, TmlVector)
        assert back.slots[0] == 1
        assert back.slots[1] == Char("a")
        assert back.slots[2].slots == (2,)

    def test_array_roundtrip(self):
        array = TmlArray([1, 2, 3])
        back = from_jsonable(to_jsonable(array))
        assert isinstance(back, TmlArray)
        assert back.slots == [1, 2, 3]

    def test_bytearray_roundtrip(self):
        data = TmlByteArray(bytearray(b"\x00\x01\xfe"))
        back = from_jsonable(to_jsonable(data))
        assert isinstance(back, TmlByteArray)
        assert bytes(back.data) == b"\x00\x01\xfe"

    def test_plain_json_list_becomes_vector(self):
        back = from_jsonable([1, 2])
        assert isinstance(back, TmlVector)
        assert back.slots == (1, 2)

    def test_unrepresentable_degrades_to_repr(self):
        wire = to_jsonable(object())
        assert "$repr" in wire
        with pytest.raises(ProtocolError):
            from_jsonable(wire)

    def test_dict_roundtrip(self):
        wire = to_jsonable({"a": 1, "b": Char("z")})
        assert from_jsonable(wire) == {"a": 1, "b": Char("z")}
