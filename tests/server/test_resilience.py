"""Daemon graceful shutdown and client self-healing (retry/reconnect).

In-process servers on real loopback sockets, as in test_server.py.  The
headline scenario: a client with a :class:`RetryPolicy` keeps working
across a daemon stop + restart on the same port — idempotent requests
transparently reconnect, mutating requests surface :class:`ConnectionLost`
instead of silently replaying.
"""

import threading
import time

import pytest

from repro.server import ReproServer, ServerConfig, connect
from repro.server.client import (
    BackpressureError,
    BusyError,
    ConnectionLost,
    RetryPolicy,
    ServerError,
    ShuttingDownError,
    connect as connect_client,
)
from repro.server.daemon import _DRAIN_ABORTS


def _config(**overrides):
    defaults = dict(
        workers=2, queue_size=16, lock_timeout=30.0, pgo_interval=None,
        enable_debug_ops=True,
    )
    defaults.update(overrides)
    return ServerConfig(**defaults)


@pytest.fixture
def server(tmp_path):
    instance = ReproServer(str(tmp_path / "resilience.tyc"), _config())
    instance.start()
    yield instance
    instance.stop()


class TestTypedErrors:
    def test_rejection_errors_are_retryable(self):
        for cls in (BusyError, BackpressureError, ShuttingDownError):
            assert cls.retryable is True
        exc = ShuttingDownError("shutting_down", "draining")
        assert exc.code == "shutting_down"

    def test_retry_policy_delay_is_bounded(self):
        policy = RetryPolicy(base_delay=0.1, max_delay=1.0, multiplier=2.0)
        delays = [policy.delay(i) for i in range(1, 10)]
        assert all(0 < d <= 1.0 for d in delays)

    def test_retry_policy_backs_off(self):
        policy = RetryPolicy(base_delay=0.1, max_delay=100.0, jitter=0.0)
        assert policy.delay(3) == pytest.approx(0.4)


class TestPing:
    def test_ping_reports_health_and_image(self, server):
        with connect(server.port) as db:
            result = db.ping()
        assert result["status"] == "ok"
        assert result["uptime_s"] >= 0
        assert result["image"]["format"] == 2
        assert result["image"]["path"].endswith("resilience.tyc")


class TestGracefulShutdown:
    def test_draining_server_refuses_with_typed_error(self, server):
        with connect(server.port) as db:
            assert db.ping()["status"] == "ok"
            server._stopping.set()  # drain begins; socket still open
            with pytest.raises(ShuttingDownError):
                db.ping()

    def test_inflight_request_drains_before_the_socket_dies(self, server):
        """stop() waits (bounded) for admitted requests to answer."""
        with connect(server.port) as db:
            result = {}

            def slow_request():
                result["value"] = db.request("sleep", seconds=0.6)

            worker = threading.Thread(target=slow_request)
            worker.start()
            time.sleep(0.2)  # request is now in flight
            server.stop()
            worker.join(timeout=10)
        assert result["value"] == {"slept": 0.6}

    def test_drain_aborts_open_transactions(self, server):
        before = _DRAIN_ABORTS.value
        db = connect(server.port)
        db.begin()
        db.set("half-done", 1)
        server.stop()
        db.close()
        assert _DRAIN_ABORTS.value == before + 1
        assert server.wait(timeout=5)

    def test_initiate_shutdown_is_nonblocking(self, server):
        started = time.monotonic()
        server.initiate_shutdown()
        assert time.monotonic() - started < 1.0
        assert server.wait(timeout=10)

    def test_stop_is_idempotent(self, server):
        server.stop()
        server.stop()  # second call returns once teardown is done
        assert server.wait(timeout=1)


class TestClientReconnect:
    def test_client_survives_daemon_restart_mid_session(self, tmp_path):
        """The ISSUE's headline: SIGTERM + restart, same port, same client."""
        image = str(tmp_path / "restart.tyc")
        first = ReproServer(image, _config())
        first.start()
        port = first.port
        db = connect_client(port, retry=RetryPolicy(base_delay=0.05))
        try:
            db.set("counter", 41)
            assert db.get("counter") == {"counter": 41}

            first.initiate_shutdown()  # what the SIGTERM handler calls
            assert first.wait(timeout=10)

            second = ReproServer(image, _config(port=port))
            second.start()
            try:
                # idempotent request: reconnects and replays transparently
                assert db.get("counter") == {"counter": 41}
                assert db.ping()["status"] == "ok"
                # the session is fully usable again, writes included
                db.set("counter", 42)
                assert db.get("counter") == {"counter": 42}
            finally:
                second.stop()
        finally:
            db.close()

    def test_mutating_request_is_not_replayed_after_disconnect(self, tmp_path):
        image = str(tmp_path / "no-replay.tyc")
        first = ReproServer(image, _config())
        first.start()
        port = first.port
        db = connect_client(port, retry=RetryPolicy(base_delay=0.05))
        try:
            db.set("x", 1)
            first.stop()
            second = ReproServer(image, _config(port=port))
            second.start()
            try:
                # the stale socket dies mid-request; set() may have executed
                # on the old daemon, so the client must NOT retry it
                with pytest.raises(ConnectionLost):
                    db.set("x", 2)
                # but the session recovers on the next idempotent request
                assert db.get("x") == {"x": 1}
            finally:
                second.stop()
        finally:
            db.close()

    def test_no_retry_without_a_policy(self, tmp_path):
        server = ReproServer(str(tmp_path / "failfast.tyc"), _config())
        server.start()
        port = server.port
        db = connect_client(port)  # retry=None: historical fail-fast
        try:
            db.ping()
            server.stop()
            with pytest.raises(ConnectionLost):
                db.ping()
        finally:
            db.close()

    def test_no_retry_inside_explicit_transaction(self, tmp_path):
        """Replaying mid-transaction would drop earlier effects; never do it."""
        server = ReproServer(str(tmp_path / "txn.tyc"), _config())
        server.start()
        db = connect_client(server.port, retry=RetryPolicy(base_delay=0.05))
        try:
            db.begin()
            db.set("inside", 1)
            server.stop()
            with pytest.raises((ConnectionLost, ShuttingDownError)):
                db.get("inside")  # idempotent, but inside a txn: no retry
        finally:
            db.close()

    def test_connect_retries_until_daemon_is_up(self, tmp_path):
        server = ReproServer(str(tmp_path / "late.tyc"), _config())
        server.start()
        port = server.port
        server.stop()  # port is now free again

        late = ReproServer(str(tmp_path / "late2.tyc"), _config(port=port))

        def start_soon():
            time.sleep(0.3)
            late.start()

        starter = threading.Thread(target=start_soon)
        starter.start()
        try:
            # connects before the daemon listens: retry_connect covers it
            db = connect_client(
                port, retry=RetryPolicy(base_delay=0.2, max_attempts=10)
            )
            try:
                assert db.ping()["pong"] is True
            finally:
                db.close()
        finally:
            starter.join()
            late.stop()


class TestIdleTimeout:
    def test_idle_session_holding_write_lock_is_reaped(self, tmp_path):
        """The fixed daemon bug: accepted connections never got a socket
        timeout, so a silently dead client holding a write transaction
        wedged every writer until lock_timeout.  The reaper frees it."""
        server = ReproServer(
            str(tmp_path / "idle.tyc"),
            _config(idle_timeout=0.4, reaper_interval=0.1, lock_timeout=2.0),
        )
        server.start()
        try:
            zombie = connect(server.port)
            zombie.begin("write")
            zombie.set("stuck", 1)
            # the zombie now goes silent, holding the write lock
            deadline = time.monotonic() + 10
            with connect(server.port) as db:
                while True:
                    try:
                        db.begin("write", timeout=0.3)
                        break
                    except (BusyError, ShuttingDownError):
                        assert time.monotonic() < deadline, "never reaped"
                db.abort()
            zombie.close()
        finally:
            server.stop()

    def test_active_sessions_are_not_reaped(self, tmp_path):
        server = ReproServer(
            str(tmp_path / "active.tyc"),
            _config(idle_timeout=0.4, reaper_interval=0.1),
        )
        server.start()
        try:
            with connect(server.port) as db:
                for _ in range(8):  # keeps traffic well inside the timeout
                    assert db.ping()["pong"] is True
                    time.sleep(0.1)
        finally:
            server.stop()


class TestDeadlines:
    def test_expired_deadline_is_a_structured_error(self, server):
        with connect(server.port) as db:
            with pytest.raises(ServerError) as err:
                db.request("ping", deadline=0.0)
        assert err.value.code == "deadline_exceeded"

    def test_deadline_bounds_the_lock_wait(self, tmp_path):
        """lock_timeout is 30s; a 0.3s deadline must fail in ~0.3s."""
        server = ReproServer(str(tmp_path / "dl.tyc"), _config(lock_timeout=30.0))
        server.start()
        try:
            with connect(server.port) as holder, connect(server.port) as waiter:
                holder.begin("write")
                holder.set("held", 1)
                started = time.monotonic()
                with pytest.raises(ServerError) as err:
                    waiter.set("blocked", 2, deadline=0.3)
                elapsed = time.monotonic() - started
                holder.abort()
            assert err.value.code == "deadline_exceeded"
            assert elapsed < 5.0
        finally:
            server.stop()
