"""RetryPolicy unit tests: backoff/jitter bounds and idempotent-only
replay, deterministic via an injected seeded RNG.

The replay tests drive :meth:`Client._invoke` against a stubbed
``request`` so the retry decision logic is exercised without sockets.
"""

import random

import pytest

from repro.server import protocol
from repro.server.client import (
    BusyError,
    Client,
    ConnectionLost,
    DeadlineExceeded,
    RetryPolicy,
)


def make_client(policy):
    """A Client with no socket — only the retry layer is under test."""
    client = Client.__new__(Client)
    client.retry = policy
    client.deadline = None
    client.trace_sample = 0.0  # keep retry-layer tests stamp-free
    client._trace_rng = random.Random(0)
    client._closed = False
    client._in_txn = False
    client.sock = object()  # non-None: request() is stubbed anyway
    return client


class TestBackoffBounds:
    def test_delay_is_within_jitter_envelope(self):
        policy = RetryPolicy(
            base_delay=0.1, multiplier=2.0, max_delay=1.0, jitter=0.5,
            rng=random.Random(42),
        )
        for attempt in range(1, 12):
            raw = min(1.0, 0.1 * 2.0 ** (attempt - 1))
            delay = policy.delay(attempt)
            # full-jitter envelope: [raw * (1 - jitter), raw]
            assert raw * 0.5 <= delay <= raw

    def test_delay_caps_at_max_delay(self):
        policy = RetryPolicy(
            base_delay=0.1, multiplier=10.0, max_delay=0.7, jitter=0.0,
            rng=random.Random(7),
        )
        assert policy.delay(50) == pytest.approx(0.7)

    def test_seeded_rng_makes_delays_reproducible(self):
        a = RetryPolicy(jitter=0.5, rng=random.Random(123))
        b = RetryPolicy(jitter=0.5, rng=random.Random(123))
        assert [a.delay(i) for i in range(1, 8)] == [
            b.delay(i) for i in range(1, 8)
        ]

    def test_zero_jitter_is_deterministic_without_rng(self):
        policy = RetryPolicy(base_delay=0.05, multiplier=2.0, jitter=0.0)
        assert policy.delay(1) == pytest.approx(0.05)
        assert policy.delay(2) == pytest.approx(0.1)


class TestIdempotentReplay:
    FAST = dict(base_delay=0.0, max_delay=0.0, jitter=0.0)

    def test_connection_lost_replays_only_idempotent_ops(self):
        policy = RetryPolicy(max_attempts=4, rng=random.Random(1), **self.FAST)
        client = make_client(policy)
        calls = []

        def flaky(op, **operands):
            calls.append(op)
            raise ConnectionLost("link died mid-request")

        client.request = flaky
        # idempotent: replayed until the budget is exhausted
        with pytest.raises(ConnectionLost):
            client._invoke("get", roots=["x"])
        assert calls == ["get"] * 4
        # mutating: the first attempt may have committed — never replayed
        calls.clear()
        with pytest.raises(ConnectionLost):
            client._invoke("set", root="x", value=1)
        assert calls == ["set"]

    def test_rejections_are_replayed_even_for_writes(self):
        policy = RetryPolicy(max_attempts=3, rng=random.Random(1), **self.FAST)
        client = make_client(policy)
        calls = []

        def busy_then_ok(op, **operands):
            calls.append(op)
            if len(calls) < 3:
                raise BusyError(protocol.E_BUSY, "lock timeout")
            return {"oid": 5}

        client.request = busy_then_ok
        # busy is a pre-execution rejection: side-effect-free to retry
        assert client._invoke("set", root="x", value=1) == {"oid": 5}
        assert calls == ["set"] * 3

    def test_no_replay_inside_explicit_transaction(self):
        policy = RetryPolicy(max_attempts=5, rng=random.Random(1), **self.FAST)
        client = make_client(policy)
        client._in_txn = True
        calls = []

        def flaky(op, **operands):
            calls.append(op)
            raise ConnectionLost("link died")

        client.request = flaky
        with pytest.raises(ConnectionLost):
            client._invoke("get", roots=["x"])
        assert calls == ["get"]  # replay would drop earlier txn effects

    def test_client_side_deadline_stops_retries(self):
        policy = RetryPolicy(
            max_attempts=50, base_delay=0.02, max_delay=0.02, jitter=0.0,
            multiplier=1.0, rng=random.Random(1),
        )
        client = make_client(policy)
        seen = []

        def flaky(op, **operands):
            seen.append(operands.get("deadline"))
            raise BusyError(protocol.E_BUSY, "lock timeout")

        client.request = flaky
        with pytest.raises(DeadlineExceeded):
            client._invoke("get", roots=["x"], deadline=0.05)
        # far fewer than 50 attempts: the 50ms budget ran out first,
        # and every attempt shipped its remaining budget to the server
        assert 1 <= len(seen) < 50
        assert all(d is not None and d <= 0.05 for d in seen)
