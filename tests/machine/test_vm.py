"""Tests for the TAM virtual machine and code generator."""

import pytest

from repro.core.parser import parse_term
from repro.core.syntax import Abs, Char, UNIT
from repro.machine.codegen import CodegenError, compile_function
from repro.machine.isa import code_size, flatten_codes
from repro.machine.runtime import ForeignTable, MachineError, UncaughtTmlException
from repro.machine.vm import VM, StepLimitExceeded, instantiate


def compile_proc(source, name="test"):
    term = parse_term(source)
    assert isinstance(term, Abs), "test sources must be proc abstractions"
    return compile_function(term, name=name)


def run_proc(source, args, **vm_kwargs):
    code = compile_proc(source)
    vm = VM(**vm_kwargs)
    return vm.call(instantiate(code), args)


class TestBasics:
    def test_identity(self):
        assert run_proc("proc(x ce cc) (cc x)", [7]).value == 7

    def test_arith_chain(self):
        src = "proc(x ce cc) (+ x 1 ce cont(t) (* t 2 ce cc))"
        assert run_proc(src, [20]).value == 42

    def test_branching(self):
        src = "proc(x ce cc) (< x 10 cont() (cc 1) cont() (cc 0))"
        assert run_proc(src, [5]).value == 1
        assert run_proc(src, [15]).value == 0

    def test_case_dispatch(self):
        src = """
        proc(x ce cc)
          (== x 1 2 cont() (cc 10) cont() (cc 20) cont() (cc 99))
        """
        assert run_proc(src, [1]).value == 10
        assert run_proc(src, [2]).value == 20
        assert run_proc(src, [3]).value == 99

    def test_case_without_else_traps(self):
        src = "proc(x ce cc) (== x 1 cont() (cc 10))"
        with pytest.raises(UncaughtTmlException):
            run_proc(src, [5])

    def test_loop_via_y(self):
        src = """
        proc(n ce cc)
          (Y λ(^c0 loop ^c)
             (c cont() (loop 1 0)
                cont(i acc)
                  (> i n cont() (cc acc)
                         cont() (+ acc i ce cont(a)
                                    (+ i 1 ce cont(j) (loop j a))))))
        """
        assert run_proc(src, [100]).value == 5050

    def test_closure_capture(self):
        src = """
        proc(x ce cc)
          (λ(add) (add 5 ce cc)
           proc(y ce2 cc2) (+ x y ce2 cc2))
        """
        assert run_proc(src, [10]).value == 15

    def test_instantiate_requires_bindings(self):
        code = compile_proc("proc(x ce cc) (f x ce cc)")
        with pytest.raises(MachineError):
            instantiate(code)


class TestExceptionsAndTraps:
    def test_overflow_to_exception_path(self):
        big = (1 << 63) - 1
        src = "proc(x ce cc) (+ x 1 cont(e) (cc -1) cc)"
        # exception continuation inline: deliver -1
        assert run_proc(src, [big]).value == -1

    def test_zero_divide(self):
        src = "proc(a b ce cc) (/ a b ce cc)"
        with pytest.raises(UncaughtTmlException):
            run_proc(src, [1, 0])

    def test_handler_stack_catches_trap(self):
        src = """
        proc(a ce cc)
          (λ(^h) (pushHandler h cont() (new 1 0 cont(arr) ([] arr 5 cont(v) (cc v))))
           cont(exv) (cc 777))
        """
        assert run_proc(src, [0]).value == 777

    def test_raise_primitive(self):
        src = """
        proc(a ce cc)
          (λ(^h) (pushHandler h cont() (raise 13))
           cont(exv) (cc exv))
        """
        assert run_proc(src, [0]).value == 13

    def test_pop_handler(self):
        src = """
        proc(a ce cc)
          (λ(^h) (pushHandler h cont() (popHandler cont() (cc 1)))
           cont(exv) (cc 2))
        """
        assert run_proc(src, [0]).value == 1

    def test_step_limit(self):
        src = """
        proc(n ce cc)
          (Y λ(^c0 ^loop ^c) (c cont() (loop) cont() (loop)))
        """
        with pytest.raises(StepLimitExceeded):
            run_proc(src, [0], step_limit=500)


class TestDataOps:
    def test_array_lifecycle(self):
        src = """
        proc(n ce cc)
          (new n 0 cont(a)
            ([]:= a 2 99 cont(u)
              ([] a 2 cont(v)
                (size a cont(s)
                  (+ v s ce cc)))))
        """
        assert run_proc(src, [10]).value == 109

    def test_vector_is_immutable(self):
        src = """
        proc(x ce cc)
          (vector 1 2 3 cont(v) ([]:= v 0 9 cont(u) (cc u)))
        """
        with pytest.raises(UncaughtTmlException):
            run_proc(src, [0])

    def test_byte_array(self):
        src = """
        proc(n ce cc)
          ($new 4 7 cont(b)
            ($[]:= b 1 300 cont(u)
              ($[] b 1 cont(v) (cc v))))
        """
        assert run_proc(src, [0]).value == 300 & 0xFF

    def test_move(self):
        src = """
        proc(x ce cc)
          (new 5 0 cont(dst)
            (vector 9 8 7 cont(src)
              (move dst 1 src 0 3 cont(u)
                ([] dst 2 cont(v) (cc v)))))
        """
        assert run_proc(src, [0]).value == 8

    def test_move_bounds_trap(self):
        src = """
        proc(x ce cc)
          (new 2 0 cont(dst)
            (vector 9 8 7 cont(src)
              (move dst 0 src 0 3 cont(u) (cc u))))
        """
        with pytest.raises(UncaughtTmlException):
            run_proc(src, [0])

    def test_bit_ops(self):
        src = "proc(a b ce cc) (band a b cont(x) (bor x 1 cont(y) (cc y)))"
        assert run_proc(src, [12, 10]).value == 9

    def test_char_conversion(self):
        src = "proc(c ce cc) (char2int c cont(i) (+ i 1 ce cont(j) (int2char j cont(d) (cc d))))"
        assert run_proc(src, [Char("a")]).value == Char("b")


class TestCodegenStructure:
    def test_continuations_are_inlined_not_closures(self):
        """Straight-line TL code becomes straight-line bytecode."""
        code = compile_proc("proc(x ce cc) (+ x 1 ce cont(t) (* t 2 ce cc))")
        # no nested code objects: all continuations were inline join points
        assert not code.codes

    def test_escaping_continuation_materialized(self):
        code = compile_proc("proc(f ce cc) (f 1 ce cont(t) (cc t))")
        # the cont passed to f must be a real closure
        assert len(code.codes) == 1

    def test_disassemble_readable(self):
        code = compile_proc("proc(x ce cc) (+ x 1 ce cc)")
        listing = code.disassemble()
        assert "add" in listing and "code test" in listing

    def test_code_size_counts_nested(self):
        code = compile_proc("proc(f ce cc) (f 1 ce cont(t) (cc t))")
        assert code_size(code) == sum(len(c.instrs) for c in flatten_codes(code))

    def test_direct_abs_application_inlined(self):
        code = compile_proc("proc(x ce cc) (λ(y) (+ y 1 ce cc)  x)")
        assert not code.codes  # the λ was a binding, not a closure

    def test_y_emits_fix(self):
        code = compile_proc(
            """
            proc(n ce cc)
              (Y λ(^c0 loop ^c)
                 (c cont() (loop n)
                    cont(i) (cc i)))
            """
        )
        ops = [instr[0] for instr in code.instrs]
        assert "fix" in ops

    def test_foreign_ccall(self):
        code = compile_proc(
            'proc(x ce cc) (vector x cont(v) (ccall "inc" v ce cc))'
        )
        vm = VM(foreign=ForeignTable({"inc": lambda v: v + 1}))
        assert vm.call(instantiate(code), [41]).value == 42

    def test_print_and_unit(self):
        code = compile_proc('proc(x ce cc) (print "out" cont(u) (cc u))')
        vm = VM()
        result = vm.call(instantiate(code), [0])
        assert result.value == UNIT
        assert result.output == ["out"]

    def test_unknown_prim_rejected(self):
        term = parse_term("proc(x ce cc) (zorp x ce cc)", prims={"zorp"})
        with pytest.raises(CodegenError):
            compile_function(term)
